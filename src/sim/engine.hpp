// Discrete-event simulation engine.
//
// The paper's campaigns take 27.7 h (CONT-V) and 38.3 h (IM-RP) of wall
// time on the Amarel node. We replay them against a virtual clock: tasks
// carry duration models, the engine advances time event-by-event, and the
// science functions (surrogate ProteinMPNN/AlphaFold) execute instantly at
// their completion events. This keeps the *middleware* logic — scheduling,
// asynchronous submission, decision-making — identical to a real-time run
// while making the whole evaluation reproducible in milliseconds.
//
// Determinism contract: events at equal timestamps fire in insertion
// order (a monotonically increasing sequence number breaks ties), so a
// campaign is a pure function of its seed.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

namespace impress::sim {

/// Simulated time in seconds since engine start.
using SimTime = double;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (seconds).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t`. Times before now() are clamped
  /// to now() (the event fires "immediately", after already-queued events
  /// at the current timestamp).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` `delay` seconds from now (negative delays clamp to 0).
  EventId schedule_after(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Fire the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains (or stop() is called). Returns the number
  /// of events fired.
  std::size_t run();

  /// Run until simulated time would exceed `t_end`; events scheduled at
  /// exactly t_end still fire. Returns events fired.
  std::size_t run_until(SimTime t_end);

  /// Make run()/run_until() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Jump the clock forward to `t` (checkpoint restore). Only legal while
  /// no events are pending — restored work is rescheduled relative to the
  /// warped clock afterwards. Times before now() are ignored.
  void warp_to(SimTime t) noexcept {
    if (live_events_ == 0 && t > now_) now_ = t;
  }

  [[nodiscard]] bool empty() const noexcept { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_events_; }
  [[nodiscard]] std::uint64_t fired_events() const noexcept { return fired_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    // Ordered as a min-heap on (time, seq).
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_events_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Callbacks live out-of-band so cancel() is O(1): a cancelled id simply
  // loses its callback and the heap entry is skipped when popped.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace impress::sim
