// Discrete-event simulation engine.
//
// The paper's campaigns take 27.7 h (CONT-V) and 38.3 h (IM-RP) of wall
// time on the Amarel node. We replay them against a virtual clock: tasks
// carry duration models, the engine advances time event-by-event, and the
// science functions (surrogate ProteinMPNN/AlphaFold) execute instantly at
// their completion events. This keeps the *middleware* logic — scheduling,
// asynchronous submission, decision-making — identical to a real-time run
// while making the whole evaluation reproducible in milliseconds.
//
// Determinism contract: events at equal timestamps fire in insertion
// order (a monotonically increasing sequence number breaks ties), so a
// campaign is a pure function of its seed — regardless of which
// EventScheduler structure backs the queue (sim/event_scheduler.hpp).
//
// Hot-path structure: callbacks live in a slab EventPool (O(1)
// schedule/cancel, no per-event hashing — sim/event_pool.hpp); the
// scheduler holds only (time, seq, id) triples; and the engine dequeues
// all events sharing a timestamp in one batch, so a burst of same-time
// completions costs one queue visit.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_pool.hpp"
#include "sim/event_scheduler.hpp"

namespace impress::sim {

struct EngineConfig {
  /// Event-queue structure. All choices are bit-identical by the
  /// determinism contract; see event_scheduler.hpp for when each wins.
  SchedulerKind scheduler = SchedulerKind::kHeap;
};

class Engine {
 public:
  Engine() : Engine(EngineConfig{}) {}
  explicit Engine(const EngineConfig& config);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (seconds).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t`. Times before now() are clamped
  /// to now() (the event fires "immediately", after already-queued events
  /// at the current timestamp).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` `delay` seconds from now (negative delays clamp to 0).
  EventId schedule_after(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// already cancelled. O(1) against the pool; queue entries are removed
  /// eagerly where the scheduler supports it and compacted away otherwise
  /// (cancel churn never grows the queue unboundedly — see
  /// Engine.CancelChurnBoundedMemory).
  bool cancel(EventId id);

  /// Fire the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains (or stop() is called). Returns the number
  /// of events fired.
  std::size_t run();

  /// Run until simulated time would exceed `t_end`; events scheduled at
  /// exactly t_end still fire. Returns events fired.
  std::size_t run_until(SimTime t_end);

  /// Make run()/run_until() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Jump the clock forward to `t` (checkpoint restore). Only legal while
  /// no events are pending — restored work is rescheduled relative to the
  /// warped clock afterwards. Returns false (and leaves the clock
  /// untouched) on an illegal call: live events pending, or `t` behind
  /// now(). Callers must treat false as a checkpoint-restore bug, not a
  /// soft no-op.
  [[nodiscard]] bool warp_to(SimTime t) noexcept;

  [[nodiscard]] bool empty() const noexcept { return pool_.live_count() == 0; }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return pool_.live_count();
  }
  [[nodiscard]] std::uint64_t fired_events() const noexcept { return fired_; }
  [[nodiscard]] SchedulerKind scheduler_kind() const noexcept {
    return scheduler_->kind();
  }

  /// Queue entries currently held (live events + not-yet-compacted
  /// tombstones + the in-flight batch). Exposed so tests can assert the
  /// tombstone bound under schedule/cancel churn.
  [[nodiscard]] std::size_t scheduler_entries() const noexcept {
    return scheduler_->size() + (batch_.size() - batch_pos_);
  }

 private:
  /// Advance past cancelled entries to the next live event's time.
  /// Consumes tombstones as a side effect; returns false when drained.
  bool peek_next_live(SimTime& t);
  /// Compact the queue when lazily-cancelled tombstones outnumber live
  /// entries (amortized O(1) per cancel: a compaction of k entries
  /// reclaims >= k/2 tombstones, each paid for by one cancel).
  void maybe_compact();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
  EventPool pool_;
  std::unique_ptr<EventScheduler> scheduler_;
  /// Same-timestamp batch popped from the scheduler, consumed in (time,
  /// seq) order by step(). Entries cancelled mid-batch are skipped via a
  /// pool liveness check.
  std::vector<SchedEvent> batch_;
  std::size_t batch_pos_ = 0;
};

}  // namespace impress::sim
