#include "sim/event_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace impress::sim {

std::string_view to_string(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kHeap: return "heap";
    case SchedulerKind::kMap: return "map";
    case SchedulerKind::kCalendar: return "calendar";
  }
  return "unknown";
}

namespace {

struct SchedEventGreater {
  bool operator()(const SchedEvent& a, const SchedEvent& b) const noexcept {
    return b.before(a);
  }
};

// ---------------------------------------------------------------------------
// Binary heap (the original engine queue). Cancellation is lazy: the heap
// cannot locate an arbitrary entry cheaply, so remove() declines and the
// engine compacts when tombstones dominate live events.
class HeapScheduler final : public EventScheduler {
 public:
  void insert(const SchedEvent& ev) override {
    entries_.push_back(ev);
    std::push_heap(entries_.begin(), entries_.end(), SchedEventGreater{});
  }

  [[nodiscard]] std::size_t size() const noexcept override {
    return entries_.size();
  }

  [[nodiscard]] const SchedEvent& peek() const override {
    return entries_.front();
  }

  SchedEvent pop() override {
    std::pop_heap(entries_.begin(), entries_.end(), SchedEventGreater{});
    const SchedEvent ev = entries_.back();
    entries_.pop_back();
    return ev;
  }

  void pop_batch(std::vector<SchedEvent>& out) override {
    const SimTime t = peek().time;
    do {
      out.push_back(pop());
    } while (!entries_.empty() && entries_.front().time == t);
  }

  bool remove(const SchedEvent&) override { return false; }

  void compact(const std::function<bool(EventId)>& live) override {
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const SchedEvent& ev) {
                                    return !live(ev.id);
                                  }),
                   entries_.end());
    std::make_heap(entries_.begin(), entries_.end(), SchedEventGreater{});
  }

  void clear() override { entries_.clear(); }

  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kHeap;
  }

 private:
  std::vector<SchedEvent> entries_;
};

// ---------------------------------------------------------------------------
// Ordered-container scheduler: a sorted vector-of-nodes std::map keyed on
// (time, seq). Strong O(log n) worst case on every operation including
// eager removal — the reference implementation the others are property-
// tested against.
class MapScheduler final : public EventScheduler {
 public:
  void insert(const SchedEvent& ev) override {
    entries_.emplace_hint(entries_.end(), Key{ev.time, ev.seq}, ev.id);
  }

  [[nodiscard]] std::size_t size() const noexcept override {
    return entries_.size();
  }

  [[nodiscard]] const SchedEvent& peek() const override {
    const auto& [key, id] = *entries_.begin();
    peeked_ = SchedEvent{key.first, key.second, id};
    return peeked_;
  }

  SchedEvent pop() override {
    const auto it = entries_.begin();
    const SchedEvent ev{it->first.first, it->first.second, it->second};
    entries_.erase(it);
    return ev;
  }

  void pop_batch(std::vector<SchedEvent>& out) override {
    const SimTime t = entries_.begin()->first.first;
    auto it = entries_.begin();
    while (it != entries_.end() && it->first.first == t) {
      out.push_back(SchedEvent{it->first.first, it->first.second, it->second});
      ++it;
    }
    entries_.erase(entries_.begin(), it);
  }

  bool remove(const SchedEvent& ev) override {
    entries_.erase(Key{ev.time, ev.seq});
    return true;
  }

  void compact(const std::function<bool(EventId)>&) override {}

  void clear() override { entries_.clear(); }

  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kMap;
  }

 private:
  using Key = std::pair<SimTime, std::uint64_t>;
  std::map<Key, EventId> entries_;
  mutable SchedEvent peeked_;
};

// ---------------------------------------------------------------------------
// Calendar queue (Brown 1988, the ns-3 CalendarScheduler shape): events
// hash into `buckets_.size()` day-buckets of `width_` simulated seconds;
// one sweep over all buckets is a "year". Dequeue walks the calendar from
// the current day, taking events that fall inside the current year;
// enqueue appends/insertion-sorts into the destination bucket (events
// arrive mostly in near-sorted order, so the expected insert cost is
// O(1)). The queue resizes — doubling or halving the bucket count and
// re-deriving the width from the observed inter-event gap near the head —
// whenever the population crosses 2x/0.5x the bucket count, keeping ~1
// event per bucket: amortized O(1) enqueue/dequeue.
class CalendarScheduler final : public EventScheduler {
 public:
  CalendarScheduler() { rebuild(kMinBuckets, 1.0); }

  void insert(const SchedEvent& ev) override {
    insert_no_resize(ev);
    ++count_;
    // An insert behind the dequeue cursor's window (legal for a generic
    // priority queue, even though the engine's clock never rewinds) must
    // pull the scan back, or the one-year window walk could hand out a
    // later event first. Everything already pending sits at or after the
    // last dequeue, so rewinding to the new event's own window is safe.
    if (ev.time < year_top_ - width_) advance_to(ev.time, bucket_of(ev.time));
    if (count_ > 2 * buckets_.size()) resize(2 * buckets_.size());
  }

  [[nodiscard]] std::size_t size() const noexcept override { return count_; }

  [[nodiscard]] const SchedEvent& peek() const override {
    const auto [bucket, index] = locate_next();
    return buckets_[bucket][index];
  }

  SchedEvent pop() override {
    const auto [bucket, index] = locate_next();
    auto& day = buckets_[bucket];
    const SchedEvent ev = day[index];
    day.erase(day.begin() + static_cast<std::ptrdiff_t>(index));
    --count_;
    advance_to(ev.time, bucket);
    maybe_shrink();
    return ev;
  }

  void pop_batch(std::vector<SchedEvent>& out) override {
    out.push_back(pop());
    const SimTime t = out.back().time;
    // Same-timestamp events all live in the current bucket (same day of
    // the same year), sorted, starting at the front.
    auto& day = buckets_[current_];
    std::size_t n = 0;
    while (n < day.size() && day[n].time == t) ++n;
    if (n > 0) {
      out.insert(out.end(), day.begin(),
                 day.begin() + static_cast<std::ptrdiff_t>(n));
      day.erase(day.begin(), day.begin() + static_cast<std::ptrdiff_t>(n));
      count_ -= n;
      maybe_shrink();
    }
  }

  bool remove(const SchedEvent& ev) override {
    auto& day = buckets_[bucket_of(ev.time)];
    const auto it = std::lower_bound(
        day.begin(), day.end(), ev,
        [](const SchedEvent& a, const SchedEvent& b) { return a.before(b); });
    if (it != day.end() && it->id == ev.id) {
      day.erase(it);
      --count_;
      maybe_shrink();
    }
    return true;  // eager either way: nothing is ever left behind
  }

  void compact(const std::function<bool(EventId)>&) override {}

  void clear() override {
    count_ = 0;
    rebuild(kMinBuckets, 1.0);
  }

  [[nodiscard]] SchedulerKind kind() const noexcept override {
    return SchedulerKind::kCalendar;
  }

 private:
  static constexpr std::size_t kMinBuckets = 2;

  [[nodiscard]] std::size_t bucket_of(SimTime t) const noexcept {
    // Guard against t far below the calendar start (cancel of an already-
    // popped event re-deriving a stale bucket): clamp into day 0 of the
    // first year rather than taking fmod of a negative.
    const double rel = (t - origin_) / width_;
    if (!(rel > 0.0)) return 0;
    const double day = std::fmod(rel, static_cast<double>(buckets_.size()));
    auto b = static_cast<std::size_t>(day);
    return b < buckets_.size() ? b : buckets_.size() - 1;
  }

  void insert_no_resize(const SchedEvent& ev) {
    auto& day = buckets_[bucket_of(ev.time)];
    if (day.empty() || day.back().before(ev)) {
      day.push_back(ev);  // the common, near-sorted-arrival case
      return;
    }
    const auto it = std::upper_bound(
        day.begin(), day.end(), ev,
        [](const SchedEvent& a, const SchedEvent& b) { return a.before(b); });
    day.insert(it, ev);
  }

  /// (bucket, index) of the earliest entry. Precondition: count_ > 0.
  /// Walks at most one full year from the current day; if no event falls
  /// within its own year-window (sparse calendar), falls back to a direct
  /// min scan — the classic Brown two-phase dequeue.
  [[nodiscard]] std::pair<std::size_t, std::size_t> locate_next() const {
    const std::size_t n = buckets_.size();
    std::size_t b = current_;
    SimTime top = year_top_;
    for (std::size_t visited = 0; visited < n; ++visited) {
      const auto& day = buckets_[b];
      if (!day.empty() && day.front().time < top)
        return {b, 0};
      b = (b + 1) % n;
      top += width_;
    }
    // Sparse: every event is at least a year out. Take the global min.
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (buckets_[i].empty()) continue;
      if (best == n || buckets_[i].front().before(buckets_[best].front()))
        best = i;
    }
    return {best, 0};
  }

  /// After dequeuing an event at time `t` from `bucket`, move the
  /// calendar's cursor there so the next dequeue resumes scanning from
  /// the same day.
  void advance_to(SimTime t, std::size_t bucket) noexcept {
    current_ = bucket;
    const double rel = std::max(0.0, (t - origin_) / width_);
    const auto day_index = static_cast<std::uint64_t>(rel);
    year_top_ = origin_ + static_cast<double>(day_index + 1) * width_;
  }

  void maybe_shrink() {
    if (buckets_.size() > kMinBuckets && count_ < buckets_.size() / 2)
      resize(buckets_.size() / 2);
  }

  /// Re-bucket everything into `n` buckets with a width derived from the
  /// average gap between events near the head of the queue (Brown's
  /// sampling rule, simplified: sample up to 32 earliest events).
  void resize(std::size_t n) {
    n = std::max(n, kMinBuckets);
    std::vector<SchedEvent> all;
    all.reserve(count_);
    for (auto& day : buckets_)
      all.insert(all.end(), day.begin(), day.end());
    std::sort(all.begin(), all.end(),
              [](const SchedEvent& a, const SchedEvent& b) {
                return a.before(b);
              });

    double width = 1.0;
    if (all.size() >= 2) {
      const std::size_t sample = std::min<std::size_t>(all.size(), 32);
      const double span = all[sample - 1].time - all[0].time;
      const double gap = span / static_cast<double>(sample - 1);
      // 3x the mean gap keeps ~1/3 of a bucket per event (Brown's
      // recommendation); degenerate spans (all equal timestamps) keep the
      // previous width so bucket_of stays finite.
      width = gap > 0.0 ? 3.0 * gap : width_;
    } else if (!all.empty()) {
      width = width_;
    }
    if (!(width > 0.0) || !std::isfinite(width)) width = 1.0;

    const SimTime resume_from =
        all.empty() ? year_top_ - width_ : all.front().time;
    rebuild(n, width);
    for (const auto& ev : all) insert_no_resize(ev);
    // Resume the dequeue scan at the window holding the earliest event, so
    // the next locate_next() finds it on the first bucket it visits.
    advance_to(resume_from, bucket_of(resume_from));
  }

  void rebuild(std::size_t n, double width) {
    buckets_.assign(n, {});
    width_ = width;
    origin_ = 0.0;
    current_ = 0;
    year_top_ = width_;
  }

  std::vector<std::vector<SchedEvent>> buckets_;
  std::size_t count_ = 0;
  double width_ = 1.0;
  double origin_ = 0.0;       ///< time of day 0, year 0
  std::size_t current_ = 0;   ///< day the dequeue scan resumes from
  SimTime year_top_ = 1.0;    ///< upper time bound of current_'s window
};

}  // namespace

std::unique_ptr<EventScheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kMap: return std::make_unique<MapScheduler>();
    case SchedulerKind::kCalendar: return std::make_unique<CalendarScheduler>();
    case SchedulerKind::kHeap: break;
  }
  return std::make_unique<HeapScheduler>();
}

}  // namespace impress::sim
