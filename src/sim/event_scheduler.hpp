// Pluggable event-queue schedulers for the simulation engine.
//
// ns-3 proved the shape: the simulator's main loop talks to one small
// scheduler interface and the concrete priority-queue structure — binary
// heap, balanced tree, calendar queue — is swapped behind it. Which
// structure wins depends on the pending-set size and the event-time
// distribution, so the engine takes the choice as configuration and the
// determinism contract guarantees the choice is unobservable in results:
// every implementation dequeues in strict (time, seq) order, so a
// campaign replays bit-identically under any of them (pinned by
// tests/integration/test_scheduler_interchange.cpp).
//
// Complexity summary (n = pending events):
//
//   scheduler  insert         pop-next       eager remove
//   heap       O(log n)       O(log n)       no (tombstone; engine compacts)
//   map        O(log n)       O(log n)       yes, O(log n)
//   calendar   O(1) amortized O(1) amortized yes, O(bucket)
//
// The calendar queue (Brown, CACM 1988) buckets events by time modulo a
// "year" and dynamically resizes bucket count and width to track the
// pending-set size and density, giving amortized O(1) holds — the regime
// a 10k-node campaign with millions of timer events lives in.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

namespace impress::sim {

/// Simulated time in seconds since engine start.
using SimTime = double;

/// Handle for cancelling a scheduled event (slot index + generation,
/// packed by the EventPool).
using EventId = std::uint64_t;

/// Which event-queue structure the engine uses. All three satisfy the
/// same (time, seq) determinism contract; see the table above for when
/// each wins.
enum class SchedulerKind {
  kHeap,      ///< binary heap (the original engine queue); lazy cancel
  kMap,       ///< std::map-backed; eager cancel, strong worst-case bounds
  kCalendar,  ///< calendar queue with dynamic bucket resizing
};

[[nodiscard]] std::string_view to_string(SchedulerKind kind) noexcept;

/// One queue entry. Ordering is lexicographic on (time, seq): seq is the
/// engine's global insertion counter, so equal-timestamp events fire in
/// insertion order.
struct SchedEvent {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
  EventId id = 0;

  [[nodiscard]] bool before(const SchedEvent& other) const noexcept {
    if (time != other.time) return time < other.time;
    return seq < other.seq;
  }
};

/// The scheduler owns only (time, seq, id) triples; callbacks live in the
/// engine's EventPool. Not thread-safe — the engine is single-threaded by
/// construction (the determinism contract forbids concurrent mutation).
class EventScheduler {
 public:
  virtual ~EventScheduler() = default;

  virtual void insert(const SchedEvent& ev) = 0;

  /// Entries currently stored, *including* any lazily-cancelled
  /// tombstones (heap). The engine compares this against its live-event
  /// count to decide when to compact.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Earliest entry. Precondition: !empty().
  [[nodiscard]] virtual const SchedEvent& peek() const = 0;

  /// Remove and return the earliest entry. Precondition: !empty().
  virtual SchedEvent pop() = 0;

  /// Pop *every* entry sharing the earliest timestamp, appended to `out`
  /// in (time, seq) order — same-timestamp batching, so the engine pays
  /// one queue visit per distinct timestamp instead of one per event.
  virtual void pop_batch(std::vector<SchedEvent>& out) = 0;

  /// Try to remove `ev` eagerly. Returns true when this implementation
  /// removes eagerly (entry gone, or was not present — e.g. already
  /// popped into a batch); false when removal is deferred and a tombstone
  /// stays behind (heap), in which case the engine schedules compaction.
  virtual bool remove(const SchedEvent& ev) = 0;

  /// Drop every entry whose id fails `live` (tombstone compaction). Only
  /// meaningful for lazy-remove implementations; others may no-op.
  virtual void compact(const std::function<bool(EventId)>& live) = 0;

  /// Drop all entries unconditionally (checkpoint-restore warp).
  virtual void clear() = 0;

  [[nodiscard]] virtual SchedulerKind kind() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept {
    return to_string(kind());
  }
};

[[nodiscard]] std::unique_ptr<EventScheduler> make_scheduler(
    SchedulerKind kind);

}  // namespace impress::sim
