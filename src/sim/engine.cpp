#include "sim/engine.hpp"

#include <algorithm>

namespace impress::sim {

EventId Engine::schedule_at(SimTime t, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(t, now_), next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_events_;
  return id;
}

EventId Engine::schedule_after(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

bool Engine::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_events_;
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    const auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    --live_events_;
    now_ = ev.time;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Engine::run_until(SimTime t_end) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    // Peek past cancelled entries to find the next live event time.
    bool found = false;
    while (!queue_.empty()) {
      if (callbacks_.contains(queue_.top().id)) {
        found = true;
        break;
      }
      queue_.pop();
    }
    if (!found || queue_.top().time > t_end) break;
    step();
    ++n;
  }
  // Even if no event fires at t_end, time advances to it — unless an
  // event called stop(), in which case the clock stays where it halted.
  if (!stopped_) now_ = std::max(now_, t_end);
  return n;
}

}  // namespace impress::sim
