#include "sim/engine.hpp"

#include <algorithm>

namespace impress::sim {

Engine::Engine(const EngineConfig& config)
    : scheduler_(make_scheduler(config.scheduler)) {}

EventId Engine::schedule_at(SimTime t, std::function<void()> fn) {
  const SimTime at = std::max(t, now_);
  const std::uint64_t seq = next_seq_++;
  const EventId id = pool_.acquire(at, seq, std::move(fn));
  scheduler_->insert(SchedEvent{at, seq, id});
  return id;
}

EventId Engine::schedule_after(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

bool Engine::cancel(EventId id) {
  EventPool::Slot* slot = pool_.find_live(id);
  if (slot == nullptr) return false;
  const SchedEvent ev{slot->time, slot->seq, id};
  pool_.release(id);
  // Eager-removal schedulers take the entry out now; the heap leaves a
  // tombstone behind, bounded by compaction.
  if (!scheduler_->remove(ev)) maybe_compact();
  return true;
}

void Engine::maybe_compact() {
  const std::size_t entries = scheduler_->size();
  if (entries < 64) return;
  std::size_t live_in_batch = 0;
  for (std::size_t i = batch_pos_; i < batch_.size(); ++i)
    if (pool_.is_live(batch_[i].id)) ++live_in_batch;
  const std::size_t live_in_scheduler = pool_.live_count() - live_in_batch;
  if (entries > 2 * live_in_scheduler)
    scheduler_->compact([this](EventId id) { return pool_.is_live(id); });
}

bool Engine::step() {
  for (;;) {
    while (batch_pos_ < batch_.size()) {
      const SchedEvent ev = batch_[batch_pos_++];
      if (!pool_.is_live(ev.id)) continue;  // cancelled mid-batch
      std::function<void()> fn = pool_.release(ev.id);
      now_ = ev.time;
      ++fired_;
      fn();
      return true;
    }
    batch_.clear();
    batch_pos_ = 0;
    if (scheduler_->empty()) return false;
    scheduler_->pop_batch(batch_);
  }
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

bool Engine::peek_next_live(SimTime& t) {
  while (batch_pos_ < batch_.size()) {
    if (pool_.is_live(batch_[batch_pos_].id)) {
      t = batch_[batch_pos_].time;
      return true;
    }
    ++batch_pos_;  // tombstone: skipping it here is free
  }
  while (!scheduler_->empty()) {
    const SchedEvent& top = scheduler_->peek();
    if (pool_.is_live(top.id)) {
      t = top.time;
      return true;
    }
    scheduler_->pop();  // discard tombstone
  }
  return false;
}

std::size_t Engine::run_until(SimTime t_end) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    SimTime t_next = 0.0;
    if (!peek_next_live(t_next) || t_next > t_end) break;
    step();
    ++n;
  }
  // Even if no event fires at t_end, time advances to it — unless an
  // event called stop(), in which case the clock stays where it halted.
  if (!stopped_) now_ = std::max(now_, t_end);
  return n;
}

bool Engine::warp_to(SimTime t) noexcept {
  if (pool_.live_count() != 0 || t < now_) return false;
  now_ = t;
  // Any entries still queued are tombstones of cancelled events; a warp
  // is a clean restore point, so drop them outright.
  scheduler_->clear();
  batch_.clear();
  batch_pos_ = 0;
  return true;
}

}  // namespace impress::sim
