// Slab allocator for pending events.
//
// The old engine kept callbacks in an `unordered_map<EventId,
// function>`, paying a hash insert + erase (and an allocation) per
// event. The pool replaces that with a slab of slots recycled through a
// free list: schedule is an O(1) slot pop, cancel/fire an O(1) slot
// release, and the arena stops growing once it covers the peak pending
// set. An EventId packs (generation << 32 | slot index); the generation
// bumps on every release, so a stale id — cancel after fire, double
// cancel — decodes to a dead handle instead of hitting a recycled slot.
//
// Each slot also carries the event's (time, seq) key so eager-removal
// schedulers (map, calendar) can locate their queue entry on cancel
// without any side lookup.

#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event_scheduler.hpp"

namespace impress::sim {

class EventPool {
 public:
  struct Slot {
    std::function<void()> fn;
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t generation = 0;
    bool live = false;
  };

  /// Claim a slot for an event at (time, seq); returns its EventId.
  EventId acquire(SimTime time, std::uint64_t seq, std::function<void()> fn) {
    std::uint32_t index = 0;
    if (free_.empty()) {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      index = free_.back();
      free_.pop_back();
    }
    Slot& slot = slots_[index];
    slot.fn = std::move(fn);
    slot.time = time;
    slot.seq = seq;
    slot.live = true;
    return pack(slot.generation, index);
  }

  /// The slot behind `id`, or nullptr if the id is stale (already fired
  /// or cancelled) or was never issued.
  [[nodiscard]] Slot* find_live(EventId id) noexcept {
    const std::uint32_t index = slot_index(id);
    if (index >= slots_.size()) return nullptr;
    Slot& slot = slots_[index];
    if (!slot.live || slot.generation != generation(id)) return nullptr;
    return &slot;
  }

  [[nodiscard]] bool is_live(EventId id) const noexcept {
    const std::uint32_t index = slot_index(id);
    return index < slots_.size() && slots_[index].live &&
           slots_[index].generation == generation(id);
  }

  /// Release `id`'s slot, returning its callback. The caller must have
  /// verified liveness (find_live). The generation bump retires every
  /// outstanding handle to this slot.
  std::function<void()> release(EventId id) {
    Slot& slot = slots_[slot_index(id)];
    std::function<void()> fn = std::move(slot.fn);
    slot.fn = nullptr;
    slot.live = false;
    ++slot.generation;
    free_.push_back(slot_index(id));
    return fn;
  }

  /// Slots currently allocated to live events.
  [[nodiscard]] std::size_t live_count() const noexcept {
    return slots_.size() - free_.size();
  }

  /// Slab capacity (high-water mark of the pending set).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  static constexpr std::uint64_t kIndexMask = 0xffffffffu;

  // Indices are stored +1 so EventId 0 is never issued (it predates the
  // pool as the engine's implicit "no such event" value).
  [[nodiscard]] static EventId pack(std::uint32_t gen,
                                    std::uint32_t index) noexcept {
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(index) + 1);
  }
  [[nodiscard]] static std::uint32_t slot_index(EventId id) noexcept {
    return static_cast<std::uint32_t>(id & kIndexMask) - 1;
  }
  [[nodiscard]] static std::uint32_t generation(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace impress::sim
