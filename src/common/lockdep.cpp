#include "common/lockdep.hpp"

#if IMPRESS_LOCKDEP_COMPILED_IN

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace impress::common::lockdep {
namespace {

/// One entry per distinct mutex instance the thread currently holds;
/// `depth` counts recursive relocks of the same instance.
struct Held {
  std::uint32_t cls;
  const void* instance;
  const char* name;
  std::uint32_t depth;
};

thread_local std::vector<Held> t_held;

struct Registry {
  std::mutex mu;
  std::vector<std::string> class_names;  // id -> name
  std::unordered_map<std::string, std::uint32_t> class_ids;
  /// Lock-order graph: edges[a] holds every class observed taken while a
  /// was held. Kept acyclic: an edge that would close a cycle is reported
  /// and dropped, so later checks stay cheap and report fresh cycles.
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>> edges;
  std::vector<std::string> violations;          // insertion order
  std::unordered_set<std::string> violation_keys;  // dedup
  bool abort_on_violation = false;
  bool abort_env_read = false;
};

// Leaked singleton: lockdep hooks may run during static destruction
// (e.g. a static object's dtor unlocking a TrackedMutex), after a plain
// function-local static registry would already be gone.
Registry& reg() {
  static Registry* r = new Registry;
  return *r;
}

void record_violation_locked(Registry& r, const std::string& msg) {
  if (!r.violation_keys.insert(msg).second) return;
  r.violations.push_back(msg);
  std::fprintf(stderr, "[lockdep] %s\n", msg.c_str());
  if (!r.abort_env_read) {
    r.abort_env_read = true;
    const char* env = std::getenv("IMPRESS_LOCKDEP_ABORT");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0'))
      r.abort_on_violation = true;
  }
  if (r.abort_on_violation) {
    std::fflush(stderr);
    std::abort();
  }
}

/// Depth-first search for a path `from` -> ... -> `to` over the current
/// edge set; fills `path` with the class ids along it (inclusive).
bool find_path_locked(Registry& r, std::uint32_t from, std::uint32_t to,
                      std::vector<std::uint32_t>& path) {
  std::unordered_map<std::uint32_t, std::uint32_t> parent;
  std::vector<std::uint32_t> stack{from};
  parent.emplace(from, from);
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    if (node == to) {
      for (std::uint32_t n = to; n != from; n = parent.at(n))
        path.push_back(n);
      path.push_back(from);
      std::reverse(path.begin(), path.end());
      return true;
    }
    auto it = r.edges.find(node);
    if (it == r.edges.end()) continue;
    for (std::uint32_t next : it->second)
      if (parent.emplace(next, node).second) stack.push_back(next);
  }
  return false;
}

/// Record `held -> taken`; report a lock-order cycle if the reverse path
/// already exists.
void add_edge_locked(Registry& r, std::uint32_t held, std::uint32_t taken) {
  auto& out = r.edges[held];
  if (out.contains(taken)) return;
  std::vector<std::uint32_t> path;
  if (find_path_locked(r, taken, held, path)) {
    // path = taken..held, so the chain reads held -> taken -> ... -> held.
    std::string msg = "lock-order cycle: ";
    msg += r.class_names[held];
    for (std::uint32_t n : path) {
      msg += " -> ";
      msg += r.class_names[n];
    }
    record_violation_locked(r, msg);
    return;  // keep the graph acyclic
  }
  out.insert(taken);
}

}  // namespace

std::uint32_t register_class(const char* name) {
  Registry& r = reg();
  std::lock_guard lock(r.mu);
  auto it = r.class_ids.find(name);
  if (it != r.class_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(r.class_names.size());
  r.class_names.emplace_back(name);
  r.class_ids.emplace(name, id);
  return id;
}

void note_lock_attempt(std::uint32_t cls, const void* instance, bool nested) {
  if (t_held.empty()) return;
  for (const Held& h : t_held)
    if (h.instance == instance) return;  // recursive relock: no new edges
  Registry& r = reg();
  std::lock_guard lock(r.mu);
  for (const Held& h : t_held) {
    if (h.cls == cls) {
      if (nested) continue;  // address-ordered MultiGuard acquisition
      record_violation_locked(
          r, "lock-order cycle: " + r.class_names[cls] + " -> " +
                 r.class_names[cls] +
                 " (same-class nesting on distinct instances; use MultiGuard)");
      continue;
    }
    add_edge_locked(r, h.cls, cls);
  }
}

void note_lock_acquired(std::uint32_t cls, const void* instance,
                        const char* name) {
  for (Held& h : t_held) {
    if (h.instance == instance) {
      ++h.depth;
      return;
    }
  }
  t_held.push_back({cls, instance, name, 1});
}

void note_try_acquired(std::uint32_t cls, const void* instance,
                       const char* name) {
  // try_lock never blocks, so it cannot deadlock: record the held-set
  // entry (later acquisitions under it still get edges) but no ordering
  // edge for the try itself. This is what keeps std::scoped_lock's
  // lock/try_lock rotation free of false cycles.
  note_lock_acquired(cls, instance, name);
}

void note_unlock(const void* instance) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->instance != instance) continue;
    if (--it->depth == 0) t_held.erase(std::next(it).base());
    return;
  }
}

void check_blocking(const char* what, const void* held_ok) {
  std::string held;
  for (const Held& h : t_held) {
    if (h.instance == held_ok) continue;
    if (!held.empty()) held += ", ";
    held += h.name;
  }
  if (held.empty()) return;
  Registry& r = reg();
  std::lock_guard lock(r.mu);
  record_violation_locked(
      r, std::string("blocking call ") + what + " while holding " + held);
}

void note_cv_wait_begin(const void* instance, const char* name) {
  check_blocking((std::string("wait on ") + name).c_str(), instance);
  // The wait releases the mutex: drop it from the held set so other locks
  // taken by the notifying thread are not misattributed to this one.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->instance == instance) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void note_cv_wait_end(std::uint32_t cls, const void* instance,
                      const char* name) {
  t_held.push_back({cls, instance, name, 1});
}

std::vector<std::string> report() {
  Registry& r = reg();
  std::lock_guard lock(r.mu);
  return r.violations;
}

std::size_t violation_count() {
  Registry& r = reg();
  std::lock_guard lock(r.mu);
  return r.violations.size();
}

void clear() {
  Registry& r = reg();
  std::lock_guard lock(r.mu);
  r.edges.clear();
  r.violations.clear();
  r.violation_keys.clear();
}

void set_abort_on_violation(bool on) {
  Registry& r = reg();
  std::lock_guard lock(r.mu);
  r.abort_on_violation = on;
  r.abort_env_read = true;  // explicit setting overrides the environment
}

}  // namespace impress::common::lockdep

#endif  // IMPRESS_LOCKDEP_COMPILED_IN
