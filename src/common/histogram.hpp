// Fixed-bin histogram with ASCII rendering, used by the analytics layer
// (e.g. the task wait-time distribution under Fig 5), plus an HDR-style
// log-linear histogram for high-resolution latency quantiles.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace impress::common {

class Histogram {
 public:
  /// `bins` equal-width bins over [lo, hi); samples outside the range
  /// land in the under/overflow counters. Requires lo < hi, bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

  /// Horizontal bar rendering; the fullest bin spans `width` characters.
  /// `unit` labels the x-axis values (e.g. "s", "h").
  [[nodiscard]] std::string render(std::size_t width = 40,
                                   const std::string& unit = "") const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Fixed-memory high-dynamic-range histogram with log-linear buckets
/// (HdrHistogram-style): the full 64-bit value range at a bounded
/// relative error, so a latency recorder keyed in nanoseconds yields a
/// meaningful p999 at microsecond granularity without pre-declaring a
/// range.
///
/// Layout: values below 2^p land in 2^p width-1 linear buckets; above
/// that, each power-of-two segment is split into 2^p log-linear
/// sub-buckets, giving a relative quantile error bounded by 2^-p.
/// Memory is fixed at construction: (65 - p) * 2^p counters.
///
/// Not internally synchronized — one writer, or external locking (the
/// service guards its latency recorders with a leaf mutex).
class HdrHistogram {
 public:
  /// `precision_bits` = p above. p=7 (the default) bounds the relative
  /// quantile error by 1/128 (< 1%) in ~58 KB.
  explicit HdrHistogram(unsigned precision_bits = 7);

  void record(std::uint64_t value) noexcept { record_n(value, 1); }
  void record_n(std::uint64_t value, std::uint64_t n) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return total_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }

  /// Value at quantile q in [0, 1]: an upper bound for the exact sorted
  /// sample sorted[ceil(q*n) - 1], within a 2^-p relative error (clamped
  /// to the observed max). Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  /// Add another histogram's counts (same precision_bits required).
  void merge(const HdrHistogram& other);

  void reset() noexcept;

  [[nodiscard]] unsigned precision_bits() const noexcept { return p_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }

 private:
  [[nodiscard]] std::size_t index_of(std::uint64_t v) const noexcept;
  /// Largest value mapping to bucket `idx` (the quantile representative).
  [[nodiscard]] std::uint64_t highest_of(std::size_t idx) const noexcept;

  unsigned p_;
  std::vector<std::uint64_t> counts_;  // fixed size after construction
  std::uint64_t total_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace impress::common
