// Fixed-bin histogram with ASCII rendering, used by the analytics layer
// (e.g. the task wait-time distribution under Fig 5).

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace impress::common {

class Histogram {
 public:
  /// `bins` equal-width bins over [lo, hi); samples outside the range
  /// land in the under/overflow counters. Requires lo < hi, bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

  /// Horizontal bar rendering; the fullest bin spans `width` characters.
  /// `unit` labels the x-axis values (e.g. "s", "h").
  [[nodiscard]] std::string render(std::size_t width = 40,
                                   const std::string& unit = "") const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace impress::common
