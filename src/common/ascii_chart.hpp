// Terminal chart rendering for the figure-reproduction benches.
//
// Fig 2/3 are grouped bar charts (median metric per iteration, with
// half-standard-deviation error bars); Fig 4/5 are utilization-vs-time
// strips. Both render to plain ASCII so the bench binaries reproduce the
// figures directly in a terminal or log file.

#pragma once

#include <string>
#include <vector>

namespace impress::common {

/// Grouped horizontal bar chart with optional +/- error annotation.
class BarChart {
 public:
  struct Bar {
    std::string series;  ///< e.g. "CONT-V" / "IM-RP"
    double value = 0.0;
    double error = 0.0;  ///< rendered as "+/- e"; 0 hides the annotation
  };
  struct Group {
    std::string label;  ///< e.g. "iter 1"
    std::vector<Bar> bars;
  };

  BarChart(std::string title, std::string unit)
      : title_(std::move(title)), unit_(std::move(unit)) {}

  void add_group(Group g) { groups_.push_back(std::move(g)); }

  /// Render with bars scaled so the largest |value| spans `width` cells.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  std::string title_;
  std::string unit_;
  std::vector<Group> groups_;
};

/// Utilization strip: a sequence of per-bin values in [0, 1] drawn as an
/// intensity ramp, one row per resource class (e.g. CPU / GPU), with a
/// time axis in hours underneath.
class TimelineChart {
 public:
  struct Row {
    std::string label;           ///< e.g. "CPU (28 cores)"
    std::vector<double> values;  ///< one utilization sample per bin, [0,1]
  };

  TimelineChart(std::string title, double total_time_hours)
      : title_(std::move(title)), total_hours_(total_time_hours) {}

  void add_row(Row r) { rows_.push_back(std::move(r)); }

  [[nodiscard]] std::string render() const;

 private:
  std::string title_;
  double total_hours_;
  std::vector<Row> rows_;
};

}  // namespace impress::common
