// Fixed-size worker pool.
//
// Backs the *threaded* executor (real concurrency for tests/examples) and
// a handful of data-parallel helpers. Task submission returns a
// std::future so callers can join on individual results; `wait_idle`
// provides a barrier over everything submitted so far.

#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/lockdep.hpp"

namespace impress::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1; 0 selects hardware concurrency).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result. Throws
  /// std::runtime_error if the pool is already shut down.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      ++pending_;
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until every task submitted so far has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Tasks submitted but not yet finished.
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  mutable TrackedMutex mutex_{"ThreadPool::mutex_"};
  CondVar cv_;
  CondVar idle_cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t pending_ = 0;
  bool stopping_ = false;
};

/// Run fn(i) for i in [0, n) across the pool, blocking until all complete.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace impress::common
