// Small string helpers shared across modules (FASTA/PDB parsing, report
// rendering). Kept deliberately minimal: no locale dependence, ASCII only.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace impress::common {

/// Split on a single delimiter; adjacent delimiters yield empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of whitespace; never yields empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

[[nodiscard]] std::string to_upper(std::string_view s);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Left/right pad to a width with spaces (no truncation).
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// Repeat a single character n times.
[[nodiscard]] std::string repeat(char c, std::size_t n);

}  // namespace impress::common
