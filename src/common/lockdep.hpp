// Runtime lock-order validation ("lockdep") for the concurrency layer.
//
// A TrackedMutex is a drop-in std::mutex replacement that, when the build
// carries IMPRESS_LOCKDEP=ON, records which lock classes each thread holds
// and folds every nested acquisition into a global lock-order graph. A
// cycle in that graph is a *potential* ABBA deadlock: it is reported the
// first time the inconsistent ordering is exercised, even if the unlucky
// interleaving that would actually deadlock never fires. Held-lock
// assertions additionally flag blocking calls (channel sends/receives,
// condition waits, pool joins) made while any tracked mutex is held.
//
// Locks are tracked per *class* (the name string passed to the
// constructor, e.g. "Channel::mutex_"), not per instance — mirroring the
// Linux kernel's lockdep, so one observed ordering covers every instance
// pair of the same two classes.
//
// When IMPRESS_LOCKDEP is OFF (the default), TrackedMutex is an inline
// forwarding wrapper around std::mutex with no extra members and the
// report/clear entry points collapse to constants: the gate mirrors the
// IMPRESS_OBS pattern and costs nothing in normal builds.
//
// ---------------------------------------------------------------------------
// Canonical mutex acquisition order (hold an earlier lock while taking a
// later one, never the reverse):
//
//   TaskManager::mutex_
//     -> Pilot::mutex_                  (route() peeks queue lengths)
//          -> ThreadExecutor::mutex_    (place() launches under pilot lock)
//          -> ThreadPool::mutex_        (launch submits to the pool)
//          -> ResourcePool::mutex_      (scheduler claims/releases slots)
//     -> leaves (never hold another tracked lock while holding one of
//        these, and they call out to nothing):
//          UidGenerator::mutex_, UtilizationRecorder::mutex_,
//          Channel::mutex_, Session::timer_mutex_, TaskGraph::mutex_
//
// Deliberate exceptions encoded in the runtime: Pilot::cancel()/fail()
// drop Pilot::mutex_ before calling back into the executor or the
// TaskManager (requeue/terminal handlers), and TaskManager::finalize()
// invokes user callbacks outside mutex_ — both prevent the reverse edges
// that would close a cycle. hpc::Profiler's internal buffer locks are an
// untracked leaf (hot path; they never take another lock).
// ---------------------------------------------------------------------------

#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#ifndef IMPRESS_LOCKDEP_COMPILED_IN
#define IMPRESS_LOCKDEP_COMPILED_IN 0
#endif

namespace impress::common::lockdep {

/// True when the build carries lockdep instrumentation.
inline constexpr bool kCompiledIn = IMPRESS_LOCKDEP_COMPILED_IN != 0;

#if IMPRESS_LOCKDEP_COMPILED_IN

/// Intern a lock class by name; all instances constructed with the same
/// name share one node in the lock-order graph.
std::uint32_t register_class(const char* name);

// Instrumentation hooks called by TrackedMutex / CondVar. `nested` marks
// an address-ordered acquisition (MultiGuard): cross-class edges are
// still recorded but same-class nesting is allowed.
void note_lock_attempt(std::uint32_t cls, const void* instance, bool nested);
void note_lock_acquired(std::uint32_t cls, const void* instance,
                        const char* name);
void note_try_acquired(std::uint32_t cls, const void* instance,
                       const char* name);
void note_unlock(const void* instance);
void note_cv_wait_begin(const void* instance, const char* name);
void note_cv_wait_end(std::uint32_t cls, const void* instance,
                      const char* name);

/// Held-lock assertion: records a violation if the calling thread holds
/// any tracked mutex other than `held_ok` when entering the blocking call
/// described by `what`.
void check_blocking(const char* what, const void* held_ok = nullptr);

/// Violations recorded so far (deduplicated, insertion order).
[[nodiscard]] std::vector<std::string> report();
[[nodiscard]] std::size_t violation_count();

/// Reset violations and the lock-order graph (test isolation). Lock
/// classes stay registered — live mutexes keep their ids.
void clear();

/// Abort the process on the first violation (also enabled by setting the
/// IMPRESS_LOCKDEP_ABORT environment variable to anything but "0"/empty).
/// The lockdep ctest preset runs with it on so stress suites fail loudly.
void set_abort_on_violation(bool on);

#else  // !IMPRESS_LOCKDEP_COMPILED_IN

inline void check_blocking(const char*, const void* = nullptr) noexcept {}
[[nodiscard]] inline std::vector<std::string> report() { return {}; }
[[nodiscard]] inline constexpr std::size_t violation_count() noexcept {
  return 0;
}
inline void clear() noexcept {}
inline void set_abort_on_violation(bool) noexcept {}

#endif  // IMPRESS_LOCKDEP_COMPILED_IN

}  // namespace impress::common::lockdep

namespace impress::common {

#if IMPRESS_LOCKDEP_COMPILED_IN

/// std::mutex drop-in that feeds the lock-order graph. Satisfies
/// Lockable, so std::lock_guard / std::unique_lock / std::scoped_lock all
/// work unchanged (scoped_lock's try-lock rotation records held sets but
/// no ordering edges, so its deadlock-avoidance never trips a false
/// cycle).
class TrackedMutex {
 public:
  explicit TrackedMutex(const char* name)
      : name_(name), class_(lockdep::register_class(name)) {}
  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock() {
    lockdep::note_lock_attempt(class_, this, /*nested=*/false);
    m_.lock();
    lockdep::note_lock_acquired(class_, this, name_);
  }
  [[nodiscard]] bool try_lock() {
    if (!m_.try_lock()) return false;
    lockdep::note_try_acquired(class_, this, name_);
    return true;
  }
  void unlock() {
    lockdep::note_unlock(this);
    m_.unlock();
  }

  /// Underlying std::mutex, for CondVar's adopt/release dance.
  [[nodiscard]] std::mutex& native() noexcept { return m_; }
  [[nodiscard]] const char* lockdep_name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t lockdep_class() const noexcept { return class_; }

 private:
  friend class MultiGuard;
  /// MultiGuard's address-ordered acquisition: same-class nesting allowed.
  void lock_nested() {
    lockdep::note_lock_attempt(class_, this, /*nested=*/true);
    m_.lock();
    lockdep::note_lock_acquired(class_, this, name_);
  }

  std::mutex m_;
  const char* name_;
  std::uint32_t class_;
};

/// std::recursive_mutex drop-in; relocking an instance the thread already
/// holds records no edges (and no violation).
class TrackedRecursiveMutex {
 public:
  explicit TrackedRecursiveMutex(const char* name)
      : name_(name), class_(lockdep::register_class(name)) {}
  TrackedRecursiveMutex(const TrackedRecursiveMutex&) = delete;
  TrackedRecursiveMutex& operator=(const TrackedRecursiveMutex&) = delete;

  void lock() {
    lockdep::note_lock_attempt(class_, this, /*nested=*/false);
    m_.lock();
    lockdep::note_lock_acquired(class_, this, name_);
  }
  [[nodiscard]] bool try_lock() {
    if (!m_.try_lock()) return false;
    lockdep::note_try_acquired(class_, this, name_);
    return true;
  }
  void unlock() {
    lockdep::note_unlock(this);
    m_.unlock();
  }

 private:
  std::recursive_mutex m_;
  const char* name_;
  std::uint32_t class_;
};

#else  // !IMPRESS_LOCKDEP_COMPILED_IN

class TrackedMutex {
 public:
  explicit TrackedMutex(const char*) noexcept {}
  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock() { m_.lock(); }
  [[nodiscard]] bool try_lock() { return m_.try_lock(); }
  void unlock() { m_.unlock(); }
  [[nodiscard]] std::mutex& native() noexcept { return m_; }

 private:
  friend class MultiGuard;
  void lock_nested() { m_.lock(); }

  std::mutex m_;
};

class TrackedRecursiveMutex {
 public:
  explicit TrackedRecursiveMutex(const char*) noexcept {}
  TrackedRecursiveMutex(const TrackedRecursiveMutex&) = delete;
  TrackedRecursiveMutex& operator=(const TrackedRecursiveMutex&) = delete;

  void lock() { m_.lock(); }
  [[nodiscard]] bool try_lock() { return m_.try_lock(); }
  void unlock() { m_.unlock(); }

 private:
  std::recursive_mutex m_;
};

#endif  // IMPRESS_LOCKDEP_COMPILED_IN

/// Condition variable over TrackedMutex. Predicate-taking waits only: a
/// naked wait() without a predicate is exactly the lost-wakeup shape the
/// linter bans, so the API does not offer one. Waiting releases the
/// mutex, so holding *it* is fine; holding any other tracked mutex when
/// entering a wait is reported as blocking-under-lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Pred>
  void wait(std::unique_lock<TrackedMutex>& lk, Pred pred) {
    WaitGuard g(lk);
    cv_.wait(g.inner(), std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(std::unique_lock<TrackedMutex>& lk,
                std::chrono::duration<Rep, Period> timeout, Pred pred) {
    WaitGuard g(lk);
    return cv_.wait_for(g.inner(), timeout, std::move(pred));
  }

 private:
  // std::condition_variable insists on unique_lock<std::mutex>, so the
  // wait temporarily adopts the TrackedMutex's native handle and releases
  // it again afterwards (the outer unique_lock<TrackedMutex> stays the
  // owner throughout; lockdep's held set drops the mutex for the duration
  // of the wait, matching what the thread actually holds while asleep).
  class WaitGuard {
   public:
    explicit WaitGuard(std::unique_lock<TrackedMutex>& lk)
        : tm_(lk.mutex()), inner_(tm_->native(), std::adopt_lock) {
#if IMPRESS_LOCKDEP_COMPILED_IN
      lockdep::note_cv_wait_begin(tm_, tm_->lockdep_name());
#endif
    }
    ~WaitGuard() {
      inner_.release();
#if IMPRESS_LOCKDEP_COMPILED_IN
      lockdep::note_cv_wait_end(tm_->lockdep_class(), tm_,
                                tm_->lockdep_name());
#endif
    }
    WaitGuard(const WaitGuard&) = delete;
    WaitGuard& operator=(const WaitGuard&) = delete;
    [[nodiscard]] std::unique_lock<std::mutex>& inner() noexcept {
      return inner_;
    }

   private:
    TrackedMutex* tm_;
    std::unique_lock<std::mutex> inner_;
  };

  std::condition_variable cv_;
};

/// scoped_lock-style multi-acquire over TrackedMutexes: locks in instance
/// address order — a process-wide total order, so two MultiGuards over
/// the same set can never deadlock each other — and unlocks in reverse.
/// Same-class pairs (e.g. rebalancing between two Channels) are the
/// intended use; lockdep treats the ordered acquisition as nested.
class MultiGuard {
 public:
  template <typename... Ms>
  explicit MultiGuard(Ms&... ms) : n_(sizeof...(Ms)), locks_{&ms...} {
    static_assert(sizeof...(Ms) >= 2, "MultiGuard wants two or more locks");
    static_assert(sizeof...(Ms) <= kMaxLocks, "raise kMaxLocks");
    std::sort(locks_.begin(), locks_.begin() + static_cast<std::ptrdiff_t>(n_));
    locks_[0]->lock();
    for (std::size_t i = 1; i < n_; ++i) locks_[i]->lock_nested();
  }
  ~MultiGuard() {
    for (std::size_t i = n_; i > 0; --i) locks_[i - 1]->unlock();
  }
  MultiGuard(const MultiGuard&) = delete;
  MultiGuard& operator=(const MultiGuard&) = delete;

 private:
  static constexpr std::size_t kMaxLocks = 4;
  std::size_t n_;
  std::array<TrackedMutex*, kMaxLocks> locks_;
};

}  // namespace impress::common
