// Pairwise (binary-tree) summation with O(log n) incremental updates.
//
// Floating-point addition is not associative, so an incrementally
// maintained running sum (`sum - old + new`) drifts away from a
// recomputed one by rounding. The fix used here: fix the *association
// order* to a complete binary tree. Both the from-scratch reduction
// (tree_reduce) and the incrementally updated tree (SumTree) perform the
// exact same additions in the exact same order, so updating one leaf and
// recomputing the root along its path yields a result bit-identical to a
// full rebuild. This is what lets FitnessLandscape::MutationScorer score
// point mutations in O(log L) while pinning bit-identical fitness values
// against the naive full evaluation.
//
// Leaves beyond the stored count are zero padding; x + 0.0 == x for the
// non-negative finite values this project sums, and padded subtrees are
// all-zero in both code paths, so padding never perturbs the root.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace impress::common {

/// Smallest power of two >= n (n == 0 yields 1).
[[nodiscard]] constexpr std::size_t ceil_pow2(std::size_t n) noexcept {
  std::size_t w = 1;
  while (w < n) w <<= 1;
  return w;
}

namespace detail {
template <typename LeafFn>
double tree_reduce_node(const LeafFn& leaf, std::size_t n, std::size_t begin,
                        std::size_t width) {
  if (begin >= n) return 0.0;  // fully padded subtree
  if (width == 1) return leaf(begin);
  const std::size_t half = width / 2;
  return tree_reduce_node(leaf, n, begin, half) +
         tree_reduce_node(leaf, n, begin + half, half);
}
}  // namespace detail

/// Sum leaf(0) .. leaf(n-1) in canonical binary-tree order. Bit-identical
/// to SumTree::total() over the same leaf values.
template <typename LeafFn>
[[nodiscard]] double tree_reduce(LeafFn&& leaf, std::size_t n) {
  if (n == 0) return 0.0;
  return detail::tree_reduce_node(leaf, n, 0, ceil_pow2(n));
}

/// A complete binary tree of partial sums over a fixed number of leaves.
/// total() is bit-identical to tree_reduce over the current leaf values;
/// update() and total_with() recompute only the O(log n) path to the root.
class SumTree {
 public:
  SumTree() = default;
  explicit SumTree(std::span<const double> leaves) { assign(leaves); }

  void assign(std::span<const double> leaves) {
    n_ = leaves.size();
    width_ = n_ == 0 ? 0 : ceil_pow2(n_);
    tree_.assign(2 * width_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) tree_[width_ + i] = leaves[i];
    for (std::size_t i = width_; i-- > 1;)
      tree_[i] = tree_[2 * i] + tree_[2 * i + 1];
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double leaf(std::size_t i) const { return tree_[width_ + i]; }
  [[nodiscard]] double total() const noexcept {
    return width_ == 0 ? 0.0 : tree_[1];
  }

  /// Set leaf i and recompute its root path. Bit-identical to a rebuild.
  void update(std::size_t i, double value) {
    std::size_t idx = width_ + i;
    tree_[idx] = value;
    for (idx /= 2; idx >= 1; idx /= 2) {
      tree_[idx] = tree_[2 * idx] + tree_[2 * idx + 1];
      if (idx == 1) break;
    }
  }

  /// Root value if leaf i were set to `value`, without mutating the tree.
  /// Bit-identical to assign-then-total on the hypothetical leaves.
  [[nodiscard]] double total_with(std::size_t i, double value) const {
    if (width_ == 0) return 0.0;
    std::size_t idx = width_ + i;
    double acc = value;
    while (idx > 1) {
      const std::size_t sibling = idx ^ 1;
      acc = (idx & 1) == 0 ? acc + tree_[sibling] : tree_[sibling] + acc;
      idx /= 2;
    }
    return acc;
  }

 private:
  std::size_t n_ = 0;
  std::size_t width_ = 0;       ///< leaf capacity, power of two (0 when empty)
  std::vector<double> tree_;    ///< 1-based heap layout; leaves at [width_, 2*width_)
};

}  // namespace impress::common
