#include "common/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stats.hpp"
#include "common/string_util.hpp"

namespace impress::common {

std::string BarChart::render(std::size_t width) const {
  double max_abs = 0.0;
  std::size_t label_w = 0;
  for (const auto& g : groups_) {
    label_w = std::max(label_w, g.label.size());
    for (const auto& b : g.bars) {
      max_abs = std::max(max_abs, std::fabs(b.value));
      label_w = std::max(label_w, b.series.size() + 2);
    }
  }
  if (max_abs <= 0.0) max_abs = 1.0;

  std::string out = "## " + title_ + (unit_.empty() ? "" : " [" + unit_ + "]") + "\n";
  for (const auto& g : groups_) {
    out += g.label + "\n";
    for (const auto& b : g.bars) {
      const auto cells = static_cast<std::size_t>(
          std::llround(std::fabs(b.value) / max_abs * static_cast<double>(width)));
      out += "  " + pad_right(b.series, label_w) + " |";
      out += repeat('#', cells);
      out += repeat(' ', width - std::min(cells, width));
      out += "| " + format_fixed(b.value, 2);
      if (b.error > 0.0) out += " +/- " + format_fixed(b.error, 2);
      out += "\n";
    }
  }
  return out;
}

std::string TimelineChart::render() const {
  // Ten-step intensity ramp from idle to saturated.
  static constexpr const char kRamp[] = " .:-=+*#%@";
  std::size_t label_w = 0;
  for (const auto& r : rows_) label_w = std::max(label_w, r.label.size());

  std::string out = "## " + title_ + "\n";
  std::size_t bins = 0;
  for (const auto& r : rows_) {
    bins = std::max(bins, r.values.size());
    out += pad_right(r.label, label_w) + " |";
    for (double v : r.values) {
      const double clamped = std::clamp(v, 0.0, 1.0);
      const auto idx = static_cast<std::size_t>(
          std::min(9.0, std::floor(clamped * 10.0)));
      out += kRamp[idx];
    }
    // Row average, matching the "~18.3 %" style annotations in the paper.
    out += "| avg " +
           format_fixed(mean({r.values.data(), r.values.size()}) * 100.0, 1) +
           "%\n";
  }
  // Time axis: start, middle, end in hours.
  out += repeat(' ', label_w) + " |";
  std::string axis(bins, '-');
  out += axis + "|\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "%*s 0h%*s%.1fh\n", static_cast<int>(label_w),
                "", static_cast<int>(bins > 6 ? bins - 5 : 1), "",
                total_hours_);
  out += buf;
  return out;
}

}  // namespace impress::common
