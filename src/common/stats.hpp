// Descriptive statistics used throughout the evaluation harness.
//
// The paper reports medians with half-standard-deviation error bars
// (Figs 2–3) and net-delta percentages (Table I); these helpers compute
// exactly those quantities.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace impress::common {

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Median (average of the two central order statistics for even n);
/// 0 for empty input. Does not modify the input.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]; 0 for empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Relative change (b - a) / |a| in percent; 0 when a == 0.
[[nodiscard]] double net_delta_pct(double a, double b) noexcept;

/// Pearson correlation coefficient; 0 when either side is constant or
/// the spans differ in length.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys) noexcept;

/// Bootstrap confidence interval for the median.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile-bootstrap CI of the median with `resamples` draws using the
/// given seed. Returns {median, median} for samples of size < 2.
[[nodiscard]] Interval bootstrap_median_ci(std::span<const double> xs,
                                           double confidence = 0.95,
                                           std::size_t resamples = 2000,
                                           std::uint64_t seed = 42);

/// Fixed-width "12.3" style formatting used by the report tables.
[[nodiscard]] std::string format_fixed(double v, int decimals);

}  // namespace impress::common
