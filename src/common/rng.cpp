#include "common/rng.hpp"

#include <cmath>
#include <cstring>
#include <numbers>

namespace impress::common {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t stable_hash(std::string_view s) noexcept {
  // FNV-1a over the bytes, then scrambled so short strings still produce
  // well-distributed seeds.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1u) | 1u) {
  (*this)();
  state_ += splitmix64(seed);
  (*this)();
}

Rng Rng::fork(std::string_view tag) const noexcept {
  return fork(stable_hash(tag));
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  // Seed the child from this generator's *identity* (state + stream),
  // not from its output, so forking is a const operation and repeated
  // forks with the same tag agree.
  const std::uint64_t seed = splitmix64(state_ ^ splitmix64(tag));
  const std::uint64_t stream = splitmix64(inc_ + tag);
  return Rng(seed, stream);
}

std::uint64_t Rng::fingerprint() const noexcept {
  std::uint64_t h = splitmix64(state_);
  h = splitmix64(h ^ inc_);
  if (has_cached_normal_) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof cached_normal_);
    std::memcpy(&bits, &cached_normal_, sizeof bits);
    h = splitmix64(h ^ bits ^ 0x5bf03635aca0f3b5ULL);
  }
  return h;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() noexcept {
  // 53-bit mantissa from two draws for full double resolution.
  const std::uint64_t hi = (*this)();
  const std::uint64_t lo = (*this)();
  const std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint32_t Rng::below(std::uint32_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t m = static_cast<std::uint64_t>((*this)()) * n;
  auto l = static_cast<std::uint32_t>(m);
  if (l < n) {
    const std::uint32_t t = (0u - n) % n;
    while (l < t) {
      m = static_cast<std::uint64_t>((*this)()) * n;
      l = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

int Rng::range(int lo, int hi) noexcept {
  return lo + static_cast<int>(below(static_cast<std::uint32_t>(hi - lo + 1)));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero to avoid log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

double Rng::lognormal_mean(double mean, double sigma) noexcept {
  // Choose mu so that E[exp(N(mu, sigma^2))] == mean.
  if (mean <= 0.0) return 0.0;
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return std::exp(mu + sigma * normal());
}

}  // namespace impress::common
