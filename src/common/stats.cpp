#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/rng.hpp"

namespace impress::common {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

namespace {

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

double percentile_sorted(const std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  if (v.size() == 1) return v.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

double median(std::span<const double> xs) {
  return percentile(xs, 50.0);
}

double percentile(std::span<const double> xs, double p) {
  return percentile_sorted(sorted_copy(xs), p);
}

double min_of(std::span<const double> xs) noexcept {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return xs.empty() ? 0.0 : m;
}

double max_of(std::span<const double> xs) noexcept {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return xs.empty() ? 0.0 : m;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  const auto v = sorted_copy(xs);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.median = percentile_sorted(v, 50.0);
  s.min = v.front();
  s.max = v.back();
  s.p25 = percentile_sorted(v, 25.0);
  s.p75 = percentile_sorted(v, 75.0);
  return s;
}

double net_delta_pct(double a, double b) noexcept {
  if (a == 0.0) return 0.0;
  return (b - a) / std::fabs(a) * 100.0;
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Interval bootstrap_median_ci(std::span<const double> xs, double confidence,
                             std::size_t resamples, std::uint64_t seed) {
  if (xs.size() < 2) {
    const double m = median(xs);
    return {m, m};
  }
  Rng rng(seed);
  std::vector<double> medians;
  medians.reserve(resamples);
  std::vector<double> sample(xs.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& s : sample)
      s = xs[rng.below(static_cast<std::uint32_t>(xs.size()))];
    medians.push_back(median(sample));
  }
  const double alpha = (1.0 - confidence) / 2.0 * 100.0;
  return {percentile(medians, alpha), percentile(medians, 100.0 - alpha)};
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace impress::common
