#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace impress::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%-5.*s] %-12.*s %.*s\n",
               static_cast<int>(to_string(level).size()), to_string(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace impress::common
