// Minimal JSON value type, serializer and parser.
//
// Backs the session-dump feature (core/session_dump.hpp): campaign
// results are archived as JSON documents that external tooling — or a
// later process — can read back. Deliberately small: UTF-8 passthrough,
// doubles for all numbers, no comments, no trailing commas.

#pragma once

#include <cstddef>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace impress::common {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}                       // null
  Json(std::nullptr_t) : value_(nullptr) {}         // NOLINT(runtime/explicit)
  Json(bool b) : value_(b) {}                       // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}                     // NOLINT(runtime/explicit)
  Json(int i) : value_(static_cast<double>(i)) {}   // NOLINT(runtime/explicit)
  Json(std::size_t n) : value_(static_cast<double>(n)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}   // NOLINT(runtime/explicit)
  Json(std::string s) : value_(std::move(s)) {}     // NOLINT(runtime/explicit)
  Json(Array a) : value_(std::move(a)) {}           // NOLINT(runtime/explicit)
  Json(Object o) : value_(std::move(o)) {}          // NOLINT(runtime/explicit)

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }

  /// Typed accessors; throw std::bad_variant_access on mismatch.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(value_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(value_);
  }
  [[nodiscard]] Object& as_object() { return std::get<Object>(value_); }

  /// Object member access; throws std::out_of_range when missing.
  [[nodiscard]] const Json& at(const std::string& key) const {
    return as_object().at(key);
  }
  /// Array element access.
  [[nodiscard]] const Json& at(std::size_t i) const { return as_array().at(i); }
  [[nodiscard]] bool contains(const std::string& key) const {
    return is_object() && as_object().contains(key);
  }
  [[nodiscard]] std::size_t size() const {
    if (is_array()) return as_array().size();
    if (is_object()) return as_object().size();
    return 0;
  }

  /// Serialize. `indent` > 0 pretty-prints with that many spaces.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a JSON document; throws std::invalid_argument with a byte
  /// offset on malformed input (including trailing garbage).
  [[nodiscard]] static Json parse(std::string_view text);

  bool operator==(const Json&) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace impress::common
