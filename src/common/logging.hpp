// Minimal leveled logger.
//
// The runtime's progress output (pilot state changes, scheduler decisions)
// goes through this so examples can run verbosely while tests and
// benchmarks stay quiet. Thread-safe: concurrent log lines never interleave.

#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace impress::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; defaults to kWarn so library consumers are
/// quiet unless they opt in.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Emit one line at the given level (no trailing newline needed).
void log(LogLevel level, std::string_view component, std::string_view message);

namespace detail {
/// RAII line builder backing the IMPRESS_LOG macro: streams into a buffer,
/// flushes one atomic line on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace impress::common

/// Usage: IMPRESS_LOG(kInfo, "scheduler") << "placed task " << uid;
#define IMPRESS_LOG(level, component)                                       \
  if (::impress::common::LogLevel::level < ::impress::common::log_level()) \
    ;                                                                       \
  else                                                                      \
    ::impress::common::detail::LogLine(                                     \
        ::impress::common::LogLevel::level, (component))
