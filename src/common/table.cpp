#include "common/table.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace impress::common {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {}

void Table::set_align(std::size_t col, Align a) {
  if (col < aligns_.size()) aligns_[col] = a;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    headers_.resize(cells.size());
    aligns_.resize(cells.size(), Align::kLeft);
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : headers_[c];
      line += ' ';
      line += aligns_[c] == Align::kRight ? pad_left(cell, widths[c])
                                          : pad_right(cell, widths[c]);
      line += " |";
    }
    return line + "\n";
  };

  std::string out = render_row(headers_);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += aligns_[c] == Align::kRight
               ? repeat('-', widths[c] + 1) + ":|"
               : repeat('-', widths[c] + 2) + "|";
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace impress::common
