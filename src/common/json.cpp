#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace impress::common {

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

class Parser {
 public:
  /// Maximum container nesting. parse_value recurses per level, so without
  /// a cap a short hostile input ("[[[[...") overflows the stack; 512
  /// matches common parsers and is far beyond any document we emit.
  static constexpr int kMaxDepth = 512;

  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() const {
    if (pos_ >= text_.size())
      throw std::invalid_argument("json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': {
        if (++depth_ > kMaxDepth) fail("nesting too deep");
        Json v = parse_object();
        --depth_;
        return v;
      }
      case '[': {
        if (++depth_ > kMaxDepth) fail("nesting too deep");
        Json v = parse_array();
        --depth_;
        return v;
      }
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u digit");
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs
            // are stored as-is, which round-trips our own output).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range && ptr == last && first != last) {
      // from_chars reports ERANGE for subnormals (strtod-backed libstdc++
      // does, and glibc strtod sets ERANGE on any denormal result), which
      // would make us reject numbers our own dump() emits. Re-parse with
      // strtod and accept any finite result; true overflow stays an error.
      const std::string buf(first, last);
      char* end = nullptr;
      const double v = std::strtod(buf.c_str(), &end);
      if (end == buf.c_str() + buf.size() && std::isfinite(v))
        return Json(v);
      pos_ = start;
      fail("number out of range");
    }
    if (ec != std::errc{} || ptr != last || first == last) {
      pos_ = start;
      fail("bad number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_impl(const Json& v, std::string& out, int indent, int depth);

void dump_container_sep(std::string& out, int indent, int depth) {
  if (indent > 0) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  }
}

void dump_impl(const Json& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    const auto& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      dump_container_sep(out, indent, depth + 1);
      dump_impl(arr[i], out, indent, depth + 1);
    }
    dump_container_sep(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, val] : obj) {
      if (!first) out += ',';
      first = false;
      dump_container_sep(out, indent, depth + 1);
      dump_string(key, out);
      out += indent > 0 ? ": " : ":";
      dump_impl(val, out, indent, depth + 1);
    }
    dump_container_sep(out, indent, depth);
    out += '}';
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace impress::common
