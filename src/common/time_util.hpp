// Time formatting helpers. All simulated time in IMPRESS is kept in
// seconds (double); these convert to the human units used in reports.

#pragma once

#include <string>

namespace impress::common {

constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerMinute = 60.0;

[[nodiscard]] constexpr double hours_to_seconds(double h) noexcept {
  return h * kSecondsPerHour;
}
[[nodiscard]] constexpr double minutes_to_seconds(double m) noexcept {
  return m * kSecondsPerMinute;
}
[[nodiscard]] constexpr double seconds_to_hours(double s) noexcept {
  return s / kSecondsPerHour;
}

/// "27.7 h", "12.4 min" or "38.0 s" depending on magnitude.
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace impress::common
