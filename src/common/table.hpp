// Fixed-width table renderer for benchmark reports (Table I etc.).
//
// Produces GitHub-style pipe tables so bench output can be pasted straight
// into EXPERIMENTS.md next to the paper's numbers.

#pragma once

#include <string>
#include <vector>

namespace impress::common {

class Table {
 public:
  enum class Align { kLeft, kRight };

  /// Define the header row; each column defaults to left alignment.
  explicit Table(std::vector<std::string> headers);

  /// Set alignment for one column (0-based).
  void set_align(std::size_t col, Align a);

  /// Append a row; short rows are padded with empty cells, long rows
  /// extend the column count.
  void add_row(std::vector<std::string> cells);

  /// Render as a pipe table with aligned columns.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace impress::common
