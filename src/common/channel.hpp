// Bounded multi-producer / multi-consumer channel.
//
// The IMPRESS coordinator communicates with the runtime over exactly two
// channels, mirroring the paper's implementation section: one carries new
// pipeline instances toward the execution backend, the other carries
// completed-task notifications back to the decision-making loop. The same
// primitive backs the threaded executor's work queue.
//
// Semantics follow Go channels: send blocks when full, receive blocks when
// empty, close() wakes everyone and makes further receives drain-then-fail.

#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/lockdep.hpp"

namespace impress::common {

/// Outcome of a non-blocking receive. Distinguishes "nothing available
/// right now" (kEmpty — the channel is still open, a value may yet
/// arrive) from "closed and drained" (kClosed — no value will ever
/// arrive), matching blocking `receive`'s drain-then-fail contract.
enum class RecvStatus { kValue, kEmpty, kClosed };

template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking send. Returns false (and drops the value) if the channel is
  /// closed before space becomes available — including a close() that
  /// lands while the sender is blocked waiting on a full bounded channel.
  bool send(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || has_space_locked(); });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking send. Returns false if full or closed.
  [[nodiscard]] bool try_send(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || !has_space_locked()) return false;
      queue_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking receive. Returns nullopt once the channel is closed *and*
  /// drained.
  [[nodiscard]] std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Non-blocking receive, tri-state: kValue moves a value into `out`;
  /// kEmpty means the channel is open but has nothing buffered; kClosed
  /// means closed *and* drained (consistent with `receive` returning
  /// nullopt). Pending values in a closed channel still come out as
  /// kValue — close never loses data.
  [[nodiscard]] RecvStatus try_receive(T& out) {
    std::unique_lock lock(mutex_);
    if (queue_.empty()) return closed_ ? RecvStatus::kClosed : RecvStatus::kEmpty;
    out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return RecvStatus::kValue;
  }

  /// Non-blocking receive, optional form. nullopt conflates "empty right
  /// now" with "closed and drained"; loops that must terminate on close
  /// should use the tri-state overload (or blocking `receive`) instead.
  [[nodiscard]] std::optional<T> try_receive() {
    std::unique_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Receive with a deadline. Returns nullopt on timeout or closed+drained.
  /// A zero (or negative) timeout degenerates to a lock-and-check; a value
  /// already buffered in a closed channel is still returned.
  template <typename Rep, typename Period>
  [[nodiscard]] std::optional<T> receive_for(
      std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !queue_.empty(); }))
      return std::nullopt;
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Close the channel: senders fail fast, receivers drain then get
  /// nullopt. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Snapshot of the queue depth. Advisory only: by the time the caller
  /// acts on it another thread may have sent or received.
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  /// Advisory emptiness snapshot (see size()). Safe to use only where the
  /// caller is the sole consumer or external synchronization guarantees
  /// quiescence — e.g. the coordinator's campaign_done() check, which runs
  /// on the only thread that drains these channels.
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  [[nodiscard]] bool has_space_locked() const {
    return capacity_ == 0 || queue_.size() < capacity_;
  }

  // Mutex first: it guards every member below it. Tracked so lockdep
  // builds catch channel operations nested under other locks.
  mutable TrackedMutex mutex_{"Channel::mutex_"};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace impress::common
