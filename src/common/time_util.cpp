#include "common/time_util.hpp"

#include "common/stats.hpp"

namespace impress::common {

std::string format_duration(double seconds) {
  if (seconds >= kSecondsPerHour)
    return format_fixed(seconds / kSecondsPerHour, 1) + " h";
  if (seconds >= kSecondsPerMinute)
    return format_fixed(seconds / kSecondsPerMinute, 1) + " min";
  return format_fixed(seconds, 1) + " s";
}

}  // namespace impress::common
