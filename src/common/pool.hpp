// Slab/freelist object pools and an intrusive MPSC inbox — the
// allocation-free building blocks of steady-state request paths (the
// service submit path recycles its submission records through these, in
// the style of memec's chunk/packet pools).
//
// Contract: after a warm-up phase in which slabs are carved, acquire()/
// release() and push()/drain() never touch the heap. The counting-
// allocator regression test in tests/service/test_alloc_free.cpp pins
// this for the whole service hot path.

#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/lockdep.hpp"

namespace impress::common {

/// Objects allocated in fixed-size slabs and recycled through a freelist.
/// Thread-safe; the lock is a leaf (the critical section is a pointer
/// push/pop, and grow() only runs when the freelist is empty).
///
/// T must be default-constructible. Released objects are handed back
/// as-is — the next acquirer resets whatever fields it cares about —
/// which is what keeps the steady-state path free of destructor/
/// constructor churn.
template <typename T>
class SlabPool {
 public:
  struct Stats {
    std::size_t capacity = 0;    ///< objects carved so far
    std::size_t in_use = 0;      ///< acquired and not yet released
    std::size_t high_water = 0;  ///< max in_use observed
    std::size_t slabs = 0;
  };

  /// `slab_size` objects are carved per growth step. With `allow_growth`
  /// false the pool is fixed at whatever reserve() carved and acquire()
  /// returns nullptr on exhaustion (the caller's admission path treats
  /// that as capacity rejection).
  explicit SlabPool(std::size_t slab_size = 1024, bool allow_growth = true)
      : slab_size_(slab_size == 0 ? 1 : slab_size),
        allow_growth_(allow_growth) {}

  /// Pre-carve slabs until at least `n` objects exist (warm-up; the only
  /// place a fixed pool allocates).
  void reserve(std::size_t n) {
    std::lock_guard<TrackedMutex> lock(mutex_);
    while (capacity_ < n) grow();
  }

  /// Pop a recycled object, or carve a new slab when the freelist is dry
  /// (nullptr if the pool is fixed and exhausted).
  [[nodiscard]] T* acquire() {
    std::lock_guard<TrackedMutex> lock(mutex_);
    if (free_.empty()) {
      if (!allow_growth_) return nullptr;
      grow();
    }
    T* obj = free_.back();
    free_.pop_back();
    ++in_use_;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return obj;
  }

  /// Return an object to the freelist (must have come from acquire()).
  void release(T* obj) {
    std::lock_guard<TrackedMutex> lock(mutex_);
    free_.push_back(obj);
    --in_use_;
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard<TrackedMutex> lock(mutex_);
    return {capacity_, in_use_, high_water_, slabs_.size()};
  }

 private:
  // Requires mutex_. Reserves freelist headroom for the new capacity up
  // front so release() can never reallocate the freelist vector.
  void grow() {
    slabs_.push_back(std::make_unique<T[]>(slab_size_));
    capacity_ += slab_size_;
    free_.reserve(capacity_);
    T* slab = slabs_.back().get();
    for (std::size_t i = 0; i < slab_size_; ++i)
      free_.push_back(slab + (slab_size_ - 1 - i));
  }

  mutable TrackedMutex mutex_{"SlabPool::mutex_"};  // guards free_
  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<T*> free_;
  std::size_t slab_size_;
  std::size_t capacity_ = 0;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  bool allow_growth_;
};

/// Intrusive multi-producer/single-consumer inbox. Producers push
/// lock-free (an exchange onto a LIFO head); the single consumer drains
/// the whole batch at once and receives it in FIFO push order. No nodes,
/// no allocation — the pushed objects themselves carry the link via the
/// `Next` member pointer, which the inbox owns while the object is
/// enqueued.
template <typename T, T* T::* Next = &T::next>
class MpscInbox {
 public:
  void push(T* obj) noexcept {
    T* old = head_.load(std::memory_order_relaxed);
    do {
      obj->*Next = old;
    } while (!head_.compare_exchange_weak(old, obj, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Detach everything pushed so far and return it as a singly-linked
  /// FIFO list (walk via ->*Next; the last element links to nullptr).
  [[nodiscard]] T* drain() noexcept {
    T* lifo = head_.exchange(nullptr, std::memory_order_acquire);
    T* fifo = nullptr;
    while (lifo != nullptr) {
      T* next = lifo->*Next;
      lifo->*Next = fifo;
      fifo = lifo;
      lifo = next;
    }
    return fifo;
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<T*> head_{nullptr};
};

}  // namespace impress::common
