#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "common/string_util.hpp"

namespace impress::common {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>(
      (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  ++counts_[std::min(bin, counts_.size() - 1)];
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

std::string Histogram::render(std::size_t width, const std::string& unit) const {
  const std::size_t max_count =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::string label = "[" + format_fixed(bin_low(b), 1) + ", " +
                              format_fixed(bin_high(b), 1) + ")" +
                              (unit.empty() ? "" : " " + unit);
    const std::size_t cells =
        max_count == 0
            ? 0
            : static_cast<std::size_t>(std::llround(
                  static_cast<double>(counts_[b]) /
                  static_cast<double>(max_count) * static_cast<double>(width)));
    out += pad_left(label, 22) + " |" + repeat('#', cells) + " " +
           std::to_string(counts_[b]) + "\n";
  }
  if (underflow_ > 0)
    out += pad_left("< range", 22) + " | " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0)
    out += pad_left(">= range", 22) + " | " + std::to_string(overflow_) + "\n";
  return out;
}

}  // namespace impress::common
