#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/stats.hpp"
#include "common/string_util.hpp"

namespace impress::common {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>(
      (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  ++counts_[std::min(bin, counts_.size() - 1)];
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

std::string Histogram::render(std::size_t width, const std::string& unit) const {
  const std::size_t max_count =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::string label = "[" + format_fixed(bin_low(b), 1) + ", " +
                              format_fixed(bin_high(b), 1) + ")" +
                              (unit.empty() ? "" : " " + unit);
    const std::size_t cells =
        max_count == 0
            ? 0
            : static_cast<std::size_t>(std::llround(
                  static_cast<double>(counts_[b]) /
                  static_cast<double>(max_count) * static_cast<double>(width)));
    out += pad_left(label, 22) + " |" + repeat('#', cells) + " " +
           std::to_string(counts_[b]) + "\n";
  }
  if (underflow_ > 0)
    out += pad_left("< range", 22) + " | " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0)
    out += pad_left(">= range", 22) + " | " + std::to_string(overflow_) + "\n";
  return out;
}

// --- HdrHistogram -----------------------------------------------------------

HdrHistogram::HdrHistogram(unsigned precision_bits) : p_(precision_bits) {
  if (p_ < 1 || p_ > 16)
    throw std::invalid_argument("HdrHistogram: precision_bits must be in [1,16]");
  // One linear segment of 2^p width-1 buckets for values < 2^p, then one
  // 2^p-sub-bucket segment per power of two up to 2^64.
  const std::size_t sub = std::size_t{1} << p_;
  counts_.assign(sub * (65 - p_), 0);
  min_ = std::numeric_limits<std::uint64_t>::max();
}

std::size_t HdrHistogram::index_of(std::uint64_t v) const noexcept {
  const std::uint64_t sub = std::uint64_t{1} << p_;
  if (v < sub) return static_cast<std::size_t>(v);
  // msb index e >= p; the top p bits after the msb select the sub-bucket.
  const unsigned e = 63u - static_cast<unsigned>(std::countl_zero(v));
  const unsigned seg = e - p_;
  const std::uint64_t offset = (v >> seg) - sub;  // in [0, 2^p)
  return static_cast<std::size_t>(sub + seg * sub + offset);
}

std::uint64_t HdrHistogram::highest_of(std::size_t idx) const noexcept {
  const std::uint64_t sub = std::uint64_t{1} << p_;
  if (idx < sub) return idx;  // width-1 buckets: the value itself
  const std::size_t seg = (idx - sub) / static_cast<std::size_t>(sub);
  const std::uint64_t offset = (idx - sub) % sub;
  // Bucket covers [(sub+offset) << seg, (sub+offset+1) << seg).
  return ((sub + offset + 1) << seg) - 1;
}

void HdrHistogram::record_n(std::uint64_t value, std::uint64_t n) noexcept {
  if (n == 0) return;
  counts_[index_of(value)] += n;
  total_ += n;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

std::uint64_t HdrHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double exact = q * static_cast<double>(total_);
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(exact));
  if (target == 0) target = 1;
  if (target > total_) target = total_;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) return std::min(highest_of(i), max_);
  }
  return max_;
}

void HdrHistogram::merge(const HdrHistogram& other) {
  if (other.p_ != p_)
    throw std::invalid_argument("HdrHistogram::merge: precision mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  if (other.total_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
}

void HdrHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  min_ = std::numeric_limits<std::uint64_t>::max();
  max_ = 0;
  sum_ = 0.0;
}

}  // namespace impress::common
