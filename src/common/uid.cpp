#include "common/uid.hpp"

#include <cstdio>

namespace impress::common {

std::string UidGenerator::next(std::string_view ns) {
  std::uint64_t n;
  {
    std::lock_guard lock(mutex_);
    auto it = counters_.find(ns);
    if (it == counters_.end())
      it = counters_.emplace(std::string(ns), 0).first;
    n = it->second++;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, ".%06llu", static_cast<unsigned long long>(n));
  return std::string(ns) + buf;
}

std::uint64_t UidGenerator::count(std::string_view ns) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(ns);
  return it == counters_.end() ? 0 : it->second;
}

std::string_view uid_namespace(std::string_view uid) noexcept {
  const auto dot = uid.rfind('.');
  return dot == std::string_view::npos ? uid : uid.substr(0, dot);
}

}  // namespace impress::common
