#include "common/fs.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define IMPRESS_HAVE_FSYNC 1
#endif

namespace impress::common {

namespace {

AtomicWriteHook g_write_hook;  // test-only; see header

void sync_to_disk(const std::string& path) {
#ifdef IMPRESS_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("fs: cannot reopen " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw std::runtime_error("fs: fsync failed for " + path);
#else
  (void)path;  // best effort: ofstream flush already happened
#endif
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  // Deterministic sibling name: a crashed write's leftover is overwritten
  // by the next attempt instead of accumulating.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("fs: cannot open " + tmp);
    os << content;
    os.flush();
    if (!os) throw std::runtime_error("fs: write failed for " + tmp);
  }
  sync_to_disk(tmp);
  if (g_write_hook) g_write_hook(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("fs: rename failed for " + path);
}

void set_atomic_write_test_hook(AtomicWriteHook hook) {
  g_write_hook = std::move(hook);
}

}  // namespace impress::common
