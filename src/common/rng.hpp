// Deterministic pseudo-random number generation for IMPRESS.
//
// Every stochastic component in the library (sequence sampling, surrogate
// metric noise, duration jitter) draws from a seeded Rng so that campaigns,
// tests and benchmark figures regenerate bit-identically. We implement
// PCG32 (O'Neill, 2014) rather than using std::mt19937 because PCG has a
// tiny state (16 bytes), excellent statistical quality, and — crucially —
// a *stream* parameter that lets us derive independent generators for each
// pipeline/task from one campaign seed without correlation.

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace impress::common {

/// Mix a 64-bit value to a well-distributed 64-bit output (SplitMix64
/// finalizer). Used for seed derivation and stable hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// Stable 64-bit hash of a string (FNV-1a folded through splitmix64).
/// Unlike std::hash, this is identical across platforms and runs, so
/// dataset generation keyed on names ("NHERF3", ...) is reproducible.
[[nodiscard]] std::uint64_t stable_hash(std::string_view s) noexcept;

/// PCG32: 64-bit state, 64-bit stream selector, 32-bit output.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Raw generator state for checkpoint/restore. The constructor scrambles
  /// its seed, so a generator's position in its stream cannot be recreated
  /// from the original (seed, stream) pair — checkpointing must capture the
  /// post-scramble words verbatim. `cached_normal` preserves the Box–Muller
  /// half-pair so restored generators replay bit-identically.
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
    double cached_normal = 0.0;
    bool has_cached_normal = false;

    bool operator==(const State&) const = default;
  };

  /// Construct from a seed and an optional stream id. Different stream
  /// ids yield statistically independent sequences for the same seed.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept;

  /// Derive a child generator whose stream is keyed on `tag`. Children
  /// derived with distinct tags are independent of each other and of the
  /// parent's future output.
  [[nodiscard]] Rng fork(std::string_view tag) const noexcept;
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept;

  /// Snapshot / restore the exact stream position (see State).
  [[nodiscard]] State save_state() const noexcept {
    return {state_, inc_, cached_normal_, has_cached_normal_};
  }
  void restore_state(const State& s) noexcept {
    state_ = s.state;
    inc_ = s.inc;
    cached_normal_ = s.cached_normal;
    has_cached_normal_ = s.has_cached_normal;
  }
  [[nodiscard]] static Rng from_state(const State& s) noexcept {
    Rng r;
    r.restore_state(s);
    return r;
  }

  /// Stable 64-bit digest of the generator's full state (position in the
  /// stream, stream selector, and Box–Muller cache). Two generators with
  /// equal fingerprints produce identical future output, which is what
  /// lets fold::FoldCache key memoized predictions on the task rng.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Next raw 32-bit value.
  result_type operator()() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection
  /// to avoid modulo bias.
  [[nodiscard]] std::uint32_t below(std::uint32_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] int range(int lo, int hi) noexcept;
  /// Standard normal variate (Box–Muller with caching).
  [[nodiscard]] double normal() noexcept;
  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;
  /// Sample an index from unnormalized non-negative weights. Returns
  /// weights.size() - 1 on degenerate (all-zero) input if non-empty.
  [[nodiscard]] std::size_t categorical(std::span<const double> weights) noexcept;
  /// Exponential variate with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;
  /// Log-normal variate parameterized by the *target* mean and the sigma
  /// of the underlying normal. Handy for task-duration jitter.
  [[nodiscard]] double lognormal_mean(double mean, double sigma) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(static_cast<std::uint32_t>(i))]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace impress::common
