#include "common/string_util.hpp"

#include <algorithm>
#include <cctype>

namespace impress::common {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::string repeat(char c, std::size_t n) { return std::string(n, c); }

}  // namespace impress::common
