#include "common/thread_pool.hpp"

#include <algorithm>

namespace impress::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Joining the workers blocks until the queue drains: destroying the
  // pool while holding any tracked mutex a worker may need is a deadlock.
  lockdep::check_blocking("ThreadPool join");
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return pending_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return pending_;
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) futures.push_back(pool.submit(fn, i));
  for (auto& f : futures) f.get();
}

}  // namespace impress::common
