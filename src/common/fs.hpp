// Crash-consistent file writes.
//
// Every persistent artifact the library produces (session dumps, CSV
// exports, campaign checkpoints) goes through write_file_atomic: the
// content is written to a sibling temp file, flushed to stable storage
// with fsync, and then rename(2)-ed over the destination. POSIX rename is
// atomic, so a reader — including a resuming campaign — always observes
// either the complete previous file or the complete new one, never a
// truncated hybrid. A crash between fsync and rename leaves the previous
// file untouched (plus a stray .tmp sibling that the next write reuses).

#pragma once

#include <functional>
#include <string>

namespace impress::common {

/// Atomically replace `path` with `content`. Throws std::runtime_error on
/// I/O failure; on failure the previous contents of `path` are preserved.
void write_file_atomic(const std::string& path, const std::string& content);

/// Test-only crash hook: invoked after the temp file is durable but
/// before the rename, with the temp path. A hook that throws simulates a
/// process killed mid-write — the destination must still hold the
/// previous contents. Pass nullptr to clear. Not thread-safe; tests
/// install it around single-threaded write calls only.
using AtomicWriteHook = std::function<void(const std::string& tmp_path)>;
void set_atomic_write_test_hook(AtomicWriteHook hook);

}  // namespace impress::common
