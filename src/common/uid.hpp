// RADICAL-Pilot style unique id generation: "task.000042", "pipeline.0007".
//
// Ids are unique per UidGenerator (one lives in each Session) rather than
// process-global, so independent sessions in one process — e.g. the CONT-V
// and IM-RP campaigns inside a single benchmark binary — number their
// entities identically and deterministically.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/lockdep.hpp"

namespace impress::common {

class UidGenerator {
 public:
  /// Next id for the namespace, e.g. next("task") -> "task.000000".
  [[nodiscard]] std::string next(std::string_view ns);

  /// How many ids have been handed out for a namespace.
  [[nodiscard]] std::uint64_t count(std::string_view ns) const;

  /// Checkpoint support: snapshot / restore every namespace counter, so a
  /// resumed session numbers its entities exactly like the uninterrupted
  /// run would have.
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const {
    std::lock_guard lock(mutex_);
    return {counters_.begin(), counters_.end()};
  }
  void restore_counters(const std::map<std::string, std::uint64_t>& counters) {
    std::lock_guard lock(mutex_);
    counters_.clear();
    counters_.insert(counters.begin(), counters.end());
  }

 private:
  mutable TrackedMutex mutex_{"UidGenerator::mutex_"};
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// Split "task.000042" into its namespace ("task"); returns the whole
/// string when there is no dot.
[[nodiscard]] std::string_view uid_namespace(std::string_view uid) noexcept;

}  // namespace impress::common
