#include "fold/fold.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace impress::fold {

double FoldMetrics::composite() const noexcept {
  // Equal-weight blend of the three metrics, each normalized to ~[0,1].
  const double nl = std::clamp(plddt / 100.0, 0.0, 1.0);
  const double nt = std::clamp(ptm, 0.0, 1.0);
  const double ne = std::clamp(1.0 - ipae / 30.0, 0.0, 1.0);
  return (nl + nt + ne) / 3.0;
}

AlphaFold::AlphaFold(PredictorConfig config) : config_(config) {
  if (config_.num_models == 0)
    throw std::invalid_argument("AlphaFold: num_models must be > 0");
  if (config_.msa_quality <= 0.0 || config_.msa_quality > 1.0)
    throw std::invalid_argument("AlphaFold: msa_quality must be in (0,1]");
}

Prediction AlphaFold::predict_with_msa(
    const protein::Complex& complex, const protein::Msa& msa,
    const protein::FitnessLandscape& landscape, common::Rng& rng) const {
  PredictorConfig cfg = config_;
  cfg.msa_quality = msa.predictor_quality();
  return AlphaFold(cfg).predict(complex, landscape, rng);
}

Prediction AlphaFold::predict(const protein::Complex& complex,
                              const protein::FitnessLandscape& landscape,
                              common::Rng& rng) const {
  // Traced as a child of whatever span is ambient (the executing attempt,
  // or fold.cache when memoized); inert outside a traced task.
  const obs::ScopedSpan span = obs::ambient_span("fold.predict");
  const double f_true = landscape.fitness(complex.receptor().sequence);
  // Degraded MSA pulls the effective signal toward the mean (0.5) and
  // widens the noise — single-sequence mode sees less of the landscape.
  const double f_eff =
      config_.msa_quality * f_true + (1.0 - config_.msa_quality) * 0.5;
  const double noise_scale =
      config_.metric_noise * (1.0 + 1.5 * (1.0 - config_.msa_quality));

  Prediction out;
  out.models.reserve(config_.num_models);
  for (std::size_t m = 0; m < config_.num_models; ++m) {
    const double fm =
        std::clamp(f_eff + config_.model_noise * rng.normal(), 0.0, 1.0);
    FoldMetrics metrics;
    metrics.plddt =
        std::clamp(60.0 + 20.0 * fm + 1.2 * noise_scale * rng.normal(), 0.0, 100.0);
    metrics.ptm =
        std::clamp(0.30 + 0.75 * fm + 0.02 * noise_scale * rng.normal(), 0.0, 1.0);
    metrics.ipae =
        std::clamp(21.5 - 18.0 * fm + 0.8 * noise_scale * rng.normal(), 1.0, 30.0);

    // Predicted coordinates: the idealized complex, with per-residue
    // confidence tapering toward the chain termini as real pLDDT does.
    protein::Complex predicted =
        protein::Complex::make(complex.structure.name(),
                               complex.receptor().sequence,
                               complex.peptide().sequence);
    const std::size_t n = predicted.structure.size();
    std::vector<double> plddt(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double edge =
          std::min({i + 1, n - i, std::size_t{8}}) / 8.0;  // terminal taper
      plddt[i] = std::clamp(metrics.plddt * (0.8 + 0.2 * edge) +
                                2.0 * rng.normal(),
                            0.0, 100.0);
    }
    predicted.structure.set_plddt(std::move(plddt));
    out.models.push_back(
        ModelPrediction{metrics, std::move(predicted.structure)});
  }

  // Stage 4: rank candidate models by pTM; best complex is returned.
  out.best_index = 0;
  for (std::size_t m = 1; m < out.models.size(); ++m)
    if (out.models[m].metrics.ptm > out.models[out.best_index].metrics.ptm)
      out.best_index = m;
  return out;
}

}  // namespace impress::fold
