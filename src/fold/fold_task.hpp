// Runtime task factory for AlphaFold surrogate calls.
//
// Models the two-phase resource footprint the paper's §III-B describes
// (after ParaFold): a long CPU-bound MSA/feature-construction stage that
// is I/O-limited ("large databases and I/O bottlenecks, while GPUs remain
// idle"), followed by a GPU inference stage. The whole task holds one
// allocation; the per-phase intensities drive the measured-utilization
// accounting behind Figs 4-5.

#pragma once

#include <string>

#include "fold/fold.hpp"
#include "runtime/task.hpp"

namespace impress::fold {

struct FoldDurationModel {
  // Feature/MSA stage (CPU).
  double features_s = 4450.0;        ///< ~1.24 h on the paper's node
  double features_jitter = 0.12;
  std::uint32_t feature_cores = 12;  ///< multi-threaded HMM search
  double feature_cpu_intensity = 0.55;  ///< I/O-bound: cores often waiting

  // Inference stage (GPU).
  double inference_s = 1250.0;  ///< ~21 min for 5 models on an M6000
  double inference_jitter = 0.10;
  std::uint32_t inference_cores = 2;
  std::uint32_t inference_gpus = 1;
  double inference_cpu_intensity = 0.30;
  double inference_gpu_intensity = 0.85;

  /// When true the feature stage is skipped because the MSA/features for
  /// this complex are already on disk — the adaptive protocol's Stage-6
  /// retries re-predict alternative sequences of the *same* complex, for
  /// which the scaffold-level MSA is reused (ColabFold-style caching).
  bool reuse_features = false;
};

/// Build an AlphaFold prediction task. The pipeline layer supplies the
/// `work` function that performs the surrogate predict() call.
[[nodiscard]] rp::TaskDescription make_fold_task(std::string name,
                                                 const FoldDurationModel& model,
                                                 rp::WorkFn work);

}  // namespace impress::fold
