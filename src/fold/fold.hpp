// AlphaFold surrogate: structure prediction with confidence metrics.
//
// The protocol consumes three things from AlphaFold (pipeline Stages 4-5):
// a predicted complex, a ranking of 5 candidate models by pTM, and the
// confidence metrics pLDDT / pTM / inter-chain pAE. The surrogate emits
// all three as noisy monotone functions of the hidden landscape fitness —
// reproducing the empirical observation the paper leans on ([12], [13])
// that AlphaFold confidence acts as a classifier separating good binders
// from bad ones:
//
//   pLDDT ~ 60 + 20*f + noise     (0-100, higher better)
//   pTM   ~ 0.30 + 0.75*f + noise (0-1, higher better)
//   ipAE  ~ 21.5 - 18*f + noise   (A, lower better)
//
// MSA mode: `msa_quality` in (0,1] scales how much signal the model
// extracts. 1.0 is full-MSA AlphaFold; ~0.55 models EvoPro's accelerated
// single-sequence mode (paper §IV), whose predictions blur toward the
// mean and carry more noise — the basis of the msa-mode ablation bench.

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "protein/landscape.hpp"
#include "protein/msa.hpp"
#include "protein/structure.hpp"

namespace impress::fold {

/// Confidence metrics of one predicted model.
struct FoldMetrics {
  double plddt = 0.0;  ///< mean predicted LDDT, 0-100
  double ptm = 0.0;    ///< predicted TM-score, 0-1
  double ipae = 0.0;   ///< mean inter-chain predicted aligned error, A

  /// Composite quality used by Stage 6 comparisons: improvements mean
  /// higher pLDDT, higher pTM, lower pAE. Normalized to roughly [0,1].
  [[nodiscard]] double composite() const noexcept;
};

struct ModelPrediction {
  FoldMetrics metrics;
  protein::Structure structure;  ///< predicted complex (pLDDT in B-factors)
};

struct Prediction {
  std::vector<ModelPrediction> models;  ///< ranked candidates
  std::size_t best_index = 0;           ///< argmax pTM (Stage 4 ranking)

  [[nodiscard]] const ModelPrediction& best() const {
    return models.at(best_index);
  }
};

struct PredictorConfig {
  std::size_t num_models = 5;   ///< AlphaFold's 5 model heads
  double msa_quality = 1.0;     ///< 1 = full MSA; lower = single-seq mode
  double model_noise = 0.035;   ///< per-model fitness perturbation sigma
  /// Scales the per-metric noise terms. The default makes successive
  /// evaluations of similar designs disagree by a few pLDDT points —
  /// which is what triggers the protocol's Stage-6 declining branch at a
  /// realistic rate.
  double metric_noise = 3.5;
};

class AlphaFold {
 public:
  explicit AlphaFold(PredictorConfig config = {});

  /// Predict the structure of the complex and score it. Deterministic in
  /// `rng`. The returned structures carry idealized coordinates whose
  /// per-residue pLDDT reflects the model confidence.
  [[nodiscard]] Prediction predict(const protein::Complex& complex,
                                   const protein::FitnessLandscape& landscape,
                                   common::Rng& rng) const;

  /// Predict with an explicit alignment: msa_quality is derived from the
  /// MSA's effective depth (protein::Msa::predictor_quality) instead of
  /// the configured constant. A deeper, less redundant alignment yields a
  /// sharper classifier — the §IV argument made executable.
  [[nodiscard]] Prediction predict_with_msa(
      const protein::Complex& complex, const protein::Msa& msa,
      const protein::FitnessLandscape& landscape, common::Rng& rng) const;

  [[nodiscard]] const PredictorConfig& config() const noexcept { return config_; }

 private:
  PredictorConfig config_;
};

}  // namespace impress::fold
