// Content-addressed memoization of AlphaFold surrogate predictions.
//
// GA iterations, crossover recombinants and retry attempts routinely
// re-submit sequences the campaign has already folded. AlphaFold::predict
// is a pure function of (receptor sequence, peptide sequence, structure
// name, landscape, PredictorConfig, rng stream), so its result can be
// memoized under a key derived from exactly those inputs.
//
// Determinism contract: the key includes the task rng's fingerprint().
// The coordinator derives each fold task's rng from the *content* of the
// fold input (Coordinator::fold_rng_for), so two submissions of the same
// complex under the same config carry rngs with equal fingerprints — a
// cache hit therefore returns bit-for-bit the Prediction the miss path
// would have computed, and a cached campaign replays identically to an
// uncached one. On a hit the rng is left untouched (the task closure
// owns it and nothing observes it afterwards); on a miss it advances
// exactly as the uncached path does.
//
// Eviction: per-shard LRU. The cache is sharded (hash-partitioned) so
// concurrent executor threads contend only on 1/N of the structure; each
// shard holds capacity/N entries rounded up, evicting its own
// least-recently-used entry on overflow. Hit/miss/eviction counters are
// lock-free atomics surfaced as hpc::CacheSummary.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include <atomic>

#include "fold/fold.hpp"
#include "hpc/analytics.hpp"
#include "obs/metrics.hpp"

namespace impress::fold {

class FoldCache {
 public:
  struct Config {
    std::size_t capacity = 1024;  ///< max resident predictions (total)
    std::size_t shards = 8;       ///< lock-striping factor
  };

  FoldCache();  ///< default Config
  explicit FoldCache(Config config);

  /// Stable digest of every input AlphaFold::predict reads *except* the
  /// rng: receptor + peptide sequences, structure name, landscape
  /// identity, predictor config. This is also what the coordinator feeds
  /// to fork() to derive the task rng, which is what makes duplicate
  /// submissions cache-hittable in the first place.
  [[nodiscard]] static std::uint64_t content_key(
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape,
      const PredictorConfig& config) noexcept;

  /// Full cache key: content plus the rng stream identity.
  [[nodiscard]] static std::uint64_t key(std::uint64_t content_key,
                                         const common::Rng& rng) noexcept;

  /// Memoized AlphaFold::predict. Thread-safe.
  [[nodiscard]] Prediction predict(const AlphaFold& folder,
                                   const protein::Complex& complex,
                                   const protein::FitnessLandscape& landscape,
                                   common::Rng& rng);

  [[nodiscard]] std::optional<Prediction> lookup(std::uint64_t key);
  void insert(std::uint64_t key, Prediction prediction);

  [[nodiscard]] hpc::CacheSummary stats() const;
  void clear();

  /// Full cache contents for campaign checkpoints: per-shard entries in
  /// MRU→LRU order plus the lifetime counters. Restoring reproduces the
  /// exact recency order, so post-resume hit/eviction patterns — and the
  /// CacheSummary in the final CampaignResult — match the uninterrupted
  /// run's bit for bit.
  struct Snapshot {
    struct Entry {
      std::uint64_t key = 0;
      Prediction prediction;
    };
    std::vector<std::vector<Entry>> shards;  ///< MRU first within a shard
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t duplicate_discards = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Load a snapshot into an empty cache with the same Config (shard
  /// count and capacity must match the checkpointing cache's).
  void restore(const Snapshot& snap);

  /// Wire campaign-level hit/miss counters (obs metrics registry). Both
  /// may be nullptr (the default) to unhook — required before the
  /// counters' registry dies if the cache outlives it. Wire before
  /// concurrent use; the pointers are read by executor threads.
  void set_metrics(obs::Counter* hits, obs::Counter* misses) noexcept {
    obs_hits_ = hits;
    obs_misses_ = misses;
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  struct Shard {
    std::mutex mutex;
    /// LRU order, most-recent first; the map points into the list.
    std::list<std::pair<std::uint64_t, Prediction>> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, Prediction>>::iterator>
        index;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key) noexcept;

  Config config_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  /// Inserts that found an incumbent under the same key (two threads
  /// raced the same miss; the loser's prediction is dropped). Without
  /// this the dropped computation is counted as neither hit nor
  /// discard and the stats stop conserving: misses must equal
  /// entries + evictions + duplicate_discards.
  std::atomic<std::uint64_t> duplicate_discards_{0};
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
};

}  // namespace impress::fold
