#include "fold/fold_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/trace.hpp"

namespace impress::fold {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  return common::splitmix64(h ^ v);
}

std::uint64_t mix_double(std::uint64_t h, double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return mix(h, bits);
}

std::uint64_t mix_sequence(std::uint64_t h,
                           const protein::Sequence& seq) noexcept {
  h = mix(h, seq.size());
  for (const protein::AminoAcid aa : seq)
    h = mix(h, static_cast<std::uint64_t>(aa) + 1);
  return h;
}

}  // namespace

FoldCache::FoldCache() : FoldCache(Config{}) {}

FoldCache::FoldCache(Config config) : config_(config) {
  if (config_.capacity == 0)
    throw std::invalid_argument("FoldCache: capacity must be > 0");
  if (config_.shards == 0)
    throw std::invalid_argument("FoldCache: shards must be > 0");
  config_.shards = std::min(config_.shards, config_.capacity);
  per_shard_capacity_ =
      (config_.capacity + config_.shards - 1) / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

std::uint64_t FoldCache::content_key(const protein::Complex& complex,
                                     const protein::FitnessLandscape& landscape,
                                     const PredictorConfig& config) noexcept {
  std::uint64_t h = 0x7f4a7c15u;  // arbitrary non-zero start
  h = mix(h, landscape.fingerprint());
  h = mix(h, common::stable_hash(complex.structure.name()));
  h = mix_sequence(h, complex.receptor().sequence);
  h = mix_sequence(h, complex.peptide().sequence);
  h = mix(h, config.num_models);
  h = mix_double(h, config.msa_quality);
  h = mix_double(h, config.model_noise);
  h = mix_double(h, config.metric_noise);
  return h;
}

std::uint64_t FoldCache::key(std::uint64_t content_key,
                             const common::Rng& rng) noexcept {
  return mix(content_key, rng.fingerprint());
}

FoldCache::Shard& FoldCache::shard_for(std::uint64_t key) noexcept {
  return *shards_[common::splitmix64(key) % shards_.size()];
}

std::optional<Prediction> FoldCache::lookup(std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (obs_misses_ != nullptr) obs_misses_->inc();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (obs_hits_ != nullptr) obs_hits_->inc();
  return it->second->second;
}

void FoldCache::insert(std::uint64_t key, Prediction prediction) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Duplicate insert (two threads raced the same miss): refresh LRU,
    // keep the incumbent — both computed identical predictions. The
    // loser's work is real, though: count the discard so the stats
    // conserve (misses == entries + evictions + duplicate_discards).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    duplicate_discards_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.lru.emplace_front(key, std::move(prediction));
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

Prediction FoldCache::predict(const AlphaFold& folder,
                              const protein::Complex& complex,
                              const protein::FitnessLandscape& landscape,
                              common::Rng& rng) {
  const std::uint64_t k =
      key(content_key(complex, landscape, folder.config()), rng);
  // Visible in the trace as a child of the executing attempt span.
  obs::ScopedSpan span = obs::ambient_span("fold.cache");
  if (auto cached = lookup(k)) {
    span.attr("cache", "hit");
    return std::move(*cached);
  }
  span.attr("cache", "miss");
  Prediction fresh = folder.predict(complex, landscape, rng);
  insert(k, fresh);
  return fresh;
}

hpc::CacheSummary FoldCache::stats() const {
  hpc::CacheSummary s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.duplicate_discards = duplicate_discards_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    s.entries += shard->index.size();
  }
  return s;
}

FoldCache::Snapshot FoldCache::snapshot() const {
  Snapshot snap;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    std::vector<Snapshot::Entry> entries;
    entries.reserve(shard->lru.size());
    for (const auto& [key, prediction] : shard->lru)
      entries.push_back(Snapshot::Entry{key, prediction});
    snap.shards.push_back(std::move(entries));
  }
  snap.hits = hits_.load(std::memory_order_relaxed);
  snap.misses = misses_.load(std::memory_order_relaxed);
  snap.evictions = evictions_.load(std::memory_order_relaxed);
  snap.duplicate_discards =
      duplicate_discards_.load(std::memory_order_relaxed);
  return snap;
}

void FoldCache::restore(const Snapshot& snap) {
  if (snap.shards.size() != shards_.size())
    throw std::invalid_argument(
        "FoldCache::restore: shard count mismatch (snapshot from a "
        "differently-configured cache)");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    // Entries are MRU-first; push_front in reverse rebuilds that order.
    const auto& entries = snap.shards[s];
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      shard.lru.emplace_front(it->key, it->prediction);
      shard.index.emplace(it->key, shard.lru.begin());
    }
  }
  hits_.store(snap.hits, std::memory_order_relaxed);
  misses_.store(snap.misses, std::memory_order_relaxed);
  evictions_.store(snap.evictions, std::memory_order_relaxed);
  duplicate_discards_.store(snap.duplicate_discards,
                            std::memory_order_relaxed);
}

void FoldCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  duplicate_discards_.store(0, std::memory_order_relaxed);
}

}  // namespace impress::fold
