#include "fold/fold_task.hpp"

#include <algorithm>

namespace impress::fold {

rp::TaskDescription make_fold_task(std::string name,
                                   const FoldDurationModel& model,
                                   rp::WorkFn work) {
  rp::TaskDescription td;
  td.name = std::move(name);
  const std::uint32_t cores =
      model.reuse_features ? model.inference_cores
                           : std::max(model.feature_cores, model.inference_cores);
  // AlphaFold's model + activations nearly fill the paper's 12 GB M6000,
  // so each inference GPU is reserved whole with a 10 GB footprint.
  td.resources = hpc::ResourceRequest{.cores = cores,
                                      .gpus = model.inference_gpus,
                                      .mem_gb = 48.0,
                                      .gpu_mem_gb =
                                          model.inference_gpus > 0 ? 10.0 : 0.0};
  if (!model.reuse_features) {
    td.phases.push_back(rp::TaskPhase{
        .name = "msa_features",
        .duration_s = model.features_s,
        .jitter_sigma = model.features_jitter,
        .cores = model.feature_cores,
        .gpus = 0,
        .cpu_intensity = model.feature_cpu_intensity,
        .gpu_intensity = 0.0,
    });
  }
  td.phases.push_back(rp::TaskPhase{
      .name = "inference",
      .duration_s = model.inference_s,
      .jitter_sigma = model.inference_jitter,
      .cores = model.inference_cores,
      .gpus = model.inference_gpus,
      .cpu_intensity = model.inference_cpu_intensity,
      .gpu_intensity = model.inference_gpu_intensity,
  });
  td.work = std::move(work);
  td.metadata["app"] = "alphafold";
  td.metadata["features"] = model.reuse_features ? "cached" : "computed";
  return td;
}

}  // namespace impress::fold
