// Resource-utilization accounting (Figs 4 and 5).
//
// Every executed task contributes one usage interval per resource class.
// Two notions of utilization are tracked, mirroring how the paper's
// numbers were measured:
//
//  * allocated utilization — fraction of (resource x time) covered by an
//    allocation, i.e. what the scheduler reserved;
//  * active utilization    — allocated utilization weighted by the task's
//    *intensity* on that resource class, i.e. what a monitoring tool such
//    as `top`/`nvidia-smi` would report. AlphaFold's CPU feature stage is
//    I/O-bound ("large databases and I/O bottlenecks", paper §III-B), so
//    its CPU intensity is < 1; its GPU inference keeps an M6000 only
//    partially busy, etc.
//
// The paper's ~18.3 % / ~1 % (CONT-V) and ~88 % / ~61 % (IM-RP) figures
// correspond to *active* utilization.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/lockdep.hpp"

namespace impress::hpc {

struct UsageInterval {
  double start = 0.0;      ///< seconds
  double end = 0.0;        ///< seconds, end >= start
  std::uint32_t cores = 0;
  std::uint32_t gpus = 0;
  double cpu_intensity = 1.0;  ///< [0,1] busy fraction while allocated
  double gpu_intensity = 1.0;
  std::string task_uid;
};

/// Aggregated utilization over a window.
struct UtilizationSummary {
  double span_seconds = 0.0;
  double cpu_allocated = 0.0;  ///< [0,1]
  double cpu_active = 0.0;
  double gpu_allocated = 0.0;
  double gpu_active = 0.0;
};

class UtilizationRecorder {
 public:
  static constexpr double kDefaultWattsPerCore = 12.0;
  static constexpr double kDefaultWattsPerGpu = 250.0;

  UtilizationRecorder(std::uint32_t total_cores, std::uint32_t total_gpus)
      : total_cores_(total_cores), total_gpus_(total_gpus) {}

  /// Record one task's usage interval. Thread-safe. O(1): full-span
  /// aggregates (summarize defaults, latest_end, default-wattage energy)
  /// are maintained incrementally, in record order, so those queries are
  /// O(1) *and* bit-identical to the O(n) scans they replaced — a
  /// 10k-node campaign records millions of intervals. Intervals are
  /// normalized on entry (start clamped to >= 0, end to >= start) so the
  /// running totals, windowed scans and energy paths all see the same
  /// span — see tests/hpc/test_utilization.cpp's equivalence property.
  void record(UsageInterval interval);

  /// Average utilization between t0 and t1 (t1 defaults to the latest
  /// recorded end time when <= t0). The default full-span query is O(1);
  /// an explicit window costs one pass over the intervals.
  [[nodiscard]] UtilizationSummary summarize(double t0 = 0.0,
                                             double t1 = -1.0) const;

  /// Per-bin *active* utilization series in [0,1], `bins` equal windows
  /// over [0, span]; suitable for TimelineChart rows.
  [[nodiscard]] std::vector<double> cpu_series(std::size_t bins) const;
  [[nodiscard]] std::vector<double> gpu_series(std::size_t bins) const;

  /// Latest interval end time seen so far (the campaign makespan proxy).
  [[nodiscard]] double latest_end() const;

  /// Estimated dynamic energy in kWh: active core/GPU time weighted by
  /// per-unit draw. Idle/base power is deliberately excluded — this is
  /// the *marginal* cost of the computation, the number that differs
  /// between a well-packed and a badly-packed campaign.
  [[nodiscard]] double energy_kwh(
      double watts_per_core = kDefaultWattsPerCore,
      double watts_per_gpu = kDefaultWattsPerGpu) const;

  [[nodiscard]] std::vector<UsageInterval> intervals() const;
  [[nodiscard]] std::uint32_t total_cores() const noexcept { return total_cores_; }
  [[nodiscard]] std::uint32_t total_gpus() const noexcept { return total_gpus_; }

 private:
  [[nodiscard]] std::vector<double> series(std::size_t bins, bool gpu) const;

  /// Full-span running sums, accumulated in record order (the same order
  /// the old full scans iterated, so the fast paths are bit-identical).
  struct Totals {
    double core_alloc_s = 0.0;
    double core_active_s = 0.0;
    double gpu_alloc_s = 0.0;
    double gpu_active_s = 0.0;
    double joules_default = 0.0;  ///< at the default per-unit wattages
  };

  std::uint32_t total_cores_;
  std::uint32_t total_gpus_;
  mutable common::TrackedMutex mutex_{"UtilizationRecorder::mutex_"};
  std::vector<UsageInterval> intervals_;
  Totals totals_;             ///< guarded by mutex_
  double latest_end_raw_ = 0.0;  ///< max end; only meaningful when non-empty
};

}  // namespace impress::hpc
