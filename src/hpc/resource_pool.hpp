// Slot allocator over one or more nodes.
//
// The scheduler asks for (cores, gpus, mem) and receives an Allocation
// naming concrete core and GPU ids, or nothing if the request cannot be
// satisfied right now. First-fit within a node; a single allocation never
// spans nodes (matching how RP's agent scheduler places non-MPI tasks).
// Thread-safe so the threaded executor can free slots from worker threads.
//
// Scale: the pool is built for O(10k) heterogeneous nodes. Node selection
// walks a segment tree of per-subtree free-resource maxima (leftmost-
// first, so placement order is identical to the naive linear first-fit),
// per-node core/GPU occupancy is a bitmask (lowest-id-first extraction
// via countr_zero), and free totals are running counters — allocate and
// release are O(log n + slots), free_cores()/free_gpus() are O(1).

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/lockdep.hpp"
#include "hpc/node.hpp"

namespace impress::hpc {

/// A concrete placement: which node, which cores, which GPUs.
struct Allocation {
  std::uint32_t node = 0;
  std::vector<std::uint32_t> cores;  ///< global core ids
  std::vector<std::uint32_t> gpus;   ///< global gpu ids
  double mem_gb = 0.0;

  [[nodiscard]] bool empty() const noexcept {
    return cores.empty() && gpus.empty();
  }
};

/// Resource request attached to a task description.
struct ResourceRequest {
  std::uint32_t cores = 1;
  std::uint32_t gpus = 0;
  double mem_gb = 0.0;

  bool operator==(const ResourceRequest&) const = default;
};

class ResourcePool {
 public:
  explicit ResourcePool(std::vector<NodeSpec> nodes);
  /// Convenience: a pool over a single node.
  explicit ResourcePool(const NodeSpec& node)
      : ResourcePool(std::vector<NodeSpec>{node}) {}

  /// Try to allocate; returns nullopt if no node can satisfy the request.
  /// Requests exceeding the capacity of every node always fail — callers
  /// should pre-validate with fits_ever().
  [[nodiscard]] std::optional<Allocation> allocate(const ResourceRequest& req);

  /// Return an allocation's resources to the pool. Double-free is an
  /// error and throws std::logic_error (it indicates a scheduler bug).
  void release(const Allocation& alloc);

  /// Whether the request could ever be satisfied on an empty pool.
  [[nodiscard]] bool fits_ever(const ResourceRequest& req) const noexcept;

  [[nodiscard]] std::uint32_t total_cores() const noexcept { return total_cores_; }
  [[nodiscard]] std::uint32_t total_gpus() const noexcept { return total_gpus_; }
  [[nodiscard]] std::uint32_t free_cores() const;
  [[nodiscard]] std::uint32_t free_gpus() const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const NodeSpec& node(std::size_t i) const { return nodes_.at(i); }

 private:
  struct NodeState {
    std::vector<std::uint64_t> core_free;  ///< bit set = core is free
    std::vector<std::uint64_t> gpu_free;
    std::uint32_t cores_free = 0;
    std::uint32_t gpus_free = 0;
    double mem_free_gb = 0.0;
    std::uint32_t core_base = 0;  ///< global id of this node's core 0
    std::uint32_t gpu_base = 0;
  };

  /// Per-subtree maxima over (free cores, free gpus, free mem). A subtree
  /// whose maxima fail the request on any axis cannot contain a fitting
  /// node; the converse does not hold (the maxima may come from different
  /// nodes), so lookup backtracks — leftmost-first, preserving first-fit.
  struct SegNode {
    std::uint32_t cores = 0;
    std::uint32_t gpus = 0;
    double mem = -1.0;  ///< padding leaves: below any legal request
  };

  /// Leftmost leaf under seg[i] satisfying the request on all three axes,
  /// or node_count() if none. `seg` is either the live free-resource tree
  /// or the immutable capacity tree (fits_ever).
  [[nodiscard]] std::size_t find_node(const std::vector<SegNode>& seg,
                                      std::size_t i,
                                      const ResourceRequest& req)
      const noexcept;
  /// Recompute the leaf for node `ni` from states_[ni] and fix its path.
  void update_leaf(std::size_t ni);

  std::vector<NodeSpec> nodes_;  ///< immutable after construction
  std::uint32_t total_cores_ = 0;
  std::uint32_t total_gpus_ = 0;
  std::size_t cap_ = 1;  ///< leaf span (bit_ceil(node count)); root at seg[1]
  std::vector<SegNode> capacity_seg_;  ///< immutable; answers fits_ever
  mutable common::TrackedMutex mutex_{"ResourcePool::mutex_"};  ///< guards states_
  std::vector<NodeState> states_;
  std::vector<SegNode> free_seg_;  ///< guarded by mutex_
  std::uint32_t free_cores_ = 0;   ///< guarded by mutex_
  std::uint32_t free_gpus_ = 0;    ///< guarded by mutex_
};

}  // namespace impress::hpc
