// Slot allocator over one or more nodes.
//
// The scheduler asks for (cores, gpus, mem, gpu mem, gpu slice) and
// receives an Allocation naming concrete core and GPU ids, or nothing if
// the request cannot be satisfied right now. First-fit within a node; a
// single allocation never spans nodes (matching how RP's agent scheduler
// places non-MPI tasks). Thread-safe so the threaded executor can free
// slots from worker threads.
//
// GPUs are MPS-style shareable devices: each physical GPU exposes 1000
// milli-slices of compute plus its NodeSpec::gpu_mem_gb of memory (a node
// that declares GPUs but leaves gpu_mem_gb at 0 does not model the memory
// axis — its devices accept any gpu_mem_gb request), and a
// request's `gpus` field counts *slices* of `gpu_slice_milli` each, every
// slice also reserving `gpu_mem_gb` of device memory. Whole-GPU requests
// (the default, slice = 1000) behave exactly as the pre-slicing pool:
// lowest fully-free device ids first. Fractional slices pack first-fit in
// device-id order and may co-locate several slices of one allocation on
// one device (the Allocation then repeats that GPU id).
//
// Scale: the pool is built for O(10k) heterogeneous nodes. Node selection
// walks a segment tree of per-subtree free-resource maxima (leftmost-
// first, so placement order is identical to the naive linear first-fit),
// with a conservative prune at internal nodes and an exact per-device
// check at the leaf. Per-node core occupancy is a bitmask (lowest-id-
// first extraction via countr_zero); GPU occupancy is per-device
// milli/memory counters. Free totals are running counters — allocate and
// release are O(log n + slots), free_cores()/free_gpus() are O(1).

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/lockdep.hpp"
#include "hpc/node.hpp"

namespace impress::hpc {

/// Number of compute milli-slices one physical GPU exposes.
inline constexpr std::uint32_t kGpuSliceFull = 1000;

/// A concrete placement: which node, which cores, which GPUs. A GPU id
/// appears once per slice placed on it (whole-GPU allocations list each
/// device exactly once).
struct Allocation {
  std::uint32_t node = 0;
  std::vector<std::uint32_t> cores;  ///< global core ids
  std::vector<std::uint32_t> gpus;   ///< global gpu ids, one per slice
  double mem_gb = 0.0;
  std::uint32_t gpu_slice_milli = kGpuSliceFull;  ///< per entry in `gpus`
  double gpu_mem_gb = 0.0;                        ///< per entry in `gpus`

  [[nodiscard]] bool empty() const noexcept {
    return cores.empty() && gpus.empty();
  }
};

/// Resource request attached to a task description.
struct ResourceRequest {
  std::uint32_t cores = 1;
  std::uint32_t gpus = 0;  ///< GPU slices wanted (devices when slice=1000)
  double mem_gb = 0.0;
  /// Device memory reserved per requested slice (GB). 0 = unconstrained.
  double gpu_mem_gb = 0.0;
  /// MPS-style compute fraction per slice, in (0, 1000]. 1000 = a whole
  /// device — the pre-slicing behaviour and the default.
  std::uint32_t gpu_slice_milli = kGpuSliceFull;

  bool operator==(const ResourceRequest&) const = default;
};

class ResourcePool {
 public:
  explicit ResourcePool(std::vector<NodeSpec> nodes);
  /// Convenience: a pool over a single node.
  explicit ResourcePool(const NodeSpec& node)
      : ResourcePool(std::vector<NodeSpec>{node}) {}

  /// Try to allocate; returns nullopt if no node can satisfy the request.
  /// Requests exceeding the capacity of every node always fail — callers
  /// should pre-validate with fits_ever(). Throws std::invalid_argument
  /// on a malformed request (gpu_slice_milli outside (0, 1000]).
  [[nodiscard]] std::optional<Allocation> allocate(const ResourceRequest& req);

  /// Return an allocation's resources to the pool. Double-free is an
  /// error and throws std::logic_error (it indicates a scheduler bug).
  void release(const Allocation& alloc);

  /// Whether the request could ever be satisfied on an empty pool.
  [[nodiscard]] bool fits_ever(const ResourceRequest& req) const noexcept;

  [[nodiscard]] std::uint32_t total_cores() const noexcept { return total_cores_; }
  [[nodiscard]] std::uint32_t total_gpus() const noexcept { return total_gpus_; }
  [[nodiscard]] std::uint32_t free_cores() const;
  /// Count of *fully free* devices (no slice outstanding).
  [[nodiscard]] std::uint32_t free_gpus() const;
  /// Sum of free compute milli-slices across every device.
  [[nodiscard]] std::uint64_t free_gpu_milli() const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const NodeSpec& node(std::size_t i) const { return nodes_.at(i); }

 private:
  struct NodeState {
    std::vector<std::uint64_t> core_free;  ///< bit set = core is free
    std::vector<std::uint16_t> gpu_milli_free;  ///< per-device, 0..1000
    std::vector<double> gpu_mem_free;           ///< per-device free GB
    std::uint32_t cores_free = 0;
    std::uint32_t gpus_full_free = 0;   ///< devices with 1000 milli free
    std::uint32_t gpu_milli_total = 0;  ///< sum of gpu_milli_free
    double mem_free_gb = 0.0;
    std::uint32_t core_base = 0;  ///< global id of this node's core 0
    std::uint32_t gpu_base = 0;
  };

  /// Per-subtree maxima over the per-node fit axes. A subtree whose
  /// maxima fail the request on any axis cannot contain a fitting node;
  /// the converse does not hold (the maxima may come from different nodes
  /// or different devices within a node), so lookup backtracks leftmost-
  /// first and re-checks exactly at the leaf — preserving first-fit.
  struct SegNode {
    std::uint32_t cores = 0;
    double mem = -1.0;  ///< padding leaves: below any legal request
    std::uint32_t gpu_milli_total = 0;  ///< max per-node free-milli sum
    std::uint32_t gpu_milli_max = 0;    ///< max single-device free milli
    double gpu_mem_max = -1.0;          ///< max single-device free GB
  };

  /// Leftmost leaf under seg[i] satisfying the request, or node_count()
  /// if none. `seg` is either the live free-resource tree (`live`, exact
  /// leaf check against states_) or the immutable capacity tree
  /// (fits_ever, exact check against pristine NodeSpecs).
  [[nodiscard]] std::size_t find_node(const std::vector<SegNode>& seg,
                                      std::size_t i, const ResourceRequest& req,
                                      bool live) const noexcept;
  /// Exact check: can `req.gpus` slices be packed onto the node's devices
  /// in id order given current per-device free milli/memory?
  [[nodiscard]] bool node_fits_gpus(const NodeState& st, std::uint32_t n_gpus,
                                    const ResourceRequest& req) const noexcept;
  /// Recompute the leaf for node `ni` from states_[ni] and fix its path.
  void update_leaf(std::size_t ni);

  std::vector<NodeSpec> nodes_;  ///< immutable after construction
  std::uint32_t total_cores_ = 0;
  std::uint32_t total_gpus_ = 0;
  std::size_t cap_ = 1;  ///< leaf span (bit_ceil(node count)); root at seg[1]
  std::vector<SegNode> capacity_seg_;  ///< immutable; answers fits_ever
  mutable common::TrackedMutex mutex_{"ResourcePool::mutex_"};  ///< guards states_
  std::vector<NodeState> states_;
  std::vector<SegNode> free_seg_;  ///< guarded by mutex_
  std::uint32_t free_cores_ = 0;   ///< guarded by mutex_
  std::uint32_t free_gpus_ = 0;    ///< fully-free devices; guarded by mutex_
  std::uint64_t free_gpu_milli_ = 0;  ///< guarded by mutex_
};

}  // namespace impress::hpc
