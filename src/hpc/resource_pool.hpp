// Slot allocator over one or more nodes.
//
// The scheduler asks for (cores, gpus, mem) and receives an Allocation
// naming concrete core and GPU ids, or nothing if the request cannot be
// satisfied right now. First-fit within a node; a single allocation never
// spans nodes (matching how RP's agent scheduler places non-MPI tasks).
// Thread-safe so the threaded executor can free slots from worker threads.

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/lockdep.hpp"
#include "hpc/node.hpp"

namespace impress::hpc {

/// A concrete placement: which node, which cores, which GPUs.
struct Allocation {
  std::uint32_t node = 0;
  std::vector<std::uint32_t> cores;  ///< global core ids
  std::vector<std::uint32_t> gpus;   ///< global gpu ids
  double mem_gb = 0.0;

  [[nodiscard]] bool empty() const noexcept {
    return cores.empty() && gpus.empty();
  }
};

/// Resource request attached to a task description.
struct ResourceRequest {
  std::uint32_t cores = 1;
  std::uint32_t gpus = 0;
  double mem_gb = 0.0;
};

class ResourcePool {
 public:
  explicit ResourcePool(std::vector<NodeSpec> nodes);
  /// Convenience: a pool over a single node.
  explicit ResourcePool(const NodeSpec& node)
      : ResourcePool(std::vector<NodeSpec>{node}) {}

  /// Try to allocate; returns nullopt if no node can satisfy the request.
  /// Requests exceeding the capacity of every node always fail — callers
  /// should pre-validate with fits_ever().
  [[nodiscard]] std::optional<Allocation> allocate(const ResourceRequest& req);

  /// Return an allocation's resources to the pool. Double-free is an
  /// error and throws std::logic_error (it indicates a scheduler bug).
  void release(const Allocation& alloc);

  /// Whether the request could ever be satisfied on an empty pool.
  [[nodiscard]] bool fits_ever(const ResourceRequest& req) const noexcept;

  [[nodiscard]] std::uint32_t total_cores() const noexcept { return total_cores_; }
  [[nodiscard]] std::uint32_t total_gpus() const noexcept { return total_gpus_; }
  [[nodiscard]] std::uint32_t free_cores() const;
  [[nodiscard]] std::uint32_t free_gpus() const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const NodeSpec& node(std::size_t i) const { return nodes_.at(i); }

 private:
  struct NodeState {
    std::vector<bool> core_busy;
    std::vector<bool> gpu_busy;
    double mem_free_gb = 0.0;
    std::uint32_t core_base = 0;  ///< global id of this node's core 0
    std::uint32_t gpu_base = 0;
  };

  std::vector<NodeSpec> nodes_;  ///< immutable after construction
  std::uint32_t total_cores_ = 0;
  std::uint32_t total_gpus_ = 0;
  mutable common::TrackedMutex mutex_{"ResourcePool::mutex_"};  ///< guards states_
  std::vector<NodeState> states_;
};

}  // namespace impress::hpc
