#include "hpc/utilization.hpp"

#include <algorithm>
#include <cmath>

namespace impress::hpc {

void UtilizationRecorder::record(UsageInterval interval) {
  // Normalize at the door: the campaign clock starts at 0, so a negative
  // start is a recording artifact, not usage. Clamping here (instead of
  // per-query) keeps every downstream path — running totals, windowed
  // scans, energy — in agreement on the same interval. Before this fix
  // the energy term used the raw, unclamped span while the utilization
  // totals used the clamped one, so the O(1) energy path silently
  // overcounted pre-zero time relative to a windowed scan.
  if (interval.start < 0.0) interval.start = 0.0;
  if (interval.end < interval.start) interval.end = interval.start;
  std::lock_guard lock(mutex_);
  // Full-span overlap as the default summarize() would compute it
  // (window [0, max end], so min(end, t1) == end).
  const double dt = interval.end - interval.start;
  if (dt > 0.0) {
    totals_.core_alloc_s += dt * interval.cores;
    totals_.core_active_s += dt * interval.cores * interval.cpu_intensity;
    totals_.gpu_alloc_s += dt * interval.gpus;
    totals_.gpu_active_s += dt * interval.gpus * interval.gpu_intensity;
    totals_.joules_default +=
        dt * (interval.cores * interval.cpu_intensity * kDefaultWattsPerCore +
              interval.gpus * interval.gpu_intensity * kDefaultWattsPerGpu);
  }
  latest_end_raw_ = std::max(latest_end_raw_, interval.end);
  intervals_.push_back(std::move(interval));
}

double UtilizationRecorder::latest_end() const {
  std::lock_guard lock(mutex_);
  return std::max(0.0, latest_end_raw_);
}

UtilizationSummary UtilizationRecorder::summarize(double t0, double t1) const {
  std::lock_guard lock(mutex_);
  const bool full_span = t0 == 0.0 && t1 <= t0;
  if (t1 <= t0) {
    t1 = t0;
    if (!intervals_.empty()) t1 = std::max(t1, latest_end_raw_);
  }
  UtilizationSummary s;
  s.span_seconds = t1 - t0;
  if (s.span_seconds <= 0.0) return s;

  double core_alloc_s = 0.0, core_active_s = 0.0;
  double gpu_alloc_s = 0.0, gpu_active_s = 0.0;
  if (full_span) {
    // O(1): the running totals were accumulated in record order, i.e. the
    // exact order (and terms) of the loop below over the whole span.
    core_alloc_s = totals_.core_alloc_s;
    core_active_s = totals_.core_active_s;
    gpu_alloc_s = totals_.gpu_alloc_s;
    gpu_active_s = totals_.gpu_active_s;
  } else {
    for (const auto& iv : intervals_) {
      const double overlap =
          std::max(0.0, std::min(iv.end, t1) - std::max(iv.start, t0));
      if (overlap <= 0.0) continue;
      core_alloc_s += overlap * iv.cores;
      core_active_s += overlap * iv.cores * iv.cpu_intensity;
      gpu_alloc_s += overlap * iv.gpus;
      gpu_active_s += overlap * iv.gpus * iv.gpu_intensity;
    }
  }
  const double core_capacity = s.span_seconds * total_cores_;
  const double gpu_capacity = s.span_seconds * total_gpus_;
  if (core_capacity > 0.0) {
    s.cpu_allocated = core_alloc_s / core_capacity;
    s.cpu_active = core_active_s / core_capacity;
  }
  if (gpu_capacity > 0.0) {
    s.gpu_allocated = gpu_alloc_s / gpu_capacity;
    s.gpu_active = gpu_active_s / gpu_capacity;
  }
  return s;
}

std::vector<double> UtilizationRecorder::series(std::size_t bins, bool gpu) const {
  std::vector<double> out(bins, 0.0);
  if (bins == 0) return out;
  std::lock_guard lock(mutex_);
  double span = 0.0;
  for (const auto& iv : intervals_) span = std::max(span, iv.end);
  if (span <= 0.0) return out;
  const double bin_w = span / static_cast<double>(bins);
  const double capacity = gpu ? static_cast<double>(total_gpus_)
                              : static_cast<double>(total_cores_);
  if (capacity <= 0.0) return out;

  for (const auto& iv : intervals_) {
    const double units = gpu ? iv.gpus * iv.gpu_intensity
                             : iv.cores * iv.cpu_intensity;
    if (units <= 0.0) continue;
    const auto first = static_cast<std::size_t>(std::floor(iv.start / bin_w));
    const auto last = static_cast<std::size_t>(
        std::min(std::floor(iv.end / bin_w), static_cast<double>(bins - 1)));
    for (std::size_t b = first; b <= last && b < bins; ++b) {
      const double b0 = static_cast<double>(b) * bin_w;
      const double b1 = b0 + bin_w;
      const double overlap = std::max(0.0, std::min(iv.end, b1) - std::max(iv.start, b0));
      out[b] += overlap * units / (bin_w * capacity);
    }
  }
  for (auto& v : out) v = std::min(v, 1.0);
  return out;
}

std::vector<double> UtilizationRecorder::cpu_series(std::size_t bins) const {
  return series(bins, /*gpu=*/false);
}

std::vector<double> UtilizationRecorder::gpu_series(std::size_t bins) const {
  return series(bins, /*gpu=*/true);
}

double UtilizationRecorder::energy_kwh(double watts_per_core,
                                       double watts_per_gpu) const {
  std::lock_guard lock(mutex_);
  if (watts_per_core == kDefaultWattsPerCore &&
      watts_per_gpu == kDefaultWattsPerGpu)
    return totals_.joules_default / 3.6e6;  // O(1), bit-identical
  double joules = 0.0;
  for (const auto& iv : intervals_) {
    const double dt = iv.end - iv.start;
    if (dt <= 0.0) continue;
    joules += dt * (iv.cores * iv.cpu_intensity * watts_per_core +
                    iv.gpus * iv.gpu_intensity * watts_per_gpu);
  }
  return joules / 3.6e6;
}

std::vector<UsageInterval> UtilizationRecorder::intervals() const {
  std::lock_guard lock(mutex_);
  return intervals_;
}

}  // namespace impress::hpc
