#include "hpc/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/stats.hpp"
#include "common/string_util.hpp"

namespace impress::hpc {

namespace {

struct Row {
  std::string uid;
  double schedule = -1.0;
  double setup = -1.0;
  double start = -1.0;
  double stop = -1.0;
  int attempts = 0;             ///< kSubmit count; > 1 means retried
  std::vector<double> retries;  ///< times the retry policy fired
};

}  // namespace

std::string render_gantt(const Profiler& profiler, double t_end,
                         GanttOptions options) {
  std::map<std::string, Row> rows;
  double latest = 0.0;
  for (const auto& e : profiler.events()) {
    auto& r = rows[e.entity];
    r.uid = e.entity;
    if (e.event == events::kSchedule && r.schedule < 0.0) r.schedule = e.time;
    else if (e.event == events::kExecSetupStart && r.setup < 0.0) r.setup = e.time;
    else if (e.event == events::kExecStart && r.start < 0.0) r.start = e.time;
    else if (e.event == events::kExecStop) r.stop = e.time;  // last attempt
    else if (e.event == events::kSubmit) ++r.attempts;
    else if (e.event == events::kRetry) r.retries.push_back(e.time);
    latest = std::max(latest, e.time);
  }
  if (t_end <= 0.0) t_end = latest;
  if (t_end <= 0.0) return "(no events)\n";

  std::vector<Row> started;
  for (auto& [uid, r] : rows)
    if (r.start >= 0.0) started.push_back(r);
  std::sort(started.begin(), started.end(),
            [](const Row& a, const Row& b) { return a.start < b.start; });

  auto label_of = [](const Row& r) {
    // Retried tasks carry their attempt count so first attempts and
    // recovery runs are distinguishable at a glance.
    return r.attempts > 1 ? r.uid + " x" + std::to_string(r.attempts) : r.uid;
  };
  std::size_t label_w = 4;
  for (const auto& r : started) label_w = std::max(label_w, label_of(r).size());

  const double scale = static_cast<double>(options.width) / t_end;
  auto col = [&](double t) {
    return static_cast<std::size_t>(std::clamp(
        std::floor(t * scale), 0.0, static_cast<double>(options.width - 1)));
  };

  std::string out =
      "## task gantt ('.'=queued '-'=setup '#'=running '!'=retry)\n";
  const std::size_t shown = std::min(started.size(), options.max_rows);
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& r = started[i];
    std::string bar(options.width, ' ');
    const double wait_from = options.include_waiting && r.schedule >= 0.0
                                 ? r.schedule
                                 : (r.setup >= 0.0 ? r.setup : r.start);
    const double setup_from = r.setup >= 0.0 ? r.setup : r.start;
    const double stop = r.stop >= 0.0 ? r.stop : t_end;
    for (std::size_t c = col(wait_from); c <= col(setup_from); ++c) bar[c] = '.';
    for (std::size_t c = col(setup_from); c <= col(r.start); ++c) bar[c] = '-';
    for (std::size_t c = col(r.start); c <= col(stop); ++c) bar[c] = '#';
    for (const double t : r.retries) bar[col(t)] = '!';
    out += common::pad_right(label_of(r), label_w) + " |" + bar + "|\n";
  }
  if (started.size() > shown) {
    out += common::pad_right("...", label_w) + " (+" +
           std::to_string(started.size() - shown) + " more tasks)\n";
  }
  out += common::repeat(' ', label_w) + " 0" +
         common::repeat(' ', options.width - 6) +
         common::format_fixed(t_end / 3600.0, 1) + "h\n";
  return out;
}

}  // namespace impress::hpc
