#include "hpc/analytics.hpp"

#include <algorithm>
#include <map>

#include "common/stats.hpp"

namespace impress::hpc {

namespace {

struct RawTimes {
  double schedule = -1.0;
  double setup = -1.0;
  double start = -1.0;
  double stop = -1.0;
};

std::map<std::string, RawTimes> collect(const Profiler& profiler) {
  std::map<std::string, RawTimes> out;
  for (const auto& e : profiler.events()) {
    auto& r = out[e.entity];
    if (e.event == events::kSchedule && r.schedule < 0.0) r.schedule = e.time;
    else if (e.event == events::kExecSetupStart && r.setup < 0.0) r.setup = e.time;
    else if (e.event == events::kExecStart && r.start < 0.0) r.start = e.time;
    else if (e.event == events::kExecStop && r.stop < 0.0) r.stop = e.time;
  }
  return out;
}

}  // namespace

std::vector<TaskTiming> task_timings(const Profiler& profiler) {
  std::vector<TaskTiming> out;
  for (const auto& [uid, r] : collect(profiler)) {
    if (r.schedule < 0.0 || r.setup < 0.0 || r.start < 0.0 || r.stop < 0.0)
      continue;
    out.push_back(TaskTiming{.uid = uid,
                             .wait = r.setup - r.schedule,
                             .setup = r.start - r.setup,
                             .run = r.stop - r.start});
  }
  return out;
}

TimingSummary summarize_timings(const Profiler& profiler) {
  const auto timings = task_timings(profiler);
  TimingSummary s;
  s.tasks = timings.size();
  if (timings.empty()) return s;
  std::vector<double> waits, setups, runs;
  for (const auto& t : timings) {
    waits.push_back(t.wait);
    setups.push_back(t.setup);
    runs.push_back(t.run);
  }
  s.mean_wait = common::mean(waits);
  s.p95_wait = common::percentile(waits, 95.0);
  s.mean_setup = common::mean(setups);
  s.mean_run = common::mean(runs);
  const double overhead = s.mean_wait + s.mean_setup;
  const double total = overhead + s.mean_run;
  if (total > 0.0) s.overhead_fraction = overhead / total;
  return s;
}

std::vector<double> concurrency_series(const Profiler& profiler,
                                       std::size_t bins, double t_end) {
  std::vector<double> out(bins, 0.0);
  if (bins == 0) return out;
  const auto raw = collect(profiler);
  if (t_end <= 0.0)
    for (const auto& [uid, r] : raw) t_end = std::max(t_end, r.stop);
  if (t_end <= 0.0) return out;
  const double bin_w = t_end / static_cast<double>(bins);
  for (const auto& [uid, r] : raw) {
    if (r.start < 0.0) continue;
    const double stop = r.stop < 0.0 ? t_end : r.stop;
    for (std::size_t b = 0; b < bins; ++b) {
      const double b0 = static_cast<double>(b) * bin_w;
      const double b1 = b0 + bin_w;
      const double overlap =
          std::max(0.0, std::min(stop, b1) - std::max(r.start, b0));
      out[b] += overlap / bin_w;
    }
  }
  return out;
}

RetrySummary summarize_retries(const Profiler& profiler) {
  RetrySummary s;
  for (const auto& e : profiler.events()) {
    if (e.event == events::kRetry) ++s.retries;
    else if (e.event == events::kTimeout) ++s.timeouts;
    else if (e.event == events::kRequeue) ++s.requeues;
    else if (e.event == events::kPilotFailed) ++s.pilot_failures;
  }
  for (const auto& [uid, attempts] : attempt_counts(profiler)) {
    if (attempts > 1) ++s.tasks_retried;
    s.max_attempts = std::max(s.max_attempts, attempts);
  }
  return s;
}

std::map<std::string, int> attempt_counts(const Profiler& profiler) {
  std::map<std::string, int> out;
  for (const auto& e : profiler.events())
    if (e.event == events::kSubmit) ++out[e.entity];
  return out;
}

std::size_t peak_concurrency(const Profiler& profiler) {
  std::vector<std::pair<double, int>> edges;
  for (const auto& [uid, r] : collect(profiler)) {
    if (r.start < 0.0 || r.stop < 0.0) continue;
    edges.emplace_back(r.start, +1);
    edges.emplace_back(r.stop, -1);
  }
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;  // close before open at equal times
  });
  int cur = 0;
  int peak = 0;
  for (const auto& [t, d] : edges) {
    cur += d;
    peak = std::max(peak, cur);
  }
  return static_cast<std::size_t>(peak);
}

}  // namespace impress::hpc
