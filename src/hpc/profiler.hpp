// Event profiler, modeled on RADICAL-Pilot's profiler.
//
// Every state transition in the runtime emits a (time, entity, event)
// record. The Fig-5 breakdown (Bootstrap / Exec setup / Running) is
// computed from these records, and tests assert ordering invariants on
// them (e.g. a task never runs before it is scheduled).
//
// Concurrency: record() appends to a per-thread buffer (discovered via a
// thread-local cache keyed on a process-unique profiler id), so executor
// threads never contend on a shared mutex — the only synchronization on
// the hot path is an uncontended per-buffer lock and one relaxed
// fetch_add that assigns the event its global sequence number. Readers
// merge the buffers and sort by sequence number, reconstructing the
// single record order the old global-mutex implementation produced.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace impress::hpc {

struct ProfileEvent {
  double time = 0.0;       ///< seconds (simulated or wall)
  std::string entity;      ///< uid, e.g. "task.000003"
  std::string event;       ///< e.g. "schedule", "exec_start"
  std::string info;        ///< free-form detail
};

/// Well-known event names shared by the executors and the reporters.
namespace events {
inline constexpr std::string_view kBootstrapStart = "bootstrap_start";
inline constexpr std::string_view kBootstrapStop = "bootstrap_stop";
inline constexpr std::string_view kSubmit = "submit";
inline constexpr std::string_view kSchedule = "schedule";
inline constexpr std::string_view kExecSetupStart = "exec_setup_start";
inline constexpr std::string_view kExecStart = "exec_start";
inline constexpr std::string_view kExecStop = "exec_stop";
inline constexpr std::string_view kDone = "done";
inline constexpr std::string_view kFailed = "failed";
inline constexpr std::string_view kCancelled = "cancelled";
// Fault-tolerance events (see docs/fault_tolerance.md).
inline constexpr std::string_view kRetry = "retry";        ///< retry scheduled
inline constexpr std::string_view kTimeout = "timeout";    ///< deadline hit
inline constexpr std::string_view kRequeue = "requeue";    ///< re-routed off a dead pilot
inline constexpr std::string_view kPilotFailed = "pilot_failed";
/// Spot capacity returned: a reclaimed pilot re-entered ACTIVE.
inline constexpr std::string_view kPilotReactivated = "pilot_reactivated";
}  // namespace events

class Profiler {
 public:
  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void record(double time, std::string_view entity, std::string_view event,
              std::string_view info = {});

  /// All events in global record order (sequence-number merged).
  [[nodiscard]] std::vector<ProfileEvent> events() const;

  /// Events for a single entity, in record order.
  [[nodiscard]] std::vector<ProfileEvent> events_for(std::string_view entity) const;

  /// Time of the first occurrence of `event` for `entity`.
  [[nodiscard]] std::optional<double> time_of(std::string_view entity,
                                              std::string_view event) const;

  /// Total duration attributed to each phase across all tasks:
  ///   "exec_setup" = sum(exec_start - exec_setup_start)
  ///   "running"    = sum(exec_stop - exec_start)
  ///   "bootstrap"  = sum(bootstrap_stop - bootstrap_start)
  [[nodiscard]] std::map<std::string, double> phase_durations() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Checkpoint restore: seed the profiler with `events` as the earliest
  /// records (fresh sequence numbers 0..n-1; later record() calls sort
  /// after them). Only meaningful on an empty profiler.
  void preload(const std::vector<ProfileEvent>& events);

 private:
  struct Entry {
    std::uint64_t seq = 0;
    ProfileEvent event;
  };
  struct Buffer {
    std::mutex mutex;  // guards entries (writer vs concurrent reader)
    std::vector<Entry> entries;
  };

  /// This thread's buffer for this profiler, creating and registering it
  /// on first use. Buffers live until the profiler is destroyed.
  [[nodiscard]] Buffer& local_buffer();
  /// Snapshot of all buffers, merged and sorted by sequence number.
  [[nodiscard]] std::vector<Entry> merged() const;

  const std::uint64_t id_;  ///< process-unique; keys the thread-local cache
  std::atomic<std::uint64_t> next_seq_{0};
  mutable std::mutex registry_mutex_;  // guards buffers_
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace impress::hpc
