// Event profiler, modeled on RADICAL-Pilot's profiler.
//
// Every state transition in the runtime emits a (time, entity, event)
// record. The Fig-5 breakdown (Bootstrap / Exec setup / Running) is
// computed from these records, and tests assert ordering invariants on
// them (e.g. a task never runs before it is scheduled).

#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace impress::hpc {

struct ProfileEvent {
  double time = 0.0;       ///< seconds (simulated or wall)
  std::string entity;      ///< uid, e.g. "task.000003"
  std::string event;       ///< e.g. "schedule", "exec_start"
  std::string info;        ///< free-form detail
};

/// Well-known event names shared by the executors and the reporters.
namespace events {
inline constexpr std::string_view kBootstrapStart = "bootstrap_start";
inline constexpr std::string_view kBootstrapStop = "bootstrap_stop";
inline constexpr std::string_view kSubmit = "submit";
inline constexpr std::string_view kSchedule = "schedule";
inline constexpr std::string_view kExecSetupStart = "exec_setup_start";
inline constexpr std::string_view kExecStart = "exec_start";
inline constexpr std::string_view kExecStop = "exec_stop";
inline constexpr std::string_view kDone = "done";
inline constexpr std::string_view kFailed = "failed";
inline constexpr std::string_view kCancelled = "cancelled";
// Fault-tolerance events (see docs/fault_tolerance.md).
inline constexpr std::string_view kRetry = "retry";        ///< retry scheduled
inline constexpr std::string_view kTimeout = "timeout";    ///< deadline hit
inline constexpr std::string_view kRequeue = "requeue";    ///< re-routed off a dead pilot
inline constexpr std::string_view kPilotFailed = "pilot_failed";
}  // namespace events

class Profiler {
 public:
  void record(double time, std::string_view entity, std::string_view event,
              std::string_view info = {});

  [[nodiscard]] std::vector<ProfileEvent> events() const;

  /// Events for a single entity, in record order.
  [[nodiscard]] std::vector<ProfileEvent> events_for(std::string_view entity) const;

  /// Time of the first occurrence of `event` for `entity`.
  [[nodiscard]] std::optional<double> time_of(std::string_view entity,
                                              std::string_view event) const;

  /// Total duration attributed to each phase across all tasks:
  ///   "exec_setup" = sum(exec_start - exec_setup_start)
  ///   "running"    = sum(exec_stop - exec_start)
  ///   "bootstrap"  = sum(bootstrap_stop - bootstrap_start)
  [[nodiscard]] std::map<std::string, double> phase_durations() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<ProfileEvent> events_;
};

}  // namespace impress::hpc
