#include "hpc/resource_pool.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace impress::hpc {
namespace {

constexpr std::uint32_t kWordBits = 64;

void set_all_free(std::vector<std::uint64_t>& words, std::uint32_t n) {
  words.assign((n + kWordBits - 1) / kWordBits, 0);
  for (std::uint32_t i = 0; i < n; ++i)
    words[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

/// Claim the `want` lowest free (set) bits, appending their global ids to
/// `out`. Precondition (guaranteed by the segment-tree lookup): at least
/// `want` bits are set.
void take_lowest(std::vector<std::uint64_t>& words, std::uint32_t want,
                 std::uint32_t base, std::vector<std::uint32_t>& out) {
  for (std::uint32_t w = 0; want > 0; ++w) {
    std::uint64_t word = words[w];
    while (word != 0 && want > 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(word));
      out.push_back(base + w * kWordBits + bit);
      word &= word - 1;  // clear lowest set bit
      --want;
    }
    words[w] = word;  // only the claimed bits were cleared
  }
}

}  // namespace

ResourcePool::ResourcePool(std::vector<NodeSpec> nodes)
    : nodes_(std::move(nodes)) {
  states_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    NodeState st;
    set_all_free(st.core_free, n.cores);
    set_all_free(st.gpu_free, n.gpus);
    st.cores_free = n.cores;
    st.gpus_free = n.gpus;
    st.mem_free_gb = n.mem_gb;
    st.core_base = total_cores_;
    st.gpu_base = total_gpus_;
    total_cores_ += n.cores;
    total_gpus_ += n.gpus;
    states_.push_back(std::move(st));
  }
  free_cores_ = total_cores_;
  free_gpus_ = total_gpus_;

  cap_ = std::bit_ceil(std::max<std::size_t>(nodes_.size(), 1));
  free_seg_.assign(2 * cap_, SegNode{});
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    free_seg_[cap_ + i] =
        SegNode{nodes_[i].cores, nodes_[i].gpus, nodes_[i].mem_gb};
  for (std::size_t i = cap_ - 1; i >= 1; --i) {
    free_seg_[i].cores =
        std::max(free_seg_[2 * i].cores, free_seg_[2 * i + 1].cores);
    free_seg_[i].gpus =
        std::max(free_seg_[2 * i].gpus, free_seg_[2 * i + 1].gpus);
    free_seg_[i].mem =
        std::max(free_seg_[2 * i].mem, free_seg_[2 * i + 1].mem);
  }
  // Capacity never changes, so fits_ever reuses the freshly-built
  // all-free tree verbatim.
  capacity_seg_ = free_seg_;
}

std::size_t ResourcePool::find_node(const std::vector<SegNode>& seg,
                                    std::size_t i,
                                    const ResourceRequest& req)
    const noexcept {
  const SegNode& s = seg[i];
  if (s.cores < req.cores || s.gpus < req.gpus || s.mem < req.mem_gb)
    return nodes_.size();
  if (i >= cap_) return i - cap_;  // leaf maxima are exact: it fits
  const std::size_t left = find_node(seg, 2 * i, req);
  if (left != nodes_.size()) return left;
  return find_node(seg, 2 * i + 1, req);
}

void ResourcePool::update_leaf(std::size_t ni) {
  const auto& st = states_[ni];
  free_seg_[cap_ + ni] = SegNode{st.cores_free, st.gpus_free, st.mem_free_gb};
  for (std::size_t i = (cap_ + ni) / 2; i >= 1; i /= 2) {
    free_seg_[i].cores =
        std::max(free_seg_[2 * i].cores, free_seg_[2 * i + 1].cores);
    free_seg_[i].gpus =
        std::max(free_seg_[2 * i].gpus, free_seg_[2 * i + 1].gpus);
    free_seg_[i].mem =
        std::max(free_seg_[2 * i].mem, free_seg_[2 * i + 1].mem);
    if (i == 1) break;
  }
}

std::optional<Allocation> ResourcePool::allocate(const ResourceRequest& req) {
  std::lock_guard lock(mutex_);
  if (nodes_.empty()) return std::nullopt;
  const std::size_t ni = find_node(free_seg_, 1, req);
  if (ni >= nodes_.size()) return std::nullopt;
  auto& st = states_[ni];

  Allocation alloc;
  alloc.node = static_cast<std::uint32_t>(ni);
  alloc.mem_gb = req.mem_gb;
  alloc.cores.reserve(req.cores);
  alloc.gpus.reserve(req.gpus);
  take_lowest(st.core_free, req.cores, st.core_base, alloc.cores);
  take_lowest(st.gpu_free, req.gpus, st.gpu_base, alloc.gpus);
  st.cores_free -= req.cores;
  st.gpus_free -= req.gpus;
  st.mem_free_gb -= req.mem_gb;
  free_cores_ -= req.cores;
  free_gpus_ -= req.gpus;
  update_leaf(ni);
  return alloc;
}

void ResourcePool::release(const Allocation& alloc) {
  std::lock_guard lock(mutex_);
  auto& st = states_.at(alloc.node);
  for (auto c : alloc.cores) {
    const std::uint32_t local = c - st.core_base;
    const std::uint64_t bit = std::uint64_t{1} << (local % kWordBits);
    if (local >= nodes_[alloc.node].cores ||
        (st.core_free[local / kWordBits] & bit) != 0)
      throw std::logic_error("ResourcePool::release: core not allocated");
    st.core_free[local / kWordBits] |= bit;
  }
  for (auto g : alloc.gpus) {
    const std::uint32_t local = g - st.gpu_base;
    const std::uint64_t bit = std::uint64_t{1} << (local % kWordBits);
    if (local >= nodes_[alloc.node].gpus ||
        (st.gpu_free[local / kWordBits] & bit) != 0)
      throw std::logic_error("ResourcePool::release: gpu not allocated");
    st.gpu_free[local / kWordBits] |= bit;
  }
  st.cores_free += static_cast<std::uint32_t>(alloc.cores.size());
  st.gpus_free += static_cast<std::uint32_t>(alloc.gpus.size());
  st.mem_free_gb =
      std::min(st.mem_free_gb + alloc.mem_gb, nodes_[alloc.node].mem_gb);
  free_cores_ += static_cast<std::uint32_t>(alloc.cores.size());
  free_gpus_ += static_cast<std::uint32_t>(alloc.gpus.size());
  update_leaf(alloc.node);
}

bool ResourcePool::fits_ever(const ResourceRequest& req) const noexcept {
  // The capacity tree is immutable, so no lock; same leftmost search as
  // allocate, against full-node capacities.
  if (nodes_.empty()) return false;
  return find_node(capacity_seg_, 1, req) < nodes_.size();
}

std::uint32_t ResourcePool::free_cores() const {
  std::lock_guard lock(mutex_);
  return free_cores_;
}

std::uint32_t ResourcePool::free_gpus() const {
  std::lock_guard lock(mutex_);
  return free_gpus_;
}

}  // namespace impress::hpc
