#include "hpc/resource_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace impress::hpc {

ResourcePool::ResourcePool(std::vector<NodeSpec> nodes)
    : nodes_(std::move(nodes)) {
  states_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    NodeState st;
    st.core_busy.assign(n.cores, false);
    st.gpu_busy.assign(n.gpus, false);
    st.mem_free_gb = n.mem_gb;
    st.core_base = total_cores_;
    st.gpu_base = total_gpus_;
    total_cores_ += n.cores;
    total_gpus_ += n.gpus;
    states_.push_back(std::move(st));
  }
}

std::optional<Allocation> ResourcePool::allocate(const ResourceRequest& req) {
  std::lock_guard lock(mutex_);
  for (std::size_t ni = 0; ni < states_.size(); ++ni) {
    auto& st = states_[ni];
    if (st.mem_free_gb < req.mem_gb) continue;

    std::vector<std::uint32_t> cores;
    for (std::uint32_t c = 0; c < st.core_busy.size() && cores.size() < req.cores; ++c)
      if (!st.core_busy[c]) cores.push_back(c);
    if (cores.size() < req.cores) continue;

    std::vector<std::uint32_t> gpus;
    for (std::uint32_t g = 0; g < st.gpu_busy.size() && gpus.size() < req.gpus; ++g)
      if (!st.gpu_busy[g]) gpus.push_back(g);
    if (gpus.size() < req.gpus) continue;

    for (auto c : cores) st.core_busy[c] = true;
    for (auto g : gpus) st.gpu_busy[g] = true;
    st.mem_free_gb -= req.mem_gb;

    Allocation alloc;
    alloc.node = static_cast<std::uint32_t>(ni);
    alloc.mem_gb = req.mem_gb;
    for (auto c : cores) alloc.cores.push_back(st.core_base + c);
    for (auto g : gpus) alloc.gpus.push_back(st.gpu_base + g);
    return alloc;
  }
  return std::nullopt;
}

void ResourcePool::release(const Allocation& alloc) {
  std::lock_guard lock(mutex_);
  auto& st = states_.at(alloc.node);
  for (auto c : alloc.cores) {
    const auto local = c - st.core_base;
    if (local >= st.core_busy.size() || !st.core_busy[local])
      throw std::logic_error("ResourcePool::release: core not allocated");
    st.core_busy[local] = false;
  }
  for (auto g : alloc.gpus) {
    const auto local = g - st.gpu_base;
    if (local >= st.gpu_busy.size() || !st.gpu_busy[local])
      throw std::logic_error("ResourcePool::release: gpu not allocated");
    st.gpu_busy[local] = false;
  }
  st.mem_free_gb = std::min(st.mem_free_gb + alloc.mem_gb, nodes_[alloc.node].mem_gb);
}

bool ResourcePool::fits_ever(const ResourceRequest& req) const noexcept {
  for (const auto& n : nodes_)
    if (req.cores <= n.cores && req.gpus <= n.gpus && req.mem_gb <= n.mem_gb)
      return true;
  return false;
}

std::uint32_t ResourcePool::free_cores() const {
  std::lock_guard lock(mutex_);
  std::uint32_t n = 0;
  for (const auto& st : states_)
    n += static_cast<std::uint32_t>(
        std::count(st.core_busy.begin(), st.core_busy.end(), false));
  return n;
}

std::uint32_t ResourcePool::free_gpus() const {
  std::lock_guard lock(mutex_);
  std::uint32_t n = 0;
  for (const auto& st : states_)
    n += static_cast<std::uint32_t>(
        std::count(st.gpu_busy.begin(), st.gpu_busy.end(), false));
  return n;
}

}  // namespace impress::hpc
