#include "hpc/resource_pool.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace impress::hpc {
namespace {

constexpr std::uint32_t kWordBits = 64;

void set_all_free(std::vector<std::uint64_t>& words, std::uint32_t n) {
  words.assign((n + kWordBits - 1) / kWordBits, 0);
  for (std::uint32_t i = 0; i < n; ++i)
    words[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

/// Claim the `want` lowest free (set) bits, appending their global ids to
/// `out`. Precondition (guaranteed by the segment-tree lookup): at least
/// `want` bits are set.
void take_lowest(std::vector<std::uint64_t>& words, std::uint32_t want,
                 std::uint32_t base, std::vector<std::uint32_t>& out) {
  for (std::uint32_t w = 0; want > 0; ++w) {
    std::uint64_t word = words[w];
    while (word != 0 && want > 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(word));
      out.push_back(base + w * kWordBits + bit);
      word &= word - 1;  // clear lowest set bit
      --want;
    }
    words[w] = word;  // only the claimed bits were cleared
  }
}

/// Device memory of one of this node's GPUs as the pool tracks it. A node
/// that declares GPUs without declaring their memory (gpu_mem_gb == 0)
/// does not model that axis: its devices satisfy any gpu_mem_gb request,
/// represented as infinite per-device free memory.
double node_gpu_mem(const NodeSpec& n) noexcept {
  return n.gpu_mem_gb > 0.0 ? n.gpu_mem_gb
                            : std::numeric_limits<double>::infinity();
}

/// Slices of the requested shape one device can still host: limited by
/// free compute milli and, when the request reserves device memory, by
/// free memory. Whole-GPU requests degenerate to 1 iff fully free.
std::uint32_t slice_capacity(std::uint32_t milli_free, double mem_free,
                             const ResourceRequest& req) noexcept {
  std::uint32_t cap = milli_free / req.gpu_slice_milli;
  if (req.gpu_mem_gb > 0.0) {
    // Double-side comparison so an unmodeled device (mem_free = inf)
    // never narrows — and never hits a float-to-int cast of infinity.
    const double by_mem = std::floor(mem_free / req.gpu_mem_gb);
    if (by_mem < static_cast<double>(cap))
      cap = by_mem <= 0.0 ? 0u : static_cast<std::uint32_t>(by_mem);
  }
  return cap;
}

/// Exact fit against a pristine (all-free) node: every device offers 1000
/// milli and full memory, so per-device capacity is uniform.
bool pristine_fits_gpus(const NodeSpec& n, const ResourceRequest& req) noexcept {
  if (req.gpus == 0) return true;
  if (n.gpus == 0) return false;
  const std::uint32_t per = slice_capacity(kGpuSliceFull, node_gpu_mem(n), req);
  return static_cast<std::uint64_t>(per) * n.gpus >= req.gpus;
}

}  // namespace

ResourcePool::ResourcePool(std::vector<NodeSpec> nodes)
    : nodes_(std::move(nodes)) {
  states_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    NodeState st;
    set_all_free(st.core_free, n.cores);
    st.gpu_milli_free.assign(n.gpus, static_cast<std::uint16_t>(kGpuSliceFull));
    st.gpu_mem_free.assign(n.gpus, node_gpu_mem(n));
    st.cores_free = n.cores;
    st.gpus_full_free = n.gpus;
    st.gpu_milli_total = n.gpus * kGpuSliceFull;
    st.mem_free_gb = n.mem_gb;
    st.core_base = total_cores_;
    st.gpu_base = total_gpus_;
    total_cores_ += n.cores;
    total_gpus_ += n.gpus;
    states_.push_back(std::move(st));
  }
  free_cores_ = total_cores_;
  free_gpus_ = total_gpus_;
  free_gpu_milli_ = static_cast<std::uint64_t>(total_gpus_) * kGpuSliceFull;

  cap_ = std::bit_ceil(std::max<std::size_t>(nodes_.size(), 1));
  free_seg_.assign(2 * cap_, SegNode{});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    free_seg_[cap_ + i] = SegNode{
        .cores = n.cores,
        .mem = n.mem_gb,
        .gpu_milli_total = n.gpus * kGpuSliceFull,
        .gpu_milli_max = n.gpus > 0 ? kGpuSliceFull : 0,
        .gpu_mem_max = n.gpus > 0 ? node_gpu_mem(n) : -1.0};
  }
  for (std::size_t i = cap_ - 1; i >= 1; --i) {
    const SegNode& l = free_seg_[2 * i];
    const SegNode& r = free_seg_[2 * i + 1];
    free_seg_[i] = SegNode{.cores = std::max(l.cores, r.cores),
                           .mem = std::max(l.mem, r.mem),
                           .gpu_milli_total =
                               std::max(l.gpu_milli_total, r.gpu_milli_total),
                           .gpu_milli_max =
                               std::max(l.gpu_milli_max, r.gpu_milli_max),
                           .gpu_mem_max = std::max(l.gpu_mem_max, r.gpu_mem_max)};
  }
  // Capacity never changes, so fits_ever reuses the freshly-built
  // all-free tree verbatim.
  capacity_seg_ = free_seg_;
}

bool ResourcePool::node_fits_gpus(const NodeState& st, std::uint32_t n_gpus,
                                  const ResourceRequest& req) const noexcept {
  if (req.gpus == 0) return true;
  std::uint32_t need = req.gpus;
  for (std::uint32_t g = 0; g < n_gpus; ++g) {
    const std::uint32_t cap =
        slice_capacity(st.gpu_milli_free[g], st.gpu_mem_free[g], req);
    need -= std::min(cap, need);
    if (need == 0) return true;
  }
  return false;
}

std::size_t ResourcePool::find_node(const std::vector<SegNode>& seg,
                                    std::size_t i, const ResourceRequest& req,
                                    bool live) const noexcept {
  const SegNode& s = seg[i];
  if (s.cores < req.cores || s.mem < req.mem_gb) return nodes_.size();
  if (req.gpus > 0) {
    // Conservative prune: the subtree maxima may come from different
    // nodes/devices, so passing here does not guarantee a fit — the leaf
    // re-checks exactly.
    if (s.gpu_milli_max < req.gpu_slice_milli ||
        static_cast<std::uint64_t>(s.gpu_milli_total) <
            static_cast<std::uint64_t>(req.gpus) * req.gpu_slice_milli ||
        s.gpu_mem_max < req.gpu_mem_gb)
      return nodes_.size();
  }
  if (i >= cap_) {
    const std::size_t ni = i - cap_;
    // Cores and host memory are exact at the leaf; the packed-GPU check
    // is the only axis needing per-device state.
    const bool ok = live ? node_fits_gpus(states_[ni], nodes_[ni].gpus, req)
                         : pristine_fits_gpus(nodes_[ni], req);
    return ok ? ni : nodes_.size();
  }
  const std::size_t left = find_node(seg, 2 * i, req, live);
  if (left != nodes_.size()) return left;
  return find_node(seg, 2 * i + 1, req, live);
}

void ResourcePool::update_leaf(std::size_t ni) {
  const auto& st = states_[ni];
  SegNode leaf{.cores = st.cores_free,
               .mem = st.mem_free_gb,
               .gpu_milli_total = st.gpu_milli_total,
               .gpu_milli_max = 0,
               .gpu_mem_max = -1.0};
  for (std::size_t g = 0; g < st.gpu_milli_free.size(); ++g) {
    leaf.gpu_milli_max =
        std::max(leaf.gpu_milli_max, std::uint32_t{st.gpu_milli_free[g]});
    leaf.gpu_mem_max = std::max(leaf.gpu_mem_max, st.gpu_mem_free[g]);
  }
  free_seg_[cap_ + ni] = leaf;
  for (std::size_t i = (cap_ + ni) / 2; i >= 1; i /= 2) {
    const SegNode& l = free_seg_[2 * i];
    const SegNode& r = free_seg_[2 * i + 1];
    free_seg_[i] = SegNode{.cores = std::max(l.cores, r.cores),
                           .mem = std::max(l.mem, r.mem),
                           .gpu_milli_total =
                               std::max(l.gpu_milli_total, r.gpu_milli_total),
                           .gpu_milli_max =
                               std::max(l.gpu_milli_max, r.gpu_milli_max),
                           .gpu_mem_max = std::max(l.gpu_mem_max, r.gpu_mem_max)};
    if (i == 1) break;
  }
}

std::optional<Allocation> ResourcePool::allocate(const ResourceRequest& req) {
  if (req.gpu_slice_milli == 0 || req.gpu_slice_milli > kGpuSliceFull)
    throw std::invalid_argument(
        "ResourcePool::allocate: gpu_slice_milli must be in (0, 1000]");
  std::lock_guard lock(mutex_);
  if (nodes_.empty()) return std::nullopt;
  const std::size_t ni = find_node(free_seg_, 1, req, /*live=*/true);
  if (ni >= nodes_.size()) return std::nullopt;
  auto& st = states_[ni];

  Allocation alloc;
  alloc.node = static_cast<std::uint32_t>(ni);
  alloc.mem_gb = req.mem_gb;
  alloc.gpu_slice_milli = req.gpu_slice_milli;
  alloc.gpu_mem_gb = req.gpu_mem_gb;
  alloc.cores.reserve(req.cores);
  alloc.gpus.reserve(req.gpus);
  take_lowest(st.core_free, req.cores, st.core_base, alloc.cores);

  // First-fit slice packing in device-id order (guaranteed to place all
  // req.gpus slices by the exact leaf check above). Slices are uniform,
  // so taking each device's full capacity in order is complete.
  std::uint32_t need = req.gpus;
  for (std::uint32_t g = 0; g < st.gpu_milli_free.size() && need > 0; ++g) {
    const std::uint32_t take = std::min(
        slice_capacity(st.gpu_milli_free[g], st.gpu_mem_free[g], req), need);
    if (take == 0) continue;
    if (st.gpu_milli_free[g] == kGpuSliceFull) {
      --st.gpus_full_free;
      --free_gpus_;
    }
    const std::uint32_t milli = take * req.gpu_slice_milli;
    st.gpu_milli_free[g] = static_cast<std::uint16_t>(st.gpu_milli_free[g] - milli);
    st.gpu_mem_free[g] -= take * req.gpu_mem_gb;
    st.gpu_milli_total -= milli;
    free_gpu_milli_ -= milli;
    for (std::uint32_t k = 0; k < take; ++k)
      alloc.gpus.push_back(st.gpu_base + g);
    need -= take;
  }

  st.cores_free -= req.cores;
  st.mem_free_gb -= req.mem_gb;
  free_cores_ -= req.cores;
  update_leaf(ni);
  return alloc;
}

void ResourcePool::release(const Allocation& alloc) {
  std::lock_guard lock(mutex_);
  auto& st = states_.at(alloc.node);
  for (auto c : alloc.cores) {
    const std::uint32_t local = c - st.core_base;
    const std::uint64_t bit = std::uint64_t{1} << (local % kWordBits);
    if (local >= nodes_[alloc.node].cores ||
        (st.core_free[local / kWordBits] & bit) != 0)
      throw std::logic_error("ResourcePool::release: core not allocated");
    st.core_free[local / kWordBits] |= bit;
  }
  for (auto g : alloc.gpus) {
    const std::uint32_t local = g - st.gpu_base;
    if (local >= nodes_[alloc.node].gpus ||
        st.gpu_milli_free[local] + alloc.gpu_slice_milli > kGpuSliceFull)
      throw std::logic_error("ResourcePool::release: gpu slice not allocated");
    st.gpu_milli_free[local] =
        static_cast<std::uint16_t>(st.gpu_milli_free[local] +
                                   alloc.gpu_slice_milli);
    st.gpu_mem_free[local] = std::min(st.gpu_mem_free[local] + alloc.gpu_mem_gb,
                                      node_gpu_mem(nodes_[alloc.node]));
    st.gpu_milli_total += alloc.gpu_slice_milli;
    free_gpu_milli_ += alloc.gpu_slice_milli;
    if (st.gpu_milli_free[local] == kGpuSliceFull) {
      ++st.gpus_full_free;
      ++free_gpus_;
    }
  }
  st.cores_free += static_cast<std::uint32_t>(alloc.cores.size());
  st.mem_free_gb =
      std::min(st.mem_free_gb + alloc.mem_gb, nodes_[alloc.node].mem_gb);
  free_cores_ += static_cast<std::uint32_t>(alloc.cores.size());
  update_leaf(alloc.node);
}

bool ResourcePool::fits_ever(const ResourceRequest& req) const noexcept {
  // The capacity tree is immutable, so no lock; same leftmost search as
  // allocate, against full-node capacities. Malformed slice sizes never
  // fit (allocate would throw).
  if (req.gpu_slice_milli == 0 || req.gpu_slice_milli > kGpuSliceFull)
    return false;
  if (nodes_.empty()) return false;
  return find_node(capacity_seg_, 1, req, /*live=*/false) < nodes_.size();
}

std::uint32_t ResourcePool::free_cores() const {
  std::lock_guard lock(mutex_);
  return free_cores_;
}

std::uint32_t ResourcePool::free_gpus() const {
  std::lock_guard lock(mutex_);
  return free_gpus_;
}

std::uint64_t ResourcePool::free_gpu_milli() const {
  std::lock_guard lock(mutex_);
  return free_gpu_milli_;
}

}  // namespace impress::hpc
