#include "hpc/profiler.hpp"

#include <algorithm>
#include <unordered_map>

namespace impress::hpc {

namespace {

/// Thread-local map from profiler id to that profiler's buffer for this
/// thread. Ids are process-unique and never reused, so a stale entry for
/// a destroyed profiler can never be matched (and its dangling pointer is
/// never dereferenced). The cache is bounded; eviction only costs a
/// re-registration (an extra buffer) if that profiler is used again from
/// this thread.
struct TlsEntry {
  std::uint64_t id = 0;
  void* buffer = nullptr;
};
constexpr std::size_t kTlsCacheCap = 64;
thread_local std::vector<TlsEntry> tls_buffers;  // NOLINT

std::uint64_t next_profiler_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Profiler::Profiler() : id_(next_profiler_id()) {}

Profiler::Buffer& Profiler::local_buffer() {
  for (const auto& e : tls_buffers)
    if (e.id == id_) return *static_cast<Buffer*>(e.buffer);
  auto owned = std::make_unique<Buffer>();
  Buffer* raw = owned.get();
  {
    std::lock_guard lock(registry_mutex_);
    buffers_.push_back(std::move(owned));
  }
  if (tls_buffers.size() >= kTlsCacheCap)
    tls_buffers.erase(tls_buffers.begin());
  tls_buffers.push_back(TlsEntry{id_, raw});
  return *raw;
}

void Profiler::record(double time, std::string_view entity,
                      std::string_view event, std::string_view info) {
  Buffer& buf = local_buffer();
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  // Build the entry (three string allocations) before taking the lock:
  // the writer/reader critical section covers only the push itself.
  Entry entry{seq,
              ProfileEvent{time, std::string(entity), std::string(event),
                           std::string(info)}};
  std::lock_guard lock(buf.mutex);
  buf.entries.push_back(std::move(entry));
}

std::vector<Profiler::Entry> Profiler::merged() const {
  std::vector<Entry> out;
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    out.insert(out.end(), buf->entries.begin(), buf->entries.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  return out;
}

std::vector<ProfileEvent> Profiler::events() const {
  std::vector<ProfileEvent> out;
  auto entries = merged();
  out.reserve(entries.size());
  for (auto& e : entries) out.push_back(std::move(e.event));
  return out;
}

std::vector<ProfileEvent> Profiler::events_for(std::string_view entity) const {
  std::vector<ProfileEvent> out;
  for (auto& e : merged())
    if (e.event.entity == entity) out.push_back(std::move(e.event));
  return out;
}

std::optional<double> Profiler::time_of(std::string_view entity,
                                        std::string_view event) const {
  for (const auto& e : merged())
    if (e.event.entity == entity && e.event.event == event)
      return e.event.time;
  return std::nullopt;
}

std::map<std::string, double> Profiler::phase_durations() const {
  // Pair *_start with the next matching *_stop per entity.
  struct Open {
    double bootstrap = -1.0;
    double setup = -1.0;
    double exec = -1.0;
  };
  std::unordered_map<std::string, Open> open;
  std::map<std::string, double> out{
      {"bootstrap", 0.0}, {"exec_setup", 0.0}, {"running", 0.0}};
  for (const auto& entry : merged()) {
    const ProfileEvent& e = entry.event;
    auto& o = open[e.entity];
    if (e.event == events::kBootstrapStart) {
      o.bootstrap = e.time;
    } else if (e.event == events::kBootstrapStop && o.bootstrap >= 0.0) {
      out["bootstrap"] += e.time - o.bootstrap;
      o.bootstrap = -1.0;
    } else if (e.event == events::kExecSetupStart) {
      o.setup = e.time;
    } else if (e.event == events::kExecStart) {
      if (o.setup >= 0.0) {
        out["exec_setup"] += e.time - o.setup;
        o.setup = -1.0;
      }
      o.exec = e.time;
    } else if (e.event == events::kExecStop && o.exec >= 0.0) {
      out["running"] += e.time - o.exec;
      o.exec = -1.0;
    }
  }
  return out;
}

std::size_t Profiler::size() const {
  std::size_t total = 0;
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    total += buf->entries.size();
  }
  return total;
}

void Profiler::preload(const std::vector<ProfileEvent>& events) {
  Buffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  for (const auto& e : events) {
    const std::uint64_t seq =
        next_seq_.fetch_add(1, std::memory_order_relaxed);
    buf.entries.push_back(Entry{seq, e});
  }
}

void Profiler::clear() {
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    buf->entries.clear();
  }
}

}  // namespace impress::hpc