#include "hpc/profiler.hpp"

#include <unordered_map>

namespace impress::hpc {

void Profiler::record(double time, std::string_view entity,
                      std::string_view event, std::string_view info) {
  std::lock_guard lock(mutex_);
  events_.push_back(ProfileEvent{time, std::string(entity), std::string(event),
                                 std::string(info)});
}

std::vector<ProfileEvent> Profiler::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::vector<ProfileEvent> Profiler::events_for(std::string_view entity) const {
  std::lock_guard lock(mutex_);
  std::vector<ProfileEvent> out;
  for (const auto& e : events_)
    if (e.entity == entity) out.push_back(e);
  return out;
}

std::optional<double> Profiler::time_of(std::string_view entity,
                                        std::string_view event) const {
  std::lock_guard lock(mutex_);
  for (const auto& e : events_)
    if (e.entity == entity && e.event == event) return e.time;
  return std::nullopt;
}

std::map<std::string, double> Profiler::phase_durations() const {
  std::lock_guard lock(mutex_);
  // Pair *_start with the next matching *_stop per entity.
  struct Open {
    double bootstrap = -1.0;
    double setup = -1.0;
    double exec = -1.0;
  };
  std::unordered_map<std::string, Open> open;
  std::map<std::string, double> out{
      {"bootstrap", 0.0}, {"exec_setup", 0.0}, {"running", 0.0}};
  for (const auto& e : events_) {
    auto& o = open[e.entity];
    if (e.event == events::kBootstrapStart) {
      o.bootstrap = e.time;
    } else if (e.event == events::kBootstrapStop && o.bootstrap >= 0.0) {
      out["bootstrap"] += e.time - o.bootstrap;
      o.bootstrap = -1.0;
    } else if (e.event == events::kExecSetupStart) {
      o.setup = e.time;
    } else if (e.event == events::kExecStart) {
      if (o.setup >= 0.0) {
        out["exec_setup"] += e.time - o.setup;
        o.setup = -1.0;
      }
      o.exec = e.time;
    } else if (e.event == events::kExecStop && o.exec >= 0.0) {
      out["running"] += e.time - o.exec;
      o.exec = -1.0;
    }
  }
  return out;
}

std::size_t Profiler::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void Profiler::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

}  // namespace impress::hpc
