// Post-mortem analytics over profiler event streams — the numbers behind
// "middleware overhead" discussions (RADICAL-Analytics style): per-task
// wait/setup/run decomposition, concurrency profiles, and aggregate
// overhead ratios.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "hpc/profiler.hpp"

namespace impress::hpc {

/// One task's timing decomposition (all in seconds).
struct TaskTiming {
  std::string uid;
  double wait = 0.0;   ///< schedule -> exec_setup_start (queue time)
  double setup = 0.0;  ///< exec_setup_start -> exec_start
  double run = 0.0;    ///< exec_start -> exec_stop
};

/// Decompose every task that reached exec_stop. Tasks missing any of the
/// four events are skipped.
[[nodiscard]] std::vector<TaskTiming> task_timings(const Profiler& profiler);

struct TimingSummary {
  std::size_t tasks = 0;
  double mean_wait = 0.0;
  double p95_wait = 0.0;
  double mean_setup = 0.0;
  double mean_run = 0.0;
  /// Middleware overhead: (wait + setup) / (wait + setup + run) over the
  /// aggregate, in [0,1].
  double overhead_fraction = 0.0;
};

[[nodiscard]] TimingSummary summarize_timings(const Profiler& profiler);

/// Average number of concurrently *running* tasks per time bin over
/// [0, t_end] (t_end <= 0 uses the latest event). The empirical
/// concurrency profile behind the utilization figures.
[[nodiscard]] std::vector<double> concurrency_series(const Profiler& profiler,
                                                     std::size_t bins,
                                                     double t_end = 0.0);

/// Peak of the concurrency profile (exact, not binned).
[[nodiscard]] std::size_t peak_concurrency(const Profiler& profiler);

/// Fault-tolerance roll-up over the event stream: how much of the
/// campaign's work was first-attempt vs recovery.
struct RetrySummary {
  std::size_t retries = 0;        ///< failed attempts resubmitted (kRetry)
  std::size_t timeouts = 0;       ///< attempt-deadline evictions (kTimeout)
  std::size_t requeues = 0;       ///< tasks re-routed off a pilot (kRequeue)
  std::size_t pilot_failures = 0; ///< pilot outages (kPilotFailed)
  std::size_t tasks_retried = 0;  ///< distinct tasks with more than 1 attempt
  int max_attempts = 0;           ///< largest attempt count observed
};

[[nodiscard]] RetrySummary summarize_retries(const Profiler& profiler);

/// Attempts per task uid: the number of kSubmit events recorded for it
/// (>= 1 for anything submitted; > 1 means the retry policy fired).
[[nodiscard]] std::map<std::string, int> attempt_counts(
    const Profiler& profiler);

/// Roll-up of a memoization cache's behaviour over a run (the fold memo
/// cache reports through this; see fold::FoldCache::stats).
struct CacheSummary {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;  ///< resident entries at sampling time
  /// Inserts that lost a duplicate-key race: two threads missed the same
  /// key, both computed, the second computation was discarded in favour
  /// of the incumbent. Needed for conservation: every miss either sits
  /// resident, was evicted, or was a duplicate discard —
  /// misses == entries + evictions + duplicate_discards.
  std::size_t duplicate_discards = 0;

  [[nodiscard]] std::size_t lookups() const noexcept { return hits + misses; }
  /// Fraction of lookups served from cache, in [0,1] (0 when unused).
  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

}  // namespace impress::hpc
