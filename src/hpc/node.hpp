// Compute-node descriptions.
//
// The paper's testbed is a single Rutgers Amarel node: 28 CPU cores,
// 4 NVIDIA Quadro M6000 GPUs (12 GB each), 128 GB RAM. We model nodes as
// plain counts; the ResourcePool hands out concrete core/GPU ids.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace impress::hpc {

struct NodeSpec {
  std::string name = "node";
  std::uint32_t cores = 1;
  std::uint32_t gpus = 0;
  double mem_gb = 0.0;
  /// Per-device memory (GB). 0 on a node with GPUs means the memory axis
  /// is not modeled: its devices satisfy any gpu_mem_gb request.
  double gpu_mem_gb = 0.0;
  /// Relative throughput of this node's GPU generation (1.0 = the paper's
  /// M6000 baseline). Accounting-only: the inference surrogate divides
  /// modeled batch latency by it, but task timing never reads it — mixed
  /// generations are bit-unobservable in campaign results.
  double gpu_speed_factor = 1.0;
  /// Preemptible/spot capacity marker. Informational on the node itself;
  /// evictions are driven by FaultConfig::spot_reclaims against the pilot
  /// hosting the node (see runtime/fault.hpp).
  bool preemptible = false;
};

/// The evaluation node from the paper (§III).
[[nodiscard]] inline NodeSpec amarel_node() {
  return NodeSpec{.name = "amarel-gpu",
                  .cores = 28,
                  .gpus = 4,
                  .mem_gb = 128.0,
                  .gpu_mem_gb = 12.0};
}

/// Deterministic heterogeneous cluster for scale studies: cycles through
/// four node shapes (GPU-dense, the paper's Amarel node, CPU-fat, thin)
/// so an O(10k)-node pool mixes core/GPU/memory ratios the way a real
/// machine does. Pure function of `n` — campaigns over it stay seeded.
[[nodiscard]] inline std::vector<NodeSpec> make_cluster(std::size_t n) {
  std::vector<NodeSpec> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i);
    switch (i % 4) {
      case 0:
        // Modern generation: A100-class — 3x the M6000 baseline.
        nodes.push_back(NodeSpec{.name = "gpu-" + suffix,
                                 .cores = 64,
                                 .gpus = 8,
                                 .mem_gb = 256.0,
                                 .gpu_mem_gb = 40.0,
                                 .gpu_speed_factor = 3.0});
        break;
      case 1:
        nodes.push_back(NodeSpec{.name = "amarel-" + suffix,
                                 .cores = 28,
                                 .gpus = 4,
                                 .mem_gb = 128.0,
                                 .gpu_mem_gb = 12.0,
                                 .gpu_speed_factor = 1.0});
        break;
      case 2:
        nodes.push_back(NodeSpec{.name = "cpu-" + suffix,
                                 .cores = 128,
                                 .gpus = 0,
                                 .mem_gb = 512.0,
                                 .gpu_mem_gb = 0.0});
        break;
      default:
        // Thin nodes model the spot/preemptible tier of the cluster.
        nodes.push_back(NodeSpec{.name = "thin-" + suffix,
                                 .cores = 16,
                                 .gpus = 0,
                                 .mem_gb = 64.0,
                                 .gpu_mem_gb = 0.0,
                                 .preemptible = true});
        break;
    }
  }
  return nodes;
}

}  // namespace impress::hpc
