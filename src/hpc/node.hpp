// Compute-node descriptions.
//
// The paper's testbed is a single Rutgers Amarel node: 28 CPU cores,
// 4 NVIDIA Quadro M6000 GPUs (12 GB each), 128 GB RAM. We model nodes as
// plain counts; the ResourcePool hands out concrete core/GPU ids.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace impress::hpc {

struct NodeSpec {
  std::string name = "node";
  std::uint32_t cores = 1;
  std::uint32_t gpus = 0;
  double mem_gb = 0.0;
  double gpu_mem_gb = 0.0;
};

/// The evaluation node from the paper (§III).
[[nodiscard]] inline NodeSpec amarel_node() {
  return NodeSpec{.name = "amarel-gpu",
                  .cores = 28,
                  .gpus = 4,
                  .mem_gb = 128.0,
                  .gpu_mem_gb = 12.0};
}

/// Deterministic heterogeneous cluster for scale studies: cycles through
/// four node shapes (GPU-dense, the paper's Amarel node, CPU-fat, thin)
/// so an O(10k)-node pool mixes core/GPU/memory ratios the way a real
/// machine does. Pure function of `n` — campaigns over it stay seeded.
[[nodiscard]] inline std::vector<NodeSpec> make_cluster(std::size_t n) {
  std::vector<NodeSpec> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i);
    switch (i % 4) {
      case 0:
        nodes.push_back(NodeSpec{.name = "gpu-" + suffix,
                                 .cores = 64,
                                 .gpus = 8,
                                 .mem_gb = 256.0,
                                 .gpu_mem_gb = 40.0});
        break;
      case 1:
        nodes.push_back(NodeSpec{.name = "amarel-" + suffix,
                                 .cores = 28,
                                 .gpus = 4,
                                 .mem_gb = 128.0,
                                 .gpu_mem_gb = 12.0});
        break;
      case 2:
        nodes.push_back(NodeSpec{.name = "cpu-" + suffix,
                                 .cores = 128,
                                 .gpus = 0,
                                 .mem_gb = 512.0,
                                 .gpu_mem_gb = 0.0});
        break;
      default:
        nodes.push_back(NodeSpec{.name = "thin-" + suffix,
                                 .cores = 16,
                                 .gpus = 0,
                                 .mem_gb = 64.0,
                                 .gpu_mem_gb = 0.0});
        break;
    }
  }
  return nodes;
}

}  // namespace impress::hpc
