// Compute-node descriptions.
//
// The paper's testbed is a single Rutgers Amarel node: 28 CPU cores,
// 4 NVIDIA Quadro M6000 GPUs (12 GB each), 128 GB RAM. We model nodes as
// plain counts; the ResourcePool hands out concrete core/GPU ids.

#pragma once

#include <cstdint>
#include <string>

namespace impress::hpc {

struct NodeSpec {
  std::string name = "node";
  std::uint32_t cores = 1;
  std::uint32_t gpus = 0;
  double mem_gb = 0.0;
  double gpu_mem_gb = 0.0;
};

/// The evaluation node from the paper (§III).
[[nodiscard]] inline NodeSpec amarel_node() {
  return NodeSpec{.name = "amarel-gpu",
                  .cores = 28,
                  .gpus = 4,
                  .mem_gb = 128.0,
                  .gpu_mem_gb = 12.0};
}

}  // namespace impress::hpc
