// Gantt rendering of profiler events: one row per task, setup and run
// segments drawn on a shared time axis. The visual form of the Fig-5
// phase breakdown, and the quickest way to see scheduling behaviour
// (backfill vs head-blocking) at a glance.

#pragma once

#include <cstddef>
#include <string>

#include "hpc/profiler.hpp"

namespace impress::hpc {

struct GanttOptions {
  std::size_t width = 80;      ///< chart columns for the time span
  std::size_t max_rows = 48;   ///< rows beyond this are summarized
  bool include_waiting = true; ///< draw schedule->exec_setup as '.'
};

/// Render every task that has an exec_start event, ordered by start time.
/// Legend: '.' waiting in queue, '-' exec setup, '#' running.
/// `t_end` <= 0 uses the latest event time.
[[nodiscard]] std::string render_gantt(const Profiler& profiler,
                                       double t_end = 0.0,
                                       GanttOptions options = {});

}  // namespace impress::hpc
