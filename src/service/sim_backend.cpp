#include "service/sim_backend.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

namespace impress::service {

SimulatedBackend::SimulatedBackend(SimulatedBackendConfig config)
    : config_(config), model_(config.shape) {
  if (config_.slots == 0) config_.slots = 1;
  if (config_.duration_scale <= 0.0) config_.duration_scale = 1.0;
  events_.reserve(config_.reserve_events);
  // All slots start free at t=0. A vector of identical keys is already a
  // valid min-heap under EventAfter-style greater-than ordering.
  slots_.assign(config_.slots, 0);
}

std::uint64_t SimulatedBackend::scaled_ns(double seconds) const noexcept {
  double ns = seconds * config_.duration_scale * 1e9;
  if (ns < 0.0) ns = 0.0;
  return static_cast<std::uint64_t>(ns);
}

void SimulatedBackend::push_event(const Event& e) {
  events_.push_back(e);
  std::push_heap(events_.begin(), events_.end(), EventAfter{});
}

void SimulatedBackend::start(SubmissionRecord& rec, std::uint64_t now_ns) {
  if (service_ == nullptr)
    throw std::logic_error("SimulatedBackend::start before attach()");
  // Claim the earliest-free slot; the campaign begins when it frees up.
  std::pop_heap(slots_.begin(), slots_.end(), std::greater<>{});
  const std::uint64_t slot_free = slots_.back();
  const std::uint64_t begin = std::max(now_ns, slot_free);

  const core::CampaignExecutionModel::Sample s = model_.sample(rec.seed);
  const std::uint64_t first = begin + scaled_ns(s.first_result_s);
  const std::uint64_t done = begin + scaled_ns(s.total_s);
  rec.quality = s.quality;  // carried to the completion event

  slots_.back() = done;
  std::push_heap(slots_.begin(), slots_.end(), std::greater<>{});

  ++started_;
  ++waiting_;
  push_event({begin, rec.seq, EventKind::kBegin, &rec});
  push_event({first, rec.seq, EventKind::kFirstResult, &rec});
  push_event({done, rec.seq, EventKind::kComplete, &rec});
}

std::size_t SimulatedBackend::advance_to(std::uint64_t now_ns) {
  std::size_t fired = 0;
  while (!events_.empty() && events_.front().at_ns <= now_ns) {
    std::pop_heap(events_.begin(), events_.end(), EventAfter{});
    const Event e = events_.back();
    events_.pop_back();
    ++fired;
    switch (e.kind) {
      case EventKind::kBegin:
        --waiting_;
        ++running_;
        break;
      case EventKind::kFirstResult:
        service_->on_first_result(*e.rec, e.at_ns);
        break;
      case EventKind::kComplete: {
        --running_;
        ++completed_;
        const double quality = e.rec->quality;
        service_->on_complete(*e.rec, e.at_ns, quality);
        break;
      }
    }
  }
  return fired;
}

std::uint64_t SimulatedBackend::next_event_ns() const noexcept {
  return events_.empty() ? std::numeric_limits<std::uint64_t>::max()
                         : events_.front().at_ns;
}

rp::LoadSnapshot SimulatedBackend::load() const {
  rp::LoadSnapshot s;
  s.queued = waiting_;
  s.running = running_;
  s.capacity = config_.slots;
  return s;
}

}  // namespace impress::service
