// CampaignService cold path: snapshotting and rendering. Every string
// and container built per call lives here, deliberately OFF the
// impress_lint hot-path list — the hot TU (service.cpp) stays free of
// string/allocation churn.

#include <iomanip>
#include <sstream>
#include <string>

#include "service/service.hpp"
#include "service/tenant_state.hpp"

namespace impress::service {

ServiceReport CampaignService::report() const {
  ServiceReport r;
  r.tenants.reserve(tenants_.size());
  {
    std::lock_guard<common::TrackedMutex> lock(completion_mutex_);
    for (const auto& tp : tenants_) {
      const TenantState& ts = *tp;
      TenantReport t;
      t.name = ts.cfg.name;
      t.tier = ts.cfg.tier;
      t.weight = ts.cfg.weight;
      t.admitted = ts.admitted.load(std::memory_order_relaxed);
      t.rejected_rate = ts.rejected_rate.load(std::memory_order_relaxed);
      t.rejected_quota = ts.rejected_quota.load(std::memory_order_relaxed);
      t.rejected_capacity =
          ts.rejected_capacity.load(std::memory_order_relaxed);
      t.submitted =
          t.admitted + t.rejected_rate + t.rejected_quota + t.rejected_capacity;
      t.shed = ts.shed;
      t.dispatched = ts.dispatched;
      t.completed = ts.completed;
      t.first_results = ts.first_results;
      t.queued_now = ts.queued;
      t.admission_rate = ts.applied_rate;
      t.mean_first_result_s =
          ts.first_results > 0
              ? static_cast<double>(ts.first_latency_sum_ns) /
                    static_cast<double>(ts.first_results) * 1e-9
              : 0.0;
      t.mean_quality = ts.completed > 0
                           ? ts.quality_sum / static_cast<double>(ts.completed)
                           : 0.0;
      r.tenants.push_back(std::move(t));
    }
    r.first_result_p50_ns = first_result_ns_.quantile(0.50);
    r.first_result_p99_ns = first_result_ns_.quantile(0.99);
    r.first_result_p999_ns = first_result_ns_.quantile(0.999);
  }

  for (const TenantReport& t : r.tenants) {
    r.submitted += t.submitted;
    r.admitted += t.admitted;
    r.rejected += t.rejected_rate + t.rejected_quota + t.rejected_capacity;
    r.shed += t.shed;
    r.dispatched += t.dispatched;
    r.completed += t.completed;
  }
  r.queued_now = queued_total_;
  r.in_flight_now = in_flight_now();
  r.pool = pool_.stats();

  // Jain fairness over weight-normalized completions, active tenants only.
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t active = 0;
  for (const TenantReport& t : r.tenants) {
    if (t.submitted == 0) continue;
    ++active;
    const double x =
        static_cast<double>(t.completed) / static_cast<double>(t.weight);
    sum += x;
    sum_sq += x * x;
  }
  r.fairness_jain =
      active > 0 && sum_sq > 0.0
          ? (sum * sum) / (static_cast<double>(active) * sum_sq)
          : 1.0;
  return r;
}

std::string render(const ServiceReport& report) {
  std::ostringstream out;
  out << "campaign service: " << report.submitted << " submitted, "
      << report.admitted << " admitted, " << report.rejected << " rejected, "
      << report.shed << " shed, " << report.completed << " completed\n"
      << "  first-result latency p50/p99/p999: "
      << static_cast<double>(report.first_result_p50_ns) * 1e-9 << " / "
      << static_cast<double>(report.first_result_p99_ns) * 1e-9 << " / "
      << static_cast<double>(report.first_result_p999_ns) * 1e-9 << " s\n"
      << "  fairness (Jain): " << std::fixed << std::setprecision(4)
      << report.fairness_jain << std::defaultfloat << "  queued "
      << report.queued_now << "  in-flight " << report.in_flight_now
      << "  pool " << report.pool.in_use << "/" << report.pool.capacity
      << " (hw " << report.pool.high_water << ")\n";
  for (const TenantReport& t : report.tenants) {
    out << "  " << std::left << std::setw(16) << t.name << std::right << " ["
        << to_string(t.tier) << " w" << t.weight << "] adm " << t.admitted
        << "/" << t.submitted << " rej r/q/c " << t.rejected_rate << "/"
        << t.rejected_quota << "/" << t.rejected_capacity << " done "
        << t.completed << " rate " << std::fixed << std::setprecision(2)
        << t.admission_rate << std::defaultfloat << "/s q " << std::fixed
        << std::setprecision(3) << t.mean_quality << std::defaultfloat
        << "\n";
  }
  return std::move(out).str();
}

}  // namespace impress::service
