// The pooled submission record at the heart of the service hot path.
//
// One record represents one tenant campaign submission from admission to
// completion. Records are carved from a common::SlabPool at service
// construction and recycled forever after — the steady-state submit path
// performs zero heap allocations (pinned by the counting-allocator test).
//
// The single intrusive `next` link is reused across the record's life:
// MPSC inbox -> per-tenant DRR queue -> (floating while in flight) ->
// pool freelist. A record is in at most one list at any time, so one link
// suffices; whoever holds the list owns the link.

#pragma once

#include <cstdint>

namespace impress::service {

using TenantId = std::uint32_t;

/// Priority tiers: strict priority across tiers, deficit-round-robin
/// fair-share within a tier.
enum class Tier : std::uint8_t {
  kInteractive = 0,  ///< steered/interactive campaigns
  kStandard = 1,     ///< the default production tier
  kBatch = 2,        ///< sweep/backfill campaigns; first to be shed
};
inline constexpr std::size_t kTierCount = 3;

[[nodiscard]] constexpr const char* to_string(Tier t) noexcept {
  switch (t) {
    case Tier::kInteractive: return "interactive";
    case Tier::kStandard: return "standard";
    case Tier::kBatch: return "batch";
  }
  return "?";
}

/// DRR costs are clamped to this at submit: it bounds how many silent
/// rounds a head-of-line submission can spend accumulating deficit.
inline constexpr std::uint32_t kMaxCost = 1024;

enum class SubmissionState : std::uint8_t {
  kFree,      ///< on the pool freelist
  kInbox,     ///< pushed by a producer, not yet drained by the pump
  kQueued,    ///< in its tenant's DRR queue
  kInFlight,  ///< dispatched to the execution backend
};

struct SubmissionRecord {
  SubmissionRecord* next = nullptr;  ///< intrusive link (owner = current list)

  TenantId tenant = 0;
  Tier tier = Tier::kStandard;
  SubmissionState state = SubmissionState::kFree;
  /// DRR cost units (how much of the tenant's share this campaign bills;
  /// scale with the campaign shape).
  std::uint32_t cost = 1;

  std::uint64_t seq = 0;   ///< global admission sequence number
  std::uint64_t seed = 0;  ///< campaign payload seed (drives the backend)

  // Lifecycle timestamps (service clock, nanoseconds). Written by the
  // submit path / pump / backend in sequence; the pool release/acquire
  // and inbox push/drain edges order the cross-thread hand-offs.
  std::uint64_t submit_ns = 0;
  std::uint64_t dispatch_ns = 0;
  std::uint64_t first_result_ns = 0;
  std::uint64_t complete_ns = 0;
  double quality = 0.0;  ///< backend-reported end-of-campaign quality
};

/// Fast-path admission outcome.
enum class Admission : std::uint8_t {
  kAdmitted = 0,
  kRejectedRate,      ///< tenant token bucket empty (backpressure)
  kRejectedQuota,     ///< tenant open-submission quota reached
  kRejectedCapacity,  ///< global open cap or record pool exhausted
  kRejectedBadTenant,
};

[[nodiscard]] constexpr const char* to_string(Admission a) noexcept {
  switch (a) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kRejectedRate: return "rejected-rate";
    case Admission::kRejectedQuota: return "rejected-quota";
    case Admission::kRejectedCapacity: return "rejected-capacity";
    case Admission::kRejectedBadTenant: return "rejected-bad-tenant";
  }
  return "?";
}

struct SubmitResult {
  Admission admission = Admission::kRejectedBadTenant;
  std::uint64_t seq = 0;  ///< valid when admitted

  [[nodiscard]] bool admitted() const noexcept {
    return admission == Admission::kAdmitted;
  }
};

}  // namespace impress::service
