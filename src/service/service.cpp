// CampaignService hot path: submit / tick / completion callbacks.
//
// This translation unit is on the impress_lint hot-path list — no fresh
// std::string temporaries, no per-request container construction, no
// naked `new`. All string rendering lives in service_report.cpp.

#include "service/service.hpp"

#include <memory>
#include <utility>

#include "service/tenant_state.hpp"

namespace impress::service {

CampaignService::CampaignService(ServiceConfig config,
                                 ExecutionBackend& backend)
    : config_(std::move(config)),
      metrics_(obs::ServiceMetrics::registered(config_.registry != nullptr
                                                   ? *config_.registry
                                                   : fallback_registry_)),
      pool_(config_.global_max_open, /*allow_growth=*/false),
      backend_(&backend) {
  if (config_.global_max_open == 0) config_.global_max_open = 1;
  if (config_.max_dispatch_per_tick == 0) config_.max_dispatch_per_tick = 1;
  if (config_.max_dispatched == 0) config_.max_dispatched = 1;
  // All records this service will ever use are carved here; the fixed
  // pool plus the open cap make steady-state exhaustion impossible (the
  // cap admits at most global_max_open concurrent holders and every
  // terminal path releases the record before releasing its cap slot).
  pool_.reserve(config_.global_max_open);
  tenants_.reserve(config_.tenants.size());
  for (std::size_t i = 0; i < config_.tenants.size(); ++i) {
    // Construction-time only; the steady-state paths never re-enter here.
    auto ts = std::make_unique<TenantState>();  // lint:allow hot-path-alloc
    ts->cfg = config_.tenants[i];
    if (ts->cfg.weight == 0) ts->cfg.weight = 1;
    if (ts->cfg.max_open == 0) ts->cfg.max_open = 1;
    ts->controller = RateController(config_.backpressure, ts->cfg.initial_rate);
    ts->applied_rate = config_.backpressure_enabled
                           ? ts->controller.applied_rate()
                           : ts->cfg.initial_rate;
    ts->tokens.store(ts->burst_tokens(), std::memory_order_relaxed);
    tier_members_[static_cast<std::size_t>(ts->cfg.tier)].push_back(
        static_cast<std::uint32_t>(i));
    tenants_.push_back(std::move(ts));
  }
  last_refill_ns_ = config_.start_ns;
  interval_start_ns_ = config_.start_ns;
}

CampaignService::~CampaignService() = default;

SubmitResult CampaignService::submit(TenantId tenant, std::uint64_t seed,
                                     std::uint32_t cost,
                                     std::uint64_t now_ns) {
  metrics_.submitted->inc();
  if (tenant >= tenants_.size()) return {Admission::kRejectedBadTenant, 0};
  TenantState& ts = *tenants_[tenant];
  if (cost == 0) cost = 1;
  if (cost > kMaxCost) cost = kMaxCost;

  // 1) Token bucket — the backpressure controller's admission rate.
  const std::int64_t need = static_cast<std::int64_t>(cost) * kTokenScale;
  if (ts.tokens.fetch_sub(need, std::memory_order_relaxed) < need) {
    ts.tokens.fetch_add(need, std::memory_order_relaxed);
    ts.rejected_rate.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected_rate->inc();
    return {Admission::kRejectedRate, 0};
  }

  // 2) Tenant quota on open submissions (queued + in flight).
  if (ts.open.fetch_add(1, std::memory_order_relaxed) >= ts.cfg.max_open) {
    ts.open.fetch_sub(1, std::memory_order_relaxed);
    ts.tokens.fetch_add(need, std::memory_order_relaxed);
    ts.rejected_quota.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected_quota->inc();
    return {Admission::kRejectedQuota, 0};
  }

  // 3) Global open cap.
  if (global_open_.fetch_add(1, std::memory_order_relaxed) >=
      static_cast<std::int64_t>(config_.global_max_open)) {
    global_open_.fetch_sub(1, std::memory_order_relaxed);
    ts.open.fetch_sub(1, std::memory_order_relaxed);
    ts.tokens.fetch_add(need, std::memory_order_relaxed);
    ts.rejected_capacity.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected_capacity->inc();
    return {Admission::kRejectedCapacity, 0};
  }

  SubmissionRecord* rec = pool_.acquire();
  if (rec == nullptr) {
    // Unreachable given the cap/pool invariant above; kept as a safe
    // degradation path rather than an assert.
    global_open_.fetch_sub(1, std::memory_order_relaxed);
    ts.open.fetch_sub(1, std::memory_order_relaxed);
    ts.tokens.fetch_add(need, std::memory_order_relaxed);
    ts.rejected_capacity.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected_capacity->inc();
    return {Admission::kRejectedCapacity, 0};
  }

  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  rec->next = nullptr;
  rec->tenant = tenant;
  rec->tier = ts.cfg.tier;
  rec->state = SubmissionState::kInbox;
  rec->cost = cost;
  rec->seq = seq;
  rec->seed = seed;
  rec->submit_ns = now_ns;
  rec->dispatch_ns = 0;
  rec->first_result_ns = 0;
  rec->complete_ns = 0;
  rec->quality = 0.0;
  // push() publishes the record: the pump may dispatch, complete and
  // recycle it immediately, so `rec` must not be touched after this line
  // (return the local seq, not rec->seq).
  inbox_.push(rec);
  ts.admitted.fetch_add(1, std::memory_order_relaxed);
  metrics_.admitted->inc();
  return {Admission::kAdmitted, seq};
}

void CampaignService::tick(std::uint64_t now_ns) {
  drain_inbox();
  if (config_.backpressure_enabled) roll_interval(now_ns);
  refill_tokens(now_ns);
  dispatch(now_ns);
  metrics_.queued->set(static_cast<double>(queued_total_));
  metrics_.in_flight->set(
      static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
}

void CampaignService::drain_inbox() {
  SubmissionRecord* rec = inbox_.drain();
  while (rec != nullptr) {
    SubmissionRecord* next = rec->next;
    rec->next = nullptr;
    rec->state = SubmissionState::kQueued;
    TenantState& ts = *tenants_[rec->tenant];
    if (ts.queue_tail == nullptr) {
      ts.queue_head = rec;
    } else {
      ts.queue_tail->next = rec;
    }
    ts.queue_tail = rec;
    ++ts.queued;
    ++queued_total_;
    rec = next;
  }
}

void CampaignService::refill_tokens(std::uint64_t now_ns) {
  if (now_ns <= last_refill_ns_) return;
  const double dt_s =
      static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
  last_refill_ns_ = now_ns;
  for (auto& tp : tenants_) {
    TenantState& ts = *tp;
    const std::int64_t burst = ts.burst_tokens();
    const std::int64_t cur = ts.tokens.load(std::memory_order_relaxed);
    if (cur >= burst) continue;
    const double room = static_cast<double>(burst - cur);
    double add = ts.applied_rate * dt_s * static_cast<double>(kTokenScale);
    if (add > room) add = room;
    const auto add_i = static_cast<std::int64_t>(add);
    if (add_i > 0) ts.tokens.fetch_add(add_i, std::memory_order_relaxed);
  }
}

void CampaignService::roll_interval(std::uint64_t now_ns) {
  const auto interval_ns =
      static_cast<std::uint64_t>(config_.backpressure.interval_s * 1e9);
  if (interval_ns == 0) return;
  if (now_ns < interval_start_ns_ + interval_ns) return;
  const double span_s =
      static_cast<double>(now_ns - interval_start_ns_) * 1e-9;
  interval_start_ns_ = now_ns;
  // Leaf lock: the controller step is pure arithmetic, no calls out.
  std::lock_guard<common::TrackedMutex> lock(completion_mutex_);
  for (auto& tp : tenants_) {
    TenantState& ts = *tp;
    const std::uint64_t d_completed = ts.completed - ts.prev_completed;
    const std::uint64_t d_first = ts.first_results - ts.prev_first_results;
    const std::uint64_t d_latency =
        ts.first_latency_sum_ns - ts.prev_first_latency_sum_ns;
    const double d_quality = ts.quality_sum - ts.prev_quality_sum;
    // Loss = sheds only: work admitted and then discarded. Pacing
    // rejections (token bucket, quota) are the controller's own choice —
    // counting them as loss would reward raising the rate just to
    // reclassify rejections, the opposite of backpressure.
    const std::uint64_t d_drop = ts.shed - ts.prev_shed;
    ts.prev_completed = ts.completed;
    ts.prev_first_results = ts.first_results;
    ts.prev_first_latency_sum_ns = ts.first_latency_sum_ns;
    ts.prev_quality_sum = ts.quality_sum;
    ts.prev_shed = ts.shed;

    IntervalStats stats;
    stats.goodput = static_cast<double>(d_completed) / span_s;
    stats.mean_quality =
        d_completed > 0 ? d_quality / static_cast<double>(d_completed) : 0.0;
    stats.mean_first_result_s =
        d_first > 0
            ? static_cast<double>(d_latency) / static_cast<double>(d_first) *
                  1e-9
            : 0.0;
    stats.drop_rate = static_cast<double>(d_drop) / span_s;
    ts.controller.on_interval(stats);
    ts.applied_rate = ts.controller.applied_rate();
  }
}

bool CampaignService::shed_if_stale(TenantState& ts, SubmissionRecord& rec,
                                    std::uint64_t now_ns) {
  if (config_.shed_age_ns == 0) return false;
  if (now_ns - rec.submit_ns <= config_.shed_age_ns) return false;
  ts.queue_head = rec.next;
  if (ts.queue_head == nullptr) ts.queue_tail = nullptr;
  rec.next = nullptr;
  --ts.queued;
  --queued_total_;
  ++ts.shed;
  ++shed_total_;
  metrics_.shed->inc();
  rec.state = SubmissionState::kFree;
  pool_.release(&rec);
  release_open(ts);
  return true;
}

void CampaignService::dispatch(std::uint64_t now_ns) {
  std::size_t budget = config_.max_dispatch_per_tick;
  const auto dispatch_cap = static_cast<std::int64_t>(config_.max_dispatched);
  // Strict priority across tiers; work-conserving DRR within a tier:
  // keep cycling the rotation while anything dispatches or a non-empty
  // queue is still accumulating deficit (kMaxCost bounds the rounds a
  // head-of-line submission can stay deficit-blocked).
  for (std::size_t tier = 0; tier < kTierCount; ++tier) {
    auto& members = tier_members_[tier];
    if (members.empty()) continue;
    std::size_t& cursor = tier_cursor_[tier];
    while (true) {
      bool progress = false;
      bool deficit_blocked = false;
      for (std::size_t k = 0; k < members.size(); ++k) {
        const std::size_t pos = (cursor + k) % members.size();
        if (budget == 0 ||
            in_flight_.load(std::memory_order_relaxed) >= dispatch_cap) {
          // Resume this rotation at the starved tenant next tick.
          cursor = pos;
          return;
        }
        TenantState& ts = *tenants_[members[pos]];
        if (ts.queue_head == nullptr) {
          ts.deficit = 0;
          continue;
        }
        ts.deficit +=
            static_cast<std::uint64_t>(config_.drr_quantum) * ts.cfg.weight;
        while (ts.queue_head != nullptr && budget > 0 &&
               in_flight_.load(std::memory_order_relaxed) < dispatch_cap) {
          SubmissionRecord* rec = ts.queue_head;
          if (shed_if_stale(ts, *rec, now_ns)) {
            progress = true;
            continue;
          }
          if (ts.deficit < rec->cost) break;
          ts.queue_head = rec->next;
          if (ts.queue_head == nullptr) ts.queue_tail = nullptr;
          rec->next = nullptr;
          --ts.queued;
          --queued_total_;
          ts.deficit -= rec->cost;
          rec->state = SubmissionState::kInFlight;
          rec->dispatch_ns = now_ns;
          ++ts.dispatched;
          ++dispatched_total_;
          in_flight_.fetch_add(1, std::memory_order_relaxed);
          metrics_.dispatched->inc();
          --budget;
          progress = true;
          // May call back into on_first_result/on_complete synchronously
          // (virtual-time backends); the record is already off every
          // pump list and no pump lock is held.
          backend_->start(*rec, now_ns);
        }
        if (ts.queue_head == nullptr)
          ts.deficit = 0;
        else if (ts.deficit < ts.queue_head->cost)
          deficit_blocked = true;
      }
      cursor = (cursor + 1) % members.size();
      if (!progress && !deficit_blocked) break;
    }
  }
}

void CampaignService::on_first_result(SubmissionRecord& rec,
                                      std::uint64_t now_ns) {
  rec.first_result_ns = now_ns;
  const std::uint64_t latency = now_ns - rec.submit_ns;
  TenantState& ts = *tenants_[rec.tenant];
  {
    std::lock_guard<common::TrackedMutex> lock(completion_mutex_);
    first_result_ns_.record(latency);
    ++ts.first_results;
    ts.first_latency_sum_ns += latency;
  }
  metrics_.first_result_seconds->observe(static_cast<double>(latency) * 1e-9);
}

void CampaignService::on_complete(SubmissionRecord& rec, std::uint64_t now_ns,
                                  double quality) {
  // A completion with no prior first result counts as both (the service
  // treats first_result_ns == 0 as unset).
  if (rec.first_result_ns == 0) on_first_result(rec, now_ns);
  rec.complete_ns = now_ns;
  rec.quality = quality;
  TenantState& ts = *tenants_[rec.tenant];
  {
    std::lock_guard<common::TrackedMutex> lock(completion_mutex_);
    ++ts.completed;
    ts.quality_sum += quality;
  }
  metrics_.completed->inc();
  rec.state = SubmissionState::kFree;
  // Release the record BEFORE the cap slots: a submit that passes the cap
  // must always find a free record (see the ctor invariant).
  pool_.release(&rec);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  release_open(ts);
}

void CampaignService::release_open(TenantState& ts) {
  ts.open.fetch_sub(1, std::memory_order_relaxed);
  global_open_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t CampaignService::open_now() const noexcept {
  const std::int64_t v = global_open_.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

std::size_t CampaignService::in_flight_now() const noexcept {
  const std::int64_t v = in_flight_.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

double CampaignService::admission_rate(TenantId tenant) const {
  return tenant < tenants_.size() ? tenants_[tenant]->applied_rate : 0.0;
}

}  // namespace impress::service
