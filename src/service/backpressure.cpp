#include "service/backpressure.hpp"

#include <algorithm>
#include <cmath>

namespace impress::service {

RateController::RateController(const BackpressureConfig& config,
                               double initial_rate)
    : config_(config),
      rate_(std::clamp(initial_rate, config.min_rate, config.max_rate)) {}

double RateController::applied_rate() const noexcept {
  const double factor = phase_ == Phase::kProbeUp ? 1.0 + config_.epsilon
                                                  : 1.0 - config_.epsilon;
  return rate_ * factor;
}

double RateController::utility(const IntervalStats& stats,
                               const BackpressureConfig& config) noexcept {
  const double delay_term = config.latency_ref_s > 0.0
                                ? stats.mean_first_result_s / config.latency_ref_s
                                : 0.0;
  return stats.goodput * stats.mean_quality -
         config.delay_penalty * stats.goodput * delay_term -
         config.loss_penalty * stats.drop_rate;
}

double RateController::on_interval(const IntervalStats& stats) noexcept {
  const double u = utility(stats, config_);
  if (phase_ == Phase::kProbeUp) {
    utility_up_ = u;
    phase_ = Phase::kProbeDown;
    return applied_rate();
  }

  // Down-probe just finished: form the paired gradient and move.
  const double span = 2.0 * config_.epsilon * rate_;
  const double gradient = span > 0.0 ? (utility_up_ - u) / span : 0.0;
  int direction = 0;
  if (gradient > 0.0) direction = 1;
  else if (gradient < 0.0) direction = -1;

  if (direction != 0 && direction == last_direction_)
    confidence_ = std::min(confidence_ + 1, config_.max_confidence);
  else
    confidence_ = 1;
  last_direction_ = direction;

  // Step proportionally to the normalized gradient, amplified by streak
  // confidence, capped to a fraction of the current rate. Normalizing by
  // |U|/r keeps the step scale-free across tenants with very different
  // goodput magnitudes.
  const double scale = std::max({std::abs(utility_up_), std::abs(u),
                                 config_.min_rate});
  const double normalized = gradient * rate_ / scale;
  double step = config_.step_gain * config_.epsilon * rate_ * normalized *
                static_cast<double>(confidence_);
  const double cap = config_.max_step_frac * rate_;
  step = std::clamp(step, -cap, cap);
  rate_ = std::clamp(rate_ + step, config_.min_rate, config_.max_rate);

  phase_ = Phase::kProbeUp;
  return applied_rate();
}

}  // namespace impress::service
