// PCC-style per-tenant admission-rate control.
//
// The service treats each tenant's admission rate the way PCC/Aurora
// treats a sending rate: time is sliced into monitoring intervals, each
// interval measures a utility
//
//   U(r) = goodput * quality
//          - delay_penalty * goodput * (first_result_delay / latency_ref)
//          - loss_penalty  * drop_rate
//
// and the controller performs paired probe trials at rate*(1+eps) and
// rate*(1-eps), then steps the base rate along the empirical utility
// gradient with confidence amplification on consecutive same-direction
// moves. Everything here is pure arithmetic on caller-supplied stats —
// deterministic, allocation-free, and unit-testable without a service.

#pragma once

#include <cstdint>

namespace impress::service {

struct BackpressureConfig {
  /// Monitoring-interval length (service-clock seconds). Should cover at
  /// least a few campaign first-result times or the gradient is noise.
  double interval_s = 4.0;
  /// Probe amplitude: trials run at rate*(1 +/- epsilon).
  double epsilon = 0.05;
  /// Gradient step gain (fraction of the probe span moved per unit of
  /// normalized utility gradient).
  double step_gain = 0.5;
  /// Per-move cap as a fraction of the current rate, after confidence
  /// amplification (keeps a lucky gradient from tripling the rate).
  double max_step_frac = 0.5;
  /// Consecutive same-direction moves multiply the step up to this factor.
  std::uint32_t max_confidence = 4;
  /// Admission-rate clamp (submissions/second).
  double min_rate = 0.05;
  double max_rate = 1e9;
  /// Utility weights. latency_ref_s normalizes the queue-delay term so
  /// the penalty is O(goodput) when first-result latency reaches it.
  double delay_penalty = 0.7;
  double loss_penalty = 0.5;
  double latency_ref_s = 3600.0;
};

/// What one monitoring interval measured for one tenant.
struct IntervalStats {
  double goodput = 0.0;       ///< completed campaigns per second
  double mean_quality = 0.0;  ///< mean end-of-campaign quality in [0, 1]
  double mean_first_result_s = 0.0;  ///< mean submit -> first-result delay
  /// Sheds per second: admitted work discarded before execution (true
  /// loss). Pacing rejections are deliberately excluded — see
  /// CampaignService::roll_interval.
  double drop_rate = 0.0;
};

class RateController {
 public:
  RateController() = default;
  RateController(const BackpressureConfig& config, double initial_rate);

  /// The rate the service should enforce right now: the base rate scaled
  /// by the current probe direction.
  [[nodiscard]] double applied_rate() const noexcept;
  /// The base (unprobed) rate.
  [[nodiscard]] double rate() const noexcept { return rate_; }

  /// Close the current monitoring interval with its measured stats and
  /// advance the probe/move state machine. Returns applied_rate() for the
  /// next interval.
  double on_interval(const IntervalStats& stats) noexcept;

  /// The PCC utility function (exposed for tests and the bench report).
  [[nodiscard]] static double utility(const IntervalStats& stats,
                                      const BackpressureConfig& config) noexcept;

 private:
  enum class Phase : std::uint8_t { kProbeUp, kProbeDown };

  BackpressureConfig config_{};
  double rate_ = 1.0;
  Phase phase_ = Phase::kProbeUp;
  double utility_up_ = 0.0;
  int last_direction_ = 0;
  std::uint32_t confidence_ = 1;
};

}  // namespace impress::service
