// CampaignService: the multi-tenant front door for campaign submissions.
//
// N tenants submit campaigns concurrently; the service applies admission
// control (per-tenant token-bucket rates + open-submission quotas + a
// global open cap), queues admitted work per tenant, and dispatches with
// strict priority across tiers and deficit-round-robin fair-share within
// a tier. Per-tenant admission rates adapt via PCC-style utility-gradient
// backpressure (service/backpressure.hpp).
//
// Hot-path contract (pinned by tests/service/test_alloc_free.cpp and the
// impress_lint hot-path rules): after construction, submit() performs
// ZERO heap allocations and no string work — records come from a fixed
// SlabPool, admission is a handful of relaxed atomics, and enqueue is one
// lock-free MPSC push. tick() and the completion callbacks are likewise
// allocation-free in steady state.
//
// Threading model:
//   * submit()            — any thread, lock-free fast path;
//   * tick()              — exactly ONE pump thread (or the bench loop);
//   * on_first_result()/
//     on_complete()       — any thread (the backend's), guarded by a leaf
//                           mutex + atomics;
//   * report()            — cold path; exact once producers/backend have
//                           quiesced.
//
// Determinism: every timestamp is caller-supplied (std::uint64_t
// nanoseconds on an arbitrary epoch), so a single-threaded driver in
// virtual time replays the exact admission/rejection/dispatch sequence
// for a given seed — the same (time, seq) contract the simulator keeps.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/lockdep.hpp"
#include "common/pool.hpp"
#include "obs/obs.hpp"
#include "runtime/load.hpp"
#include "service/backpressure.hpp"
#include "service/submission.hpp"

namespace impress::service {

/// Where admitted submissions execute. start() takes ownership of the
/// record until it reports back via CampaignService::on_first_result /
/// on_complete — synchronously (virtual-time backends) or from its own
/// threads (the stress suite's executor). Every started record must
/// eventually complete.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;
  virtual void start(SubmissionRecord& rec, std::uint64_t now_ns) = 0;
  /// Queue-depth/saturation signal, mirroring rp::Session::load_snapshot.
  [[nodiscard]] virtual rp::LoadSnapshot load() const = 0;
};

struct TenantConfig {
  std::string name;  ///< cold path only (reports); never touched by submit
  Tier tier = Tier::kStandard;
  /// DRR weight: relative share of dispatch bandwidth within the tier.
  std::uint32_t weight = 1;
  /// Quota: max open submissions (queued + in flight) for this tenant.
  std::uint32_t max_open = 256;
  /// Starting admission rate (submissions/s); backpressure adapts it.
  double initial_rate = 8.0;
  /// Token-bucket depth in seconds of the current rate (burst headroom).
  double burst_s = 2.0;
};

struct ServiceConfig {
  std::vector<TenantConfig> tenants;
  /// Global cap on open submissions; also sizes the record pool, so the
  /// steady state can never need a fresh allocation.
  std::size_t global_max_open = 4096;
  /// Max submissions dispatched to the backend and not yet complete.
  std::size_t max_dispatched = 512;
  /// Dispatch budget per tick() (bounds pump latency per call).
  std::size_t max_dispatch_per_tick = 256;
  /// Queued submissions older than this are shed at dispatch time
  /// (0 = never shed).
  std::uint64_t shed_age_ns = 0;
  /// DRR quantum: cost units credited per round per unit of weight.
  std::uint32_t drr_quantum = 4;
  bool backpressure_enabled = true;
  BackpressureConfig backpressure;
  /// Metrics sink; nullptr = a private disabled registry (no-op handles).
  obs::MetricsRegistry* registry = nullptr;
  /// Service clock origin (first tick must be >= this).
  std::uint64_t start_ns = 0;
};

/// Cold-path snapshot of one tenant (see CampaignService::report()).
struct TenantReport {
  std::string name;
  Tier tier = Tier::kStandard;
  std::uint32_t weight = 1;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_rate = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_capacity = 0;
  std::uint64_t shed = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t first_results = 0;
  std::uint32_t queued_now = 0;
  double admission_rate = 0.0;  ///< controller's current applied rate
  double mean_first_result_s = 0.0;
  double mean_quality = 0.0;
};

struct ServiceReport {
  std::vector<TenantReport> tenants;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  ///< all rejection classes
  std::uint64_t shed = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::size_t queued_now = 0;
  std::size_t in_flight_now = 0;
  /// Submit -> first-result latency quantiles (ns; 0 when empty).
  std::uint64_t first_result_p50_ns = 0;
  std::uint64_t first_result_p99_ns = 0;
  std::uint64_t first_result_p999_ns = 0;
  /// Jain fairness index over per-tenant weight-normalized completions
  /// (tenants that submitted nothing are excluded; 1.0 = perfectly fair).
  double fairness_jain = 1.0;
  common::SlabPool<SubmissionRecord>::Stats pool;
};

/// Human-readable table (cold path; service_report.cpp).
[[nodiscard]] std::string render(const ServiceReport& report);

class CampaignService {
 public:
  CampaignService(ServiceConfig config, ExecutionBackend& backend);
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Admission fast path — any thread, allocation-free, lock-free except
  /// the pool freelist pop. `cost` is the DRR billing weight (>= 1);
  /// `seed` is the campaign payload seed handed to the backend.
  SubmitResult submit(TenantId tenant, std::uint64_t seed, std::uint32_t cost,
                      std::uint64_t now_ns);

  /// The pump: drain the inbox, refill token buckets, roll monitoring
  /// intervals (backpressure), shed stale work, and dispatch via
  /// tiered DRR. Single consumer — call from exactly one thread.
  void tick(std::uint64_t now_ns);

  /// Backend callbacks (any thread). A completion without a prior first
  /// result counts as both (single-result campaigns).
  void on_first_result(SubmissionRecord& rec, std::uint64_t now_ns);
  void on_complete(SubmissionRecord& rec, std::uint64_t now_ns,
                   double quality);

  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return tenants_.size();
  }
  /// Open submissions (admitted, not yet complete/shed) right now.
  [[nodiscard]] std::size_t open_now() const noexcept;
  /// Dispatched-to-backend and not yet complete.
  [[nodiscard]] std::size_t in_flight_now() const noexcept;
  /// Current applied admission rate for one tenant (pump-written; exact
  /// between ticks).
  [[nodiscard]] double admission_rate(TenantId tenant) const;

  /// Cold-path snapshot (exact once producers and backend are quiet).
  [[nodiscard]] ServiceReport report() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct TenantState;

  // tick() stages (pump thread only).
  void drain_inbox();
  void refill_tokens(std::uint64_t now_ns);
  void roll_interval(std::uint64_t now_ns);
  void dispatch(std::uint64_t now_ns);
  /// True when the record was shed instead of dispatched.
  bool shed_if_stale(TenantState& ts, SubmissionRecord& rec,
                     std::uint64_t now_ns);
  void release_open(TenantState& ts);

  ServiceConfig config_;
  obs::MetricsRegistry fallback_registry_{false};
  obs::ServiceMetrics metrics_;

  /// Leaf lock guarding the first-result latency histogram and the
  /// completion-side per-tenant sums (never calls out while held).
  mutable common::TrackedMutex completion_mutex_{
      "CampaignService::completion_mutex_"};

  common::SlabPool<SubmissionRecord> pool_;
  common::MpscInbox<SubmissionRecord> inbox_;
  std::vector<std::unique_ptr<TenantState>> tenants_;
  ExecutionBackend* backend_;

  // Submit fast path (any thread).
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::int64_t> global_open_{0};

  // Dispatch/completion shared state.
  std::atomic<std::int64_t> in_flight_{0};

  // Pump-owned.
  std::vector<std::uint32_t> tier_members_[kTierCount];
  std::size_t tier_cursor_[kTierCount] = {};
  std::size_t queued_total_ = 0;
  std::uint64_t last_refill_ns_ = 0;
  std::uint64_t interval_start_ns_ = 0;
  std::uint64_t shed_total_ = 0;
  std::uint64_t dispatched_total_ = 0;

  common::HdrHistogram first_result_ns_{7};  // guarded by completion_mutex_
};

}  // namespace impress::service
