// Internal: the per-tenant state block behind CampaignService. Shared by
// service.cpp (hot path) and service_report.cpp (cold path) only — not
// part of the public service API.
//
// Field groups mirror the service threading model (service.hpp):
//   * submit fast path — relaxed atomics, any thread;
//   * pump-owned       — plain fields, exactly one tick() thread;
//   * completion side  — guarded by CampaignService::completion_mutex_.

#pragma once

#include <atomic>
#include <cstdint>

#include "service/backpressure.hpp"
#include "service/service.hpp"
#include "service/submission.hpp"

namespace impress::service {

/// Token-bucket fixed point: one admission token = kTokenScale units
/// (integer atomics keep the submit path free of double CAS loops).
inline constexpr std::int64_t kTokenScale = std::int64_t{1} << 20;

/// Bucket depth floor in tokens, so multi-cost submissions can always be
/// admitted eventually even at very low adapted rates.
inline constexpr double kMinBurstTokens = 4.0;

struct CampaignService::TenantState {
  TenantConfig cfg;

  // --- submit fast path (any thread, relaxed atomics)
  std::atomic<std::int64_t> tokens{0};
  std::atomic<std::uint32_t> open{0};  ///< queued + in flight (quota)
  // (total submitted is derived: admitted + the three rejection classes)
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected_rate{0};
  std::atomic<std::uint64_t> rejected_quota{0};
  std::atomic<std::uint64_t> rejected_capacity{0};

  // --- pump-owned (the single tick() thread)
  SubmissionRecord* queue_head = nullptr;  ///< intrusive FIFO (DRR queue)
  SubmissionRecord* queue_tail = nullptr;
  std::uint32_t queued = 0;
  std::uint64_t deficit = 0;  ///< DRR deficit counter (cost units)
  std::uint64_t dispatched = 0;
  std::uint64_t shed = 0;
  double applied_rate = 0.0;  ///< controller rate incl. probe direction
  RateController controller;
  // Previous-interval cumulative snapshots (monitoring-interval deltas).
  std::uint64_t prev_completed = 0;
  std::uint64_t prev_first_results = 0;
  std::uint64_t prev_first_latency_sum_ns = 0;
  double prev_quality_sum = 0.0;
  std::uint64_t prev_shed = 0;

  // --- completion side (guarded by CampaignService::completion_mutex_)
  std::uint64_t completed = 0;
  std::uint64_t first_results = 0;
  std::uint64_t first_latency_sum_ns = 0;
  double quality_sum = 0.0;

  /// Current bucket depth in fixed-point units.
  [[nodiscard]] std::int64_t burst_tokens() const noexcept {
    double burst = cfg.burst_s * applied_rate;
    if (burst < kMinBurstTokens) burst = kMinBurstTokens;
    return static_cast<std::int64_t>(burst * static_cast<double>(kTokenScale));
  }
};

}  // namespace impress::service
