// SimulatedBackend: a virtual-time ExecutionBackend over the campaign
// execution model (core/campaign_handle.hpp).
//
// Models a fixed-width execution fleet: `slots` campaigns run
// concurrently; a dispatched record begins on the earliest-free slot (or
// immediately if one is idle), takes first-result/completion times from
// CampaignExecutionModel::sample(record.seed), and reports back to the
// owning service at those virtual timestamps when the driver calls
// advance_to(). Fully deterministic: events fire in (time, admission
// seq) order, and all heap storage is reserved up front so the steady
// state is allocation-free.
//
// Single-threaded by contract: start() is only called from the service
// pump, advance_to() from the same driver loop. The threaded stress
// suite uses its own thread-pool backend instead.

#pragma once

#include <cstdint>
#include <vector>

#include "core/campaign_handle.hpp"
#include "service/service.hpp"

namespace impress::service {

struct SimulatedBackendConfig {
  /// Concurrent campaign executions (the fleet width).
  std::size_t slots = 64;
  /// Multiplier on model durations — < 1 compresses campaigns so service
  /// studies run many lifecycles per virtual hour (see docs/service.md).
  double duration_scale = 1.0;
  /// Shape of every executed campaign (per-record shapes would come from
  /// the submission spec in a richer backend).
  core::CampaignShape shape{};
  /// Event-heap reservation; sized from the service's open cap so pushes
  /// never reallocate in steady state.
  std::size_t reserve_events = 16384;
};

class SimulatedBackend final : public ExecutionBackend {
 public:
  explicit SimulatedBackend(SimulatedBackendConfig config = {});

  /// Must be called once before the service dispatches anything.
  void attach(CampaignService& service) noexcept { service_ = &service; }

  // ExecutionBackend
  void start(SubmissionRecord& rec, std::uint64_t now_ns) override;
  [[nodiscard]] rp::LoadSnapshot load() const override;

  /// Fire every pending begin/first-result/completion event with
  /// timestamp <= now_ns, in (time, seq) order, invoking the service
  /// callbacks. Returns the number of events fired.
  std::size_t advance_to(std::uint64_t now_ns);

  /// Timestamp of the next pending event, or UINT64_MAX when idle.
  [[nodiscard]] std::uint64_t next_event_ns() const noexcept;

  [[nodiscard]] std::size_t started() const noexcept { return started_; }
  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }

 private:
  enum class EventKind : std::uint8_t { kBegin, kFirstResult, kComplete };

  struct Event {
    std::uint64_t at_ns = 0;
    std::uint64_t seq = 0;  ///< record seq: deterministic tie-break
    EventKind kind = EventKind::kBegin;
    SubmissionRecord* rec = nullptr;
  };
  /// Min-heap comparator via std::push_heap's max-heap convention.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
      if (a.seq != b.seq) return a.seq > b.seq;
      return static_cast<int>(a.kind) > static_cast<int>(b.kind);
    }
  };

  void push_event(const Event& e);
  [[nodiscard]] std::uint64_t scaled_ns(double seconds) const noexcept;

  SimulatedBackendConfig config_;
  core::CampaignExecutionModel model_;
  CampaignService* service_ = nullptr;
  std::vector<Event> events_;          ///< heap (EventAfter)
  std::vector<std::uint64_t> slots_;   ///< heap of slot free times (min on top)
  std::size_t waiting_ = 0;  ///< dispatched, begin event still in the future
  std::size_t running_ = 0;
  std::size_t started_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace impress::service
