#include "obs/metrics.hpp"

#include <algorithm>

namespace impress::obs {

namespace detail {

std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

}  // namespace detail

Histogram::Histogram(bool enabled, std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  stripes_.reserve(detail::kStripes);
  for (std::size_t i = 0; i < detail::kStripes; ++i)
    stripes_.push_back(std::make_unique<Stripe>(bounds_.size() + 1));
}

void Histogram::observe(double v) noexcept {
  if (!enabled_) return;
  std::size_t bucket = bounds_.size();  // +Inf
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  Stripe& s = *stripes_[detail::stripe_index()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(s.sum, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& s : stripes_)
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] += s->buckets[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : stripes_)
    total += s->count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const auto& s : stripes_)
    total += s->sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::preload(const std::vector<std::uint64_t>& buckets,
                        std::uint64_t count, double sum) noexcept {
  if (!enabled_) return;
  Stripe& s = *stripes_[0];
  const std::size_t n = std::min(buckets.size(), s.buckets.size());
  for (std::size_t i = 0; i < n; ++i)
    s.buckets[i].store(buckets[i], std::memory_order_relaxed);
  s.count.store(count, std::memory_order_relaxed);
  s.sum.store(sum, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_seconds_bounds() {
  return {0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0, 43200.0};
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

MetricsRegistry::MetricsRegistry(bool enabled)
    : enabled_(IMPRESS_OBS_COMPILED_IN != 0 && enabled) {}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>(enabled_);
  return slot.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>(enabled_);
  return slot.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>(enabled_, std::move(bounds));
  return slot.get();
}

void MetricsRegistry::preload(const MetricsSnapshot& snap) {
  if (!enabled()) return;
  for (const auto& c : snap.counters) counter(c.name)->add(c.value);
  for (const auto& g : snap.gauges) gauge(g.name)->set(g.value);
  for (const auto& h : snap.histograms)
    histogram(h.name, h.bounds)->preload(h.buckets, h.count, h.sum);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    out.counters.push_back(CounterSample{name, c->value()});
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    out.gauges.push_back(GaugeSample{name, g->value()});
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.push_back(HistogramSample{name, h->bounds(),
                                             h->bucket_counts(), h->count(),
                                             h->sum()});
  }
  return out;  // std::map iteration => already sorted by name
}

}  // namespace impress::obs
