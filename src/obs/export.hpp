// Exporters: chrome://tracing-compatible JSON (loads in Perfetto and
// chrome://tracing) and a Prometheus-style text dump.
//
// Chrome trace mapping: each closed span becomes one complete event
//   {"name", "cat", "ph":"X", "ts": <µs>, "dur": <µs>, "pid":1,
//    "tid": <track>, "args": {...attrs, "span_id", "parent_id"}}
// Track (tid) assignment keeps the tree readable: the campaign root is
// track 0, every pipeline span opens its own track, and every other span
// inherits its parent's track — so one horizontal lane per pipeline with
// stage/task/attempt/phase spans stacked inside it by time containment.
// "M"-phase metadata events name the tracks. Spans never closed are
// emitted with dur 0 (visible as instants rather than dropped).

#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace impress::obs {

/// Build the chrome trace document from a span snapshot.
[[nodiscard]] common::Json chrome_trace(const std::vector<SpanRecord>& spans);

/// Serialized chrome trace document (compact unless indent > 0).
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<SpanRecord>& spans, int indent = 0);

/// Prometheus text exposition format: # HELP/# TYPE headers, _total
/// suffix on counters, histogram cumulative _bucket{le="..."} series plus
/// _sum and _count.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

/// (De)serialize span/metrics snapshots for session dumps
/// (core/session_dump.hpp embeds these under "trace" / "metrics").
[[nodiscard]] common::Json spans_to_json(const std::vector<SpanRecord>& spans);
[[nodiscard]] std::vector<SpanRecord> spans_from_json(const common::Json& doc);
[[nodiscard]] common::Json metrics_to_json(const MetricsSnapshot& snapshot);
[[nodiscard]] MetricsSnapshot metrics_from_json(const common::Json& doc);

}  // namespace impress::obs
