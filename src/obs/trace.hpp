// Structured tracing: RAII spans with parent/child nesting, recorded into
// thread-safe per-thread buffers (the hpc::Profiler pattern) and exported
// as a chrome://tracing / Perfetto-loadable JSON document (obs/export.hpp).
//
// A span is an interval [start, end] with a name, a category, an optional
// parent span and string attributes. Span trees carry campaign / pipeline
// / task / attempt identity, so a fold retry shows up as a sibling
// "attempt" span under its task, inside its pipeline-iteration stage span.
//
// Determinism contract (pinned by tests/obs/test_golden_trace.cpp and the
// Determinism suite): tracing never draws from any rng and never feeds
// back into the traced computation, so enabling it must not perturb
// campaign results — the same contract the fold cache honours. In
// simulated mode the span tree (names, nesting, ordinal order) is itself
// a pure function of the seed.
//
// Cost model: a disabled tracer (the default) costs one branch per call
// site; no buffer is ever allocated. Compiling with
// IMPRESS_OBS_COMPILED_IN=0 (cmake -DIMPRESS_OBS=OFF) additionally turns
// every recording member into a statically checkable no-op —
// obs::kCompiledIn lets tests assert which build they are in.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef IMPRESS_OBS_COMPILED_IN
#define IMPRESS_OBS_COMPILED_IN 1
#endif

namespace impress::obs {

/// Compile-time switch: when false every Tracer/ScopedSpan member is an
/// empty inline function (the "no-op sink") and the optimizer erases the
/// call sites entirely.
inline constexpr bool kCompiledIn = IMPRESS_OBS_COMPILED_IN != 0;

/// Identifies one span within one Tracer; 0 means "no span".
using SpanId = std::uint64_t;

/// Well-known span categories (the nesting levels of a campaign trace).
namespace categories {
inline constexpr std::string_view kCampaign = "campaign";
inline constexpr std::string_view kPipeline = "pipeline";
inline constexpr std::string_view kStage = "stage";
inline constexpr std::string_view kTask = "task";
inline constexpr std::string_view kAttempt = "attempt";
inline constexpr std::string_view kPhase = "phase";
inline constexpr std::string_view kWork = "work";
inline constexpr std::string_view kDecision = "decision";
}  // namespace categories

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root
  std::string name;
  std::string category;
  double start = 0.0;
  double end = -1.0;  ///< < start means the span was never closed
  std::uint64_t open_seq = 0;   ///< global ordinal of the begin event
  std::uint64_t close_seq = 0;  ///< 0 when never closed
  std::vector<std::pair<std::string, std::string>> attrs;

  [[nodiscard]] bool closed() const noexcept { return end >= start; }
};

class Tracer {
 public:
  explicit Tracer(bool enabled = false);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return kCompiledIn && enabled_;
  }

  /// Wire the clock used by ScopedSpan and now(); spans recorded through
  /// the explicit-time overloads never consult it.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }
  [[nodiscard]] double now() const { return clock_ ? clock_() : 0.0; }

  /// Open a span at `time`; returns its id (0 when disabled, which every
  /// other member accepts and ignores).
  [[nodiscard]] SpanId begin(double time, std::string_view name,
                             std::string_view category, SpanId parent = 0);
  /// Close a span. Closing id 0 (or twice) is a no-op.
  void end(SpanId id, double time);
  /// Attach a key/value attribute to an open-or-closed span.
  void attr(SpanId id, std::string_view key, std::string_view value);
  /// Zero-duration marker span (begin and end at `time`).
  SpanId instant(double time, std::string_view name,
                 std::string_view category, SpanId parent = 0);

  /// All spans, ordered by open ordinal, with attributes and close times
  /// merged in. Thread-safe snapshot.
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  /// Number of spans opened so far.
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Checkpoint restore: seed the tracer with spans recorded before the
  /// cut and continue numbering at `next_seq` (the value checkpointed
  /// from the original run, so post-resume seqs match the uninterrupted
  /// run's). Post-resume end()/attr() calls on a preloaded span id merge
  /// into its record. Call once, before any concurrent use.
  void preload(std::vector<SpanRecord> spans, std::uint64_t next_seq);
  /// Next seq the tracer will assign (checkpointed alongside spans()).
  [[nodiscard]] std::uint64_t next_seq() const noexcept {
    return next_seq_.load(std::memory_order_relaxed);
  }

 private:
  enum class Kind : std::uint8_t { kOpen, kClose, kAttr };
  struct Event {
    Kind kind = Kind::kOpen;
    std::uint64_t seq = 0;
    SpanId id = 0;
    SpanId parent = 0;
    double time = 0.0;
    std::string name;      ///< span name (kOpen) or attr key (kAttr)
    std::string category;  ///< span category (kOpen) or attr value (kAttr)
  };
  struct Buffer {
    std::mutex mutex;  // writer vs concurrent snapshot reader
    std::vector<Event> events;
  };

  [[nodiscard]] Buffer& local_buffer();
  void record(Event event);
  [[nodiscard]] std::vector<Event> merged() const;

  const std::uint64_t id_;  ///< process-unique; keys the thread-local cache
  const bool enabled_;
  std::function<double()> clock_;
  /// Spans restored from a checkpoint (see preload); their ids are all
  /// below the restored next_seq_, so they sort before live spans.
  std::vector<SpanRecord> preloaded_;
  /// Seqs double as span ids (an open's seq is its span's id); starts at 1
  /// so id 0 stays "no span".
  std::atomic<std::uint64_t> next_seq_{1};
  mutable std::mutex registry_mutex_;  // guards buffers_
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// RAII span: opens on construction using the tracer's clock, closes on
/// destruction. Null/disabled tracer => fully inert object.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::string_view name, std::string_view category,
             SpanId parent = 0);
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(std::exchange(other.tracer_, nullptr)),
        id_(std::exchange(other.id_, 0)),
        ambient_(std::exchange(other.ambient_, false)) {}
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      close();
      tracer_ = std::exchange(other.tracer_, nullptr);
      id_ = std::exchange(other.id_, 0);
      ambient_ = std::exchange(other.ambient_, false);
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { close(); }

  [[nodiscard]] SpanId id() const noexcept { return id_; }
  void attr(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr && id_ != 0) tracer_->attr(id_, key, value);
  }
  /// Close early (idempotent).
  void close();

 private:
  friend ScopedSpan ambient_span(std::string_view, std::string_view);
  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
  bool ambient_ = false;  ///< pushed onto the ambient parent stack
};

/// Ambient trace context: the executor installs (tracer, parent span)
/// around a task's work function so library code deep inside the call —
/// the mpnn sampler, the fold surrogate, the fold cache — can open child
/// spans without any tracer plumbing through their APIs. Purely
/// thread-local; costs one pointer push/pop when tracing is enabled and a
/// single branch when it is not.
class AmbientContext {
 public:
  AmbientContext(Tracer* tracer, SpanId parent) noexcept;
  ~AmbientContext();
  AmbientContext(const AmbientContext&) = delete;
  AmbientContext& operator=(const AmbientContext&) = delete;

 private:
  bool pushed_ = false;
};

/// The innermost ambient tracer/parent for this thread (nullptr/0 when no
/// enabled context is installed).
[[nodiscard]] Tracer* ambient_tracer() noexcept;
[[nodiscard]] SpanId ambient_parent() noexcept;

/// RAII child span under the current ambient context (inert without one).
/// While alive it *is* the ambient parent, so nested calls nest naturally.
[[nodiscard]] ScopedSpan ambient_span(
    std::string_view name, std::string_view category = categories::kWork);

}  // namespace impress::obs
