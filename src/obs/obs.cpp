#include "obs/obs.hpp"

namespace impress::obs {

RuntimeMetrics RuntimeMetrics::registered(MetricsRegistry& registry) {
  RuntimeMetrics m;
  m.tasks_submitted = registry.counter(names::kTasksSubmitted);
  m.tasks_done = registry.counter(names::kTasksDone);
  m.tasks_failed = registry.counter(names::kTasksFailed);
  m.tasks_cancelled = registry.counter(names::kTasksCancelled);
  m.tasks_retried = registry.counter(names::kTasksRetried);
  m.tasks_timed_out = registry.counter(names::kTasksTimedOut);
  m.tasks_requeued = registry.counter(names::kTasksRequeued);
  m.tasks_outstanding = registry.gauge(names::kTasksOutstanding);
  m.scheduler_enqueues = registry.counter(names::kSchedulerEnqueues);
  m.scheduler_placements = registry.counter(names::kSchedulerPlacements);
  m.scheduler_ticks = registry.counter(names::kSchedulerTicks);
  m.exec_setup_seconds = registry.histogram(
      names::kExecSetupSeconds, Histogram::default_seconds_bounds());
  m.task_run_seconds = registry.histogram(
      names::kTaskRunSeconds, Histogram::default_seconds_bounds());
  m.pipelines_started = registry.counter(names::kPipelinesStarted);
  m.pipelines_finished = registry.counter(names::kPipelinesFinished);
  m.pipelines_active = registry.gauge(names::kPipelinesActive);
  m.subpipelines_spawned = registry.counter(names::kSubpipelinesSpawned);
  m.pipeline_messages = registry.counter(names::kPipelineMessages);
  m.completion_messages = registry.counter(names::kCompletionMessages);
  m.stage_generate = registry.counter(names::kStageGenerate);
  m.stage_refine = registry.counter(names::kStageRefine);
  m.stage_fold = registry.counter(names::kStageFold);
  m.fold_cache_hits = registry.counter(names::kFoldCacheHits);
  m.fold_cache_misses = registry.counter(names::kFoldCacheMisses);
  return m;
}

ServiceMetrics ServiceMetrics::registered(MetricsRegistry& registry) {
  ServiceMetrics m;
  m.submitted = registry.counter(names::kServiceSubmitted);
  m.admitted = registry.counter(names::kServiceAdmitted);
  m.rejected_quota = registry.counter(names::kServiceRejectedQuota);
  m.rejected_rate = registry.counter(names::kServiceRejectedRate);
  m.rejected_capacity = registry.counter(names::kServiceRejectedCapacity);
  m.shed = registry.counter(names::kServiceShed);
  m.dispatched = registry.counter(names::kServiceDispatched);
  m.completed = registry.counter(names::kServiceCompleted);
  m.queued = registry.gauge(names::kServiceQueued);
  m.in_flight = registry.gauge(names::kServiceInFlight);
  m.first_result_seconds = registry.histogram(
      names::kServiceFirstResultSeconds, Histogram::default_seconds_bounds());
  return m;
}

FabricMetrics FabricMetrics::registered(MetricsRegistry& registry) {
  FabricMetrics m;
  for (std::size_t i = 0; i < kMsgTypes; ++i) {
    const std::string suffix(names::kFabricMsgTypeNames[i]);
    m.tx[i] = registry.counter("impress_fabric_tx_" + suffix);
    m.rx[i] = registry.counter("impress_fabric_rx_" + suffix);
  }
  m.workers_dead = registry.counter(names::kFabricWorkersDead);
  m.reassignments = registry.counter(names::kFabricReassignments);
  m.checkpoints_stored = registry.counter(names::kFabricCheckpointsStored);
  m.resubmits = registry.counter(names::kFabricResubmits);
  m.stale_frames = registry.counter(names::kFabricStaleFrames);
  return m;
}

}  // namespace impress::obs
