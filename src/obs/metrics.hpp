// Metrics registry: counters, gauges and fixed-bucket histograms with
// lock-free hot-path increments.
//
// Usage contract (enforced by the impress_lint hot-string-key rule in
// spirit): instruments are registered ONCE — by name, under a mutex — and
// the returned handle pointer is cached by the caller; hot paths touch
// only atomics through the handle, never a string lookup. The runtime's
// handles are pre-registered in one bundle (obs/obs.hpp RuntimeMetrics).
//
// Hot-path cost:
//   * disabled registry (the default): one predictable branch per call;
//   * Counter::add — one relaxed fetch_add on a per-thread-striped,
//     cache-line-aligned cell (no sharing between concurrently-writing
//     threads in steady state);
//   * Histogram::observe — branchless-ish bucket scan over <=16 bounds +
//     two relaxed atomics on the thread's stripe, plus a CAS-loop add for
//     the running sum.
//
// Reads (value()/snapshot()) sum the stripes; they are racy-by-design
// point-in-time sums, exact once writers have quiesced — the campaign
// harvests its MetricsSnapshot after the session has drained, where
// totals are provably exact (pinned by tests/obs/test_metrics.cpp and the
// stress hammer).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef IMPRESS_OBS_COMPILED_IN
#define IMPRESS_OBS_COMPILED_IN 1
#endif

namespace impress::obs {

namespace detail {

/// Number of independent cells a counter/histogram spreads its writers
/// over. Threads hash to a cell via a round-robin thread index, so with
/// <= kStripes concurrent writers there is no cache-line ping-pong.
inline constexpr std::size_t kStripes = 16;

/// Index of the calling thread's stripe (stable for the thread's life).
[[nodiscard]] std::size_t stripe_index() noexcept;

/// Portable atomic add for doubles (CAS loop, relaxed).
inline void atomic_add(std::atomic<double>& cell, double delta) noexcept {
  double cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed))
    ;
}

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) SumCell {
  std::atomic<double> value{0.0};
};

}  // namespace detail

/// Monotonic counter. Handles are owned by the registry; pointers remain
/// valid for the registry's lifetime.
class Counter {
 public:
  explicit Counter(bool enabled) : enabled_(enabled) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    if (!enabled_) return;
    cells_[detail::stripe_index()].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  const bool enabled_;
  detail::CounterCell cells_[detail::kStripes];
};

/// Last-write-wins instantaneous value with add/sub (e.g. tasks in
/// flight). Single atomic — gauges are not hot enough to stripe, and
/// set() semantics would be ambiguous across stripes.
class Gauge {
 public:
  explicit Gauge(bool enabled) : enabled_(enabled) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (enabled_) value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    if (enabled_) detail::atomic_add(value_, delta);
  }
  void sub(double delta) noexcept { add(-delta); }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  const bool enabled_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper edges; an
/// observation lands in the first bucket whose bound is >= it, else in
/// the implicit +Inf bucket. Per-stripe bucket counts, count and sum.
class Histogram {
 public:
  Histogram(bool enabled, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts (bounds().size() + 1 entries; last is +Inf).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;

  /// Default latency edges (seconds), log-ish spaced.
  [[nodiscard]] static std::vector<double> default_seconds_bounds();

  /// Checkpoint restore: load `buckets`/`count`/`sum` into stripe 0 of an
  /// untouched histogram (post-resume observes add on top). Bucket counts
  /// beyond bounds().size()+1 are ignored.
  void preload(const std::vector<std::uint64_t>& buckets, std::uint64_t count,
               double sum) noexcept;

 private:
  struct alignas(64) Stripe {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    explicit Stripe(std::size_t n) : buckets(n) {}
  };

  const bool enabled_;
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

// --- campaign-end snapshot (plain data, serializable) ---

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  bool operator==(const CounterSample&) const = default;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
  bool operator==(const GaugeSample&) const = default;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size()+1, last = +Inf
  std::uint64_t count = 0;
  double sum = 0.0;
  bool operator==(const HistogramSample&) const = default;
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  bool operator==(const MetricsSnapshot&) const = default;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Value of a named counter, or 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
};

/// Owns every instrument. Registration is mutex-guarded and idempotent by
/// name (same name => same handle; a histogram re-registered with
/// different bounds keeps the first bounds). Handle pointers are stable
/// for the registry's lifetime.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = false);
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return IMPRESS_OBS_COMPILED_IN != 0 && enabled_;
  }

  [[nodiscard]] Counter* counter(std::string_view name);
  [[nodiscard]] Gauge* gauge(std::string_view name);
  [[nodiscard]] Histogram* histogram(std::string_view name,
                                     std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Checkpoint restore: re-register every instrument in `snap` and load
  /// its value (counters via add, gauges via set, histograms via
  /// Histogram::preload), so a freshly-constructed registry resumes with
  /// the checkpointed totals. No-op when disabled.
  void preload(const MetricsSnapshot& snap);

 private:
  const bool enabled_;
  mutable std::mutex mutex_;  // guards the maps (registration + snapshot)
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace impress::obs
