// The observability bundle the runtime threads through its layers: one
// Tracer + one MetricsRegistry + the pre-registered handle set
// (RuntimeMetrics) every hot path writes through. Sessions own one
// (rp::Session::observability()); campaigns harvest it into
// CampaignResult at the end of run().
//
// Naming conventions (see docs/observability.md):
//   metrics:  impress_<layer>_<noun>[_<unit>]  e.g. impress_tasks_done,
//             impress_exec_setup_seconds. Counters count events; gauges
//             are instantaneous; histograms carry an explicit unit.
//   spans:    <layer>.<what>[.<detail>]  e.g. stage.fold.c3,
//             task.000012, attempt.2, fold.predict. Categories come from
//             obs::categories and give the trace its nesting levels.

#pragma once

#include <array>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace impress::obs {

/// Metric names (single source of truth for runtime + exporters + tests).
namespace names {
// task manager
inline constexpr std::string_view kTasksSubmitted = "impress_tasks_submitted";
inline constexpr std::string_view kTasksDone = "impress_tasks_done";
inline constexpr std::string_view kTasksFailed = "impress_tasks_failed";
inline constexpr std::string_view kTasksCancelled = "impress_tasks_cancelled";
inline constexpr std::string_view kTasksRetried = "impress_tasks_retried";
inline constexpr std::string_view kTasksTimedOut = "impress_tasks_timed_out";
inline constexpr std::string_view kTasksRequeued = "impress_tasks_requeued";
inline constexpr std::string_view kTasksOutstanding =
    "impress_tasks_outstanding";
// scheduler / pilot
inline constexpr std::string_view kSchedulerEnqueues =
    "impress_scheduler_enqueues";
inline constexpr std::string_view kSchedulerPlacements =
    "impress_scheduler_placements";
inline constexpr std::string_view kSchedulerTicks = "impress_scheduler_ticks";
// executor phase durations (seconds)
inline constexpr std::string_view kExecSetupSeconds =
    "impress_exec_setup_seconds";
inline constexpr std::string_view kTaskRunSeconds = "impress_task_run_seconds";
// coordinator
inline constexpr std::string_view kPipelinesStarted =
    "impress_pipelines_started";
inline constexpr std::string_view kPipelinesFinished =
    "impress_pipelines_finished";
inline constexpr std::string_view kPipelinesActive = "impress_pipelines_active";
inline constexpr std::string_view kSubpipelinesSpawned =
    "impress_subpipelines_spawned";
inline constexpr std::string_view kPipelineMessages =
    "impress_channel_pipeline_messages";
inline constexpr std::string_view kCompletionMessages =
    "impress_channel_completion_messages";
inline constexpr std::string_view kStageGenerate = "impress_stage_generate";
inline constexpr std::string_view kStageRefine = "impress_stage_refine";
inline constexpr std::string_view kStageFold = "impress_stage_fold";
// fold cache
inline constexpr std::string_view kFoldCacheHits = "impress_fold_cache_hits";
inline constexpr std::string_view kFoldCacheMisses =
    "impress_fold_cache_misses";
// persistence (cold path: looked up by name in the checkpoint sink, not
// part of the pre-registered RuntimeMetrics bundle)
inline constexpr std::string_view kCheckpointsWritten =
    "impress_checkpoints_written";
// campaign service front door (src/service; docs/service.md)
inline constexpr std::string_view kServiceSubmitted =
    "impress_service_submitted";
inline constexpr std::string_view kServiceAdmitted = "impress_service_admitted";
inline constexpr std::string_view kServiceRejectedQuota =
    "impress_service_rejected_quota";
inline constexpr std::string_view kServiceRejectedRate =
    "impress_service_rejected_rate";
inline constexpr std::string_view kServiceRejectedCapacity =
    "impress_service_rejected_capacity";
inline constexpr std::string_view kServiceShed = "impress_service_shed";
inline constexpr std::string_view kServiceDispatched =
    "impress_service_dispatched";
inline constexpr std::string_view kServiceCompleted =
    "impress_service_completed";
inline constexpr std::string_view kServiceQueued = "impress_service_queued";
inline constexpr std::string_view kServiceInFlight =
    "impress_service_in_flight";
inline constexpr std::string_view kServiceFirstResultSeconds =
    "impress_service_first_result_seconds";
// campaign fabric (src/net; docs/fabric.md). Per-message-type frame
// counters follow "impress_fabric_tx_<type>" / "impress_fabric_rx_<type>"
// with <type> from kFabricMsgTypeNames, indexed by net::type_index — the
// array order mirrors the MsgType values in net/wire.hpp.
inline constexpr std::array<std::string_view, 7> kFabricMsgTypeNames = {
    "hello",     "assign_shard",     "task_submit", "task_result",
    "heartbeat", "checkpoint_shard", "worker_dead"};
inline constexpr std::string_view kFabricWorkersDead =
    "impress_fabric_workers_dead";
inline constexpr std::string_view kFabricReassignments =
    "impress_fabric_reassignments";
inline constexpr std::string_view kFabricCheckpointsStored =
    "impress_fabric_checkpoints_stored";
inline constexpr std::string_view kFabricResubmits =
    "impress_fabric_resubmits";
inline constexpr std::string_view kFabricStaleFrames =
    "impress_fabric_stale_frames";
}  // namespace names

/// Pre-registered handles for every runtime metric: built once at session
/// construction, then passed around as raw pointers so hot paths never do
/// a string lookup (handles stay valid as long as the registry lives).
struct RuntimeMetrics {
  // task manager
  Counter* tasks_submitted = nullptr;
  Counter* tasks_done = nullptr;
  Counter* tasks_failed = nullptr;
  Counter* tasks_cancelled = nullptr;
  Counter* tasks_retried = nullptr;
  Counter* tasks_timed_out = nullptr;
  Counter* tasks_requeued = nullptr;
  Gauge* tasks_outstanding = nullptr;
  // scheduler / pilot
  Counter* scheduler_enqueues = nullptr;
  Counter* scheduler_placements = nullptr;
  Counter* scheduler_ticks = nullptr;
  // executor phases
  Histogram* exec_setup_seconds = nullptr;
  Histogram* task_run_seconds = nullptr;
  // coordinator
  Counter* pipelines_started = nullptr;
  Counter* pipelines_finished = nullptr;
  Gauge* pipelines_active = nullptr;
  Counter* subpipelines_spawned = nullptr;
  Counter* pipeline_messages = nullptr;
  Counter* completion_messages = nullptr;
  Counter* stage_generate = nullptr;
  Counter* stage_refine = nullptr;
  Counter* stage_fold = nullptr;
  // fold cache
  Counter* fold_cache_hits = nullptr;
  Counter* fold_cache_misses = nullptr;

  [[nodiscard]] static RuntimeMetrics registered(MetricsRegistry& registry);
};

/// Pre-registered handles for the campaign-service front door
/// (src/service). Same contract as RuntimeMetrics: registered once, then
/// only atomics on the hot path — the service submit path never does a
/// string lookup.
struct ServiceMetrics {
  Counter* submitted = nullptr;
  Counter* admitted = nullptr;
  Counter* rejected_quota = nullptr;
  Counter* rejected_rate = nullptr;
  Counter* rejected_capacity = nullptr;
  Counter* shed = nullptr;
  Counter* dispatched = nullptr;
  Counter* completed = nullptr;
  Gauge* queued = nullptr;
  Gauge* in_flight = nullptr;
  Histogram* first_result_seconds = nullptr;

  [[nodiscard]] static ServiceMetrics registered(MetricsRegistry& registry);
};

/// Pre-registered handles for the campaign fabric coordinator (src/net).
/// tx/rx are indexed by net::type_index(MsgType) — same order as
/// names::kFabricMsgTypeNames. Same contract as the bundles above: one
/// registration up front, only atomic bumps on the message pump.
struct FabricMetrics {
  static constexpr std::size_t kMsgTypes = 7;
  std::array<Counter*, kMsgTypes> tx{};
  std::array<Counter*, kMsgTypes> rx{};
  Counter* workers_dead = nullptr;
  Counter* reassignments = nullptr;
  Counter* checkpoints_stored = nullptr;
  Counter* resubmits = nullptr;
  Counter* stale_frames = nullptr;  ///< epoch-fenced discards

  [[nodiscard]] static FabricMetrics registered(MetricsRegistry& registry);
};

/// One tracer + one registry + the runtime handle bundle. Disabled by
/// default on both axes; each axis is independently switchable
/// (SessionConfig.enable_tracing / enable_metrics).
class Observability {
 public:
  struct Config {
    bool tracing = false;
    bool metrics = false;
  };

  Observability();  // default-disabled on both axes; defined below
  explicit Observability(Config config)
      : tracer_(config.tracing),
        registry_(config.metrics),
        metrics_(RuntimeMetrics::registered(registry_)) {}
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }
  [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  /// The pre-registered handle bundle (never null members).
  [[nodiscard]] const RuntimeMetrics& metrics() const noexcept {
    return metrics_;
  }

 private:
  Tracer tracer_;
  MetricsRegistry registry_;
  RuntimeMetrics metrics_;
};

inline Observability::Observability() : Observability(Config{}) {}

}  // namespace impress::obs
