#include "obs/trace.hpp"

#include <algorithm>
#include <unordered_map>

namespace impress::obs {

namespace {

/// Thread-local map from tracer id to that tracer's buffer for this
/// thread (same shape as hpc::Profiler's cache: ids are process-unique
/// and never reused, so a stale entry can never be matched).
struct TlsEntry {
  std::uint64_t id = 0;
  void* buffer = nullptr;
};
constexpr std::size_t kTlsCacheCap = 64;
thread_local std::vector<TlsEntry> tls_buffers;  // NOLINT

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread ambient (tracer, parent) stack — see AmbientContext.
struct AmbientFrame {
  Tracer* tracer = nullptr;
  SpanId parent = 0;
};
thread_local std::vector<AmbientFrame> ambient_stack;  // NOLINT

}  // namespace

Tracer::Tracer(bool enabled)
    : id_(next_tracer_id()), enabled_(kCompiledIn && enabled) {}

Tracer::Buffer& Tracer::local_buffer() {
  for (const auto& e : tls_buffers)
    if (e.id == id_) return *static_cast<Buffer*>(e.buffer);
  auto owned = std::make_unique<Buffer>();
  Buffer* raw = owned.get();
  {
    std::lock_guard lock(registry_mutex_);
    buffers_.push_back(std::move(owned));
  }
  if (tls_buffers.size() >= kTlsCacheCap)
    tls_buffers.erase(tls_buffers.begin());
  tls_buffers.push_back(TlsEntry{id_, raw});
  return *raw;
}

void Tracer::record(Event event) {
  Buffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  buf.events.push_back(std::move(event));
}

SpanId Tracer::begin(double time, std::string_view name,
                     std::string_view category, SpanId parent) {
  if (!enabled()) return 0;
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  record(Event{Kind::kOpen, seq, /*id=*/seq, parent, time, std::string(name),
               std::string(category)});
  return seq;
}

void Tracer::end(SpanId id, double time) {
  if (!enabled() || id == 0) return;
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  record(Event{Kind::kClose, seq, id, /*parent=*/0, time, {}, {}});
}

void Tracer::attr(SpanId id, std::string_view key, std::string_view value) {
  if (!enabled() || id == 0) return;
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  record(Event{Kind::kAttr, seq, id, /*parent=*/0, 0.0, std::string(key),
               std::string(value)});
}

SpanId Tracer::instant(double time, std::string_view name,
                       std::string_view category, SpanId parent) {
  const SpanId id = begin(time, name, category, parent);
  end(id, time);
  return id;
}

std::vector<Tracer::Event> Tracer::merged() const {
  std::vector<Event> out;
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

void Tracer::preload(std::vector<SpanRecord> spans, std::uint64_t next_seq) {
  preloaded_ = std::move(spans);
  next_seq_.store(next_seq, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::spans() const {
  std::vector<SpanRecord> out = preloaded_;
  std::unordered_map<SpanId, std::size_t> index;  // span id -> out slot
  for (std::size_t i = 0; i < out.size(); ++i) index[out[i].id] = i;
  for (auto& e : merged()) {
    switch (e.kind) {
      case Kind::kOpen: {
        index[e.id] = out.size();
        SpanRecord r;
        r.id = e.id;
        r.parent = e.parent;
        r.name = std::move(e.name);
        r.category = std::move(e.category);
        r.start = e.time;
        r.open_seq = e.seq;
        out.push_back(std::move(r));
        break;
      }
      case Kind::kClose: {
        const auto it = index.find(e.id);
        if (it == index.end()) break;  // close without open: drop
        SpanRecord& r = out[it->second];
        if (r.close_seq == 0) {  // first close wins
          r.end = e.time;
          r.close_seq = e.seq;
        }
        break;
      }
      case Kind::kAttr: {
        const auto it = index.find(e.id);
        if (it == index.end()) break;
        out[it->second].attrs.emplace_back(std::move(e.name),
                                           std::move(e.category));
        break;
      }
    }
  }
  return out;  // already ordered by open_seq (merged() sorts by seq)
}

std::size_t Tracer::size() const {
  std::size_t total = preloaded_.size();
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    for (const auto& e : buf->events)
      if (e.kind == Kind::kOpen) ++total;
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    buf->events.clear();
  }
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name,
                       std::string_view category, SpanId parent) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  id_ = tracer->begin(tracer->now(), name, category, parent);
}

void ScopedSpan::close() {
  if (tracer_ == nullptr) return;
  if (ambient_ && !ambient_stack.empty() &&
      ambient_stack.back().tracer == tracer_ &&
      ambient_stack.back().parent == id_)
    ambient_stack.pop_back();
  if (id_ != 0) tracer_->end(id_, tracer_->now());
  tracer_ = nullptr;
  id_ = 0;
  ambient_ = false;
}

AmbientContext::AmbientContext(Tracer* tracer, SpanId parent) noexcept {
  if (tracer == nullptr || !tracer->enabled()) return;
  ambient_stack.push_back(AmbientFrame{tracer, parent});
  pushed_ = true;
}

AmbientContext::~AmbientContext() {
  if (pushed_ && !ambient_stack.empty()) ambient_stack.pop_back();
}

Tracer* ambient_tracer() noexcept {
  return ambient_stack.empty() ? nullptr : ambient_stack.back().tracer;
}

SpanId ambient_parent() noexcept {
  return ambient_stack.empty() ? 0 : ambient_stack.back().parent;
}

ScopedSpan ambient_span(std::string_view name, std::string_view category) {
  ScopedSpan span(ambient_tracer(), name, category, ambient_parent());
  if (span.id() != 0) {
    // While alive, this span is the ambient parent for nested calls.
    ambient_stack.push_back(AmbientFrame{span.tracer_, span.id()});
    span.ambient_ = true;
  }
  return span;
}

}  // namespace impress::obs
