#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace impress::obs {

namespace {

using common::Json;

/// Prometheus float formatting: integers render bare, everything else
/// with enough digits to round-trip.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

common::Json chrome_trace(const std::vector<SpanRecord>& spans) {
  // Assign tracks: campaign root -> 0, pipelines -> fresh track, others
  // inherit. Spans arrive ordered by open_seq, so a parent's track is
  // always assigned before its children ask for it.
  std::unordered_map<SpanId, std::uint64_t> track;
  // Ordered: the metadata events below iterate this, and trace files must
  // come out byte-identical run to run (hash order would leak into them).
  std::map<std::uint64_t, std::string> track_name;
  std::uint64_t next_track = 1;

  Json::Array events;
  for (const auto& s : spans) {
    std::uint64_t tid = 0;
    if (s.category == categories::kPipeline) {
      tid = next_track++;
      track_name[tid] = s.name;
    } else if (const auto it = track.find(s.parent); it != track.end()) {
      tid = it->second;
    }
    track[s.id] = tid;
    if (track_name.find(0) == track_name.end() &&
        s.category == categories::kCampaign)
      track_name[0] = s.name;

    const double end = s.closed() ? s.end : s.start;
    Json::Object args;
    args["span_id"] = static_cast<double>(s.id);
    if (s.parent != 0) args["parent_id"] = static_cast<double>(s.parent);
    for (const auto& [k, v] : s.attrs) args[k] = v;

    Json::Object ev;
    ev["name"] = s.name;
    ev["cat"] = s.category;
    ev["ph"] = "X";
    ev["ts"] = s.start * 1e6;
    ev["dur"] = (end - s.start) * 1e6;
    ev["pid"] = 1;
    ev["tid"] = static_cast<double>(tid);
    ev["args"] = std::move(args);
    events.push_back(std::move(ev));
  }

  // Name the tracks (chrome "M" metadata events).
  for (const auto& [tid, name] : track_name) {
    Json::Object ev;
    ev["name"] = "thread_name";
    ev["ph"] = "M";
    ev["pid"] = 1;
    ev["tid"] = static_cast<double>(tid);
    ev["args"] = Json::Object{{"name", name}};
    events.push_back(std::move(ev));
  }

  Json::Object doc;
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              int indent) {
  return chrome_trace(spans).dump(indent);
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    out += "# HELP " + c.name + "_total Monotonic event counter.\n";
    out += "# TYPE " + c.name + "_total counter\n";
    out += c.name + "_total " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out += "# HELP " + g.name + " Instantaneous value.\n";
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " " + format_number(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "# HELP " + h.name + " Fixed-bucket histogram.\n";
    out += "# TYPE " + h.name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out += h.name + "_bucket{le=\"" + format_number(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += h.name + "_sum " + format_number(h.sum) + "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

common::Json spans_to_json(const std::vector<SpanRecord>& spans) {
  Json::Array out;
  out.reserve(spans.size());
  for (const auto& s : spans) {
    Json::Object o;
    o["id"] = static_cast<double>(s.id);
    o["parent"] = static_cast<double>(s.parent);
    o["name"] = s.name;
    o["category"] = s.category;
    o["start"] = s.start;
    o["end"] = s.end;
    o["open_seq"] = static_cast<double>(s.open_seq);
    o["close_seq"] = static_cast<double>(s.close_seq);
    if (!s.attrs.empty()) {
      Json::Array attrs;
      for (const auto& [k, v] : s.attrs)
        attrs.push_back(Json::Array{k, v});
      o["attrs"] = std::move(attrs);
    }
    out.push_back(std::move(o));
  }
  return out;
}

std::vector<SpanRecord> spans_from_json(const common::Json& doc) {
  std::vector<SpanRecord> out;
  out.reserve(doc.size());
  for (const auto& o : doc.as_array()) {
    SpanRecord s;
    s.id = static_cast<SpanId>(o.at("id").as_number());
    s.parent = static_cast<SpanId>(o.at("parent").as_number());
    s.name = o.at("name").as_string();
    s.category = o.at("category").as_string();
    s.start = o.at("start").as_number();
    s.end = o.at("end").as_number();
    s.open_seq = static_cast<std::uint64_t>(o.at("open_seq").as_number());
    s.close_seq = static_cast<std::uint64_t>(o.at("close_seq").as_number());
    if (o.contains("attrs"))
      for (const auto& kv : o.at("attrs").as_array())
        s.attrs.emplace_back(kv.at(0).as_string(), kv.at(1).as_string());
    out.push_back(std::move(s));
  }
  return out;
}

common::Json metrics_to_json(const MetricsSnapshot& snapshot) {
  Json::Array counters;
  for (const auto& c : snapshot.counters)
    counters.push_back(Json::Object{{"name", c.name},
                                    {"value", static_cast<double>(c.value)}});
  Json::Array gauges;
  for (const auto& g : snapshot.gauges)
    gauges.push_back(Json::Object{{"name", g.name}, {"value", g.value}});
  Json::Array histograms;
  for (const auto& h : snapshot.histograms) {
    Json::Array bounds;
    for (double b : h.bounds) bounds.push_back(b);
    Json::Array buckets;
    for (std::uint64_t b : h.buckets)
      buckets.push_back(static_cast<double>(b));
    histograms.push_back(Json::Object{
        {"name", h.name},
        {"bounds", std::move(bounds)},
        {"buckets", std::move(buckets)},
        {"count", static_cast<double>(h.count)},
        {"sum", h.sum},
    });
  }
  return Json::Object{{"counters", std::move(counters)},
                      {"gauges", std::move(gauges)},
                      {"histograms", std::move(histograms)}};
}

MetricsSnapshot metrics_from_json(const common::Json& doc) {
  MetricsSnapshot out;
  for (const auto& c : doc.at("counters").as_array())
    out.counters.push_back(CounterSample{
        c.at("name").as_string(),
        static_cast<std::uint64_t>(c.at("value").as_number())});
  for (const auto& g : doc.at("gauges").as_array())
    out.gauges.push_back(
        GaugeSample{g.at("name").as_string(), g.at("value").as_number()});
  for (const auto& h : doc.at("histograms").as_array()) {
    HistogramSample s;
    s.name = h.at("name").as_string();
    for (const auto& b : h.at("bounds").as_array())
      s.bounds.push_back(b.as_number());
    for (const auto& b : h.at("buckets").as_array())
      s.buckets.push_back(static_cast<std::uint64_t>(b.as_number()));
    s.count = static_cast<std::uint64_t>(h.at("count").as_number());
    s.sum = h.at("sum").as_number();
    out.histograms.push_back(std::move(s));
  }
  return out;
}

}  // namespace impress::obs
