// ProteinMPNN surrogate: structure-conditioned sequence design.
//
// What the IMPRESS protocol consumes from ProteinMPNN is a set of
// candidate sequences with log-likelihood scores whose *ranking* is
// informative of — but not identical to — downstream structure quality.
// This surrogate reproduces exactly that statistical contract:
//
//  * It sees a noisy view of the hidden landscape's per-position
//    preferences (`knowledge_noise`), standing in for what the real
//    graph network learned about sequence-structure compatibility.
//  * It proposes point mutations at designable pocket positions, sampled
//    from that noisy view at a configurable temperature.
//  * Each sequence's log-likelihood is the sampler's own mean log
//    probability — correlated with true fitness through the shared
//    (noisy) preferences, so sorting by log-likelihood (pipeline Stage 2)
//    is useful and occasionally wrong, just as in the paper.
//
// `fixed_positions` implements the paper's Future Work protocol change:
// "ProteinMPNN runs must fix the catalytic residues rather than design
// the entire protein."

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "protein/landscape.hpp"
#include "protein/structure.hpp"

namespace impress::mpnn {

struct ScoredSequence {
  protein::Sequence sequence;
  double log_likelihood = 0.0;
};

struct SamplerConfig {
  /// Sequences generated per structure (pipeline Stage 1; paper uses 10).
  std::size_t num_sequences = 10;
  /// Sampling temperature; lower concentrates on the model's favorites.
  double temperature = 0.25;
  /// Sigma of the Gaussian noise on the surrogate's view of the
  /// preferences — the model's "inaccuracy".
  double knowledge_noise = 0.30;
  /// Mutations proposed per sequence; 0 selects ceil(pocket/4).
  std::size_t mutations_per_sequence = 0;
  /// Probability that a mutation is drawn from the model's generic
  /// sequence prior (uniform background) instead of the
  /// structure-conditioned profile. Models ProteinMPNN's pull toward its
  /// own likelihood rather than the design objective; such proposals
  /// carry low self-log-likelihood, so ranked selection filters them out
  /// while random selection does not.
  double prior_weight = 0.0;
  /// Receptor positions the sampler must not touch (catalytic residues in
  /// the protease protocol of the paper's Future Work).
  std::vector<std::size_t> fixed_positions;
};

class Mpnn {
 public:
  explicit Mpnn(SamplerConfig config = {});

  /// Design `config.num_sequences` receptor variants for the complex,
  /// conditioned on the current receptor sequence, scored by the model's
  /// log-likelihood (unsorted — Stage 2 sorts). Deterministic in `rng`.
  [[nodiscard]] std::vector<ScoredSequence> design(
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape, common::Rng& rng) const;

  [[nodiscard]] const SamplerConfig& config() const noexcept { return config_; }

 private:
  SamplerConfig config_;
};

/// Sort sequences by log-likelihood, best first (pipeline Stage 2).
void sort_by_log_likelihood(std::vector<ScoredSequence>& seqs);

}  // namespace impress::mpnn
