// Runtime task factory for ProteinMPNN surrogate calls.
//
// Packages a design call as an rp::TaskDescription with the resource
// footprint and duration model of the real application on the paper's
// testbed: a short GPU-resident job (~6 min per structure batch on a
// Quadro M6000) with a couple of helper CPU cores.

#pragma once

#include <string>

#include "mpnn/mpnn.hpp"
#include "runtime/task.hpp"

namespace impress::mpnn {

struct MpnnDurationModel {
  double seconds_per_structure = 360.0;  ///< GPU minutes per input structure
  double jitter_sigma = 0.10;
  std::uint32_t cores = 2;
  std::uint32_t gpus = 1;
  double cpu_intensity = 0.50;
  double gpu_intensity = 0.70;
};

/// Build a task that designs sequences for `n_structures` complexes in one
/// call (CONT-V batches all four structures into a single sequential
/// ProteinMPNN call; IM-RP submits one per structure). The `work` function
/// supplied by the pipeline layer performs the actual surrogate call(s).
[[nodiscard]] rp::TaskDescription make_mpnn_task(
    std::string name, std::size_t n_structures, const MpnnDurationModel& model,
    rp::WorkFn work);

}  // namespace impress::mpnn
