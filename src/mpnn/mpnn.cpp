#include "mpnn/mpnn.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace impress::mpnn {

using protein::AminoAcid;
using protein::kNumAminoAcids;

Mpnn::Mpnn(SamplerConfig config) : config_(std::move(config)) {
  if (config_.num_sequences == 0)
    throw std::invalid_argument("Mpnn: num_sequences must be > 0");
  if (config_.temperature <= 0.0)
    throw std::invalid_argument("Mpnn: temperature must be > 0");
}

std::vector<ScoredSequence> Mpnn::design(
    const protein::Complex& complex,
    const protein::FitnessLandscape& landscape, common::Rng& rng) const {
  // Child of the ambient attempt span when run inside a traced task.
  const obs::ScopedSpan span = obs::ambient_span("mpnn.design");
  const protein::Sequence& current = complex.receptor().sequence;
  if (current.size() != landscape.receptor_length())
    throw std::invalid_argument("Mpnn::design: receptor/landscape mismatch");

  // Designable positions: the pocket minus any fixed residues.
  std::vector<std::size_t> designable;
  for (std::size_t pos : landscape.interface_positions()) {
    if (std::find(config_.fixed_positions.begin(), config_.fixed_positions.end(),
                  pos) == config_.fixed_positions.end())
      designable.push_back(pos);
  }
  if (designable.empty())
    throw std::invalid_argument("Mpnn::design: no designable positions");

  // The model's view of the landscape for this call: true preference plus
  // call-level noise. One draw per (position, residue) per call keeps the
  // model self-consistent while scoring its own proposals.
  std::vector<std::array<double, kNumAminoAcids>> view(designable.size());
  for (std::size_t i = 0; i < designable.size(); ++i) {
    for (std::size_t a = 0; a < kNumAminoAcids; ++a) {
      const double p =
          landscape.preference(designable[i], static_cast<AminoAcid>(a));
      view[i][a] = std::max(1e-3, p + config_.knowledge_noise * rng.normal());
    }
  }

  // Softmax of the noisy view, precomputed per position: the sampling
  // weights exp(view/T) and the log-partition were previously recomputed
  // for every proposed mutation and every log-probability query. They are
  // pure functions of `view` (no rng draws), so hoisting them preserves
  // the sampled outputs bit for bit — the partition sum runs over b in
  // the same left-to-right order log_prob used.
  std::vector<std::array<double, kNumAminoAcids>> weights(designable.size());
  std::vector<double> log_z(designable.size());
  for (std::size_t i = 0; i < designable.size(); ++i) {
    double z = 0.0;
    for (std::size_t b = 0; b < kNumAminoAcids; ++b) {
      weights[i][b] = std::exp(view[i][b] / config_.temperature);
      z += weights[i][b];
    }
    log_z[i] = std::log(z);
  }
  auto log_prob = [&](std::size_t i, std::size_t a) {
    return view[i][a] / config_.temperature - log_z[i];
  };

  std::size_t n_mut = config_.mutations_per_sequence;
  if (n_mut == 0) n_mut = (designable.size() + 3) / 4;
  n_mut = std::min(n_mut, designable.size());

  std::vector<ScoredSequence> out;
  out.reserve(config_.num_sequences);
  protein::MutationBuffer buffer;       // reused across samples: no
  std::vector<std::size_t> idx(designable.size());  // per-sample allocs
  for (std::size_t s = 0; s < config_.num_sequences; ++s) {
    buffer.rebase(current);
    // Choose distinct positions to redesign.
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng.shuffle(idx);
    for (std::size_t m = 0; m < n_mut; ++m) {
      const std::size_t i = idx[m];
      if (rng.chance(config_.prior_weight)) {
        // Background draw: the model's own sequence prior, blind to the
        // binding objective.
        buffer.set(designable[i],
                   static_cast<AminoAcid>(rng.below(kNumAminoAcids)));
        continue;
      }
      const std::size_t a = rng.categorical(weights[i]);
      buffer.set(designable[i], static_cast<AminoAcid>(a));
    }
    // Score: mean log-probability over all designable positions — the
    // sampler's own belief, not the ground truth.
    double ll = 0.0;
    for (std::size_t i = 0; i < designable.size(); ++i)
      ll += log_prob(i, static_cast<std::size_t>(buffer[designable[i]]));
    ll /= static_cast<double>(designable.size());
    out.push_back(ScoredSequence{buffer.materialize(), ll});
  }
  return out;
}

void sort_by_log_likelihood(std::vector<ScoredSequence>& seqs) {
  std::stable_sort(seqs.begin(), seqs.end(),
                   [](const ScoredSequence& a, const ScoredSequence& b) {
                     return a.log_likelihood > b.log_likelihood;
                   });
}

}  // namespace impress::mpnn
