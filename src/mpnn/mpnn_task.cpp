#include "mpnn/mpnn_task.hpp"

namespace impress::mpnn {

rp::TaskDescription make_mpnn_task(std::string name, std::size_t n_structures,
                                   const MpnnDurationModel& model,
                                   rp::WorkFn work) {
  rp::TaskDescription td;
  td.name = std::move(name);
  // ProteinMPNN is a ~1.6M-parameter model; 2 GB covers weights + batch.
  td.resources = hpc::ResourceRequest{.cores = model.cores,
                                      .gpus = model.gpus,
                                      .mem_gb = 8.0,
                                      .gpu_mem_gb = model.gpus > 0 ? 2.0 : 0.0};
  td.phases.push_back(rp::TaskPhase{
      .name = "design",
      .duration_s =
          model.seconds_per_structure * static_cast<double>(n_structures),
      .jitter_sigma = model.jitter_sigma,
      .cores = model.cores,
      .gpus = model.gpus,
      .cpu_intensity = model.cpu_intensity,
      .gpu_intensity = model.gpu_intensity,
  });
  td.work = std::move(work);
  td.metadata["app"] = "proteinmpnn";
  return td;
}

}  // namespace impress::mpnn
