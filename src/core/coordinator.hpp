// The pipelines coordinator (paper §II-B/D).
//
// Manages the concurrent, dynamic submission of pipelines over exactly two
// communication channels, as in the paper's implementation:
//
//   * the *pipeline channel* carries new pipeline instances to be
//     submitted — at campaign start and whenever the decision-making step
//     spawns a sub-pipeline;
//   * the *completion channel* carries completed tasks from the runtime
//     back to the decision-making loop.
//
// The coordinator keeps a global perspective on every pipeline's results
// (the design pool) and decides whether "low-quality" sequences should be
// re-processed with a new sub-pipeline. In sequential mode (CONT-V) it
// additionally serializes task submission so at most one task is ever in
// flight — the control's vanilla execution model.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/channel.hpp"
#include "core/pipeline.hpp"
#include "fold/fold_cache.hpp"
#include "fold/fold_task.hpp"
#include "infer/infer.hpp"
#include "mpnn/mpnn_task.hpp"
#include "runtime/session.hpp"

namespace impress::core {

/// Footprint of the optional backbone-refinement task (CPU relaxation,
/// ~10 minutes on a handful of cores).
struct RefineDurationModel {
  double seconds = 600.0;
  double jitter_sigma = 0.15;
  std::uint32_t cores = 4;
  double cpu_intensity = 0.90;
};

/// Checkpoint cadence. A checkpoint becomes *pending* when either counter
/// reaches its threshold (0 disables that trigger); it is cut at the next
/// quiesce point — no task in flight, both channels empty — so the
/// document never has to describe a half-executed runtime task. Would-be
/// task submissions arriving while a checkpoint is pending are parked
/// (before any rng fork or task construction) and released, in order,
/// once the checkpoint is durable.
struct CheckpointPolicy {
  std::size_t every_n_completions = 0;  ///< handled task completions
  std::size_t every_n_pipelines = 0;    ///< finished pipelines
  [[nodiscard]] bool enabled() const noexcept {
    return every_n_completions > 0 || every_n_pipelines > 0;
  }
};

/// Everything of the coordinator's state a campaign checkpoint captures at
/// a quiesce point. Pipelines appear in submission order; parked actions
/// in release (FIFO) order.
struct CoordinatorCheckpoint {
  struct ParkedAction {
    std::string pipeline_id;
    int kind = 0;  ///< Pipeline::Action::Kind, numeric
    std::optional<protein::Complex> fold_input;
    bool reuse_features = false;
    bool refined = false;
  };
  std::vector<Pipeline::Snapshot> pipelines;
  std::vector<ParkedAction> parked;
  std::map<std::string, int> subpipeline_count;        ///< per target name
  std::map<std::string, obs::SpanId> pipeline_spans;   ///< open spans, by id
  std::uint64_t root_pipelines = 0;
  std::uint64_t subpipelines = 0;
  std::uint64_t generator_tasks = 0;
  std::uint64_t refine_tasks = 0;
  std::uint64_t fold_tasks = 0;
  std::uint64_t fold_retries = 0;
  std::uint64_t failed_tasks = 0;
};

struct CoordinatorConfig {
  /// CONT-V execution: strictly one task in flight at any time.
  bool sequential = false;
  mpnn::MpnnDurationModel mpnn_durations;
  fold::FoldDurationModel fold_durations;
  RefineDurationModel refine_durations;
  /// Metric-noise multiplier applied to predictions of refined backbones.
  double refined_noise_factor = 0.65;
  /// Retry policy stamped onto every task the coordinator submits. The
  /// default keeps historical behaviour (single attempt); campaigns that
  /// inject faults raise max_attempts so transient failures are absorbed
  /// by the runtime instead of terminating the pipeline.
  rp::RetryPolicy task_retry;
  /// Optional memoization of fold predictions (see fold/fold_cache.hpp).
  /// Sharing one cache across coordinators is safe — keys are content-
  /// addressed. Null disables memoization; either way fold-task rngs are
  /// derived from the fold input's content key, so results are identical
  /// with and without the cache.
  std::shared_ptr<fold::FoldCache> fold_cache;
  /// Optional inference-server surrogate fronting the fold/design model
  /// calls (infer/infer.hpp). The science is computed synchronously with
  /// the caller's rng — batching is accounting-only, so campaigns with
  /// and without a server (or with different batch sizes) are
  /// bit-identical. When the server is adaptive, fold-stage completions
  /// feed its BatchTuner and batch-size changes are traced as
  /// decision.batch_size instants.
  std::shared_ptr<infer::InferenceServer> infer;
  /// Trace context: span the coordinator parents its pipeline spans under
  /// (the campaign root span). 0 = pipelines become trace roots.
  obs::SpanId trace_root = 0;
  /// Checkpoint cadence (disabled by default) and the sink invoked with
  /// the coordinator's state at each quiesce-point checkpoint. The sink
  /// (the campaign layer) adds session/runtime state and persists the
  /// document; a sink that throws aborts the campaign, modelling a crash
  /// during the write.
  CheckpointPolicy checkpoint;
  std::function<void(const CoordinatorCheckpoint&)> checkpoint_sink;
};

class Coordinator {
 public:
  Coordinator(rp::Session& session, CoordinatorConfig config);

  /// Deregisters the completion callback and waits for in-flight callback
  /// passes to drain, so a late-finishing task cannot signal the channels
  /// while they are being destroyed.
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Queue a root pipeline for submission (pipeline channel). Call before
  /// run(); the decision-making step uses the same channel at runtime.
  void add_pipeline(std::unique_ptr<Pipeline> pipeline);

  /// Adopt a checkpoint's coordinator state before run(). `pipelines`
  /// must be the rebuilt counterparts of `state.pipelines`, same order
  /// (the campaign layer rebuilds them via Pipeline::restore, resolving
  /// targets/generators/folders from its own configuration). Mutually
  /// exclusive with add_pipeline(); run() then releases the checkpoint's
  /// parked actions instead of submitting roots.
  void restore(const CoordinatorCheckpoint& state,
               std::vector<std::unique_ptr<Pipeline>> pipelines);

  /// Execute until every pipeline has completed or terminated. Drives the
  /// session event loop (simulated mode) or a dispatcher thread (threaded
  /// mode). Returns when the campaign is done.
  void run();

  // --- results & bookkeeping ---
  [[nodiscard]] std::vector<TrajectoryResult> results() const;
  [[nodiscard]] std::size_t pipelines_submitted() const noexcept {
    return root_pipelines_;
  }
  [[nodiscard]] std::size_t subpipelines_spawned() const noexcept {
    return subpipelines_;
  }
  [[nodiscard]] std::size_t generator_tasks() const noexcept {
    return generator_tasks_;
  }
  [[nodiscard]] std::size_t refine_tasks() const noexcept {
    return refine_tasks_;
  }
  [[nodiscard]] std::size_t fold_tasks() const noexcept { return fold_tasks_; }
  [[nodiscard]] std::size_t fold_retries() const noexcept {
    return fold_retries_;
  }
  [[nodiscard]] std::size_t failed_tasks() const noexcept {
    return failed_tasks_;
  }

 private:
  struct Completion {
    rp::TaskPtr task;
  };

  void drain_channels();
  void register_pipeline(std::unique_ptr<Pipeline> pipeline);
  void handle_completion(const rp::TaskPtr& task);
  void process_action(Pipeline* pipeline, Pipeline::Action action);
  void submit_generator_task(Pipeline* pipeline);
  void submit_refine_task(Pipeline* pipeline, protein::Complex input);
  void submit_fold_task(Pipeline* pipeline, protein::Complex input,
                        bool reuse_features, bool refined);
  void submit_or_queue(Pipeline* pipeline, rp::TaskDescription description);
  void maybe_submit_queued();
  void on_pipeline_finished(Pipeline* pipeline);
  void consider_subpipeline(Pipeline* pipeline);
  /// All runtime work drained: nothing in flight, nothing queued, both
  /// channels empty — the only moments a checkpoint may be cut.
  [[nodiscard]] bool quiesced() const noexcept;
  /// Cut a checkpoint if one is pending and the coordinator is quiesced:
  /// reset the cadence counters, hand the state to the sink, release the
  /// parked actions.
  void maybe_checkpoint();
  void release_parked();
  [[nodiscard]] CoordinatorCheckpoint checkpoint() const;
  [[nodiscard]] double pool_median_composite() const;
  [[nodiscard]] bool campaign_done() const;
  void notify_runtime();  ///< schedule a drain (simulated mode)
  /// Open a stage span (stage.<what>.c<N>) under the pipeline's span;
  /// returns 0 when tracing is off. Stamped into the stage's task as
  /// trace_parent and closed when the task's completion comes back.
  [[nodiscard]] obs::SpanId begin_stage_span(Pipeline* pipeline,
                                             std::string_view stage);

  rp::Session& session_;
  CoordinatorConfig config_;
  std::size_t completion_callback_id_ = 0;
  /// Root stream for fold-task rngs: each fold task's rng is
  /// fold_rng_root_.fork(content_key), so duplicate fold inputs draw
  /// identical noise wherever they occur in the campaign — the property
  /// the fold cache's exactness rests on.
  common::Rng fold_rng_root_;

  // The paper's two channels.
  common::Channel<std::unique_ptr<Pipeline>> pipeline_channel_;
  common::Channel<Completion> completion_channel_;

  std::vector<std::unique_ptr<Pipeline>> pipelines_;
  std::unordered_map<std::string, Pipeline*> inflight_;  ///< task uid -> owner
  std::unordered_map<const Pipeline*, obs::SpanId> pipeline_spans_;
  std::deque<std::pair<Pipeline*, rp::TaskDescription>> queued_;  ///< sequential mode
  std::unordered_map<std::string, int> subpipeline_count_;  ///< per target

  std::size_t active_pipelines_ = 0;
  std::size_t root_pipelines_ = 0;
  std::size_t subpipelines_ = 0;
  std::size_t generator_tasks_ = 0;
  std::size_t refine_tasks_ = 0;
  std::size_t fold_tasks_ = 0;
  std::size_t fold_retries_ = 0;
  std::size_t failed_tasks_ = 0;
  bool started_ = false;

  // --- checkpoint machinery ---
  /// Actions intercepted while a checkpoint is pending, in submission
  /// order. Parking happens before the task rng is forked, so the
  /// checkpoint captures the pipeline rng at exactly the position the
  /// resumed submission will fork from.
  std::vector<std::pair<Pipeline*, Pipeline::Action>> parked_;
  bool checkpoint_pending_ = false;
  bool resumed_ = false;
  std::size_t completions_since_checkpoint_ = 0;
  std::size_t finished_since_checkpoint_ = 0;
};

}  // namespace impress::core
