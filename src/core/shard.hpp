// Campaign sharding: the determinism anchor for the distributed fabric
// (docs/fabric.md).
//
// A shard is a subset of a campaign's design targets, run through the
// ordinary Campaign machinery as its own independent campaign. Because
// the coordinator's cross-pipeline heuristics (pool-median composite) and
// the shared-pilot timing couple everything *within* one campaign, the
// sharded result differs from the unsharded one — so the contract the
// fabric pins is NOT "distributed == Campaign::run" for S > 1. Instead:
//
//   run_sharded(config, targets, plan) is the single-process baseline:
//   each shard runs to completion in plan order and the per-shard
//   results fold through merge_shard_results. A distributed run over any
//   transport, any worker count, any chaos schedule, and any number of
//   worker deaths must produce a bit-identical CampaignResult — each
//   shard is a pure function of (config, seed, membership) and PR-5
//   checkpoint/resume is bit-exact, so recovery lands on the same bytes.
//
//   For S == 1 the merge is the identity, so the distributed result also
//   equals the plain single-process Campaign::run — the ISSUE's headline
//   acceptance criterion — provided the checkpoint cadence matches
//   (cutting a checkpoint parks the coordinator and perturbs the engine
//   schedule, exactly as in PR-5).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "protein/datasets.hpp"

namespace impress::core {

/// Membership of one shard, by target name, in plan order.
struct ShardSpec {
  std::uint32_t id = 0;
  std::vector<std::string> target_names;

  bool operator==(const ShardSpec&) const = default;
};

/// The full partition of a campaign's target set. Shard ids are dense
/// [0, shards.size()).
struct ShardPlan {
  std::vector<ShardSpec> shards;

  bool operator==(const ShardPlan&) const = default;

  /// Contiguous balanced split: n targets over k shards, first (n mod k)
  /// shards take the extra target. k is clamped to [1, n] (never an
  /// empty shard). Pure function of the target order.
  [[nodiscard]] static ShardPlan contiguous(
      const std::vector<protein::DesignTarget>& targets, std::size_t shards);

  /// Resolve a shard's membership against the full target set (matched
  /// by name; throws std::invalid_argument on unknown names).
  [[nodiscard]] std::vector<protein::DesignTarget> targets_for(
      std::size_t shard,
      const std::vector<protein::DesignTarget>& all) const;
};

/// Build the per-shard campaign config: same protocol/seed/durations as
/// `config`, checkpointing rewired to cut every `checkpoint_every`
/// completions into an in-memory sink (no directory — workers ship
/// documents over the wire instead of to disk). checkpoint_every == 0
/// disables checkpointing entirely, matching a cadence-free baseline.
[[nodiscard]] CampaignConfig shard_campaign_config(
    const CampaignConfig& config, std::size_t checkpoint_every);

/// Single-process sharded baseline: run every shard of `plan` in order
/// (each through shard_campaign_config) and merge. The fabric's
/// distributed result must be bit-identical to this for the same
/// (config, targets, plan, checkpoint_every).
[[nodiscard]] CampaignResult run_sharded(
    const CampaignConfig& config,
    const std::vector<protein::DesignTarget>& targets, const ShardPlan& plan,
    std::size_t checkpoint_every = 0);

/// Deterministic fold of per-shard results, in shard order (docs/fabric.md
/// "merge semantics"). For a single shard this is the identity. Otherwise:
/// trajectories/gantt/lockdep concatenate (gantt under per-shard headers),
/// makespan is the max, energy and every workload/fault counter sum,
/// phase_hours sums per key, utilization is the span-weighted average,
/// attempts keys gain a "s<id>/" prefix (uids repeat across shard
/// sessions), and the per-bin series / trace / metrics reset to empty —
/// they have no meaningful cross-shard composition.
[[nodiscard]] CampaignResult merge_shard_results(
    std::vector<CampaignResult> shard_results);

}  // namespace impress::core
