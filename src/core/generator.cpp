#include "core/generator.hpp"

namespace impress::core {

std::vector<mpnn::ScoredSequence> RandomMutagenesisGenerator::generate(
    const protein::Complex& complex,
    const protein::FitnessLandscape& landscape, common::Rng& rng) const {
  const protein::Sequence& current = complex.receptor().sequence;
  std::vector<mpnn::ScoredSequence> out;
  out.reserve(num_sequences_);
  for (std::size_t s = 0; s < num_sequences_; ++s) {
    protein::Sequence seq = current;
    for (std::size_t m = 0; m < mutations_per_sequence_; ++m) {
      const std::size_t pos = rng.below(static_cast<std::uint32_t>(seq.size()));
      seq.set(pos, static_cast<protein::AminoAcid>(
                       rng.below(protein::kNumAminoAcids)));
    }
    // Structure-blind score: mean pocket hydropathy compatibility with the
    // peptide tail — a deliberately weak signal compared to ProteinMPNN.
    double score = 0.0;
    const auto& pep = complex.peptide().sequence;
    for (std::size_t pos : landscape.interface_positions()) {
      const auto pep_aa = pep[pep.size() - 1 - (pos % pep.size())];
      score -= std::abs(protein::hydropathy(seq[pos]) -
                        protein::hydropathy(pep_aa)) /
               9.0;
    }
    score /= static_cast<double>(landscape.interface_positions().size());
    out.push_back(mpnn::ScoredSequence{std::move(seq), score});
  }
  return out;
}

}  // namespace impress::core
