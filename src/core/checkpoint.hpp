// Campaign checkpoints: the versioned, crash-consistent document that
// captures an *in-flight* campaign at a coordinator quiesce point, and
// the loader that rebuilds it (docs/persistence.md).
//
// A checkpoint extends the session-dump idea from "archive a finished
// run" to "cut a running one": coordinator state (pipelines mid-cycle,
// parked task submissions, sub-pipeline budgets), runtime state (clock,
// pilots, executor rng streams, profiler/trace/metrics, uid and task
// counters), the fold memo cache, and every live rng stream's position.
// Campaign::resume() reconstructs all of it so a checkpointed-then-
// resumed campaign reproduces the uninterrupted CampaignResult
// bit-for-bit (simulated mode; pinned by Determinism.* tests).
//
// Serialization notes: every uint64 whose exact bits matter (rng state,
// cache keys, span ids, sequence numbers) is encoded as a hex string —
// JSON numbers are doubles here and would silently round above 2^53.
// Doubles rely on the parser/dumper bit-exact round-trip pinned by
// tests/common/test_json.cpp.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/coordinator.hpp"
#include "fold/fold_cache.hpp"
#include "runtime/session.hpp"

namespace impress::core {

/// Everything needed to resume a campaign mid-flight. Built by the
/// campaign's checkpoint sink at a coordinator quiesce point; consumed by
/// Campaign::resume().
struct CampaignCheckpoint {
  std::string campaign_name;
  std::uint64_t seed = 0;
  std::size_t targets = 0;   ///< root target count (config validation)
  std::uint64_t ordinal = 0; ///< 1-based index of this checkpoint

  // Runtime layer (rp::SessionRestore counterpart).
  double now = 0.0;
  std::vector<hpc::ProfileEvent> profiler_events;
  std::vector<obs::SpanRecord> trace;
  std::uint64_t trace_next_seq = 1;
  obs::SpanId campaign_span = 0;  ///< still-open campaign root span
  obs::MetricsSnapshot metrics;
  std::map<std::string, std::uint64_t> uid_counters;
  rp::TaskManager::Counters task_counters;
  std::vector<rp::PilotRestore> pilots;

  // Protocol layer.
  CoordinatorCheckpoint coordinator;
  std::optional<fold::FoldCache::Snapshot> fold_cache;
  /// Opaque per-generator state (SequenceGenerator::checkpoint_state);
  /// null for stateless generators.
  common::Json generator_state;
};

/// Serialize (schema kind "impress.checkpoint", version 2 — version 1 is
/// the finished-campaign session dump).
[[nodiscard]] common::Json to_json(const CampaignCheckpoint& checkpoint);

/// Rebuild from a document. Throws std::invalid_argument on kind/version
/// mismatch or missing fields.
[[nodiscard]] CampaignCheckpoint campaign_checkpoint_from_json(
    const common::Json& doc);

/// Write the checkpoint crash-consistently (common::write_file_atomic:
/// temp file + fsync + rename) so an interrupted write leaves the
/// previous checkpoint intact and loadable.
void save_checkpoint(const CampaignCheckpoint& checkpoint,
                     const std::string& path);
[[nodiscard]] CampaignCheckpoint load_checkpoint(const std::string& path);

}  // namespace impress::core
