#include "core/coordinator.hpp"

#include <chrono>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace impress::core {

Coordinator::Coordinator(rp::Session& session, CoordinatorConfig config)
    : session_(session),
      config_(std::move(config)),
      fold_rng_root_(session.fork_rng("coordinator.fold_rng")) {
  completion_callback_id_ =
      session_.task_manager().add_callback([this](const rp::TaskPtr& task) {
        completion_channel_.send(Completion{task});
        notify_runtime();
      });
}

Coordinator::~Coordinator() {
  // A worker finishing an unrelated task after campaign_done() could still
  // be inside the completion callback; drain before the channels die.
  session_.task_manager().remove_callback(completion_callback_id_);
}

void Coordinator::notify_runtime() {
  if (session_.mode() == rp::ExecutionMode::kSimulated)
    session_.engine().schedule_after(0.0, [this] { drain_channels(); });
}

void Coordinator::add_pipeline(std::unique_ptr<Pipeline> pipeline) {
  ++root_pipelines_;
  pipeline_channel_.send(std::move(pipeline));
}

void Coordinator::run() {
  if (started_) throw std::logic_error("Coordinator::run: already run");
  started_ = true;
  // A resumed coordinator re-submits the checkpoint's parked actions in
  // their original order instead of starting root pipelines.
  if (resumed_) release_parked();
  if (session_.mode() == rp::ExecutionMode::kSimulated) {
    drain_channels();  // submit root pipelines, creating the first events
    session_.run();
    drain_channels();  // nothing should remain; defensive
    return;
  }
  // Threaded mode: this thread is the decision-making loop.
  using namespace std::chrono_literals;
  while (!campaign_done()) {
    while (auto p = pipeline_channel_.try_receive())
      register_pipeline(std::move(*p));
    if (auto msg = completion_channel_.receive_for(20ms))
      handle_completion(msg->task);
    maybe_checkpoint();
  }
}

void Coordinator::drain_channels() {
  for (;;) {
    bool progressed = false;
    while (auto p = pipeline_channel_.try_receive()) {
      register_pipeline(std::move(*p));
      progressed = true;
    }
    while (auto msg = completion_channel_.try_receive()) {
      handle_completion(msg->task);
      progressed = true;
    }
    if (!progressed) break;
  }
  maybe_checkpoint();
}

void Coordinator::register_pipeline(std::unique_ptr<Pipeline> pipeline) {
  Pipeline* p = pipeline.get();
  pipelines_.push_back(std::move(pipeline));
  ++active_pipelines_;
  obs::Observability& ob = session_.observability();
  ob.metrics().pipeline_messages->inc();
  ob.metrics().pipelines_started->inc();
  ob.metrics().pipelines_active->add(1.0);
  if (obs::Tracer& tracer = ob.tracer(); tracer.enabled()) {
    const obs::SpanId span =
        tracer.begin(session_.now(), p->id(), obs::categories::kPipeline,
                     config_.trace_root);
    if (p->is_subpipeline()) tracer.attr(span, "subpipeline", "true");
    tracer.attr(span, "start_cycle", std::to_string(p->cycle() + 1));
    pipeline_spans_[p] = span;
  }
  IMPRESS_LOG(kInfo, "coordinator")
      << "pipeline " << p->id() << (p->is_subpipeline() ? " (sub)" : "")
      << " starting at cycle " << p->cycle() + 1;
  process_action(p, p->start());
}

void Coordinator::handle_completion(const rp::TaskPtr& task) {
  session_.observability().metrics().completion_messages->inc();
  const auto it = inflight_.find(task->uid());
  if (it == inflight_.end()) return;  // not ours (foreign task on session)
  Pipeline* p = it->second;
  inflight_.erase(it);
  ++completions_since_checkpoint_;
  if (config_.checkpoint.every_n_completions > 0 &&
      completions_since_checkpoint_ >= config_.checkpoint.every_n_completions)
    checkpoint_pending_ = true;
  // The stage span the coordinator opened at submit time closes when the
  // stage's task comes back, whatever the outcome.
  if (const obs::SpanId stage = task->description().trace_parent; stage != 0)
    session_.observability().tracer().end(stage, session_.now());

  if (task->state() != rp::TaskState::kDone) {
    ++failed_tasks_;
    IMPRESS_LOG(kWarn, "coordinator")
        << "task " << task->uid() << " " << rp::to_string(task->state())
        << " (" << task->error() << "); terminating pipeline " << p->id();
    p->abort();
    on_pipeline_finished(p);
    maybe_submit_queued();
    return;
  }

  const auto& app = task->description().metadata.at("app");
  // Adaptive batching: fold-stage completion cadence feeds the server's
  // tuner. A changed batch size is a campaign decision; trace it as one.
  if (config_.infer && app == "alphafold") {
    if (const auto batch = config_.infer->observe_completion(session_.now())) {
      if (obs::Tracer& tracer = session_.observability().tracer();
          tracer.enabled()) {
        const obs::SpanId decision =
            tracer.instant(session_.now(), "decision.batch_size",
                           obs::categories::kDecision, config_.trace_root);
        tracer.attr(decision, "batch_size", std::to_string(*batch));
      }
      IMPRESS_LOG(kInfo, "coordinator")
          << "decision: fold batch size -> " << *batch;
    }
  }
  const int cycle_before = p->cycle();
  Pipeline::Action action = [&] {
    if (app == "proteinmpnn" || app == "generator")
      return p->on_generator_result(
          task->result_as<std::vector<mpnn::ScoredSequence>>());
    if (app == "refine")
      return p->on_refine_result(task->result_as<protein::Complex>());
    if (app == "alphafold")
      return p->on_fold_result(task->result_as<fold::Prediction>());
    throw std::logic_error("Coordinator: unknown app '" + app + "'");
  }();

  if (app == "alphafold" && action.kind == Pipeline::Action::Kind::kRunFold)
    ++fold_retries_;  // Stage-6 declining branch: next-ranked sequence

  // Decision-making runs whenever a design iteration lands, not only at
  // pipeline completion: a mid-campaign acceptance that still leaves the
  // target below the pool median triggers re-processing on idle resources.
  const bool accepted_iteration = p->cycle() > cycle_before;
  process_action(p, std::move(action));
  if (accepted_iteration && !p->finished()) consider_subpipeline(p);
  maybe_submit_queued();
}

void Coordinator::process_action(Pipeline* pipeline, Pipeline::Action action) {
  // While a checkpoint is pending, task-submitting actions are parked so
  // the coordinator drains to a quiesce point. Parking precedes any rng
  // fork or TaskDescription construction, so the checkpoint captures the
  // exact state the released (or resumed) submission will start from.
  // Completion/termination actions still process — they submit nothing.
  const bool submits = action.kind == Pipeline::Action::Kind::kRunGenerator ||
                       action.kind == Pipeline::Action::Kind::kRunRefine ||
                       action.kind == Pipeline::Action::Kind::kRunFold;
  if (submits && checkpoint_pending_) {
    parked_.emplace_back(pipeline, std::move(action));
    return;
  }
  switch (action.kind) {
    case Pipeline::Action::Kind::kRunGenerator:
      submit_generator_task(pipeline);
      return;
    case Pipeline::Action::Kind::kRunRefine:
      submit_refine_task(pipeline, std::move(*action.fold_input));
      return;
    case Pipeline::Action::Kind::kRunFold:
      submit_fold_task(pipeline, std::move(*action.fold_input),
                       action.reuse_features, action.refined);
      return;
    case Pipeline::Action::Kind::kCompleted:
    case Pipeline::Action::Kind::kTerminated:
      on_pipeline_finished(pipeline);
      return;
  }
}

void Coordinator::submit_generator_task(Pipeline* pipeline) {
  ++generator_tasks_;
  auto gen = pipeline->generator_ptr();
  const protein::FitnessLandscape* landscape = &pipeline->target().landscape;
  protein::Complex input = pipeline->current();
  common::Rng rng = pipeline->fork_task_rng();

  auto srv = config_.infer;
  rp::Session* session = &session_;
  auto work = [gen, landscape, input = std::move(input), rng, srv,
               session](rp::Task&) mutable -> std::any {
    if (srv)
      return srv->design([&] { return gen->generate(input, *landscape, rng); },
                         session->now());
    return gen->generate(input, *landscape, rng);
  };

  auto td = mpnn::make_mpnn_task(
      pipeline->id() + ".gen.c" + std::to_string(pipeline->cycle() + 1),
      /*n_structures=*/1, config_.mpnn_durations, std::move(work));
  td.metadata["pipeline"] = pipeline->id();
  session_.observability().metrics().stage_generate->inc();
  td.trace_parent = begin_stage_span(pipeline, "generate");
  submit_or_queue(pipeline, std::move(td));
}

void Coordinator::submit_refine_task(Pipeline* pipeline,
                                     protein::Complex input) {
  ++refine_tasks_;
  // Surrogate relaxation: on our idealized backbones the minimization is
  // a fixed point, so the science payload passes the complex through; the
  // physical effect is the cleaner predictor input (refined flag) and the
  // CPU time spent.
  auto work = [input = std::move(input)](rp::Task&) mutable -> std::any {
    return std::move(input);
  };
  rp::TaskDescription td;
  td.name = pipeline->id() + ".refine.c" + std::to_string(pipeline->cycle() + 1);
  td.resources = hpc::ResourceRequest{.cores = config_.refine_durations.cores,
                                      .gpus = 0,
                                      .mem_gb = 4.0};
  td.phases.push_back(rp::TaskPhase{
      .name = "relax",
      .duration_s = config_.refine_durations.seconds,
      .jitter_sigma = config_.refine_durations.jitter_sigma,
      .cores = config_.refine_durations.cores,
      .gpus = 0,
      .cpu_intensity = config_.refine_durations.cpu_intensity,
      .gpu_intensity = 0.0,
  });
  td.work = std::move(work);
  td.metadata["app"] = "refine";
  td.metadata["pipeline"] = pipeline->id();
  session_.observability().metrics().stage_refine->inc();
  td.trace_parent = begin_stage_span(pipeline, "refine");
  submit_or_queue(pipeline, std::move(td));
}

void Coordinator::submit_fold_task(Pipeline* pipeline, protein::Complex input,
                                   bool reuse_features, bool refined) {
  ++fold_tasks_;
  fold::AlphaFold folder = [&] {
    if (!refined) return pipeline->folder();
    // Refined backbones give the predictor a cleaner input.
    auto cfg = pipeline->folder().config();
    cfg.metric_noise *= config_.refined_noise_factor;
    return fold::AlphaFold(cfg);
  }();
  const protein::FitnessLandscape* landscape = &pipeline->target().landscape;
  // Content-derived rng (not fork_task_rng): resubmissions of the same
  // fold input get the same stream, which both keeps the memo cache exact
  // and makes cached and uncached campaigns bit-identical.
  const std::uint64_t content =
      fold::FoldCache::content_key(input, *landscape, folder.config());
  common::Rng rng = fold_rng_root_.fork(content);

  auto cache = config_.fold_cache;
  auto srv = config_.infer;
  rp::Session* session = &session_;
  auto work = [folder, landscape, input, rng, cache, srv,
               session](rp::Task&) mutable -> std::any {
    if (srv)
      return srv->fold(folder, cache, input, *landscape, rng, session->now());
    if (cache) return cache->predict(folder, input, *landscape, rng);
    return folder.predict(input, *landscape, rng);
  };

  fold::FoldDurationModel durations = config_.fold_durations;
  durations.reuse_features = reuse_features;
  auto td = fold::make_fold_task(
      pipeline->id() + ".fold.c" + std::to_string(pipeline->cycle() + 1),
      durations, std::move(work));
  td.metadata["pipeline"] = pipeline->id();
  session_.observability().metrics().stage_fold->inc();
  td.trace_parent = begin_stage_span(pipeline, "fold");
  if (td.trace_parent != 0) {
    obs::Tracer& tracer = session_.observability().tracer();
    tracer.attr(td.trace_parent, "reuse_features",
                reuse_features ? "true" : "false");
    if (refined) tracer.attr(td.trace_parent, "refined", "true");
  }
  submit_or_queue(pipeline, std::move(td));
}

obs::SpanId Coordinator::begin_stage_span(Pipeline* pipeline,
                                          std::string_view stage) {
  obs::Tracer& tracer = session_.observability().tracer();
  if (!tracer.enabled()) return 0;
  const auto it = pipeline_spans_.find(pipeline);
  const obs::SpanId parent =
      it == pipeline_spans_.end() ? config_.trace_root : it->second;
  return tracer.begin(session_.now(),
                      "stage." + std::string(stage) + ".c" +
                          std::to_string(pipeline->cycle() + 1),
                      obs::categories::kStage, parent);
}

void Coordinator::submit_or_queue(Pipeline* pipeline,
                                  rp::TaskDescription description) {
  description.retry = config_.task_retry;
  if (config_.sequential && !inflight_.empty()) {
    queued_.emplace_back(pipeline, std::move(description));
    return;
  }
  const auto task = session_.task_manager().submit(std::move(description));
  inflight_[task->uid()] = pipeline;
}

void Coordinator::maybe_submit_queued() {
  while (!queued_.empty() && (!config_.sequential || inflight_.empty())) {
    auto [pipeline, td] = std::move(queued_.front());
    queued_.pop_front();
    const auto task = session_.task_manager().submit(std::move(td));
    inflight_[task->uid()] = pipeline;
    if (config_.sequential) return;
  }
}

void Coordinator::on_pipeline_finished(Pipeline* pipeline) {
  if (active_pipelines_ > 0) --active_pipelines_;
  ++finished_since_checkpoint_;
  if (config_.checkpoint.every_n_pipelines > 0 &&
      finished_since_checkpoint_ >= config_.checkpoint.every_n_pipelines)
    checkpoint_pending_ = true;
  obs::Observability& ob = session_.observability();
  ob.metrics().pipelines_finished->inc();
  ob.metrics().pipelines_active->sub(1.0);
  if (const auto it = pipeline_spans_.find(pipeline);
      it != pipeline_spans_.end()) {
    ob.tracer().attr(it->second, "iterations",
                     std::to_string(pipeline->history().size()));
    ob.tracer().end(it->second, session_.now());
    pipeline_spans_.erase(it);
  }
  IMPRESS_LOG(kInfo, "coordinator")
      << "pipeline " << pipeline->id() << " finished after "
      << pipeline->history().size() << " accepted iteration(s)";
  consider_subpipeline(pipeline);
}

double Coordinator::pool_median_composite() const {
  std::vector<double> values;
  for (const auto& p : pipelines_)
    if (const auto c = p->last_composite()) values.push_back(*c);
  return common::median(values);
}

void Coordinator::consider_subpipeline(Pipeline* pipeline) {
  const ProtocolConfig& cfg = pipeline->config();
  if (!cfg.adaptive || !cfg.spawn_subpipelines) return;
  auto& count = subpipeline_count_[pipeline->target().name];
  if (count >= cfg.max_subpipelines_per_target) return;

  // Decision-making (paper §II-D): re-process low-quality designs. A
  // pipeline is low-quality when it was pruned before completing all M
  // cycles, or when its current design sits below the global pool median.
  const bool pruned = pipeline->finished() && pipeline->cycle() < cfg.cycles;
  const auto composite = pipeline->last_composite();
  const bool below_pool =
      composite && *composite < pool_median_composite() - cfg.subpipeline_margin;
  if (!pruned && !below_pool) return;

  ++count;
  ++subpipelines_;
  obs::Observability& ob = session_.observability();
  ob.metrics().subpipelines_spawned->inc();
  if (obs::Tracer& tracer = ob.tracer(); tracer.enabled()) {
    const obs::SpanId decision = tracer.instant(
        session_.now(), "decision.spawn_subpipeline",
        obs::categories::kDecision, config_.trace_root);
    tracer.attr(decision, "pipeline", pipeline->id());
    tracer.attr(decision, "reason",
                pruned ? "pruned-trajectory" : "below-pool-median");
  }
  const int start_cycle =
      std::min(pipeline->cycle(), cfg.cycles - 1);
  auto sub = std::make_unique<Pipeline>(
      pipeline->target().name + ".sub" + std::to_string(count),
      pipeline->target(), pipeline->current(), cfg, pipeline->generator_ptr(),
      pipeline->folder(), pipeline->fork_task_rng(), start_cycle,
      /*is_subpipeline=*/true, /*baseline=*/std::nullopt);
  IMPRESS_LOG(kInfo, "coordinator")
      << "decision: spawning sub-pipeline " << sub->id() << " ("
      << (pruned ? "pruned trajectory" : "below pool median") << ")";
  pipeline_channel_.send(std::move(sub));
  notify_runtime();
}

bool Coordinator::quiesced() const noexcept {
  return inflight_.empty() && queued_.empty() && pipeline_channel_.empty() &&
         completion_channel_.empty();
}

void Coordinator::maybe_checkpoint() {
  if (!checkpoint_pending_ || !quiesced()) return;
  // Reset before the sink runs: a resumed coordinator starts its cadence
  // counters at zero, so the uninterrupted run must too.
  checkpoint_pending_ = false;
  completions_since_checkpoint_ = 0;
  finished_since_checkpoint_ = 0;
  if (config_.checkpoint_sink) config_.checkpoint_sink(checkpoint());
  release_parked();
}

void Coordinator::release_parked() {
  std::vector<std::pair<Pipeline*, Pipeline::Action>> parked;
  parked.swap(parked_);
  for (auto& [pipeline, action] : parked)
    process_action(pipeline, std::move(action));
  maybe_submit_queued();
}

CoordinatorCheckpoint Coordinator::checkpoint() const {
  CoordinatorCheckpoint c;
  c.pipelines.reserve(pipelines_.size());
  for (const auto& p : pipelines_) c.pipelines.push_back(p->snapshot());
  c.parked.reserve(parked_.size());
  for (const auto& [pipeline, action] : parked_) {
    CoordinatorCheckpoint::ParkedAction pa;
    pa.pipeline_id = pipeline->id();
    pa.kind = static_cast<int>(action.kind);
    pa.fold_input = action.fold_input;
    pa.reuse_features = action.reuse_features;
    pa.refined = action.refined;
    c.parked.push_back(std::move(pa));
  }
  c.subpipeline_count.insert(subpipeline_count_.begin(),
                             subpipeline_count_.end());
  // Walk pipelines_ (registration order) rather than the unordered span
  // map: every span key was inserted by register_pipeline, so this covers
  // the map without exposing hash order to the checkpoint path.
  for (const auto& p : pipelines_)
    if (const auto it = pipeline_spans_.find(p.get());
        it != pipeline_spans_.end())
      c.pipeline_spans[p->id()] = it->second;
  c.root_pipelines = root_pipelines_;
  c.subpipelines = subpipelines_;
  c.generator_tasks = generator_tasks_;
  c.refine_tasks = refine_tasks_;
  c.fold_tasks = fold_tasks_;
  c.fold_retries = fold_retries_;
  c.failed_tasks = failed_tasks_;
  return c;
}

void Coordinator::restore(const CoordinatorCheckpoint& state,
                          std::vector<std::unique_ptr<Pipeline>> pipelines) {
  if (started_) throw std::logic_error("Coordinator::restore: already run");
  if (resumed_)
    throw std::logic_error("Coordinator::restore: already restored");
  if (root_pipelines_ != 0)
    throw std::logic_error(
        "Coordinator::restore: pipelines already added via add_pipeline");
  if (pipelines.size() != state.pipelines.size())
    throw std::invalid_argument(
        "Coordinator::restore: pipeline count mismatch");
  resumed_ = true;
  pipelines_ = std::move(pipelines);

  std::unordered_map<std::string, Pipeline*> by_id;
  for (const auto& p : pipelines_) by_id[p->id()] = p.get();
  active_pipelines_ = 0;
  for (const auto& p : pipelines_)
    if (!p->finished()) ++active_pipelines_;

  parked_.reserve(state.parked.size());
  for (const auto& pa : state.parked) {
    const auto it = by_id.find(pa.pipeline_id);
    if (it == by_id.end())
      throw std::invalid_argument(
          "Coordinator::restore: parked action references unknown pipeline " +
          pa.pipeline_id);
    Pipeline::Action action;
    action.kind = static_cast<Pipeline::Action::Kind>(pa.kind);
    action.fold_input = pa.fold_input;
    action.reuse_features = pa.reuse_features;
    action.refined = pa.refined;
    parked_.emplace_back(it->second, std::move(action));
  }
  subpipeline_count_.insert(state.subpipeline_count.begin(),
                            state.subpipeline_count.end());
  // Pipeline spans were preloaded (still open, same ids) into the tracer
  // by the session restore; rebind them so stage spans parent correctly
  // and the spans close when their pipelines finish.
  for (const auto& [id, span] : state.pipeline_spans)
    if (const auto it = by_id.find(id); it != by_id.end())
      pipeline_spans_[it->second] = span;

  root_pipelines_ = static_cast<std::size_t>(state.root_pipelines);
  subpipelines_ = static_cast<std::size_t>(state.subpipelines);
  generator_tasks_ = static_cast<std::size_t>(state.generator_tasks);
  refine_tasks_ = static_cast<std::size_t>(state.refine_tasks);
  fold_tasks_ = static_cast<std::size_t>(state.fold_tasks);
  fold_retries_ = static_cast<std::size_t>(state.fold_retries);
  failed_tasks_ = static_cast<std::size_t>(state.failed_tasks);
}

bool Coordinator::campaign_done() const {
  return active_pipelines_ == 0 && inflight_.empty() && queued_.empty() &&
         pipeline_channel_.empty() && completion_channel_.empty();
}

std::vector<TrajectoryResult> Coordinator::results() const {
  std::vector<TrajectoryResult> out;
  out.reserve(pipelines_.size());
  for (const auto& p : pipelines_) out.push_back(p->result());
  return out;
}

}  // namespace impress::core
