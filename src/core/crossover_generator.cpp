#include "core/crossover_generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace impress::core {

CrossoverGenerator::CrossoverGenerator(
    std::shared_ptr<const SequenceGenerator> inner, Config config)
    : inner_(std::move(inner)), config_(config) {
  if (!inner_) throw std::invalid_argument("CrossoverGenerator: null inner");
  if (config_.crossover_fraction < 0.0 || config_.crossover_fraction > 1.0)
    throw std::invalid_argument(
        "CrossoverGenerator: crossover_fraction outside [0,1]");
  if (config_.population_size < 2)
    throw std::invalid_argument(
        "CrossoverGenerator: population_size must be >= 2");
}

std::vector<mpnn::ScoredSequence> CrossoverGenerator::generate(
    const protein::Complex& complex,
    const protein::FitnessLandscape& landscape, common::Rng& rng) const {
  auto proposals = inner_->generate(complex, landscape, rng);

  std::vector<Member> parents;
  {
    std::lock_guard lock(mutex_);
    const auto it = populations_.find(complex.receptor().size());
    if (it != populations_.end()) parents = it->second;
  }
  if (parents.size() < 2 || proposals.empty()) return proposals;

  // Replace the tail of the proposal set (the lowest-self-scored fresh
  // samples after Stage-2 sorting happens downstream; order here is
  // unsorted, so replace a random subset) with recombinants.
  const auto n_cross = static_cast<std::size_t>(
      config_.crossover_fraction * static_cast<double>(proposals.size()));
  // Reward-weighted parent choice; the weights and the child scratch
  // buffer are loop-invariant allocations, hoisted out of the per-child
  // loop (parents is a private snapshot, rewards don't change here).
  std::vector<double> weights;
  weights.reserve(parents.size());
  for (const auto& m : parents) weights.push_back(std::max(m.reward, 1e-3));
  protein::MutationBuffer child;
  for (std::size_t k = 0; k < n_cross; ++k) {
    const std::size_t a = rng.categorical(weights);
    std::size_t b = rng.categorical(weights);
    if (b == a) b = (a + 1) % parents.size();

    child.rebase(parents[a].sequence);
    for (std::size_t pos : landscape.interface_positions())
      if (rng.chance(config_.mixing)) child.set(pos, parents[b].sequence[pos]);

    const std::size_t slot =
        rng.below(static_cast<std::uint32_t>(proposals.size()));
    // Self-score: midpoint of the parents' rewards, so Stage-2 ranks
    // recombinants of strong parents competitively.
    proposals[slot] = mpnn::ScoredSequence{
        child.materialize(), (parents[a].reward + parents[b].reward) / 2.0 - 1.0};
  }
  return proposals;
}

void CrossoverGenerator::observe(const protein::Sequence& sequence,
                                 double reward) const {
  inner_->observe(sequence, reward);
  std::lock_guard lock(mutex_);
  auto& pop = populations_[sequence.size()];
  pop.push_back(Member{sequence, reward});
  std::sort(pop.begin(), pop.end(), [](const Member& x, const Member& y) {
    return x.reward > y.reward;
  });
  if (pop.size() > config_.population_size) pop.resize(config_.population_size);
}

std::size_t CrossoverGenerator::population(std::size_t length) const {
  std::lock_guard lock(mutex_);
  const auto it = populations_.find(length);
  return it == populations_.end() ? 0 : it->second.size();
}

common::Json CrossoverGenerator::checkpoint_state() const {
  common::Json::Object out;
  out["inner"] = inner_->checkpoint_state();
  std::lock_guard lock(mutex_);
  common::Json::Object pops;
  for (const auto& [length, pop] : populations_) {
    common::Json::Array members;
    members.reserve(pop.size());
    for (const auto& m : pop) {
      common::Json::Object o;
      o["sequence"] = m.sequence.to_string();
      o["reward"] = m.reward;
      members.emplace_back(std::move(o));
    }
    pops.emplace(std::to_string(length), common::Json(std::move(members)));
  }
  out["populations"] = common::Json(std::move(pops));
  return common::Json(std::move(out));
}

void CrossoverGenerator::restore_checkpoint_state(
    const common::Json& state) const {
  if (state.is_null()) return;
  inner_->restore_checkpoint_state(state.at("inner"));
  std::lock_guard lock(mutex_);
  populations_.clear();
  for (const auto& [key, members] : state.at("populations").as_object()) {
    auto& pop = populations_[std::stoull(key)];
    for (const auto& m : members.as_array())
      pop.push_back(
          Member{protein::Sequence::from_string(m.at("sequence").as_string()),
                 m.at("reward").as_number()});
  }
}

}  // namespace impress::core
