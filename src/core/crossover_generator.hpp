// Population-based crossover generator: the "genetic algorithm" of the
// paper's §I taken literally. Wraps any inner generator and adds a
// population memory fed by the pipeline's observe() feedback; a fraction
// of proposals are produced by recombining two remembered parents
// (uniform crossover at pocket positions) instead of sampling fresh
// mutations. Epistatic landscapes (the couplings term) are exactly where
// recombining two good designs can beat mutating one.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/generator.hpp"

namespace impress::core {

class CrossoverGenerator final : public SequenceGenerator {
 public:
  struct Config {
    /// Fraction of proposals produced by crossover once at least two
    /// parents are available (the rest come from the inner generator).
    double crossover_fraction = 0.4;
    /// Parents remembered per receptor length (elitist: best rewards).
    std::size_t population_size = 8;
    /// Per-position probability of taking the second parent's residue.
    double mixing = 0.5;
  };

  explicit CrossoverGenerator(std::shared_ptr<const SequenceGenerator> inner)
      : CrossoverGenerator(std::move(inner), Config{}) {}
  CrossoverGenerator(std::shared_ptr<const SequenceGenerator> inner,
                     Config config);

  [[nodiscard]] std::vector<mpnn::ScoredSequence> generate(
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape,
      common::Rng& rng) const override;

  /// Feeds the population (elitist, per receptor length) and forwards to
  /// the inner generator.
  void observe(const protein::Sequence& sequence,
               double reward) const override;

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+crossover";
  }

  /// Current population size for a receptor length (tests/telemetry).
  [[nodiscard]] std::size_t population(std::size_t length) const;

  /// Campaign checkpoint: the per-length populations plus the wrapped
  /// generator's own state (nested under "inner").
  [[nodiscard]] common::Json checkpoint_state() const override;
  void restore_checkpoint_state(const common::Json& state) const override;

 private:
  struct Member {
    protein::Sequence sequence;
    double reward = 0.0;
  };

  std::shared_ptr<const SequenceGenerator> inner_;
  Config config_;
  mutable std::mutex mutex_;
  mutable std::map<std::size_t, std::vector<Member>> populations_;
};

}  // namespace impress::core
