#include "core/shard.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <stdexcept>
#include <utility>

namespace impress::core {

ShardPlan ShardPlan::contiguous(
    const std::vector<protein::DesignTarget>& targets, std::size_t shards) {
  const std::size_t n = targets.size();
  std::size_t k = shards == 0 ? 1 : shards;
  if (n > 0 && k > n) k = n;
  ShardPlan plan;
  if (n == 0) {
    plan.shards.push_back(ShardSpec{.id = 0, .target_names = {}});
    return plan;
  }
  const std::size_t base = n / k;
  const std::size_t extra = n % k;
  std::size_t next = 0;
  for (std::size_t s = 0; s < k; ++s) {
    ShardSpec spec;
    spec.id = static_cast<std::uint32_t>(s);
    const std::size_t count = base + (s < extra ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) {
      spec.target_names.push_back(targets[next++].name);
    }
    plan.shards.push_back(std::move(spec));
  }
  return plan;
}

std::vector<protein::DesignTarget> ShardPlan::targets_for(
    std::size_t shard, const std::vector<protein::DesignTarget>& all) const {
  if (shard >= shards.size()) {
    throw std::invalid_argument("ShardPlan::targets_for: no shard " +
                                std::to_string(shard));
  }
  std::map<std::string, const protein::DesignTarget*> by_name;
  for (const auto& t : all) by_name[t.name] = &t;
  std::vector<protein::DesignTarget> out;
  out.reserve(shards[shard].target_names.size());
  for (const std::string& name : shards[shard].target_names) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::invalid_argument(
          "ShardPlan::targets_for: unknown target '" + name + "'");
    }
    out.push_back(*it->second);
  }
  return out;
}

CampaignConfig shard_campaign_config(const CampaignConfig& config,
                                     std::size_t checkpoint_every) {
  CampaignConfig shard = config;
  shard.checkpoint = CheckpointConfig{};
  if (checkpoint_every > 0) {
    shard.checkpoint.every_n_completions = checkpoint_every;
    // A sink (even a discarding one) enables the cadence, so the engine
    // schedule matches any run that ships documents over the wire.
    shard.checkpoint.sink = [](const CampaignCheckpoint&) {};
  }
  return shard;
}

CampaignResult run_sharded(const CampaignConfig& config,
                           const std::vector<protein::DesignTarget>& targets,
                           const ShardPlan& plan,
                           std::size_t checkpoint_every) {
  std::vector<CampaignResult> results;
  results.reserve(plan.shards.size());
  const CampaignConfig shard_config =
      shard_campaign_config(config, checkpoint_every);
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    const std::vector<protein::DesignTarget> shard_targets =
        plan.targets_for(s, targets);
    Campaign campaign(shard_config);
    results.push_back(campaign.run(shard_targets));
  }
  return merge_shard_results(std::move(results));
}

CampaignResult merge_shard_results(std::vector<CampaignResult> shard_results) {
  if (shard_results.empty()) {
    return CampaignResult{};
  }
  if (shard_results.size() == 1) {
    return std::move(shard_results.front());
  }

  CampaignResult merged;
  merged.name = shard_results.front().name;

  double span_sum = 0.0;
  for (std::size_t s = 0; s < shard_results.size(); ++s) {
    CampaignResult& r = shard_results[s];

    merged.trajectories.insert(merged.trajectories.end(),
                               std::make_move_iterator(r.trajectories.begin()),
                               std::make_move_iterator(r.trajectories.end()));

    merged.makespan_h = std::max(merged.makespan_h, r.makespan_h);
    merged.energy_kwh += r.energy_kwh;
    for (const auto& [phase, hours] : r.phase_hours) {
      merged.phase_hours[phase] += hours;
    }

    // Span-weighted average of the utilization rates; the merged span is
    // the longest shard's (shards run concurrently in the fabric).
    const double w = r.utilization.span_seconds;
    span_sum += w;
    merged.utilization.span_seconds =
        std::max(merged.utilization.span_seconds, r.utilization.span_seconds);
    merged.utilization.cpu_allocated += w * r.utilization.cpu_allocated;
    merged.utilization.cpu_active += w * r.utilization.cpu_active;
    merged.utilization.gpu_allocated += w * r.utilization.gpu_allocated;
    merged.utilization.gpu_active += w * r.utilization.gpu_active;

    if (!r.gantt.empty()) {
      merged.gantt += "=== shard " + std::to_string(s) + " ===\n";
      merged.gantt += r.gantt;
      if (merged.gantt.back() != '\n') merged.gantt += '\n';
    }

    merged.root_pipelines += r.root_pipelines;
    merged.subpipelines += r.subpipelines;
    merged.generator_tasks += r.generator_tasks;
    merged.refine_tasks += r.refine_tasks;
    merged.fold_tasks += r.fold_tasks;
    merged.fold_retries += r.fold_retries;
    merged.failed_tasks += r.failed_tasks;
    merged.targets += r.targets;
    merged.task_retries += r.task_retries;
    merged.task_timeouts += r.task_timeouts;
    merged.task_requeues += r.task_requeues;
    merged.pilot_failures += r.pilot_failures;

    // Task uids restart per shard session, so namespace the keys.
    const std::string prefix = "s" + std::to_string(s) + "/";
    for (auto& [uid, attempts] : r.attempts) {
      merged.attempts[prefix + uid] = attempts;
    }

    merged.fold_cache.hits += r.fold_cache.hits;
    merged.fold_cache.misses += r.fold_cache.misses;
    merged.fold_cache.evictions += r.fold_cache.evictions;
    merged.fold_cache.entries += r.fold_cache.entries;
    merged.fold_cache.duplicate_discards += r.fold_cache.duplicate_discards;

    merged.lockdep.insert(merged.lockdep.end(),
                          std::make_move_iterator(r.lockdep.begin()),
                          std::make_move_iterator(r.lockdep.end()));
  }
  if (span_sum > 0.0) {
    merged.utilization.cpu_allocated /= span_sum;
    merged.utilization.cpu_active /= span_sum;
    merged.utilization.gpu_allocated /= span_sum;
    merged.utilization.gpu_active /= span_sum;
  }
  // cpu_series/gpu_series, trace and metrics stay empty: per-bin series
  // from different shard clocks have no meaningful cross-shard merge.
  return merged;
}

}  // namespace impress::core
