// The IMPRESS pipeline (paper §II-C): one structure's iterative design
// loop, expressed as an explicit state machine.
//
//   Stage 1   generator produces N candidate sequences for the current
//             structure                                  -> kRunGenerator
//   Stage 2   candidates sorted by log-likelihood        (internal)
//   Stage 3   ranked candidates compiled to FASTA        (current_fasta())
//   Stage 4   AlphaFold predicts the selected candidate  -> kRunFold
//   Stage 5   confidence metrics gathered                (internal)
//   Stage 6   compare with the previous iteration: on improvement the new
//             model seeds the next cycle; on decline Stages 4-5 repeat
//             with the next-ranked sequence, up to max_retries, after
//             which the pipeline terminates
//   Stage 6M+7 after M cycles the final candidates are returned
//
// The class is runtime-agnostic: it never talks to the task system. The
// coordinator converts the returned Actions into rp tasks and feeds
// results back in. This is exactly the paper's split between the
// "pipelines coordinator" and the pipeline structure itself.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/generator.hpp"
#include "core/protocol.hpp"
#include "fold/fold.hpp"
#include "protein/datasets.hpp"

namespace impress::core {

class Pipeline {
 public:
  struct Action {
    enum class Kind {
      kRunGenerator,  ///< submit a Stage-1 sequence-generation task
      kRunRefine,     ///< submit a backbone-refinement task (optional)
      kRunFold,       ///< submit a Stage-4 structure-prediction task
      kCompleted,     ///< all M cycles finished
      kTerminated,    ///< retry budget exhausted (Stage 6)
    };
    Kind kind;
    /// For kRunRefine/kRunFold: the complex to process (candidate
    /// receptor grafted onto the current structure); for kRunFold also
    /// whether MSA/features can be reused from the preceding prediction
    /// and whether the input backbone was refined.
    std::optional<protein::Complex> fold_input;
    bool reuse_features = false;
    bool refined = false;
  };

  /// `start_cycle` > 0 and a `baseline` let a sub-pipeline resume an
  /// existing trajectory from its parent's state.
  Pipeline(std::string id, const protein::DesignTarget& target,
           protein::Complex start, ProtocolConfig config,
           std::shared_ptr<const SequenceGenerator> generator,
           fold::AlphaFold folder, common::Rng rng, int start_cycle = 0,
           bool is_subpipeline = false,
           std::optional<fold::FoldMetrics> baseline = std::nullopt);

  /// Begin the first cycle. Must be called exactly once.
  [[nodiscard]] Action start();

  /// Deliver the Stage-1 result; performs Stages 2-3 and selects the
  /// candidate for Stage 4 (or refinement first, when enabled).
  [[nodiscard]] Action on_generator_result(
      std::vector<mpnn::ScoredSequence> sequences);

  /// Deliver the refinement result: the relaxed complex proceeds to
  /// Stage 4 with the refined flag set.
  [[nodiscard]] Action on_refine_result(protein::Complex refined);

  /// Deliver the Stage-4/5 result; performs Stage 6.
  [[nodiscard]] Action on_fold_result(const fold::Prediction& prediction);

  /// Force-terminate (e.g. after a task failure). Idempotent.
  void abort() noexcept { state_ = State::kTerminated; }

  /// Stage-3 artifact: FASTA of this cycle's ranked candidates.
  [[nodiscard]] std::string current_fasta() const;

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const protein::DesignTarget& target() const noexcept {
    return *target_;
  }
  [[nodiscard]] const protein::Complex& current() const noexcept {
    return current_;
  }
  [[nodiscard]] int cycle() const noexcept { return cycle_; }
  [[nodiscard]] bool is_subpipeline() const noexcept { return is_sub_; }
  [[nodiscard]] bool finished() const noexcept {
    return state_ == State::kDone || state_ == State::kTerminated;
  }
  [[nodiscard]] const std::vector<IterationRecord>& history() const noexcept {
    return history_;
  }
  /// Composite quality of the last accepted iteration (or baseline);
  /// nullopt before anything was accepted.
  [[nodiscard]] std::optional<double> last_composite() const;
  [[nodiscard]] const std::optional<fold::FoldMetrics>& last_metrics()
      const noexcept {
    return last_metrics_;
  }

  /// A fresh random stream for one runtime task of this pipeline.
  [[nodiscard]] common::Rng fork_task_rng();

  [[nodiscard]] const ProtocolConfig& config() const noexcept { return config_; }
  [[nodiscard]] const SequenceGenerator& generator() const noexcept {
    return *generator_;
  }
  [[nodiscard]] std::shared_ptr<const SequenceGenerator> generator_ptr()
      const noexcept {
    return generator_;
  }
  [[nodiscard]] const fold::AlphaFold& folder() const noexcept { return folder_; }

  [[nodiscard]] TrajectoryResult result() const;

  /// Everything a campaign checkpoint needs to rebuild this pipeline at a
  /// quiesce point (no task in flight). The target is referenced by name
  /// and re-resolved on restore; protocol config, generator and folder are
  /// likewise re-supplied from the (identical) campaign configuration.
  struct Snapshot {
    std::string id;
    std::string target_name;
    protein::Complex current;
    common::Rng::State rng;
    std::uint64_t task_counter = 0;
    int state = 0;  ///< State enum, numeric
    int cycle = 0;
    bool is_sub = false;
    std::vector<mpnn::ScoredSequence> candidates;
    std::uint64_t next_candidate = 0;
    std::uint64_t pending_candidate = 0;
    bool pending_reuse_features = false;
    int retries_this_cycle = 0;
    int total_retries = 0;
    std::optional<fold::FoldMetrics> last_metrics;
    std::vector<IterationRecord> history;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Rebuild a pipeline mid-flight from a checkpoint snapshot. `target`
  /// must outlive the pipeline (resolved by snapshot().target_name).
  [[nodiscard]] static Pipeline restore(
      const Snapshot& snap, const protein::DesignTarget& target,
      ProtocolConfig config,
      std::shared_ptr<const SequenceGenerator> generator,
      fold::AlphaFold folder);

 private:
  enum class State {
    kIdle,
    kAwaitGenerator,
    kAwaitRefine,
    kAwaitFold,
    kDone,
    kTerminated,
  };

  struct RestoreTag {};
  Pipeline(RestoreTag, const Snapshot& snap,
           const protein::DesignTarget& target, ProtocolConfig config,
           std::shared_ptr<const SequenceGenerator> generator,
           fold::AlphaFold folder);

  /// Whether Stage-6 gating applies to the cycle being worked on.
  [[nodiscard]] bool cycle_is_adaptive() const noexcept;
  [[nodiscard]] Action select_and_fold(bool reuse_features);
  [[nodiscard]] Action begin_cycle();

  std::string id_;
  const protein::DesignTarget* target_;
  protein::Complex current_;
  ProtocolConfig config_;
  std::shared_ptr<const SequenceGenerator> generator_;
  fold::AlphaFold folder_;
  common::Rng rng_;
  std::uint64_t task_counter_ = 0;

  State state_ = State::kIdle;
  int cycle_ = 0;       ///< completed cycles (start_cycle for sub-pipelines)
  bool is_sub_ = false;
  std::vector<mpnn::ScoredSequence> candidates_;  ///< sorted, this cycle
  std::size_t next_candidate_ = 0;
  std::size_t pending_candidate_ = 0;
  bool pending_reuse_features_ = false;
  int retries_this_cycle_ = 0;
  int total_retries_ = 0;
  std::optional<fold::FoldMetrics> last_metrics_;
  std::vector<IterationRecord> history_;
};

}  // namespace impress::core
