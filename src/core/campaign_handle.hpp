// Campaign execution handles for the multi-tenant service layer
// (src/service): what the front-end drives when it dispatches an admitted
// submission.
//
// Two forms, one contract (deterministic in the seed):
//  * CampaignExecutionModel — the closed-form cost/quality model of one
//    campaign execution, distilled from the calibration duration models
//    (core/calibration.hpp). The service's simulated backend and the
//    bench_service load generator sample thousands of campaign handles
//    per second through this without paying for full pipelines.
//  * run_service_campaign — the real thing: builds and runs an actual
//    core::Campaign from a service submission spec. The integration test
//    drives one service submission end-to-end through it to prove the
//    model and the campaign agree on the interface.

#pragma once

#include <cstdint>

#include "core/campaign.hpp"

namespace impress::core {

/// Workload shape of one service-submitted campaign (the knobs tenants
/// are billed by: how many targets, how many design cycles).
struct CampaignShape {
  std::size_t targets = 1;
  int cycles = 4;
  std::size_t sequences_per_structure = 10;
};

class CampaignExecutionModel {
 public:
  struct Sample {
    /// Submit-side service time until the first scored design lands
    /// (pilot bootstrap + one MPNN + one full AlphaFold pass).
    double first_result_s = 0.0;
    /// Full campaign duration.
    double total_s = 0.0;
    /// End-of-campaign composite-quality proxy in [0, 1].
    double quality = 0.0;
  };

  explicit CampaignExecutionModel(CampaignShape shape = {}) noexcept;

  /// Deterministic, allocation-free: the same (shape, seed) pair yields
  /// the same sample on every machine.
  [[nodiscard]] Sample sample(std::uint64_t seed) const noexcept;

  [[nodiscard]] const CampaignShape& shape() const noexcept { return shape_; }

 private:
  CampaignShape shape_;
  double first_base_s_;  ///< bootstrap + MPNN + AF features + AF inference
  double step_base_s_;   ///< one cycle-step (MPNN + full AlphaFold)
};

/// Spec for running a real campaign on behalf of a service submission.
struct ServiceCampaignSpec {
  std::uint64_t seed = 42;
  CampaignShape shape{.targets = 1, .cycles = 1, .sequences_per_structure = 4};
};

/// Build and run an actual IM-RP campaign for `spec` (simulated runtime,
/// virtual clock — milliseconds of wall time). Deterministic in the seed.
[[nodiscard]] CampaignResult run_service_campaign(
    const ServiceCampaignSpec& spec);

}  // namespace impress::core
