#include "core/export.hpp"

#include <cctype>
#include <filesystem>

#include "common/fs.hpp"
#include "common/stats.hpp"
#include "core/report.hpp"

namespace impress::core {

namespace {

std::string num(double v, int decimals = 6) {
  return common::format_fixed(v, decimals);
}

}  // namespace

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string trajectories_csv(const CampaignResult& result) {
  std::string out =
      "pipeline_id,target,is_subpipeline,cycle,plddt,ptm,ipae,composite,"
      "true_fitness,retries,sequence\n";
  for (const auto& t : result.trajectories) {
    for (const auto& rec : t.history) {
      out += csv_escape(t.pipeline_id) + ',' + csv_escape(t.target_name) + ',' +
             (t.is_subpipeline ? "1" : "0") + ',' + std::to_string(rec.cycle) +
             ',' + num(rec.metrics.plddt, 3) + ',' + num(rec.metrics.ptm, 4) +
             ',' + num(rec.metrics.ipae, 3) + ',' +
             num(rec.metrics.composite(), 4) + ',' +
             num(rec.true_fitness, 4) + ',' + std::to_string(rec.retries) +
             ',' + csv_escape(rec.sequence) + '\n';
    }
  }
  return out;
}

std::string utilization_csv(const CampaignResult& result) {
  std::string out = "bin,t_start_h,t_end_h,cpu,gpu\n";
  const std::size_t bins = result.cpu_series.size();
  if (bins == 0) return out;
  const double bin_h = result.makespan_h / static_cast<double>(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double gpu = b < result.gpu_series.size() ? result.gpu_series[b] : 0.0;
    out += std::to_string(b) + ',' + num(static_cast<double>(b) * bin_h, 4) +
           ',' + num(static_cast<double>(b + 1) * bin_h, 4) + ',' +
           num(result.cpu_series[b], 4) + ',' + num(gpu, 4) + '\n';
  }
  return out;
}

std::string iterations_csv(const CampaignResult& result, int cycles) {
  std::string out = "metric,cycle,n,median,mean,stddev,p25,p75\n";
  for (const auto metric : {Metric::kPlddt, Metric::kPtm, Metric::kIpae}) {
    const auto matrix = metric_by_cycle(result, metric, cycles);
    for (int c = 1; c <= cycles; ++c) {
      const auto& vals = matrix[static_cast<std::size_t>(c - 1)];
      const auto s = common::summarize({vals.data(), vals.size()});
      out += std::string(metric_name(metric)) + ',' + std::to_string(c) + ',' +
             std::to_string(s.n) + ',' + num(s.median, 4) + ',' +
             num(s.mean, 4) + ',' + num(s.stddev, 4) + ',' + num(s.p25, 4) +
             ',' + num(s.p75, 4) + '\n';
    }
  }
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  common::write_file_atomic(path, content);
}

std::vector<std::string> export_campaign_csv(const CampaignResult& result,
                                             const std::string& directory,
                                             int cycles) {
  std::filesystem::create_directories(directory);
  std::string stem;
  for (char c : result.name)
    stem.push_back(std::isalnum(static_cast<unsigned char>(c))
                       ? static_cast<char>(std::tolower(
                             static_cast<unsigned char>(c)))
                       : '_');
  std::vector<std::string> paths;
  const auto base = (std::filesystem::path(directory) / stem).string();
  paths.push_back(base + "_trajectories.csv");
  write_text_file(paths.back(), trajectories_csv(result));
  paths.push_back(base + "_utilization.csv");
  write_text_file(paths.back(), utilization_csv(result));
  paths.push_back(base + "_iterations.csv");
  write_text_file(paths.back(), iterations_csv(result, cycles));
  return paths;
}

}  // namespace impress::core
