// Calibration of the surrogate task-duration models and protocol defaults
// against the paper's testbed (one Amarel node: 28 cores, 4x Quadro M6000)
// and Table I.
//
// The anchor is the CONT-V column, which pins per-task durations because
// CONT-V is strictly sequential: 4 cycles x 4 structures, each cycle-step
// costing one ProteinMPNN call and one full AlphaFold run,
//
//   16 x (0.10 h MPNN + 1.00 h AF features + 0.60 h AF inference)
//     + per-task exec setup + pilot bootstrap  ~  27.7 h  (Table I)
//
// IM-RP shares every duration; its extra wall time comes from the
// protocol itself (Stage-6 alternative-sequence retries pay the full
// AlphaFold cost again, and the decision step spawns sub-pipelines), and
// its higher utilization from asynchronous concurrent execution.

#pragma once

#include "core/coordinator.hpp"
#include "core/protocol.hpp"
#include "fold/fold.hpp"
#include "fold/fold_task.hpp"
#include "mpnn/mpnn.hpp"
#include "mpnn/mpnn_task.hpp"
#include "runtime/pilot.hpp"
#include "runtime/session.hpp"

namespace impress::core::calibration {

/// ProteinMPNN on an M6000: ~6 min per structure, GPU-resident.
[[nodiscard]] inline mpnn::MpnnDurationModel mpnn_durations() {
  return mpnn::MpnnDurationModel{
      .seconds_per_structure = 360.0,
      .jitter_sigma = 0.10,
      .cores = 2,
      .gpus = 1,
      .cpu_intensity = 0.50,
      .gpu_intensity = 0.70,
  };
}

/// AlphaFold split per ParaFold: ~1 h CPU feature stage (I/O-bound HMM
/// searches on 9 threads), ~36 min GPU inference for 5 models.
[[nodiscard]] inline fold::FoldDurationModel fold_durations() {
  return fold::FoldDurationModel{
      .features_s = 3960.0,
      .features_jitter = 0.12,
      .feature_cores = 7,
      .feature_cpu_intensity = 0.95,
      .inference_s = 1800.0,
      .inference_jitter = 0.10,
      .inference_cores = 2,
      .inference_gpus = 1,
      .inference_cpu_intensity = 0.30,
      .inference_gpu_intensity = 0.80,
      .reuse_features = false,
  };
}

/// The evaluation pilot: one Amarel GPU node, RP-like overheads.
[[nodiscard]] inline rp::PilotDescription amarel_pilot(
    rp::SchedulerPolicy policy = rp::SchedulerPolicy::kBackfill) {
  rp::PilotDescription pd;
  pd.nodes = {hpc::amarel_node()};
  pd.bootstrap_s = 180.0;  // RP agent bootstrap ("Bootstrap" in Fig 5)
  pd.exec_overhead =
      rp::ExecOverheadModel{.setup_mean_s = 90.0, .setup_jitter_sigma = 0.30};
  pd.policy = policy;
  return pd;
}

/// A spot-tier twin of the evaluation pilot: same Amarel-class node,
/// marked preemptible. Add to CampaignConfig::extra_pilots and schedule
/// reclaims via session.faults.spot_reclaims against its submission index
/// (1 when it is the only extra pilot).
[[nodiscard]] inline rp::PilotDescription spot_pilot(
    rp::SchedulerPolicy policy = rp::SchedulerPolicy::kBackfill) {
  rp::PilotDescription pd = amarel_pilot(policy);
  for (auto& node : pd.nodes) {
    node.name = "spot-" + node.name;
    node.preemptible = true;
  }
  return pd;
}

/// Paper protocol constants shared by both arms.
inline constexpr int kCycles = 4;
inline constexpr std::size_t kSequencesPerStructure = 10;
inline constexpr int kMaxRetries = 10;

/// IM-RP: adaptive protocol, asynchronous execution, backfill scheduling.
[[nodiscard]] inline ProtocolConfig im_rp_protocol() {
  ProtocolConfig p;
  p.cycles = kCycles;
  p.sequences_per_structure = kSequencesPerStructure;
  p.max_retries = kMaxRetries;
  p.adaptive = true;
  p.random_selection = false;
  p.adaptivity_in_final_cycle = true;
  p.spawn_subpipelines = true;
  p.subpipeline_margin = 0.0;
  p.max_subpipelines_per_target = 3;
  p.reuse_features_on_retry = false;  // every retry pays full AlphaFold
  return p;
}

/// CONT-V: all the same stages, no adaptive decision-making, random
/// candidate selection, no pruning, strictly sequential execution.
[[nodiscard]] inline ProtocolConfig cont_v_protocol() {
  ProtocolConfig p;
  p.cycles = kCycles;
  p.sequences_per_structure = kSequencesPerStructure;
  p.max_retries = 0;
  p.adaptive = false;
  p.random_selection = true;
  p.spawn_subpipelines = false;
  return p;
}

/// Surrogate model defaults (see mpnn/fold headers for semantics).
[[nodiscard]] inline mpnn::SamplerConfig sampler_config() {
  mpnn::SamplerConfig c;
  c.num_sequences = kSequencesPerStructure;
  // Four pocket mutations per proposal with a moderately noisy model:
  // steady per-cycle gains over all four cycles (matching the paper's
  // Fig 2/3 climb) with enough proposal variance that Stage-6 declines —
  // and therefore alternative-sequence retries — actually occur.
  c.mutations_per_sequence = 6;
  c.temperature = 0.18;
  c.knowledge_noise = 0.35;
  c.prior_weight = 0.30;
  return c;
}

[[nodiscard]] inline fold::PredictorConfig predictor_config() {
  return fold::PredictorConfig{};
}

}  // namespace impress::core::calibration
