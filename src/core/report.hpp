// Aggregation and rendering of the paper's evaluation artifacts:
// Table I and the metric/utilization figures (Figs 2-5).

#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/campaign.hpp"

namespace impress::core {

enum class Metric { kPlddt, kPtm, kIpae };

[[nodiscard]] std::string_view metric_name(Metric m) noexcept;
[[nodiscard]] bool higher_is_better(Metric m) noexcept;
[[nodiscard]] double metric_value(const fold::FoldMetrics& metrics,
                                  Metric m) noexcept;

/// Design-pool view of a campaign: for every cycle k (1-based) and every
/// target, the metric of the best accepted design of that target up to and
/// including cycle k (carry-forward over gaps). Result is
/// [cycles][targets-with-data].
[[nodiscard]] std::vector<std::vector<double>> metric_by_cycle(
    const CampaignResult& result, Metric m, int cycles);

/// Median of the pool metric at a cycle (1-based).
[[nodiscard]] double median_at_cycle(const CampaignResult& result, Metric m,
                                     int cycle, int cycles);

/// Net metric change from the first to the last cycle (medians), the
/// "Net Delta" columns of Table I.
[[nodiscard]] double net_delta(const CampaignResult& result, Metric m,
                               int cycles);

/// Table I: experimental setup and results for both arms.
[[nodiscard]] common::Table table1(const CampaignResult& cont_v,
                                   const CampaignResult& im_rp, int cycles);

/// Fig 2/3 style grouped bar chart: median metric per iteration for one or
/// more campaigns, error bars = half a standard deviation.
[[nodiscard]] std::string render_metric_figure(
    const std::string& title, const std::vector<const CampaignResult*>& arms,
    Metric m, int cycles);

/// Fig 4/5 style utilization timelines with the runtime phase breakdown.
[[nodiscard]] std::string render_utilization_figure(
    const CampaignResult& result, const std::string& title);

/// Fault-tolerance summary: retry / timeout / requeue / pilot-outage
/// totals plus the per-task attempt distribution, so a report shows how
/// much of a faulty campaign's work was first-attempt vs recovery.
[[nodiscard]] std::string render_fault_summary(const CampaignResult& result);

}  // namespace impress::core
