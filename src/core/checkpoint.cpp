#include "core/checkpoint.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/fs.hpp"
#include "obs/export.hpp"

namespace impress::core {

namespace {

constexpr int kSchemaVersion = 2;
constexpr std::string_view kKind = "impress.checkpoint";

// --- uint64 <-> hex string (JSON numbers are doubles; exact bits matter
// for rng states, cache keys, span ids and sequence numbers) ---

common::Json hex_u64(std::uint64_t v) {
  char buf[17];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v, 16);
  return common::Json(std::string(buf, end));
}

std::uint64_t parse_hex_u64(const common::Json& j) {
  const std::string& s = j.as_string();
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw std::invalid_argument("checkpoint: malformed hex uint64 '" + s +
                                "'");
  return v;
}

// --- leaf types ---

common::Json rng_to_json(const common::Rng::State& s) {
  common::Json::Object o;
  o["state"] = hex_u64(s.state);
  o["inc"] = hex_u64(s.inc);
  o["cached_normal"] = s.cached_normal;
  o["has_cached_normal"] = s.has_cached_normal;
  return common::Json(std::move(o));
}

common::Rng::State rng_from_json(const common::Json& j) {
  common::Rng::State s;
  s.state = parse_hex_u64(j.at("state"));
  s.inc = parse_hex_u64(j.at("inc"));
  s.cached_normal = j.at("cached_normal").as_number();
  s.has_cached_normal = j.at("has_cached_normal").as_bool();
  return s;
}

common::Json structure_to_json(const protein::Structure& s) {
  common::Json::Object o;
  o["name"] = s.name();
  common::Json::Array chains;
  chains.reserve(s.chains().size());
  for (const auto& chain : s.chains()) {
    common::Json::Object c;
    c["id"] = std::string(1, chain.id);
    c["sequence"] = chain.sequence.to_string();
    common::Json::Array ca;
    ca.reserve(chain.ca.size());
    for (const auto& v : chain.ca)
      ca.emplace_back(common::Json::Array{v.x, v.y, v.z});
    c["ca"] = common::Json(std::move(ca));
    chains.emplace_back(std::move(c));
  }
  o["chains"] = common::Json(std::move(chains));
  common::Json::Array plddt;
  plddt.reserve(s.plddt().size());
  for (double p : s.plddt()) plddt.emplace_back(p);
  o["plddt"] = common::Json(std::move(plddt));
  return common::Json(std::move(o));
}

protein::Structure structure_from_json(const common::Json& j) {
  std::vector<protein::Chain> chains;
  for (const auto& c : j.at("chains").as_array()) {
    protein::Chain chain;
    const std::string& id = c.at("id").as_string();
    if (id.size() != 1)
      throw std::invalid_argument("checkpoint: chain id must be one char");
    chain.id = id[0];
    chain.sequence =
        protein::Sequence::from_string(c.at("sequence").as_string());
    for (const auto& v : c.at("ca").as_array())
      chain.ca.push_back(protein::Vec3{v.at(0).as_number(),
                                       v.at(1).as_number(),
                                       v.at(2).as_number()});
    chains.push_back(std::move(chain));
  }
  protein::Structure s(j.at("name").as_string(), std::move(chains));
  std::vector<double> plddt;
  for (const auto& p : j.at("plddt").as_array())
    plddt.push_back(p.as_number());
  s.set_plddt(std::move(plddt));
  return s;
}

common::Json complex_to_json(const protein::Complex& c) {
  return structure_to_json(c.structure);
}

protein::Complex complex_from_json(const common::Json& j) {
  return protein::Complex{structure_from_json(j)};
}

common::Json fold_metrics_to_json(const fold::FoldMetrics& m) {
  common::Json::Object o;
  o["plddt"] = m.plddt;
  o["ptm"] = m.ptm;
  o["ipae"] = m.ipae;
  return common::Json(std::move(o));
}

fold::FoldMetrics fold_metrics_from_json(const common::Json& j) {
  return fold::FoldMetrics{.plddt = j.at("plddt").as_number(),
                           .ptm = j.at("ptm").as_number(),
                           .ipae = j.at("ipae").as_number()};
}

common::Json prediction_to_json(const fold::Prediction& p) {
  common::Json::Object o;
  common::Json::Array models;
  models.reserve(p.models.size());
  for (const auto& m : p.models) {
    common::Json::Object model;
    model["metrics"] = fold_metrics_to_json(m.metrics);
    model["structure"] = structure_to_json(m.structure);
    models.emplace_back(std::move(model));
  }
  o["models"] = common::Json(std::move(models));
  o["best_index"] = p.best_index;
  return common::Json(std::move(o));
}

fold::Prediction prediction_from_json(const common::Json& j) {
  fold::Prediction p;
  for (const auto& m : j.at("models").as_array())
    p.models.push_back(
        fold::ModelPrediction{fold_metrics_from_json(m.at("metrics")),
                              structure_from_json(m.at("structure"))});
  p.best_index = static_cast<std::size_t>(j.at("best_index").as_number());
  return p;
}

common::Json iteration_to_json(const IterationRecord& rec) {
  common::Json::Object r;
  r["cycle"] = rec.cycle;
  r["metrics"] = fold_metrics_to_json(rec.metrics);
  r["true_fitness"] = rec.true_fitness;
  r["accepted"] = rec.accepted;
  r["retries"] = rec.retries;
  r["sequence"] = rec.sequence;
  return common::Json(std::move(r));
}

IterationRecord iteration_from_json(const common::Json& j) {
  IterationRecord rec;
  rec.cycle = static_cast<int>(j.at("cycle").as_number());
  rec.metrics = fold_metrics_from_json(j.at("metrics"));
  rec.true_fitness = j.at("true_fitness").as_number();
  rec.accepted = j.at("accepted").as_bool();
  rec.retries = static_cast<int>(j.at("retries").as_number());
  rec.sequence = j.at("sequence").as_string();
  return rec;
}

common::Json pipeline_to_json(const Pipeline::Snapshot& p) {
  common::Json::Object o;
  o["id"] = p.id;
  o["target"] = p.target_name;
  o["current"] = complex_to_json(p.current);
  o["rng"] = rng_to_json(p.rng);
  o["task_counter"] = hex_u64(p.task_counter);
  o["state"] = p.state;
  o["cycle"] = p.cycle;
  o["is_sub"] = p.is_sub;
  common::Json::Array candidates;
  candidates.reserve(p.candidates.size());
  for (const auto& c : p.candidates) {
    common::Json::Object cand;
    cand["sequence"] = c.sequence.to_string();
    cand["log_likelihood"] = c.log_likelihood;
    candidates.emplace_back(std::move(cand));
  }
  o["candidates"] = common::Json(std::move(candidates));
  o["next_candidate"] = p.next_candidate;
  o["pending_candidate"] = p.pending_candidate;
  o["pending_reuse_features"] = p.pending_reuse_features;
  o["retries_this_cycle"] = p.retries_this_cycle;
  o["total_retries"] = p.total_retries;
  if (p.last_metrics) o["last_metrics"] = fold_metrics_to_json(*p.last_metrics);
  common::Json::Array history;
  history.reserve(p.history.size());
  for (const auto& rec : p.history)
    history.emplace_back(iteration_to_json(rec));
  o["history"] = common::Json(std::move(history));
  return common::Json(std::move(o));
}

Pipeline::Snapshot pipeline_from_json(const common::Json& j) {
  Pipeline::Snapshot p;
  p.id = j.at("id").as_string();
  p.target_name = j.at("target").as_string();
  p.current = complex_from_json(j.at("current"));
  p.rng = rng_from_json(j.at("rng"));
  p.task_counter = parse_hex_u64(j.at("task_counter"));
  p.state = static_cast<int>(j.at("state").as_number());
  p.cycle = static_cast<int>(j.at("cycle").as_number());
  p.is_sub = j.at("is_sub").as_bool();
  for (const auto& c : j.at("candidates").as_array())
    p.candidates.push_back(mpnn::ScoredSequence{
        protein::Sequence::from_string(c.at("sequence").as_string()),
        c.at("log_likelihood").as_number()});
  p.next_candidate =
      static_cast<std::uint64_t>(j.at("next_candidate").as_number());
  p.pending_candidate =
      static_cast<std::uint64_t>(j.at("pending_candidate").as_number());
  p.pending_reuse_features = j.at("pending_reuse_features").as_bool();
  p.retries_this_cycle =
      static_cast<int>(j.at("retries_this_cycle").as_number());
  p.total_retries = static_cast<int>(j.at("total_retries").as_number());
  if (j.contains("last_metrics"))
    p.last_metrics = fold_metrics_from_json(j.at("last_metrics"));
  for (const auto& rec : j.at("history").as_array())
    p.history.push_back(iteration_from_json(rec));
  return p;
}

common::Json coordinator_to_json(const CoordinatorCheckpoint& c) {
  common::Json::Object o;
  common::Json::Array pipelines;
  pipelines.reserve(c.pipelines.size());
  for (const auto& p : c.pipelines) pipelines.emplace_back(pipeline_to_json(p));
  o["pipelines"] = common::Json(std::move(pipelines));
  common::Json::Array parked;
  parked.reserve(c.parked.size());
  for (const auto& pa : c.parked) {
    common::Json::Object a;
    a["pipeline"] = pa.pipeline_id;
    a["kind"] = pa.kind;
    if (pa.fold_input) a["fold_input"] = complex_to_json(*pa.fold_input);
    a["reuse_features"] = pa.reuse_features;
    a["refined"] = pa.refined;
    parked.emplace_back(std::move(a));
  }
  o["parked"] = common::Json(std::move(parked));
  common::Json::Object subs;
  for (const auto& [name, count] : c.subpipeline_count) subs[name] = count;
  o["subpipeline_count"] = common::Json(std::move(subs));
  common::Json::Object spans;
  for (const auto& [id, span] : c.pipeline_spans) spans[id] = hex_u64(span);
  o["pipeline_spans"] = common::Json(std::move(spans));
  o["root_pipelines"] = hex_u64(c.root_pipelines);
  o["subpipelines"] = hex_u64(c.subpipelines);
  o["generator_tasks"] = hex_u64(c.generator_tasks);
  o["refine_tasks"] = hex_u64(c.refine_tasks);
  o["fold_tasks"] = hex_u64(c.fold_tasks);
  o["fold_retries"] = hex_u64(c.fold_retries);
  o["failed_tasks"] = hex_u64(c.failed_tasks);
  return common::Json(std::move(o));
}

CoordinatorCheckpoint coordinator_from_json(const common::Json& j) {
  CoordinatorCheckpoint c;
  for (const auto& p : j.at("pipelines").as_array())
    c.pipelines.push_back(pipeline_from_json(p));
  for (const auto& a : j.at("parked").as_array()) {
    CoordinatorCheckpoint::ParkedAction pa;
    pa.pipeline_id = a.at("pipeline").as_string();
    pa.kind = static_cast<int>(a.at("kind").as_number());
    if (a.contains("fold_input"))
      pa.fold_input = complex_from_json(a.at("fold_input"));
    pa.reuse_features = a.at("reuse_features").as_bool();
    pa.refined = a.at("refined").as_bool();
    c.parked.push_back(std::move(pa));
  }
  for (const auto& [name, count] : j.at("subpipeline_count").as_object())
    c.subpipeline_count[name] = static_cast<int>(count.as_number());
  for (const auto& [id, span] : j.at("pipeline_spans").as_object())
    c.pipeline_spans[id] = parse_hex_u64(span);
  c.root_pipelines = parse_hex_u64(j.at("root_pipelines"));
  c.subpipelines = parse_hex_u64(j.at("subpipelines"));
  c.generator_tasks = parse_hex_u64(j.at("generator_tasks"));
  c.refine_tasks = parse_hex_u64(j.at("refine_tasks"));
  c.fold_tasks = parse_hex_u64(j.at("fold_tasks"));
  c.fold_retries = parse_hex_u64(j.at("fold_retries"));
  c.failed_tasks = parse_hex_u64(j.at("failed_tasks"));
  return c;
}

common::Json cache_to_json(const fold::FoldCache::Snapshot& s) {
  common::Json::Object o;
  common::Json::Array shards;
  shards.reserve(s.shards.size());
  for (const auto& shard : s.shards) {
    common::Json::Array entries;
    entries.reserve(shard.size());
    for (const auto& e : shard) {
      common::Json::Object entry;
      entry["key"] = hex_u64(e.key);
      entry["prediction"] = prediction_to_json(e.prediction);
      entries.emplace_back(std::move(entry));
    }
    shards.emplace_back(std::move(entries));
  }
  o["shards"] = common::Json(std::move(shards));
  o["hits"] = hex_u64(s.hits);
  o["misses"] = hex_u64(s.misses);
  o["evictions"] = hex_u64(s.evictions);
  o["duplicate_discards"] = hex_u64(s.duplicate_discards);
  return common::Json(std::move(o));
}

fold::FoldCache::Snapshot cache_from_json(const common::Json& j) {
  fold::FoldCache::Snapshot s;
  for (const auto& shard : j.at("shards").as_array()) {
    std::vector<fold::FoldCache::Snapshot::Entry> entries;
    for (const auto& e : shard.as_array())
      entries.push_back(fold::FoldCache::Snapshot::Entry{
          parse_hex_u64(e.at("key")),
          prediction_from_json(e.at("prediction"))});
    s.shards.push_back(std::move(entries));
  }
  s.hits = parse_hex_u64(j.at("hits"));
  s.misses = parse_hex_u64(j.at("misses"));
  s.evictions = parse_hex_u64(j.at("evictions"));
  // Absent in pre-PR-10 documents; zero is the correct backfill.
  if (j.contains("duplicate_discards"))
    s.duplicate_discards = parse_hex_u64(j.at("duplicate_discards"));
  return s;
}

common::Json pilot_to_json(const rp::PilotRestore& p) {
  common::Json::Object o;
  o["uid"] = p.uid;
  o["failed"] = p.failed;
  o["executor_rng"] = rng_to_json(p.executor_rng);
  common::Json::Array intervals;
  intervals.reserve(p.intervals.size());
  for (const auto& iv : p.intervals) {
    common::Json::Object i;
    i["start"] = iv.start;
    i["end"] = iv.end;
    i["cores"] = static_cast<double>(iv.cores);
    i["gpus"] = static_cast<double>(iv.gpus);
    i["cpu_intensity"] = iv.cpu_intensity;
    i["gpu_intensity"] = iv.gpu_intensity;
    i["task_uid"] = iv.task_uid;
    intervals.emplace_back(std::move(i));
  }
  o["intervals"] = common::Json(std::move(intervals));
  return common::Json(std::move(o));
}

rp::PilotRestore pilot_from_json(const common::Json& j) {
  rp::PilotRestore p;
  p.uid = j.at("uid").as_string();
  p.failed = j.at("failed").as_bool();
  p.executor_rng = rng_from_json(j.at("executor_rng"));
  for (const auto& i : j.at("intervals").as_array())
    p.intervals.push_back(hpc::UsageInterval{
        .start = i.at("start").as_number(),
        .end = i.at("end").as_number(),
        .cores = static_cast<std::uint32_t>(i.at("cores").as_number()),
        .gpus = static_cast<std::uint32_t>(i.at("gpus").as_number()),
        .cpu_intensity = i.at("cpu_intensity").as_number(),
        .gpu_intensity = i.at("gpu_intensity").as_number(),
        .task_uid = i.at("task_uid").as_string()});
  return p;
}

}  // namespace

common::Json to_json(const CampaignCheckpoint& checkpoint) {
  common::Json::Object doc;
  doc["schema_version"] = kSchemaVersion;
  doc["kind"] = std::string(kKind);
  doc["campaign"] = checkpoint.campaign_name;
  doc["seed"] = hex_u64(checkpoint.seed);
  doc["targets"] = checkpoint.targets;
  doc["ordinal"] = hex_u64(checkpoint.ordinal);

  doc["now"] = checkpoint.now;
  common::Json::Array events;
  events.reserve(checkpoint.profiler_events.size());
  for (const auto& e : checkpoint.profiler_events) {
    common::Json::Object ev;
    ev["time"] = e.time;
    ev["entity"] = e.entity;
    ev["event"] = e.event;
    ev["info"] = e.info;
    events.emplace_back(std::move(ev));
  }
  doc["profiler_events"] = common::Json(std::move(events));
  if (!checkpoint.trace.empty())
    doc["trace"] = obs::spans_to_json(checkpoint.trace);
  doc["trace_next_seq"] = hex_u64(checkpoint.trace_next_seq);
  doc["campaign_span"] = hex_u64(checkpoint.campaign_span);
  if (!checkpoint.metrics.empty())
    doc["metrics"] = obs::metrics_to_json(checkpoint.metrics);
  common::Json::Object uids;
  for (const auto& [name, count] : checkpoint.uid_counters)
    uids[name] = hex_u64(count);
  doc["uid_counters"] = common::Json(std::move(uids));
  common::Json::Object tasks;
  tasks["submitted"] = hex_u64(checkpoint.task_counters.submitted);
  tasks["done"] = hex_u64(checkpoint.task_counters.done);
  tasks["failed"] = hex_u64(checkpoint.task_counters.failed);
  tasks["cancelled"] = hex_u64(checkpoint.task_counters.cancelled);
  tasks["retried"] = hex_u64(checkpoint.task_counters.retried);
  tasks["timed_out"] = hex_u64(checkpoint.task_counters.timed_out);
  tasks["requeued"] = hex_u64(checkpoint.task_counters.requeued);
  doc["task_counters"] = common::Json(std::move(tasks));
  common::Json::Array pilots;
  pilots.reserve(checkpoint.pilots.size());
  for (const auto& p : checkpoint.pilots) pilots.emplace_back(pilot_to_json(p));
  doc["pilots"] = common::Json(std::move(pilots));

  doc["coordinator"] = coordinator_to_json(checkpoint.coordinator);
  if (checkpoint.fold_cache)
    doc["fold_cache"] = cache_to_json(*checkpoint.fold_cache);
  if (!checkpoint.generator_state.is_null())
    doc["generator_state"] = checkpoint.generator_state;
  return common::Json(std::move(doc));
}

CampaignCheckpoint campaign_checkpoint_from_json(const common::Json& doc) {
  if (!doc.is_object() || !doc.contains("kind") ||
      doc.at("kind").as_string() != kKind)
    throw std::invalid_argument("checkpoint: not a campaign checkpoint");
  if (static_cast<int>(doc.at("schema_version").as_number()) != kSchemaVersion)
    throw std::invalid_argument("checkpoint: unsupported schema version");

  CampaignCheckpoint c;
  c.campaign_name = doc.at("campaign").as_string();
  c.seed = parse_hex_u64(doc.at("seed"));
  c.targets = static_cast<std::size_t>(doc.at("targets").as_number());
  c.ordinal = parse_hex_u64(doc.at("ordinal"));

  c.now = doc.at("now").as_number();
  for (const auto& e : doc.at("profiler_events").as_array())
    c.profiler_events.push_back(
        hpc::ProfileEvent{.time = e.at("time").as_number(),
                          .entity = e.at("entity").as_string(),
                          .event = e.at("event").as_string(),
                          .info = e.at("info").as_string()});
  if (doc.contains("trace")) c.trace = obs::spans_from_json(doc.at("trace"));
  c.trace_next_seq = parse_hex_u64(doc.at("trace_next_seq"));
  c.campaign_span = parse_hex_u64(doc.at("campaign_span"));
  if (doc.contains("metrics"))
    c.metrics = obs::metrics_from_json(doc.at("metrics"));
  for (const auto& [name, count] : doc.at("uid_counters").as_object())
    c.uid_counters[name] = parse_hex_u64(count);
  const auto& tasks = doc.at("task_counters");
  c.task_counters.submitted = parse_hex_u64(tasks.at("submitted"));
  c.task_counters.done = parse_hex_u64(tasks.at("done"));
  c.task_counters.failed = parse_hex_u64(tasks.at("failed"));
  c.task_counters.cancelled = parse_hex_u64(tasks.at("cancelled"));
  c.task_counters.retried = parse_hex_u64(tasks.at("retried"));
  c.task_counters.timed_out = parse_hex_u64(tasks.at("timed_out"));
  c.task_counters.requeued = parse_hex_u64(tasks.at("requeued"));
  for (const auto& p : doc.at("pilots").as_array())
    c.pilots.push_back(pilot_from_json(p));

  c.coordinator = coordinator_from_json(doc.at("coordinator"));
  if (doc.contains("fold_cache"))
    c.fold_cache = cache_from_json(doc.at("fold_cache"));
  if (doc.contains("generator_state"))
    c.generator_state = doc.at("generator_state");
  return c;
}

void save_checkpoint(const CampaignCheckpoint& checkpoint,
                     const std::string& path) {
  common::write_file_atomic(path, to_json(checkpoint).dump() + "\n");
}

CampaignCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return campaign_checkpoint_from_json(common::Json::parse(ss.str()));
}

}  // namespace impress::core
