#include "core/dpo_generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace impress::core {

DpoGenerator::DpoGenerator(Config config) : config_(config) {
  if (config_.num_sequences == 0)
    throw std::invalid_argument("DpoGenerator: num_sequences must be > 0");
  if (config_.temperature <= 0.0)
    throw std::invalid_argument("DpoGenerator: temperature must be > 0");
}

void DpoGenerator::ensure_policy_size(std::size_t length) const {
  // Called with mutex_ held.
  if (policy_.size() < length)
    policy_.resize(length, std::array<double, protein::kNumAminoAcids>{});
}

std::vector<mpnn::ScoredSequence> DpoGenerator::generate(
    const protein::Complex& complex,
    const protein::FitnessLandscape& /*landscape*/, common::Rng& rng) const {
  // Structure-blind by design: the landscape is never consulted. All the
  // generator knows is its own policy and the current receptor sequence.
  const protein::Sequence& current = complex.receptor().sequence;
  std::lock_guard lock(mutex_);
  ensure_policy_size(current.size());

  std::vector<mpnn::ScoredSequence> out;
  out.reserve(config_.num_sequences);
  for (std::size_t s = 0; s < config_.num_sequences; ++s) {
    protein::Sequence seq = current;
    double score = 0.0;
    const std::size_t n_mut =
        std::min(config_.mutations_per_sequence, current.size());
    for (std::size_t m = 0; m < n_mut; ++m) {
      const std::size_t pos =
          rng.below(static_cast<std::uint32_t>(current.size()));
      const auto current_aa = static_cast<std::size_t>(current[pos]);
      std::array<double, protein::kNumAminoAcids> weights{};
      for (std::size_t a = 0; a < protein::kNumAminoAcids; ++a) {
        const double bias = a == current_aa ? config_.native_bias : 0.0;
        weights[a] = std::exp((policy_[pos][a] + bias) / config_.temperature);
      }
      const std::size_t a = rng.categorical(weights);
      seq.set(pos, static_cast<protein::AminoAcid>(a));
      score += policy_[pos][a];
    }
    out.push_back(
        {std::move(seq), n_mut == 0 ? 0.0 : score / static_cast<double>(n_mut)});
  }
  return out;
}

void DpoGenerator::observe(const protein::Sequence& sequence,
                           double reward) const {
  std::lock_guard lock(mutex_);
  ensure_policy_size(sequence.size());
  const auto it = pending_.find(sequence.size());
  if (it == pending_.end()) {
    pending_.emplace(sequence.size(), Observation{sequence, reward});
    return;
  }
  // Pair with the previous same-length evaluation, then consume both.
  const Observation a = std::move(it->second);
  pending_.erase(it);
  const Observation b{sequence, reward};
  const Observation& winner = a.reward >= b.reward ? a : b;
  const Observation& loser = a.reward >= b.reward ? b : a;
  const double gap = std::min(1.0, std::fabs(a.reward - b.reward) * 4.0);
  if (gap <= 0.0) return;

  const double step = config_.beta * gap;
  for (std::size_t pos = 0; pos < winner.sequence.size(); ++pos) {
    const auto w = static_cast<std::size_t>(winner.sequence[pos]);
    const auto l = static_cast<std::size_t>(loser.sequence[pos]);
    if (w == l) continue;
    policy_[pos][w] = std::clamp(policy_[pos][w] + step, -config_.logit_clip,
                                 config_.logit_clip);
    policy_[pos][l] = std::clamp(policy_[pos][l] - step, -config_.logit_clip,
                                 config_.logit_clip);
  }
  ++updates_;
}

std::size_t DpoGenerator::updates() const {
  std::lock_guard lock(mutex_);
  return updates_;
}

common::Json DpoGenerator::checkpoint_state() const {
  std::lock_guard lock(mutex_);
  common::Json::Array policy;
  policy.reserve(policy_.size());
  for (const auto& row : policy_) {
    common::Json::Array logits;
    logits.reserve(row.size());
    for (double v : row) logits.emplace_back(v);
    policy.emplace_back(std::move(logits));
  }
  common::Json::Object pending;
  for (const auto& [length, obs] : pending_) {
    common::Json::Object o;
    o["sequence"] = obs.sequence.to_string();
    o["reward"] = obs.reward;
    pending[std::to_string(length)] = common::Json(std::move(o));
  }
  common::Json::Object out;
  out["policy"] = common::Json(std::move(policy));
  out["pending"] = common::Json(std::move(pending));
  out["updates"] = updates_;
  return common::Json(std::move(out));
}

void DpoGenerator::restore_checkpoint_state(const common::Json& state) const {
  if (state.is_null()) return;
  std::lock_guard lock(mutex_);
  policy_.clear();
  for (const auto& row : state.at("policy").as_array()) {
    std::array<double, protein::kNumAminoAcids> logits{};
    const auto& values = row.as_array();
    for (std::size_t i = 0; i < logits.size() && i < values.size(); ++i)
      logits[i] = values[i].as_number();
    policy_.push_back(logits);
  }
  pending_.clear();
  for (const auto& [key, obs] : state.at("pending").as_object()) {
    pending_.emplace(
        std::stoull(key),
        Observation{protein::Sequence::from_string(obs.at("sequence").as_string()),
                    obs.at("reward").as_number()});
  }
  updates_ = static_cast<std::size_t>(state.at("updates").as_number());
}

}  // namespace impress::core
