#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/ascii_chart.hpp"
#include "common/stats.hpp"

namespace impress::core {

std::string_view metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kPlddt: return "pLDDT";
    case Metric::kPtm: return "pTM";
    case Metric::kIpae: return "inter-chain pAE";
  }
  return "?";
}

bool higher_is_better(Metric m) noexcept { return m != Metric::kIpae; }

double metric_value(const fold::FoldMetrics& metrics, Metric m) noexcept {
  switch (m) {
    case Metric::kPlddt: return metrics.plddt;
    case Metric::kPtm: return metrics.ptm;
    case Metric::kIpae: return metrics.ipae;
  }
  return 0.0;
}

std::vector<std::vector<double>> metric_by_cycle(const CampaignResult& result,
                                                 Metric m, int cycles) {
  // Group accepted iterations by target; per (target, cycle) average the
  // records that landed there (root pipeline plus any sub-pipelines) —
  // the state of that target's design pool at that iteration. Taking the
  // best-composite record instead would mask regressions such as the
  // Fig-3 final-cycle deterioration behind a max over random picks.
  struct Cell {
    double sum = 0.0;
    std::size_t n = 0;
  };
  std::map<std::string, std::vector<Cell>> per_target;
  for (const auto& traj : result.trajectories) {
    auto& cells = per_target[traj.target_name];
    if (cells.empty()) cells.resize(static_cast<std::size_t>(cycles));
    for (const auto& rec : traj.history) {
      if (rec.cycle < 1 || rec.cycle > cycles) continue;
      auto& cell = cells[static_cast<std::size_t>(rec.cycle - 1)];
      cell.sum += metric_value(rec.metrics, m);
      ++cell.n;
    }
  }

  std::vector<std::vector<double>> out(static_cast<std::size_t>(cycles));
  for (auto& [target, cells] : per_target) {
    // Carry the last known value forward over pruned cycles.
    bool seen = false;
    double last = 0.0;
    for (int c = 0; c < cycles; ++c) {
      auto& cell = cells[static_cast<std::size_t>(c)];
      if (cell.n > 0) {
        last = cell.sum / static_cast<double>(cell.n);
        seen = true;
      }
      if (seen) out[static_cast<std::size_t>(c)].push_back(last);
    }
  }
  return out;
}

double median_at_cycle(const CampaignResult& result, Metric m, int cycle,
                       int cycles) {
  const auto matrix = metric_by_cycle(result, m, cycles);
  if (cycle < 1 || cycle > cycles) return 0.0;
  return common::median(matrix[static_cast<std::size_t>(cycle - 1)]);
}

double net_delta(const CampaignResult& result, Metric m, int cycles) {
  return median_at_cycle(result, m, cycles, cycles) -
         median_at_cycle(result, m, 1, cycles);
}

namespace {

std::string pct(double fraction) {
  return common::format_fixed(fraction * 100.0, 1) + "%";
}

std::string delta_with_relative(double own, double baseline) {
  std::string s = common::format_fixed(own, own < 1.0 && own > -1.0 ? 2 : 1);
  if (baseline != 0.0) {
    const double rel = (own - baseline) / std::fabs(baseline) * 100.0;
    s += " (" + std::string(rel >= 0 ? "+" : "") +
         common::format_fixed(rel, 1) + "%)";
  } else {
    s += " (-)";
  }
  return s;
}

}  // namespace

common::Table table1(const CampaignResult& cont_v, const CampaignResult& im_rp,
                     int cycles) {
  common::Table t({"Approach", "# PL", "# Sub-PL", "# Structures/PL",
                   "Trajectories", "CPU %", "GPUs %", "Time (h)",
                   "pTM Net D", "pLDDT Net D", "pAE Net D"});
  for (std::size_t c = 1; c < t.columns(); ++c)
    t.set_align(c, common::Table::Align::kRight);

  auto row = [&](const CampaignResult& r, const CampaignResult* baseline) {
    // CONT-V is reported as the paper reports it: one sequential pipeline
    // batching all structures. IM-RP reports its root pipelines.
    const bool sequential = r.subpipelines == 0 && r.fold_retries == 0 &&
                            r.name == cont_v.name;
    const std::size_t n_pl = sequential ? 1 : r.root_pipelines;
    const std::size_t structs_per_pl =
        n_pl == 0 ? 0 : (r.targets + n_pl - 1) / n_pl;
    t.add_row({
        r.name,
        std::to_string(n_pl),
        sequential ? "N/A" : std::to_string(r.subpipelines),
        std::to_string(structs_per_pl),
        std::to_string(r.total_trajectories()),
        pct(r.utilization.cpu_active),
        pct(r.utilization.gpu_active),
        common::format_fixed(r.makespan_h, 1),
        delta_with_relative(net_delta(r, Metric::kPtm, cycles),
                            baseline ? net_delta(*baseline, Metric::kPtm, cycles) : 0.0),
        delta_with_relative(net_delta(r, Metric::kPlddt, cycles),
                            baseline ? net_delta(*baseline, Metric::kPlddt, cycles) : 0.0),
        delta_with_relative(net_delta(r, Metric::kIpae, cycles),
                            baseline ? net_delta(*baseline, Metric::kIpae, cycles) : 0.0),
    });
  };
  row(cont_v, nullptr);
  row(im_rp, &cont_v);
  return t;
}

std::string render_metric_figure(const std::string& title,
                                 const std::vector<const CampaignResult*>& arms,
                                 Metric m, int cycles) {
  common::BarChart chart(
      title + " - " + std::string(metric_name(m)) +
          (higher_is_better(m) ? " (higher is better)" : " (lower is better)"),
      m == Metric::kPlddt ? "0-100" : (m == Metric::kPtm ? "0-1" : "A"));
  for (int c = 1; c <= cycles; ++c) {
    common::BarChart::Group group;
    group.label = "iteration " + std::to_string(c);
    for (const CampaignResult* arm : arms) {
      const auto matrix = metric_by_cycle(*arm, m, cycles);
      const auto& vals = matrix[static_cast<std::size_t>(c - 1)];
      common::BarChart::Bar bar;
      bar.series = arm->name;
      bar.value = common::median(vals);
      bar.error = common::stddev(vals) / 2.0;  // paper: half a std dev
      group.bars.push_back(std::move(bar));
    }
    chart.add_group(std::move(group));
  }
  return chart.render();
}

std::string render_utilization_figure(const CampaignResult& result,
                                      const std::string& title) {
  common::TimelineChart chart(title, result.makespan_h);
  chart.add_row({"CPU (28 cores)", result.cpu_series});
  chart.add_row({"GPU (4x M6000)", result.gpu_series});
  std::string out = chart.render();
  out += "phases:";
  for (const auto& [phase, hours] : result.phase_hours)
    out += "  " + phase + "=" + common::format_fixed(hours, 2) + "h";
  out += "  makespan=" + common::format_fixed(result.makespan_h, 1) + "h\n";
  out += "avg CPU " + pct(result.utilization.cpu_active) + " (allocated " +
         pct(result.utilization.cpu_allocated) + "), avg GPU " +
         pct(result.utilization.gpu_active) + " (allocated " +
         pct(result.utilization.gpu_allocated) + ")\n";
  return out;
}

std::string render_fault_summary(const CampaignResult& result) {
  std::string out = "## fault tolerance (" + result.name + ")\n";
  out += "retries=" + std::to_string(result.task_retries) +
         "  timeouts=" + std::to_string(result.task_timeouts) +
         "  requeues=" + std::to_string(result.task_requeues) +
         "  pilot_failures=" + std::to_string(result.pilot_failures) +
         "  terminal_failures=" + std::to_string(result.failed_tasks) + "\n";

  // Attempt distribution: how many tasks needed 1, 2, 3... attempts.
  std::map<int, std::size_t> by_attempts;
  for (const auto& [uid, attempts] : result.attempts) ++by_attempts[attempts];
  out += "attempts:";
  for (const auto& [attempts, n] : by_attempts)
    out += "  x" + std::to_string(attempts) + "=" + std::to_string(n);
  out += "\n";

  std::size_t retried_tasks = 0;
  for (const auto& [uid, attempts] : result.attempts)
    if (attempts > 1) ++retried_tasks;
  if (!result.attempts.empty()) {
    out += "tasks retried: " + std::to_string(retried_tasks) + "/" +
           std::to_string(result.attempts.size()) + " (" +
           pct(static_cast<double>(retried_tasks) /
               static_cast<double>(result.attempts.size())) +
           ")\n";
  }
  return out;
}

}  // namespace impress::core
