// Pluggable sequence generation (pipeline Stage 1).
//
// The paper's §IV closes on the claim that "IMPRESS allows any sequence
// generation method to be plugged into the design pipeline". This
// interface is that plug point: the default is the ProteinMPNN surrogate;
// RandomMutagenesisGenerator reproduces the EvoPro-style alternative the
// related work describes (sequence generation by random mutagenesis).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "mpnn/mpnn.hpp"
#include "protein/landscape.hpp"
#include "protein/structure.hpp"

namespace impress::core {

class SequenceGenerator {
 public:
  virtual ~SequenceGenerator() = default;

  /// Produce scored candidate receptor sequences conditioned on the
  /// current complex. Scores play the role of ProteinMPNN log-likelihoods
  /// in Stage 2 sorting.
  [[nodiscard]] virtual std::vector<mpnn::ScoredSequence> generate(
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape, common::Rng& rng) const = 0;

  /// Feedback hook: the pipeline reports every evaluated candidate with
  /// its composite confidence after Stage 5. Stateless generators ignore
  /// it; learning generators (see DpoGenerator) fine-tune on it. Must be
  /// thread-safe — concurrent pipelines share one generator.
  virtual void observe(const protein::Sequence& sequence,
                       double reward) const {
    (void)sequence;
    (void)reward;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Campaign checkpoint hooks. Learning generators (DpoGenerator,
  /// CrossoverGenerator) carry mutable feedback state that must survive a
  /// checkpoint/restore cycle for bit-exact resume; they serialize it
  /// here. Stateless generators keep the defaults (null / ignore). Const
  /// for the same reason observe() is: generators are shared as
  /// shared_ptr<const> across pipelines, with interior mutability.
  [[nodiscard]] virtual common::Json checkpoint_state() const {
    return common::Json(nullptr);
  }
  virtual void restore_checkpoint_state(const common::Json& state) const {
    (void)state;
  }
};

/// The default: the ProteinMPNN surrogate.
class MpnnGenerator final : public SequenceGenerator {
 public:
  explicit MpnnGenerator(mpnn::SamplerConfig config = {}) : model_(config) {}

  [[nodiscard]] std::vector<mpnn::ScoredSequence> generate(
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape,
      common::Rng& rng) const override {
    return model_.design(complex, landscape, rng);
  }

  [[nodiscard]] std::string name() const override { return "proteinmpnn"; }

  [[nodiscard]] const mpnn::Mpnn& model() const noexcept { return model_; }

 private:
  mpnn::Mpnn model_;
};

/// EvoPro-style random mutagenesis: uniform point mutations, scored by a
/// crude hydropathy-compatibility heuristic (no structural knowledge).
class RandomMutagenesisGenerator final : public SequenceGenerator {
 public:
  RandomMutagenesisGenerator(std::size_t num_sequences = 10,
                             std::size_t mutations_per_sequence = 3)
      : num_sequences_(num_sequences),
        mutations_per_sequence_(mutations_per_sequence) {}

  [[nodiscard]] std::vector<mpnn::ScoredSequence> generate(
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape,
      common::Rng& rng) const override;

  [[nodiscard]] std::string name() const override { return "random-mutagenesis"; }

 private:
  std::size_t num_sequences_;
  std::size_t mutations_per_sequence_;
};

}  // namespace impress::core
