// MProt-DPO surrogate: a purely sequence-based, preference-optimized
// generator (paper §IV, [14]).
//
// The real MProt-DPO samples sequences from a protein language model,
// ranks them with downstream evaluations, sorts them into preference
// pairs and fine-tunes the model with Direct Preference Optimization.
// This surrogate keeps that loop's *shape* while staying structure-blind:
//
//  * the "policy" is a per-position logit table over the 20 residues
//    (the factorized view of an LM over a fixed-length receptor);
//  * generation samples point mutations from the temperature-scaled
//    softmax of the policy; the self-score is the mean chosen logit;
//  * observe() accumulates (sequence, reward) evaluations; consecutive
//    evaluations form preference pairs, and each pair applies a DPO-like
//    update — raise the winner's residue logits at every differing
//    position, lower the loser's, scaled by beta and the reward gap.
//
// What the comparison shows (bench_related_work): the policy does learn —
// it beats blind random mutagenesis — but, never being conditioned on the
// structure, it trails the ProteinMPNN-surrogate arm. That is precisely
// the limitation the paper argues for IMPRESS over MProt-DPO.

#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

#include "core/generator.hpp"

namespace impress::core {

class DpoGenerator final : public SequenceGenerator {
 public:
  struct Config {
    std::size_t num_sequences = 10;
    std::size_t mutations_per_sequence = 4;
    /// Sampling temperature over policy logits.
    double temperature = 0.6;
    /// Logit bonus for keeping the prompt's residue — the conservative
    /// prior of a pretrained LM conditioned on the current sequence.
    /// Without it proposals are near-uniform noise and the policy can
    /// never learn fast enough inside one campaign.
    double native_bias = 1.5;
    /// DPO step size: logit change per preference pair and position.
    double beta = 0.8;
    /// Logits are clamped to +/- this to keep the softmax well-behaved.
    double logit_clip = 4.0;
  };

  DpoGenerator() : DpoGenerator(Config{}) {}
  explicit DpoGenerator(Config config);

  [[nodiscard]] std::vector<mpnn::ScoredSequence> generate(
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape,
      common::Rng& rng) const override;

  void observe(const protein::Sequence& sequence,
               double reward) const override;

  [[nodiscard]] std::string name() const override { return "mprot-dpo"; }

  /// Preference pairs consumed so far (for tests/telemetry).
  [[nodiscard]] std::size_t updates() const;

  /// Campaign checkpoint: policy logits, pending observations and the
  /// update counter (everything observe()/generate() mutate).
  [[nodiscard]] common::Json checkpoint_state() const override;
  void restore_checkpoint_state(const common::Json& state) const override;

 private:
  struct Observation {
    protein::Sequence sequence;
    double reward = 0.0;
  };

  void ensure_policy_size(std::size_t length) const;

  Config config_;
  mutable std::mutex mutex_;
  /// policy_[pos][aa]: the current logit of residue aa at position pos.
  mutable std::vector<std::array<double, protein::kNumAminoAcids>> policy_;
  /// Pending observations, bucketed by receptor length so preference
  /// pairs always compare designs of the same target family even when
  /// concurrent pipelines interleave their feedback.
  mutable std::map<std::size_t, Observation> pending_;
  mutable std::size_t updates_ = 0;
};

}  // namespace impress::core
