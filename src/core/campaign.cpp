#include "core/campaign.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "common/lockdep.hpp"
#include "common/time_util.hpp"
#include "hpc/analytics.hpp"
#include "hpc/gantt.hpp"
#include "runtime/session.hpp"

namespace impress::core {

CampaignConfig im_rp_campaign(std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.name = "IM-RP";
  cfg.protocol = calibration::im_rp_protocol();
  cfg.coordinator.sequential = false;
  cfg.pilot = calibration::amarel_pilot(rp::SchedulerPolicy::kBackfill);
  cfg.session.seed = seed;
  return cfg;
}

CampaignConfig cont_v_campaign(std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.name = "CONT-V";
  cfg.protocol = calibration::cont_v_protocol();
  cfg.coordinator.sequential = true;
  cfg.pilot = calibration::amarel_pilot(rp::SchedulerPolicy::kFifo);
  cfg.session.seed = seed;
  return cfg;
}

std::size_t CampaignResult::total_trajectories() const {
  std::size_t n = 0;
  for (const auto& t : trajectories) n += t.history.size();
  return n;
}

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {}

CampaignResult resume_campaign(const CampaignConfig& config,
                               const CampaignResult& previous,
                               const std::vector<protein::DesignTarget>& targets) {
  // Best recorded design per target (by composite score across all
  // trajectories of the previous run).
  std::map<std::string, std::pair<double, std::string>> best;
  for (const auto& t : previous.trajectories) {
    for (const auto& rec : t.history) {
      const double comp = rec.metrics.composite();
      auto [it, inserted] =
          best.emplace(t.target_name, std::make_pair(comp, rec.sequence));
      if (!inserted && comp > it->second.first)
        it->second = {comp, rec.sequence};
    }
  }

  // Rebuild the target list with the resumed starting receptors. The
  // landscape (and therefore the ground truth) is unchanged; only the
  // starting point moves.
  auto resumed = targets;
  for (auto& target : resumed) {
    const auto it = best.find(target.name);
    if (it == best.end()) continue;
    target.start_receptor = protein::Sequence::from_string(it->second.second);
  }

  auto cfg = config;
  if (cfg.name == previous.name) cfg.name += "-resumed";
  Campaign campaign(cfg);
  return campaign.run(resumed);
}

CampaignResult Campaign::run(
    const std::vector<protein::DesignTarget>& targets) {
  rp::Session session(config_.session);
  return execute(session, targets, nullptr);
}

CampaignResult Campaign::resume(
    const std::vector<protein::DesignTarget>& targets,
    const CampaignCheckpoint& checkpoint) {
  if (checkpoint.campaign_name != config_.name)
    throw std::invalid_argument(
        "Campaign::resume: checkpoint is for campaign '" +
        checkpoint.campaign_name + "', not '" + config_.name + "'");
  if (checkpoint.seed != config_.session.seed)
    throw std::invalid_argument("Campaign::resume: seed mismatch");
  if (checkpoint.targets != targets.size())
    throw std::invalid_argument("Campaign::resume: target count mismatch");

  rp::SessionRestore restore;
  restore.now = checkpoint.now;
  restore.profiler_events = checkpoint.profiler_events;
  restore.trace = checkpoint.trace;
  restore.trace_next_seq = checkpoint.trace_next_seq;
  restore.metrics = checkpoint.metrics;
  restore.uid_counters = checkpoint.uid_counters;
  restore.task_counters = checkpoint.task_counters;
  rp::Session session(config_.session, restore);
  return execute(session, targets, &checkpoint);
}

CampaignResult Campaign::execute(
    rp::Session& session, const std::vector<protein::DesignTarget>& targets,
    const CampaignCheckpoint* resume_from) {
  obs::Observability& ob = session.observability();
  obs::SpanId campaign_span = 0;
  if (obs::Tracer& tracer = ob.tracer(); tracer.enabled()) {
    if (resume_from != nullptr) {
      // The root span is still open inside the preloaded trace; keep its
      // id so stage/pipeline spans parent under it and the close below
      // merges into the original record.
      campaign_span = resume_from->campaign_span;
    } else {
      campaign_span = tracer.begin(session.now(), "campaign." + config_.name,
                                   obs::categories::kCampaign);
      tracer.attr(campaign_span, "targets", std::to_string(targets.size()));
      tracer.attr(campaign_span, "seed",
                  std::to_string(config_.session.seed));
    }
  }
  if (resume_from != nullptr &&
      resume_from->pilots.size() != 1 + config_.extra_pilots.size())
    throw std::invalid_argument(
        "Campaign::resume: checkpoint has " +
        std::to_string(resume_from->pilots.size()) + " pilot(s), config has " +
        std::to_string(1 + config_.extra_pilots.size()));
  const auto pilot = [&] {
    if (resume_from == nullptr) return session.submit_pilot(config_.pilot);
    if (resume_from->pilots.empty())
      throw std::invalid_argument("Campaign::resume: checkpoint has no pilot");
    return session.submit_pilot(config_.pilot, resume_from->pilots.front());
  }();
  for (std::size_t i = 0; i < config_.extra_pilots.size(); ++i) {
    if (resume_from == nullptr)
      (void)session.submit_pilot(config_.extra_pilots[i]);
    else
      (void)session.submit_pilot(config_.extra_pilots[i],
                                 resume_from->pilots[i + 1]);
  }
  auto coordinator_config = config_.coordinator;
  coordinator_config.trace_root = campaign_span;
  if (config_.enable_fold_cache && !coordinator_config.fold_cache)
    coordinator_config.fold_cache = std::make_shared<fold::FoldCache>(
        fold::FoldCache::Config{.capacity = config_.fold_cache_capacity,
                                .shards = 8});
  if (coordinator_config.fold_cache)
    coordinator_config.fold_cache->set_metrics(ob.metrics().fold_cache_hits,
                                               ob.metrics().fold_cache_misses);
  if (resume_from != nullptr && resume_from->fold_cache &&
      coordinator_config.fold_cache)
    coordinator_config.fold_cache->restore(*resume_from->fold_cache);

  if (config_.enable_infer && !coordinator_config.infer)
    coordinator_config.infer =
        std::make_shared<infer::InferenceServer>(config_.infer_config);
  if (coordinator_config.infer) {
    // The slowest GPU generation among the serving nodes bounds every
    // batch the server dispatches.
    double slowest = 0.0;
    const auto scan = [&](const rp::PilotDescription& pd) {
      for (const auto& node : pd.nodes)
        if (node.gpus > 0)
          slowest = slowest == 0.0 ? node.gpu_speed_factor
                                   : std::min(slowest, node.gpu_speed_factor);
    };
    scan(config_.pilot);
    for (const auto& pd : config_.extra_pilots) scan(pd);
    if (slowest > 0.0) coordinator_config.infer->set_speed_factor(slowest);
  }

  std::shared_ptr<const SequenceGenerator> generator = config_.generator;
  if (!generator)
    generator = std::make_shared<MpnnGenerator>(config_.sampler);
  if (resume_from != nullptr)
    generator->restore_checkpoint_state(resume_from->generator_state);

  // Checkpoint sink: invoked by the coordinator at quiesce. Ordering
  // matters for bit-exact resume — the write marker (span + counter) is
  // recorded BEFORE the observability state is harvested, so the document
  // includes its own marker and a resumed tracer/registry continues
  // exactly where the uninterrupted run's would.
  std::size_t local_writes = 0;
  const std::uint64_t prior_ordinal =
      resume_from != nullptr ? resume_from->ordinal : 0;
  if (config_.checkpoint.enabled()) {
    coordinator_config.checkpoint.every_n_completions =
        config_.checkpoint.every_n_completions;
    coordinator_config.checkpoint.every_n_pipelines =
        config_.checkpoint.every_n_pipelines;
    coordinator_config.checkpoint_sink =
        [&, campaign_span](const CoordinatorCheckpoint& coord) {
          CampaignCheckpoint doc;
          doc.ordinal = prior_ordinal + ++local_writes;
          if (obs::Tracer& tracer = ob.tracer(); tracer.enabled()) {
            const obs::SpanId mark =
                tracer.instant(session.now(), "checkpoint.write",
                               obs::categories::kDecision, campaign_span);
            tracer.attr(mark, "ordinal", std::to_string(doc.ordinal));
          }
          ob.registry()
              .counter(obs::names::kCheckpointsWritten)
              ->inc();
          doc.campaign_name = config_.name;
          doc.seed = config_.session.seed;
          doc.targets = targets.size();
          doc.now = session.now();
          doc.profiler_events = session.profiler().events();
          if (ob.tracer().enabled()) {
            doc.trace = ob.tracer().spans();
            doc.trace_next_seq = ob.tracer().next_seq();
          }
          doc.campaign_span = campaign_span;
          if (ob.registry().enabled()) doc.metrics = ob.registry().snapshot();
          doc.uid_counters = session.uids().counters();
          doc.task_counters = session.task_manager().counters();
          doc.pilots = session.checkpoint_pilots();
          doc.coordinator = coord;
          if (coordinator_config.fold_cache)
            doc.fold_cache = coordinator_config.fold_cache->snapshot();
          doc.generator_state = generator->checkpoint_state();
          if (!config_.checkpoint.directory.empty())
            save_checkpoint(doc, config_.checkpoint.path());
          if (config_.checkpoint.sink) config_.checkpoint.sink(doc);
          if (config_.checkpoint.halt_after > 0 &&
              local_writes >= config_.checkpoint.halt_after &&
              session.mode() == rp::ExecutionMode::kSimulated)
            session.engine().stop();
        };
  }
  Coordinator coordinator(session, coordinator_config);

  if (resume_from != nullptr) {
    std::map<std::string, const protein::DesignTarget*> by_name;
    for (const auto& target : targets) by_name[target.name] = &target;
    std::vector<std::unique_ptr<Pipeline>> pipelines;
    pipelines.reserve(resume_from->coordinator.pipelines.size());
    for (const auto& snap : resume_from->coordinator.pipelines) {
      const auto it = by_name.find(snap.target_name);
      if (it == by_name.end())
        throw std::invalid_argument(
            "Campaign::resume: checkpoint references unknown target '" +
            snap.target_name + "'");
      pipelines.push_back(std::make_unique<Pipeline>(Pipeline::restore(
          snap, *it->second, config_.protocol, generator,
          fold::AlphaFold(config_.predictor))));
    }
    coordinator.restore(resume_from->coordinator, std::move(pipelines));
  } else {
    for (const auto& target : targets) {
      auto pipeline = std::make_unique<Pipeline>(
          target.name, target, target.start_complex(), config_.protocol,
          generator, fold::AlphaFold(config_.predictor),
          session.fork_rng("pipeline." + target.name));
      coordinator.add_pipeline(std::move(pipeline));
    }
  }

  coordinator.run();

  CampaignResult r;
  r.name = config_.name;
  r.trajectories = coordinator.results();
  r.targets = targets.size();

  double makespan_s = pilot->recorder().latest_end();
  for (const auto& p : session.pilots())
    makespan_s = std::max(makespan_s, p->recorder().latest_end());
  r.makespan_h = common::seconds_to_hours(makespan_s);
  if (config_.extra_pilots.empty()) {
    r.utilization = pilot->recorder().summarize(0.0, makespan_s);
    r.energy_kwh = pilot->recorder().energy_kwh();
  } else {
    // Capacity-weighted merge across pilots (the single-pilot branch above
    // stays bit-identical to the pre-multi-pilot harvest). Each summary is
    // a fraction of its own pilot's capacity over the campaign span, so
    // weights are core/GPU counts; energy is additive.
    r.utilization.span_seconds = makespan_s;
    double cores_sum = 0.0;
    double gpus_sum = 0.0;
    for (const auto& p : session.pilots()) {
      const auto u = p->recorder().summarize(0.0, makespan_s);
      const double cores = static_cast<double>(p->recorder().total_cores());
      const double gpus = static_cast<double>(p->recorder().total_gpus());
      cores_sum += cores;
      gpus_sum += gpus;
      r.utilization.cpu_allocated += cores * u.cpu_allocated;
      r.utilization.cpu_active += cores * u.cpu_active;
      r.utilization.gpu_allocated += gpus * u.gpu_allocated;
      r.utilization.gpu_active += gpus * u.gpu_active;
      r.energy_kwh += p->recorder().energy_kwh();
    }
    if (cores_sum > 0.0) {
      r.utilization.cpu_allocated /= cores_sum;
      r.utilization.cpu_active /= cores_sum;
    }
    if (gpus_sum > 0.0) {
      r.utilization.gpu_allocated /= gpus_sum;
      r.utilization.gpu_active /= gpus_sum;
    }
  }
  for (const auto& [phase, seconds] : session.profiler().phase_durations())
    r.phase_hours[phase] = common::seconds_to_hours(seconds);
  // Timeline series stay single-recorder views: bins from different
  // pilots' recorders have no meaningful pointwise merge, so they always
  // render the primary pilot.
  r.cpu_series = pilot->recorder().cpu_series(100);
  r.gpu_series = pilot->recorder().gpu_series(100);
  r.gantt = hpc::render_gantt(session.profiler(), makespan_s);

  r.root_pipelines = coordinator.pipelines_submitted();
  r.subpipelines = coordinator.subpipelines_spawned();
  r.generator_tasks = coordinator.generator_tasks();
  r.refine_tasks = coordinator.refine_tasks();
  r.fold_tasks = coordinator.fold_tasks();
  r.fold_retries = coordinator.fold_retries();
  r.failed_tasks = coordinator.failed_tasks();

  const auto retry = hpc::summarize_retries(session.profiler());
  r.task_retries = session.task_manager().retried();
  r.task_timeouts = session.task_manager().timed_out();
  r.task_requeues = session.task_manager().requeued();
  r.pilot_failures = retry.pilot_failures;
  r.attempts = hpc::attempt_counts(session.profiler());
  if (coordinator_config.fold_cache)
    r.fold_cache = coordinator_config.fold_cache->stats();
  if (coordinator_config.infer) r.infer = coordinator_config.infer->snapshot();

  // Observability harvest: close the root span at the simulated makespan
  // (the session clock already sits there) and snapshot everything. The
  // session has drained, so counter totals are exact.
  if (campaign_span != 0) ob.tracer().end(campaign_span, session.now());
  if (ob.tracer().enabled()) r.trace = ob.tracer().spans();
  if (ob.registry().enabled()) r.metrics = ob.registry().snapshot();
  r.lockdep = common::lockdep::report();
  // A caller-provided cache may outlive this session's registry: unhook.
  if (coordinator_config.fold_cache)
    coordinator_config.fold_cache->set_metrics(nullptr, nullptr);
  return r;
}

}  // namespace impress::core
