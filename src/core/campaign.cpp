#include "core/campaign.hpp"

#include <map>

#include "common/time_util.hpp"
#include "hpc/analytics.hpp"
#include "hpc/gantt.hpp"
#include "runtime/session.hpp"

namespace impress::core {

CampaignConfig im_rp_campaign(std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.name = "IM-RP";
  cfg.protocol = calibration::im_rp_protocol();
  cfg.coordinator.sequential = false;
  cfg.pilot = calibration::amarel_pilot(rp::SchedulerPolicy::kBackfill);
  cfg.session.seed = seed;
  return cfg;
}

CampaignConfig cont_v_campaign(std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.name = "CONT-V";
  cfg.protocol = calibration::cont_v_protocol();
  cfg.coordinator.sequential = true;
  cfg.pilot = calibration::amarel_pilot(rp::SchedulerPolicy::kFifo);
  cfg.session.seed = seed;
  return cfg;
}

std::size_t CampaignResult::total_trajectories() const {
  std::size_t n = 0;
  for (const auto& t : trajectories) n += t.history.size();
  return n;
}

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {}

CampaignResult resume_campaign(const CampaignConfig& config,
                               const CampaignResult& previous,
                               const std::vector<protein::DesignTarget>& targets) {
  // Best recorded design per target (by composite score across all
  // trajectories of the previous run).
  std::map<std::string, std::pair<double, std::string>> best;
  for (const auto& t : previous.trajectories) {
    for (const auto& rec : t.history) {
      const double comp = rec.metrics.composite();
      auto [it, inserted] =
          best.emplace(t.target_name, std::make_pair(comp, rec.sequence));
      if (!inserted && comp > it->second.first)
        it->second = {comp, rec.sequence};
    }
  }

  // Rebuild the target list with the resumed starting receptors. The
  // landscape (and therefore the ground truth) is unchanged; only the
  // starting point moves.
  auto resumed = targets;
  for (auto& target : resumed) {
    const auto it = best.find(target.name);
    if (it == best.end()) continue;
    target.start_receptor = protein::Sequence::from_string(it->second.second);
  }

  auto cfg = config;
  if (cfg.name == previous.name) cfg.name += "-resumed";
  Campaign campaign(cfg);
  return campaign.run(resumed);
}

CampaignResult Campaign::run(
    const std::vector<protein::DesignTarget>& targets) {
  rp::Session session(config_.session);
  obs::Observability& ob = session.observability();
  obs::SpanId campaign_span = 0;
  if (obs::Tracer& tracer = ob.tracer(); tracer.enabled()) {
    campaign_span = tracer.begin(session.now(), "campaign." + config_.name,
                                 obs::categories::kCampaign);
    tracer.attr(campaign_span, "targets", std::to_string(targets.size()));
    tracer.attr(campaign_span, "seed",
                std::to_string(config_.session.seed));
  }
  const auto pilot = session.submit_pilot(config_.pilot);
  auto coordinator_config = config_.coordinator;
  coordinator_config.trace_root = campaign_span;
  if (config_.enable_fold_cache && !coordinator_config.fold_cache)
    coordinator_config.fold_cache = std::make_shared<fold::FoldCache>(
        fold::FoldCache::Config{.capacity = config_.fold_cache_capacity,
                                .shards = 8});
  if (coordinator_config.fold_cache)
    coordinator_config.fold_cache->set_metrics(ob.metrics().fold_cache_hits,
                                               ob.metrics().fold_cache_misses);
  Coordinator coordinator(session, coordinator_config);

  std::shared_ptr<const SequenceGenerator> generator = config_.generator;
  if (!generator)
    generator = std::make_shared<MpnnGenerator>(config_.sampler);

  for (const auto& target : targets) {
    auto pipeline = std::make_unique<Pipeline>(
        target.name, target, target.start_complex(), config_.protocol,
        generator, fold::AlphaFold(config_.predictor),
        session.fork_rng("pipeline." + target.name));
    coordinator.add_pipeline(std::move(pipeline));
  }

  coordinator.run();

  CampaignResult r;
  r.name = config_.name;
  r.trajectories = coordinator.results();
  r.targets = targets.size();

  const double makespan_s = pilot->recorder().latest_end();
  r.makespan_h = common::seconds_to_hours(makespan_s);
  r.utilization = pilot->recorder().summarize(0.0, makespan_s);
  for (const auto& [phase, seconds] : session.profiler().phase_durations())
    r.phase_hours[phase] = common::seconds_to_hours(seconds);
  r.cpu_series = pilot->recorder().cpu_series(100);
  r.gpu_series = pilot->recorder().gpu_series(100);
  r.gantt = hpc::render_gantt(session.profiler(), makespan_s);
  r.energy_kwh = pilot->recorder().energy_kwh();

  r.root_pipelines = coordinator.pipelines_submitted();
  r.subpipelines = coordinator.subpipelines_spawned();
  r.generator_tasks = coordinator.generator_tasks();
  r.refine_tasks = coordinator.refine_tasks();
  r.fold_tasks = coordinator.fold_tasks();
  r.fold_retries = coordinator.fold_retries();
  r.failed_tasks = coordinator.failed_tasks();

  const auto retry = hpc::summarize_retries(session.profiler());
  r.task_retries = session.task_manager().retried();
  r.task_timeouts = session.task_manager().timed_out();
  r.task_requeues = session.task_manager().requeued();
  r.pilot_failures = retry.pilot_failures;
  r.attempts = hpc::attempt_counts(session.profiler());
  if (coordinator_config.fold_cache)
    r.fold_cache = coordinator_config.fold_cache->stats();

  // Observability harvest: close the root span at the simulated makespan
  // (the session clock already sits there) and snapshot everything. The
  // session has drained, so counter totals are exact.
  if (campaign_span != 0) ob.tracer().end(campaign_span, session.now());
  if (ob.tracer().enabled()) r.trace = ob.tracer().spans();
  if (ob.registry().enabled()) r.metrics = ob.registry().snapshot();
  // A caller-provided cache may outlive this session's registry: unhook.
  if (coordinator_config.fold_cache)
    coordinator_config.fold_cache->set_metrics(nullptr, nullptr);
  return r;
}

}  // namespace impress::core
