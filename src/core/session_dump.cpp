#include "core/session_dump.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/export.hpp"
#include "obs/export.hpp"

namespace impress::core {

namespace {

constexpr int kSchemaVersion = 1;

common::Json metrics_to_json(const fold::FoldMetrics& m) {
  common::Json::Object o;
  o["plddt"] = m.plddt;
  o["ptm"] = m.ptm;
  o["ipae"] = m.ipae;
  return common::Json(std::move(o));
}

fold::FoldMetrics metrics_from_json(const common::Json& j) {
  return fold::FoldMetrics{.plddt = j.at("plddt").as_number(),
                           .ptm = j.at("ptm").as_number(),
                           .ipae = j.at("ipae").as_number()};
}

common::Json series_to_json(const std::vector<double>& xs) {
  common::Json::Array a;
  a.reserve(xs.size());
  for (double x : xs) a.emplace_back(x);
  return common::Json(std::move(a));
}

std::vector<double> series_from_json(const common::Json& j) {
  std::vector<double> out;
  out.reserve(j.size());
  for (const auto& v : j.as_array()) out.push_back(v.as_number());
  return out;
}

common::Json stream_to_json(const infer::StreamStats& s) {
  common::Json::Object o;
  o["requests"] = s.requests;
  o["cache_hits"] = s.cache_hits;
  o["batches"] = s.batches;
  o["max_batch"] = static_cast<std::size_t>(s.max_batch);
  o["batched_gpu_s"] = s.batched_gpu_s;
  o["unbatched_gpu_s"] = s.unbatched_gpu_s;
  return common::Json(std::move(o));
}

infer::StreamStats stream_from_json(const common::Json& j) {
  infer::StreamStats s;
  s.requests = static_cast<std::uint64_t>(j.at("requests").as_number());
  s.cache_hits = static_cast<std::uint64_t>(j.at("cache_hits").as_number());
  s.batches = static_cast<std::uint64_t>(j.at("batches").as_number());
  s.max_batch = static_cast<std::uint32_t>(j.at("max_batch").as_number());
  s.batched_gpu_s = j.at("batched_gpu_s").as_number();
  s.unbatched_gpu_s = j.at("unbatched_gpu_s").as_number();
  return s;
}

}  // namespace

common::Json to_json(const CampaignResult& result) {
  common::Json::Object doc;
  doc["schema_version"] = kSchemaVersion;
  doc["name"] = result.name;
  doc["makespan_h"] = result.makespan_h;
  doc["targets"] = result.targets;
  doc["root_pipelines"] = result.root_pipelines;
  doc["subpipelines"] = result.subpipelines;
  doc["generator_tasks"] = result.generator_tasks;
  doc["refine_tasks"] = result.refine_tasks;
  doc["energy_kwh"] = result.energy_kwh;
  doc["fold_tasks"] = result.fold_tasks;
  doc["fold_retries"] = result.fold_retries;
  doc["failed_tasks"] = result.failed_tasks;

  common::Json::Object util;
  util["cpu_active"] = result.utilization.cpu_active;
  util["cpu_allocated"] = result.utilization.cpu_allocated;
  util["gpu_active"] = result.utilization.gpu_active;
  util["gpu_allocated"] = result.utilization.gpu_allocated;
  util["span_seconds"] = result.utilization.span_seconds;
  doc["utilization"] = common::Json(std::move(util));

  common::Json::Object phases;
  for (const auto& [phase, hours] : result.phase_hours) phases[phase] = hours;
  doc["phase_hours"] = common::Json(std::move(phases));

  doc["cpu_series"] = series_to_json(result.cpu_series);
  doc["gpu_series"] = series_to_json(result.gpu_series);
  doc["gantt"] = result.gantt;

  common::Json::Array trajectories;
  for (const auto& t : result.trajectories) {
    common::Json::Object traj;
    traj["pipeline_id"] = t.pipeline_id;
    traj["target"] = t.target_name;
    traj["is_subpipeline"] = t.is_subpipeline;
    traj["terminated_early"] = t.terminated_early;
    traj["total_retries"] = t.total_retries;
    common::Json::Array history;
    for (const auto& rec : t.history) {
      common::Json::Object r;
      r["cycle"] = rec.cycle;
      r["metrics"] = metrics_to_json(rec.metrics);
      r["true_fitness"] = rec.true_fitness;
      r["accepted"] = rec.accepted;
      r["retries"] = rec.retries;
      r["sequence"] = rec.sequence;
      history.emplace_back(std::move(r));
    }
    traj["history"] = common::Json(std::move(history));
    trajectories.emplace_back(std::move(traj));
  }
  doc["trajectories"] = common::Json(std::move(trajectories));

  // Observability harvest, present only when the session recorded it —
  // dumps from untraced runs stay byte-identical to schema v1 output.
  if (!result.trace.empty()) doc["trace"] = obs::spans_to_json(result.trace);
  if (!result.metrics.empty())
    doc["metrics"] = obs::metrics_to_json(result.metrics);
  // Inference-server accounting follows the observability rule: the key
  // is present only when the campaign ran with a server, so server-less
  // dumps stay byte-identical to schema v1 output.
  if (result.infer.enabled) {
    common::Json::Object inf;
    inf["batch_size"] = static_cast<std::size_t>(result.infer.batch_size);
    inf["speed_factor"] = result.infer.speed_factor;
    inf["tuner_decisions"] = result.infer.tuner_decisions;
    inf["fold"] = stream_to_json(result.infer.fold);
    inf["design"] = stream_to_json(result.infer.design);
    doc["infer"] = common::Json(std::move(inf));
  }
  // Lockdep violations follow the same rule: absent unless a lockdep
  // build actually recorded one (default builds never populate this).
  if (!result.lockdep.empty()) {
    std::vector<common::Json> lines;
    lines.reserve(result.lockdep.size());
    for (const auto& line : result.lockdep) lines.emplace_back(line);
    doc["lockdep"] = common::Json(std::move(lines));
  }
  return common::Json(std::move(doc));
}

CampaignResult campaign_result_from_json(const common::Json& doc) {
  if (!doc.is_object() || !doc.contains("schema_version"))
    throw std::invalid_argument("session dump: not a campaign document");
  if (static_cast<int>(doc.at("schema_version").as_number()) != kSchemaVersion)
    throw std::invalid_argument("session dump: unsupported schema version");

  CampaignResult r;
  r.name = doc.at("name").as_string();
  r.makespan_h = doc.at("makespan_h").as_number();
  r.targets = static_cast<std::size_t>(doc.at("targets").as_number());
  r.root_pipelines =
      static_cast<std::size_t>(doc.at("root_pipelines").as_number());
  r.subpipelines = static_cast<std::size_t>(doc.at("subpipelines").as_number());
  r.generator_tasks =
      static_cast<std::size_t>(doc.at("generator_tasks").as_number());
  r.refine_tasks =
      doc.contains("refine_tasks")
          ? static_cast<std::size_t>(doc.at("refine_tasks").as_number())
          : 0;
  r.energy_kwh =
      doc.contains("energy_kwh") ? doc.at("energy_kwh").as_number() : 0.0;
  r.fold_tasks = static_cast<std::size_t>(doc.at("fold_tasks").as_number());
  r.fold_retries = static_cast<std::size_t>(doc.at("fold_retries").as_number());
  r.failed_tasks = static_cast<std::size_t>(doc.at("failed_tasks").as_number());

  const auto& util = doc.at("utilization");
  r.utilization.cpu_active = util.at("cpu_active").as_number();
  r.utilization.cpu_allocated = util.at("cpu_allocated").as_number();
  r.utilization.gpu_active = util.at("gpu_active").as_number();
  r.utilization.gpu_allocated = util.at("gpu_allocated").as_number();
  r.utilization.span_seconds = util.at("span_seconds").as_number();

  for (const auto& [phase, hours] : doc.at("phase_hours").as_object())
    r.phase_hours[phase] = hours.as_number();

  r.cpu_series = series_from_json(doc.at("cpu_series"));
  r.gpu_series = series_from_json(doc.at("gpu_series"));
  r.gantt = doc.at("gantt").as_string();

  for (const auto& traj : doc.at("trajectories").as_array()) {
    TrajectoryResult t;
    t.pipeline_id = traj.at("pipeline_id").as_string();
    t.target_name = traj.at("target").as_string();
    t.is_subpipeline = traj.at("is_subpipeline").as_bool();
    t.terminated_early = traj.at("terminated_early").as_bool();
    t.total_retries = static_cast<int>(traj.at("total_retries").as_number());
    for (const auto& rec : traj.at("history").as_array()) {
      IterationRecord ir;
      ir.cycle = static_cast<int>(rec.at("cycle").as_number());
      ir.metrics = metrics_from_json(rec.at("metrics"));
      ir.true_fitness = rec.at("true_fitness").as_number();
      ir.accepted = rec.at("accepted").as_bool();
      ir.retries = static_cast<int>(rec.at("retries").as_number());
      ir.sequence = rec.at("sequence").as_string();
      t.history.push_back(std::move(ir));
    }
    r.trajectories.push_back(std::move(t));
  }

  if (doc.contains("trace")) r.trace = obs::spans_from_json(doc.at("trace"));
  if (doc.contains("metrics"))
    r.metrics = obs::metrics_from_json(doc.at("metrics"));
  if (doc.contains("infer")) {
    const auto& inf = doc.at("infer");
    r.infer.enabled = true;
    r.infer.batch_size =
        static_cast<std::uint32_t>(inf.at("batch_size").as_number());
    r.infer.speed_factor = inf.at("speed_factor").as_number();
    r.infer.tuner_decisions =
        static_cast<std::uint64_t>(inf.at("tuner_decisions").as_number());
    r.infer.fold = stream_from_json(inf.at("fold"));
    r.infer.design = stream_from_json(inf.at("design"));
  }
  if (doc.contains("lockdep"))
    for (const auto& line : doc.at("lockdep").as_array())
      r.lockdep.push_back(line.as_string());
  return r;
}

void save_session_dump(const CampaignResult& result, const std::string& path) {
  write_text_file(path, to_json(result).dump(2) + "\n");
}

CampaignResult load_session_dump(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("session dump: cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return campaign_result_from_json(common::Json::parse(ss.str()));
}

}  // namespace impress::core
