// Campaign: one full experimental arm (CONT-V or IM-RP) over a set of
// design targets — session + pilot + coordinator + pipelines, executed to
// completion, with the computational and scientific results collected
// into a CampaignResult that the benches and tests consume.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/checkpoint.hpp"
#include "core/coordinator.hpp"
#include "core/generator.hpp"
#include "core/pipeline.hpp"
#include "core/protocol.hpp"
#include "hpc/analytics.hpp"
#include "hpc/utilization.hpp"
#include "obs/obs.hpp"
#include "protein/datasets.hpp"

namespace impress::core {

/// Campaign-level checkpointing (docs/persistence.md). Disabled unless a
/// directory is set. Checkpoints are cut at coordinator quiesce points on
/// the configured cadence and written crash-consistently (atomic
/// replacement), so the file at `directory/filename` is always a complete,
/// loadable document — the previous checkpoint survives until the next one
/// is durable.
struct CheckpointConfig {
  std::string directory;  ///< empty = checkpointing disabled
  /// Cadence triggers, forwarded to the coordinator's CheckpointPolicy
  /// (either 0 disables that trigger; both 0 with a directory set means a
  /// directory was configured but no checkpoint will ever be cut).
  std::size_t every_n_completions = 0;
  std::size_t every_n_pipelines = 0;
  std::string filename = "checkpoint.json";
  /// Test hook (simulated mode only): hard-stop the engine right after
  /// the Nth checkpoint of this process is written, modelling a crash.
  /// The interrupted run's CampaignResult is meaningless; resume from the
  /// written checkpoint instead. 0 = never halt.
  std::size_t halt_after = 0;
  /// In-memory checkpoint delivery: invoked with each completed document
  /// after the file write (or instead of one, when no directory is set).
  /// The fabric's workers use this to ship CHECKPOINT_SHARD frames without
  /// touching the filesystem. Cutting checkpoints perturbs the engine
  /// schedule exactly like a directory sink does, so the same cadence must
  /// be configured on both sides of any bit-identity comparison.
  std::function<void(const CampaignCheckpoint&)> sink;

  [[nodiscard]] bool enabled() const noexcept {
    return !directory.empty() || sink != nullptr;
  }
  [[nodiscard]] std::string path() const { return directory + "/" + filename; }
};

struct CampaignConfig {
  std::string name = "IM-RP";
  ProtocolConfig protocol = calibration::im_rp_protocol();
  CoordinatorConfig coordinator{
      .sequential = false,
      .mpnn_durations = calibration::mpnn_durations(),
      .fold_durations = calibration::fold_durations(),
      .refine_durations = RefineDurationModel{},
      .refined_noise_factor = 0.65,
      .task_retry = {},
      .fold_cache = {},
      .infer = {}};
  rp::PilotDescription pilot = calibration::amarel_pilot();
  /// Additional pilots submitted after `pilot` (submission order defines
  /// the fault-plan pilot index: `pilot` is 0, extra_pilots[i] is i+1).
  /// The TaskManager routes least-loaded across all of them. Combine with
  /// session.faults.spot_reclaims to model preemptible capacity the
  /// campaign rides out: evicted work retries on the survivors and the
  /// reclaimed pilot rejoins when its window ends. Empty (the default)
  /// reproduces the single-pilot campaign exactly.
  std::vector<rp::PilotDescription> extra_pilots;
  rp::SessionConfig session{};  // simulated mode, seed 42
  mpnn::SamplerConfig sampler = calibration::sampler_config();
  fold::PredictorConfig predictor = calibration::predictor_config();
  /// Optional generator override (defaults to the ProteinMPNN surrogate
  /// built from `sampler`).
  std::shared_ptr<const SequenceGenerator> generator;
  /// Memoize fold predictions across the campaign (duplicate sequences
  /// from GA iterations and retries fold once). Results are bit-identical
  /// either way — see fold/fold_cache.hpp for the determinism contract.
  bool enable_fold_cache = true;
  /// Capacity of the campaign's fold cache (entries), when enabled and no
  /// cache was provided via `coordinator.fold_cache`.
  std::size_t fold_cache_capacity = 4096;
  /// Build an inference-server surrogate (infer/infer.hpp) from
  /// `infer_config` when none was provided via `coordinator.infer`.
  /// Default off. Either way, a present server is speed-calibrated at
  /// execute time to the slowest GPU generation among the configured
  /// pilots' nodes, and its accounting lands in CampaignResult::infer.
  /// Batching is bit-unobservable in every other result field.
  bool enable_infer = false;
  infer::InferenceServer::Config infer_config;
  /// Crash-consistent mid-campaign checkpointing; see CheckpointConfig.
  CheckpointConfig checkpoint;
};

/// The paper's two arms, pre-configured.
[[nodiscard]] CampaignConfig im_rp_campaign(std::uint64_t seed = 42);
[[nodiscard]] CampaignConfig cont_v_campaign(std::uint64_t seed = 42);

struct CampaignResult {
  std::string name;
  std::vector<TrajectoryResult> trajectories;

  // Computational metrics (Table I right half, Figs 4-5).
  double makespan_h = 0.0;
  hpc::UtilizationSummary utilization;
  std::map<std::string, double> phase_hours;  ///< bootstrap/exec_setup/running
  std::vector<double> cpu_series;  ///< binned active CPU utilization [0,1]
  std::vector<double> gpu_series;
  /// Task-level Gantt rendering of the run (profiler events).
  std::string gantt;
  /// Estimated dynamic energy of the campaign (kWh; see
  /// hpc::UtilizationRecorder::energy_kwh).
  double energy_kwh = 0.0;

  // Workload bookkeeping (Table I left half).
  std::size_t root_pipelines = 0;
  std::size_t subpipelines = 0;
  std::size_t generator_tasks = 0;
  std::size_t refine_tasks = 0;
  std::size_t fold_tasks = 0;
  std::size_t fold_retries = 0;
  std::size_t failed_tasks = 0;
  std::size_t targets = 0;

  // Fault-tolerance bookkeeping (docs/fault_tolerance.md): runtime-level
  // recovery, as opposed to the protocol-level fold_retries above.
  std::size_t task_retries = 0;   ///< failed attempts resubmitted
  std::size_t task_timeouts = 0;  ///< attempt-deadline evictions
  std::size_t task_requeues = 0;  ///< tasks re-routed off a failed pilot
  std::size_t pilot_failures = 0; ///< pilots lost to injected outages
  /// Attempts per task uid (> 1 identifies retried tasks).
  std::map<std::string, int> attempts;

  /// Fold memo-cache behaviour over the run (all zero when disabled).
  hpc::CacheSummary fold_cache;

  /// Inference-server accounting (infer/infer.hpp): batching behaviour of
  /// the fold/design streams. `enabled` stays false (everything zero)
  /// when the campaign ran without a server. Accounting only — it never
  /// feeds back, so campaigns with and without a server are bit-identical
  /// in every other field.
  infer::ServerSnapshot infer;

  // Observability harvest (docs/observability.md). Both empty unless the
  // session enabled the corresponding axis
  // (config.session.enable_tracing / enable_metrics); neither feeds back
  // into any other result field — tracing-on and tracing-off campaigns
  // are bit-identical everywhere above.
  std::vector<obs::SpanRecord> trace;
  obs::MetricsSnapshot metrics;

  /// Lockdep violation report (src/common/lockdep.hpp): always empty in
  /// default builds; under IMPRESS_LOCKDEP=ON it carries any lock-order
  /// cycles / blocking-under-lock hits observed during the run, so they
  /// land in session dumps next to the trace they explain.
  std::vector<std::string> lockdep;

  /// Trajectories in the paper's counting: accepted design iterations.
  [[nodiscard]] std::size_t total_trajectories() const;
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config);

  /// Run the campaign over the targets and collect everything. The
  /// targets vector must outlive the call (pipelines hold pointers).
  [[nodiscard]] CampaignResult run(
      const std::vector<protein::DesignTarget>& targets);

  /// Continue an interrupted campaign from a mid-flight checkpoint (see
  /// core/checkpoint.hpp). `targets` must be the same target set the
  /// checkpointed run used (validated by name), and this campaign's
  /// config must match the original's — resume reconstructs coordinator,
  /// runtime and rng state and continues, so in simulated mode the
  /// returned CampaignResult is bit-identical to the uninterrupted run's
  /// (with the same checkpoint cadence configured).
  [[nodiscard]] CampaignResult resume(
      const std::vector<protein::DesignTarget>& targets,
      const CampaignCheckpoint& checkpoint);

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }

 private:
  /// Shared body of run()/resume(): wire coordinator + checkpoint sink,
  /// execute, harvest the CampaignResult.
  [[nodiscard]] CampaignResult execute(
      rp::Session& session, const std::vector<protein::DesignTarget>& targets,
      const CampaignCheckpoint* resume_from);

  CampaignConfig config_;
};

/// Resume a finished (or interrupted) campaign from its result: each
/// target restarts from the best design recorded in `previous`, running
/// this campaign's configured number of cycles on top. Targets without
/// any recorded design start from their original structure. Use with a
/// result freshly computed or loaded via core/session_dump.hpp.
[[nodiscard]] CampaignResult resume_campaign(
    const CampaignConfig& config, const CampaignResult& previous,
    const std::vector<protein::DesignTarget>& targets);

}  // namespace impress::core
