// CSV export of campaign results, for downstream plotting/analysis.
//
// Three documents:
//  * trajectories  — one row per accepted design iteration;
//  * utilization   — the binned CPU/GPU series behind Figs 4-5;
//  * iterations    — per-cycle medians/spreads per metric (Figs 2-3 data).
//
// All CSV is RFC-4180: comma separated, '.' decimal point, first row is
// the header; string fields (ids, target names, sequences) are quoted
// when they contain commas, quotes, or newlines (see csv_escape).

#pragma once

#include <string>

#include "core/campaign.hpp"

namespace impress::core {

/// RFC-4180 field quoting: wraps `field` in double quotes (doubling any
/// embedded quote) when it contains a comma, quote, or line break;
/// returns it unchanged otherwise.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// pipeline_id,target,is_subpipeline,cycle,plddt,ptm,ipae,composite,
/// true_fitness,retries,sequence
[[nodiscard]] std::string trajectories_csv(const CampaignResult& result);

/// bin,t_start_h,t_end_h,cpu,gpu
[[nodiscard]] std::string utilization_csv(const CampaignResult& result);

/// metric,cycle,n,median,mean,stddev,p25,p75
[[nodiscard]] std::string iterations_csv(const CampaignResult& result,
                                         int cycles);

/// Write `content` to `path`; throws std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

/// Write all three CSVs into `directory` (created if missing) as
/// <name>_trajectories.csv, <name>_utilization.csv, <name>_iterations.csv,
/// where <name> is the lower-cased campaign name. Returns the paths.
std::vector<std::string> export_campaign_csv(const CampaignResult& result,
                                             const std::string& directory,
                                             int cycles);

}  // namespace impress::core
