// Session dumps: archive a finished campaign as a JSON document and load
// it back — the analog of RADICAL-Pilot's session directories consumed by
// radical.analytics. Every field of CampaignResult round-trips, so
// analysis (report tables, figures, CSV export) can run on stored dumps
// without re-simulating.

#pragma once

#include <string>

#include "common/json.hpp"
#include "core/campaign.hpp"

namespace impress::core {

/// Serialize a campaign result (schema version included).
[[nodiscard]] common::Json to_json(const CampaignResult& result);

/// Rebuild a CampaignResult from a dump. Throws std::invalid_argument on
/// schema mismatch or missing fields.
[[nodiscard]] CampaignResult campaign_result_from_json(const common::Json& doc);

/// Convenience wrappers over to_json/parse + file I/O.
void save_session_dump(const CampaignResult& result, const std::string& path);
[[nodiscard]] CampaignResult load_session_dump(const std::string& path);

}  // namespace impress::core
