#include "core/pipeline.hpp"

#include <stdexcept>

#include "common/stats.hpp"
#include "protein/fasta.hpp"

namespace impress::core {

Pipeline::Pipeline(std::string id, const protein::DesignTarget& target,
                   protein::Complex start, ProtocolConfig config,
                   std::shared_ptr<const SequenceGenerator> generator,
                   fold::AlphaFold folder, common::Rng rng, int start_cycle,
                   bool is_subpipeline,
                   std::optional<fold::FoldMetrics> baseline)
    : id_(std::move(id)),
      target_(&target),
      current_(std::move(start)),
      config_(config),
      generator_(std::move(generator)),
      folder_(std::move(folder)),
      rng_(rng),
      cycle_(start_cycle),
      is_sub_(is_subpipeline),
      last_metrics_(baseline) {
  if (!generator_) throw std::invalid_argument("Pipeline: null generator");
  if (config_.cycles <= 0) throw std::invalid_argument("Pipeline: cycles <= 0");
  if (start_cycle < 0 || start_cycle >= config_.cycles)
    throw std::invalid_argument("Pipeline: start_cycle out of range");
}

common::Rng Pipeline::fork_task_rng() { return rng_.fork(task_counter_++); }

bool Pipeline::cycle_is_adaptive() const noexcept {
  if (!config_.adaptive) return false;
  // `cycle_` counts completed cycles, so the cycle in progress is
  // cycle_ + 1 (1-based).
  if (!config_.adaptivity_in_final_cycle && cycle_ + 1 == config_.cycles)
    return false;
  return true;
}

Pipeline::Action Pipeline::start() {
  if (state_ != State::kIdle)
    throw std::logic_error("Pipeline::start: already started");
  return begin_cycle();
}

Pipeline::Action Pipeline::begin_cycle() {
  state_ = State::kAwaitGenerator;
  retries_this_cycle_ = 0;
  candidates_.clear();
  next_candidate_ = 0;
  return Action{.kind = Action::Kind::kRunGenerator,
                .fold_input = std::nullopt,
                .reuse_features = false,
                .refined = false};
}

Pipeline::Action Pipeline::on_generator_result(
    std::vector<mpnn::ScoredSequence> sequences) {
  if (state_ != State::kAwaitGenerator)
    throw std::logic_error("Pipeline: unexpected generator result");
  if (sequences.empty()) {
    state_ = State::kTerminated;
    return Action{.kind = Action::Kind::kTerminated,
                  .fold_input = std::nullopt,
                  .reuse_features = false,
                  .refined = false};
  }
  // Stage 2: sort by log-likelihood.
  candidates_ = std::move(sequences);
  mpnn::sort_by_log_likelihood(candidates_);
  // Selection: the adaptive protocol walks the ranking from the top;
  // the control protocol (and a non-adaptive final cycle) picks randomly.
  const bool random_pick = config_.random_selection || !cycle_is_adaptive();
  next_candidate_ =
      random_pick ? rng_.below(static_cast<std::uint32_t>(candidates_.size()))
                  : 0;
  return select_and_fold(/*reuse_features=*/false);
}

Pipeline::Action Pipeline::select_and_fold(bool reuse_features) {
  pending_candidate_ = next_candidate_;
  protein::Complex input =
      current_.with_receptor(candidates_[pending_candidate_].sequence);
  if (config_.backbone_refinement) {
    state_ = State::kAwaitRefine;
    pending_reuse_features_ = reuse_features;
    return Action{.kind = Action::Kind::kRunRefine,
                  .fold_input = std::move(input),
                  .reuse_features = false,
                  .refined = false};
  }
  state_ = State::kAwaitFold;
  return Action{.kind = Action::Kind::kRunFold,
                .fold_input = std::move(input),
                .reuse_features =
                    reuse_features && config_.reuse_features_on_retry,
                .refined = false};
}

Pipeline::Action Pipeline::on_refine_result(protein::Complex refined) {
  if (state_ != State::kAwaitRefine)
    throw std::logic_error("Pipeline: unexpected refine result");
  state_ = State::kAwaitFold;
  return Action{.kind = Action::Kind::kRunFold,
                .fold_input = std::move(refined),
                .reuse_features = pending_reuse_features_ &&
                                  config_.reuse_features_on_retry,
                .refined = true};
}

Pipeline::Action Pipeline::on_fold_result(const fold::Prediction& prediction) {
  if (state_ != State::kAwaitFold)
    throw std::logic_error("Pipeline: unexpected fold result");
  const auto& best = prediction.best();

  // Feedback to learning generators: every evaluation, accepted or not.
  generator_->observe(candidates_[pending_candidate_].sequence,
                      best.metrics.composite());

  IterationRecord rec;
  rec.cycle = cycle_ + 1;
  rec.metrics = best.metrics;
  rec.sequence = candidates_[pending_candidate_].sequence.to_string();
  rec.true_fitness =
      target_->landscape.fitness(candidates_[pending_candidate_].sequence);
  rec.retries = retries_this_cycle_;

  const bool adaptive = cycle_is_adaptive();
  const bool improved =
      !last_metrics_ ||
      best.metrics.composite() > last_metrics_->composite();

  if (adaptive && !improved) {
    // Stage 6, declining branch: repeat Stages 4-5 with the next-ranked
    // sequence, up to the retry budget; then terminate the pipeline.
    ++retries_this_cycle_;
    ++total_retries_;
    if (retries_this_cycle_ <= config_.max_retries &&
        next_candidate_ + 1 < candidates_.size()) {
      ++next_candidate_;
      return select_and_fold(/*reuse_features=*/true);
    }
    state_ = State::kTerminated;
    return Action{.kind = Action::Kind::kTerminated,
                  .fold_input = std::nullopt,
                  .reuse_features = false,
                  .refined = false};
  }

  // Accept: the new AlphaFold model seeds the next ProteinMPNN cycle. The
  // accepted candidate's receptor sequence is grafted explicitly rather
  // than trusted from the predictor output, so a misbehaving predictor
  // cannot silently derail the trajectory.
  rec.accepted = true;
  history_.push_back(std::move(rec));
  last_metrics_ = best.metrics;
  current_ = protein::Complex{best.structure}.with_receptor(
      candidates_[pending_candidate_].sequence);
  current_.structure.set_name(target_->name);
  ++cycle_;
  if (cycle_ >= config_.cycles) {
    state_ = State::kDone;
    return Action{.kind = Action::Kind::kCompleted,
                  .fold_input = std::nullopt,
                  .reuse_features = false,
                  .refined = false};
  }
  return begin_cycle();
}

std::string Pipeline::current_fasta() const {
  std::vector<protein::FastaRecord> records;
  records.reserve(candidates_.size());
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    protein::FastaRecord r;
    r.id = id_ + ".c" + std::to_string(cycle_ + 1) + ".s" + std::to_string(i);
    r.description =
        "log_likelihood=" +
        common::format_fixed(candidates_[i].log_likelihood, 4);
    r.sequence = candidates_[i].sequence;
    records.push_back(std::move(r));
  }
  return protein::to_fasta(records);
}

std::optional<double> Pipeline::last_composite() const {
  if (!last_metrics_) return std::nullopt;
  return last_metrics_->composite();
}

Pipeline::Snapshot Pipeline::snapshot() const {
  Snapshot snap;
  snap.id = id_;
  snap.target_name = target_->name;
  snap.current = current_;
  snap.rng = rng_.save_state();
  snap.task_counter = task_counter_;
  snap.state = static_cast<int>(state_);
  snap.cycle = cycle_;
  snap.is_sub = is_sub_;
  snap.candidates = candidates_;
  snap.next_candidate = next_candidate_;
  snap.pending_candidate = pending_candidate_;
  snap.pending_reuse_features = pending_reuse_features_;
  snap.retries_this_cycle = retries_this_cycle_;
  snap.total_retries = total_retries_;
  snap.last_metrics = last_metrics_;
  snap.history = history_;
  return snap;
}

Pipeline::Pipeline(RestoreTag, const Snapshot& snap,
                   const protein::DesignTarget& target, ProtocolConfig config,
                   std::shared_ptr<const SequenceGenerator> generator,
                   fold::AlphaFold folder)
    : id_(snap.id),
      target_(&target),
      current_(snap.current),
      config_(config),
      generator_(std::move(generator)),
      folder_(std::move(folder)),
      rng_(common::Rng::from_state(snap.rng)),
      task_counter_(snap.task_counter),
      state_(static_cast<State>(snap.state)),
      cycle_(snap.cycle),
      is_sub_(snap.is_sub),
      candidates_(snap.candidates),
      next_candidate_(snap.next_candidate),
      pending_candidate_(snap.pending_candidate),
      pending_reuse_features_(snap.pending_reuse_features),
      retries_this_cycle_(snap.retries_this_cycle),
      total_retries_(snap.total_retries),
      last_metrics_(snap.last_metrics),
      history_(snap.history) {
  if (!generator_) throw std::invalid_argument("Pipeline: null generator");
  if (target.name != snap.target_name)
    throw std::invalid_argument("Pipeline::restore: target name mismatch");
}

Pipeline Pipeline::restore(const Snapshot& snap,
                           const protein::DesignTarget& target,
                           ProtocolConfig config,
                           std::shared_ptr<const SequenceGenerator> generator,
                           fold::AlphaFold folder) {
  return Pipeline(RestoreTag{}, snap, target, config, std::move(generator),
                  std::move(folder));
}

TrajectoryResult Pipeline::result() const {
  TrajectoryResult r;
  r.pipeline_id = id_;
  r.target_name = target_->name;
  r.is_subpipeline = is_sub_;
  r.terminated_early = state_ == State::kTerminated;
  r.history = history_;
  r.total_retries = total_retries_;
  return r;
}

}  // namespace impress::core
