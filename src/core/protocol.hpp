// Protocol configuration and per-iteration records shared by the pipeline,
// coordinator and campaign layers.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fold/fold.hpp"

namespace impress::core {

/// Knobs of the design protocol (paper §II-C and §III-A).
struct ProtocolConfig {
  /// Design cycles M (Stage 6M+7); the paper runs 4.
  int cycles = 4;
  /// Sequences generated per structure each cycle (Stage 1); paper: 10.
  std::size_t sequences_per_structure = 10;
  /// Stage 6 alternative-selection budget: how many next-ranked sequences
  /// may be tried when quality declines before the pipeline terminates.
  int max_retries = 10;

  /// IM-RP vs CONT-V: when false, no quality comparison happens — every
  /// prediction is accepted and trajectories are never pruned.
  bool adaptive = true;
  /// CONT-V picks its candidate uniformly at random instead of taking the
  /// top log-likelihood sequence.
  bool random_selection = false;
  /// Fig-3 setup: the paper did not enforce adaptivity in the final design
  /// cycle (and the quality visibly dropped). When false, the last cycle
  /// behaves like CONT-V.
  bool adaptivity_in_final_cycle = true;

  /// Coordinator decision-making: spawn sub-pipelines that re-process
  /// low-quality designs.
  bool spawn_subpipelines = true;
  /// A target's accepted quality must fall this far below the global pool
  /// median (composite score) to trigger a sub-pipeline.
  double subpipeline_margin = 0.015;
  /// Per-target budget of spawned sub-pipelines.
  int max_subpipelines_per_target = 2;

  /// Whether Stage-6 retries reuse the complex's MSA/features (GPU-only
  /// re-prediction) or pay the full feature stage again.
  bool reuse_features_on_retry = false;

  /// Backbone refinement (paper §I: "iterative runs of ProteinMPNN and
  /// backbone refinement techniques"): insert a CPU relaxation task
  /// between candidate selection and structure prediction. Refined
  /// backbones give the predictor a cleaner input — modeled as a 35%
  /// reduction of metric noise for that evaluation — at the cost of one
  /// extra task per prediction.
  bool backbone_refinement = false;
};

/// One accepted (or attempted) design iteration of a trajectory.
struct IterationRecord {
  int cycle = 0;                ///< 1-based design cycle
  fold::FoldMetrics metrics;    ///< AlphaFold surrogate confidence
  double true_fitness = 0.0;    ///< hidden landscape value (analysis only)
  bool accepted = false;        ///< Stage-6 verdict
  int retries = 0;              ///< alternative sequences tried this cycle
  std::string sequence;         ///< receptor sequence evaluated
};

/// Final outcome of one pipeline (= one structure's design loop).
struct TrajectoryResult {
  std::string pipeline_id;
  std::string target_name;
  bool is_subpipeline = false;
  bool terminated_early = false;  ///< retry budget exhausted
  std::vector<IterationRecord> history;  ///< accepted iterations, in order
  int total_retries = 0;
};

}  // namespace impress::core
