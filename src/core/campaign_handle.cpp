#include "core/campaign_handle.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/calibration.hpp"
#include "protein/datasets.hpp"

namespace impress::core {

CampaignExecutionModel::CampaignExecutionModel(CampaignShape shape) noexcept
    : shape_(shape) {
  const auto mpnn = calibration::mpnn_durations();
  const auto fold = calibration::fold_durations();
  const auto pilot = calibration::amarel_pilot();
  // One cycle-step = one ProteinMPNN call + one full AlphaFold pass; the
  // first result additionally pays pilot bootstrap and exec setup.
  step_base_s_ =
      mpnn.seconds_per_structure + fold.features_s + fold.inference_s;
  first_base_s_ =
      pilot.bootstrap_s + pilot.exec_overhead.setup_mean_s + step_base_s_;
}

CampaignExecutionModel::Sample CampaignExecutionModel::sample(
    std::uint64_t seed) const noexcept {
  common::Rng rng(common::splitmix64(seed), /*stream=*/0x5356435F45584543ULL);
  Sample s;
  // Wider sequence batches amortize slightly worse on one pilot.
  const double seq_factor =
      0.85 + 0.015 * static_cast<double>(shape_.sequences_per_structure);
  s.first_result_s = first_base_s_ * rng.lognormal_mean(1.0, 0.12);
  const double steps =
      static_cast<double>(shape_.targets) *
      static_cast<double>(std::max(shape_.cycles, 1)) * seq_factor;
  s.total_s = s.first_result_s + step_base_s_ * std::max(0.0, steps - 1.0) *
                                     rng.lognormal_mean(1.0, 0.08);
  const double q = 0.55 + 0.03 * static_cast<double>(shape_.cycles) +
                   0.05 * rng.normal();
  s.quality = std::clamp(q, 0.05, 0.99);
  return s;
}

CampaignResult run_service_campaign(const ServiceCampaignSpec& spec) {
  CampaignConfig cfg = im_rp_campaign(spec.seed);
  cfg.protocol.cycles = std::max(spec.shape.cycles, 1);
  cfg.protocol.sequences_per_structure =
      std::max<std::size_t>(spec.shape.sequences_per_structure, 1);
  cfg.protocol.max_retries = 2;

  std::vector<protein::DesignTarget> targets;
  targets.reserve(spec.shape.targets);
  for (std::size_t i = 0; i < std::max<std::size_t>(spec.shape.targets, 1); ++i)
    targets.push_back(protein::make_target("SVC-" + std::to_string(i),
                                           80 + 2 * i,
                                           protein::alpha_synuclein().tail(4)));
  Campaign campaign(cfg);
  return campaign.run(targets);
}

}  // namespace impress::core
