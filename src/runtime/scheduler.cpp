#include "runtime/scheduler.hpp"

#include <algorithm>
#include <vector>

namespace impress::rp {

std::string_view to_string(SchedulerPolicy p) noexcept {
  switch (p) {
    case SchedulerPolicy::kFifo: return "FIFO";
    case SchedulerPolicy::kBackfill: return "BACKFILL";
  }
  return "?";
}

void Scheduler::enqueue(TaskPtr task) {
  if (policy_ == SchedulerPolicy::kFifo) {
    queue_.push_back(std::move(task));
    return;
  }
  // Backfill: insert behind every task of >= priority. Keeping the queue
  // ordered at enqueue time is O(log n) search + O(n) insert for the one
  // new task, instead of an O(n log n) stable_sort on every scheduling
  // tick — and it guarantees FIFO fairness within a priority class is a
  // structural invariant rather than a property re-derived per tick.
  const int priority = task->description().priority;
  const auto it = std::upper_bound(
      queue_.begin(), queue_.end(), priority,
      [](int p, const TaskPtr& t) { return p > t->description().priority; });
  queue_.insert(it, std::move(task));
}

bool Scheduler::remove(const TaskPtr& task) {
  const auto it = std::find(queue_.begin(), queue_.end(), task);
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

std::deque<TaskPtr> Scheduler::drain() {
  std::deque<TaskPtr> out;
  out.swap(queue_);
  return out;
}

std::size_t Scheduler::try_schedule() {
  std::size_t started = 0;
  if (policy_ == SchedulerPolicy::kFifo) {
    while (!queue_.empty()) {
      auto alloc = pool_.allocate(queue_.front()->description().resources);
      if (!alloc) break;  // strict order: head blocks the rest
      TaskPtr task = std::move(queue_.front());
      queue_.pop_front();
      place_(std::move(task), std::move(*alloc));
      ++started;
    }
    return started;
  }

  // Backfill: the queue is already priority-ordered (see enqueue); place
  // everything that fits right now, in order.
  for (auto it = queue_.begin(); it != queue_.end();) {
    auto alloc = pool_.allocate((*it)->description().resources);
    if (!alloc) {
      ++it;
      continue;
    }
    TaskPtr task = std::move(*it);
    it = queue_.erase(it);
    place_(std::move(task), std::move(*alloc));
    ++started;
  }
  return started;
}

}  // namespace impress::rp
