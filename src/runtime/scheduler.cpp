#include "runtime/scheduler.hpp"

#include <algorithm>
#include <vector>

namespace impress::rp {

std::string_view to_string(SchedulerPolicy p) noexcept {
  switch (p) {
    case SchedulerPolicy::kFifo: return "FIFO";
    case SchedulerPolicy::kBackfill: return "BACKFILL";
  }
  return "?";
}

void Scheduler::enqueue(TaskPtr task) { queue_.push_back(std::move(task)); }

bool Scheduler::remove(const TaskPtr& task) {
  const auto it = std::find(queue_.begin(), queue_.end(), task);
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

std::size_t Scheduler::try_schedule() {
  std::size_t started = 0;
  if (policy_ == SchedulerPolicy::kFifo) {
    while (!queue_.empty()) {
      auto alloc = pool_.allocate(queue_.front()->description().resources);
      if (!alloc) break;  // strict order: head blocks the rest
      TaskPtr task = std::move(queue_.front());
      queue_.pop_front();
      place_(std::move(task), std::move(*alloc));
      ++started;
    }
    return started;
  }

  // Backfill: stable sort by priority (submission order preserved within a
  // priority class), then place everything that fits right now.
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const TaskPtr& a, const TaskPtr& b) {
                     return a->description().priority > b->description().priority;
                   });
  for (auto it = queue_.begin(); it != queue_.end();) {
    auto alloc = pool_.allocate((*it)->description().resources);
    if (!alloc) {
      ++it;
      continue;
    }
    TaskPtr task = std::move(*it);
    it = queue_.erase(it);
    place_(std::move(task), std::move(*alloc));
    ++started;
  }
  return started;
}

}  // namespace impress::rp
