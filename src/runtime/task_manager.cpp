#include "runtime/task_manager.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "common/string_util.hpp"

namespace impress::rp {

TaskManager::TaskManager(common::UidGenerator& uids, hpc::Profiler& profiler,
                         std::function<double()> now_fn, common::Rng rng)
    : uids_(uids), profiler_(profiler), now_(std::move(now_fn)), rng_(rng) {}

void TaskManager::add_pilot(PilotPtr pilot) {
  std::lock_guard lock(mutex_);
  pilots_.push_back(std::move(pilot));
}

void TaskManager::set_defer(DeferFn defer) {
  // Wire before the first submit: the deadline path reads defer_ unlocked.
  defer_ = std::move(defer);
}

PilotPtr TaskManager::route(const TaskDescription& td, const Pilot* exclude) {
  // Least-loaded (queued + running) among live pilots that can ever fit.
  PilotPtr best;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (const auto& p : pilots_) {
    if (p.get() == exclude) continue;
    const PilotState s = p->state();
    if (s == PilotState::kDone || s == PilotState::kFailed) continue;
    if (!p->pool().fits_ever(td.resources)) continue;
    const std::size_t load = p->queue_length() + p->running();
    if (load < best_load) {
      best_load = load;
      best = p;
    }
  }
  return best;
}

TaskPtr TaskManager::submit(TaskDescription description) {
  PilotPtr pilot;
  TaskPtr task;
  {
    std::lock_guard lock(mutex_);
    pilot = route(description);
    if (!pilot)
      throw std::runtime_error("TaskManager: no pilot can run task '" +
                               description.name + "'");
    task = std::make_shared<Task>(uids_.next("task"), std::move(description));
    task->set_state(TaskState::kSubmitted, now_());
    profiler_.record(now_(), task->uid(), hpc::events::kSubmit,
                     task->description().name);
    task_pilot_[task->uid()] = pilot;
    ++outstanding_;
    ++submitted_;
  }
  if (obs_ != nullptr) {
    obs_->metrics().tasks_submitted->inc();
    obs_->metrics().tasks_outstanding->add(1.0);
    if (obs::Tracer& tracer = obs_->tracer(); tracer.enabled()) {
      // The task span covers submit -> terminal across every attempt,
      // nested under the submitting stage (TaskDescription::trace_parent).
      const obs::SpanId span =
          tracer.begin(now_(), task->description().name,
                       obs::categories::kTask, task->description().trace_parent);
      tracer.attr(span, "uid", task->uid());
      task->set_trace_span(span);
    }
  }
  IMPRESS_LOG(kDebug, "tmgr") << "submit " << task->uid() << " ('"
                              << task->description().name << "') -> "
                              << pilot->uid();
  dispatch(task, std::move(pilot));
  return task;
}

std::vector<TaskPtr> TaskManager::submit(std::vector<TaskDescription> descriptions) {
  std::vector<TaskPtr> out;
  out.reserve(descriptions.size());
  for (auto& d : descriptions) out.push_back(submit(std::move(d)));
  return out;
}

void TaskManager::dispatch(const TaskPtr& task, PilotPtr pilot) {
  for (;;) {
    if (pilot->try_enqueue(task)) {
      arm_deadline(task);
      return;
    }
    // The pilot died between routing and enqueueing: re-route around it.
    PilotPtr next;
    {
      std::lock_guard lock(mutex_);
      next = route(task->description(), pilot.get());
      if (next) task_pilot_[task->uid()] = next;
    }
    if (!next) {
      fail_unroutable(task, "pilot " + pilot->uid() + " died; no alternative");
      return;
    }
    profiler_.record(now_(), task->uid(), hpc::events::kRequeue, next->uid());
    pilot = std::move(next);
  }
}

void TaskManager::arm_deadline(const TaskPtr& task) {
  const double timeout = task->description().retry.attempt_timeout_s;
  if (timeout <= 0.0 || !defer_) return;
  const int attempt = task->attempt();
  defer_(timeout, [this, task, attempt, timeout] {
    // Fires only if the same attempt is still live; a completed or retried
    // task keeps its new attempt untouched.
    if (task->attempt() != attempt || is_terminal(task->state())) return;
    PilotPtr pilot;
    {
      std::lock_guard lock(mutex_);
      if (backoff_.find(task->uid()) != backoff_.end()) return;
      const auto it = task_pilot_.find(task->uid());
      if (it == task_pilot_.end()) return;
      pilot = it->second;
      ++timed_out_;
    }
    if (obs_ != nullptr) obs_->metrics().tasks_timed_out->inc();
    profiler_.record(now_(), task->uid(), hpc::events::kTimeout,
                     "attempt " + std::to_string(attempt));
    IMPRESS_LOG(kWarn, "tmgr") << task->uid() << " attempt " << attempt
                               << " exceeded deadline of " << timeout << "s";
    task->set_evict_reason(EvictReason::kTimeout);
    // The eviction surfaces as a kCancelled completion; on_terminal
    // translates it back into a failed attempt so the retry policy runs.
    if (!pilot->cancel(task)) task->set_evict_reason(EvictReason::kNone);
  });
}

std::size_t TaskManager::add_callback(Callback cb) {
  std::lock_guard lock(mutex_);
  callbacks_.push_back(std::move(cb));
  return callbacks_.size() - 1;
}

void TaskManager::remove_callback(std::size_t id) {
  std::unique_lock lock(mutex_);
  if (id < callbacks_.size()) callbacks_[id] = nullptr;
  // A finalize pass snapshots callbacks_ under the mutex, so once every
  // in-flight pass drains, no thread can still invoke the removed slot.
  idle_cv_.wait(lock, [&] { return callbacks_in_flight_ == 0; });
}

bool TaskManager::cancel(const TaskPtr& task) {
  PilotPtr pilot;
  bool in_backoff = false;
  {
    // State check and map lookups are atomic with respect to on_terminal:
    // both run under mutex_, so a task cannot be observed live here while
    // its terminal bookkeeping is mid-flight (the old TOCTOU).
    std::lock_guard lock(mutex_);
    if (is_terminal(task->state())) return false;
    if (backoff_.erase(task->uid()) > 0) {
      in_backoff = true;
      task->set_state(TaskState::kCancelled, now_());
      profiler_.record(now_(), task->uid(), hpc::events::kCancelled,
                       "during retry backoff");
    } else {
      const auto it = task_pilot_.find(task->uid());
      if (it == task_pilot_.end()) return false;
      pilot = it->second;
    }
  }
  if (in_backoff) {
    finalize(task);
    return true;
  }
  return pilot->cancel(task);
}

std::size_t TaskManager::outstanding() const {
  std::lock_guard lock(mutex_);
  return outstanding_;
}

std::size_t TaskManager::submitted() const {
  std::lock_guard lock(mutex_);
  return submitted_;
}

std::size_t TaskManager::done() const {
  std::lock_guard lock(mutex_);
  return done_;
}

std::size_t TaskManager::failed() const {
  std::lock_guard lock(mutex_);
  return failed_;
}

std::size_t TaskManager::cancelled() const {
  std::lock_guard lock(mutex_);
  return cancelled_;
}

std::size_t TaskManager::retried() const {
  std::lock_guard lock(mutex_);
  return retried_;
}

std::size_t TaskManager::timed_out() const {
  std::lock_guard lock(mutex_);
  return timed_out_;
}

std::size_t TaskManager::requeued() const {
  std::lock_guard lock(mutex_);
  return requeued_;
}

void TaskManager::wait_all() {
  std::unique_lock lock(mutex_);
  // Both conditions matter: outstanding_ hits zero *before* the terminal
  // callbacks of the last task run, and a callback may submit follow-on
  // work. callbacks_in_flight_ bridges that window.
  idle_cv_.wait(lock,
                [&] { return outstanding_ == 0 && callbacks_in_flight_ == 0; });
}

CompletionFn TaskManager::terminal_handler() {
  return [this](const TaskPtr& task) { on_terminal(task); };
}

RequeueFn TaskManager::requeue_handler() {
  return [this](const TaskPtr& task) { requeue(task); };
}

void TaskManager::on_terminal(const TaskPtr& task) {
  // A forcible eviction (deadline, pilot failure) completes as kCancelled;
  // from the retry policy's point of view it is a failed attempt.
  const EvictReason reason = task->take_evict_reason();
  if (reason != EvictReason::kNone && task->state() == TaskState::kCancelled) {
    task->set_error(reason == EvictReason::kTimeout
                        ? "attempt deadline exceeded"
                        : "pilot failed during execution");
    task->set_state(TaskState::kFailed, now_());
    profiler_.record(now_(), task->uid(), hpc::events::kFailed,
                     reason == EvictReason::kTimeout ? "deadline"
                                                     : "pilot-failure");
  }

  if (task->state() == TaskState::kFailed) {
    const RetryPolicy& policy = task->description().retry;
    std::unique_lock lock(mutex_);
    const bool retryable = task->attempt() < policy.max_attempts &&
                           route(task->description()) != nullptr;
    if (retryable) {
      PilotPtr prev;
      const auto it = task_pilot_.find(task->uid());
      if (it != task_pilot_.end()) {
        prev = it->second;
        task_pilot_.erase(it);
      }
      ++retried_;
      backoff_[task->uid()] = std::move(prev);
      // The task is not terminal while it waits out the backoff — it is
      // still outstanding and cancellable. The error text of the failed
      // attempt is kept for observability until begin_retry clears it.
      task->set_state(TaskState::kSubmitted, now_());
      common::Rng jitter =
          rng_.fork(common::stable_hash(task->uid()) +
                    static_cast<std::uint64_t>(task->attempt()));
      const double delay = policy.backoff_delay(task->attempt() + 1, jitter);
      profiler_.record(now_(), task->uid(), hpc::events::kRetry,
                       "attempt " + std::to_string(task->attempt()) +
                           " failed; next in " + std::to_string(delay) + "s");
      lock.unlock();
      if (obs_ != nullptr) obs_->metrics().tasks_retried->inc();
      IMPRESS_LOG(kInfo, "tmgr")
          << task->uid() << " attempt " << task->attempt() << "/"
          << policy.max_attempts << " failed (" << task->error()
          << "); retrying in " << delay << "s";
      if (defer_)
        defer_(delay, [this, task] { resubmit(task); });
      else
        resubmit(task);
      return;  // still outstanding; wait_all keeps blocking
    }
  }
  finalize(task);
}

void TaskManager::resubmit(const TaskPtr& task) {
  PilotPtr pilot;
  {
    std::lock_guard lock(mutex_);
    const auto it = backoff_.find(task->uid());
    if (it == backoff_.end()) return;  // cancelled during the backoff
    const PilotPtr prev = it->second;
    backoff_.erase(it);
    // Prefer a different pilot than the one the attempt failed on; fall
    // back to it only when nothing else fits.
    pilot = route(task->description(), prev.get());
    if (!pilot) pilot = route(task->description());
    if (pilot) {
      task->begin_retry(now_());
      task_pilot_[task->uid()] = pilot;
      profiler_.record(now_(), task->uid(), hpc::events::kSubmit,
                       "attempt " + std::to_string(task->attempt()));
    }
  }
  if (!pilot) {
    fail_unroutable(task, "no live pilot for retry");
    return;
  }
  IMPRESS_LOG(kDebug, "tmgr") << "resubmit " << task->uid() << " attempt "
                              << task->attempt() << " -> " << pilot->uid();
  dispatch(task, std::move(pilot));
}

void TaskManager::requeue(const TaskPtr& task) {
  PilotPtr pilot;
  {
    std::lock_guard lock(mutex_);
    if (is_terminal(task->state())) return;
    pilot = route(task->description());
    if (pilot) {
      ++requeued_;
      task_pilot_[task->uid()] = pilot;
    }
  }
  if (!pilot) {
    fail_unroutable(task, "pilot failed; no alternative fits");
    return;
  }
  if (obs_ != nullptr) obs_->metrics().tasks_requeued->inc();
  IMPRESS_LOG(kInfo, "tmgr") << "requeue " << task->uid() << " -> "
                             << pilot->uid();
  dispatch(task, std::move(pilot));
}

void TaskManager::fail_unroutable(const TaskPtr& task, const std::string& why) {
  task->set_error(why);
  task->set_state(TaskState::kFailed, now_());
  profiler_.record(now_(), task->uid(), hpc::events::kFailed, why);
  finalize(task);
}

void TaskManager::finalize(const TaskPtr& task) {
  if (obs_ != nullptr) {
    const TaskState state = task->state();
    switch (state) {
      case TaskState::kDone: obs_->metrics().tasks_done->inc(); break;
      case TaskState::kFailed: obs_->metrics().tasks_failed->inc(); break;
      case TaskState::kCancelled:
        obs_->metrics().tasks_cancelled->inc();
        break;
      default: break;
    }
    obs_->metrics().tasks_outstanding->sub(1.0);
    if (obs::Tracer& tracer = obs_->tracer();
        tracer.enabled() && task->trace_span() != 0) {
      tracer.attr(task->trace_span(), "outcome",
                  std::string(to_string(state)));
      if (task->attempt() > 1)
        tracer.attr(task->trace_span(), "attempts",
                    std::to_string(task->attempt()));
      tracer.end(task->trace_span(), now_());
    }
  }
  std::vector<Callback> callbacks;
  {
    std::lock_guard lock(mutex_);
    task_pilot_.erase(task->uid());
    backoff_.erase(task->uid());
    if (outstanding_ > 0) --outstanding_;
    switch (task->state()) {
      case TaskState::kDone: ++done_; break;
      case TaskState::kFailed: ++failed_; break;
      case TaskState::kCancelled: ++cancelled_; break;
      default: break;
    }
    callbacks = callbacks_;  // snapshot: callbacks may submit more tasks
    // Count the callback pass *before* releasing the lock: wait_all must
    // not observe outstanding_ == 0 while a callback that could submit
    // follow-on work is still pending — the old early-return race.
    ++callbacks_in_flight_;
  }
  for (const auto& cb : callbacks)
    if (cb) cb(task);
  {
    std::lock_guard lock(mutex_);
    --callbacks_in_flight_;
  }
  idle_cv_.notify_all();
}

}  // namespace impress::rp
