#include "runtime/task_manager.hpp"

#include <limits>
#include <stdexcept>

#include "common/logging.hpp"

namespace impress::rp {

TaskManager::TaskManager(common::UidGenerator& uids, hpc::Profiler& profiler,
                         std::function<double()> now_fn)
    : uids_(uids), profiler_(profiler), now_(std::move(now_fn)) {}

void TaskManager::add_pilot(PilotPtr pilot) {
  std::lock_guard lock(mutex_);
  pilots_.push_back(std::move(pilot));
}

PilotPtr TaskManager::route(const TaskDescription& td) {
  // Least-loaded (queued + running) among pilots that can ever fit.
  PilotPtr best;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (const auto& p : pilots_) {
    if (p->state() == PilotState::kDone) continue;
    if (!p->pool().fits_ever(td.resources)) continue;
    const std::size_t load = p->queue_length() + p->running();
    if (load < best_load) {
      best_load = load;
      best = p;
    }
  }
  return best;
}

TaskPtr TaskManager::submit(TaskDescription description) {
  PilotPtr pilot;
  TaskPtr task;
  {
    std::lock_guard lock(mutex_);
    pilot = route(description);
    if (!pilot)
      throw std::runtime_error("TaskManager: no pilot can run task '" +
                               description.name + "'");
    task = std::make_shared<Task>(uids_.next("task"), std::move(description));
    task->set_state(TaskState::kSubmitted, now_());
    profiler_.record(now_(), task->uid(), hpc::events::kSubmit,
                     task->description().name);
    task_pilot_[task->uid()] = pilot;
    ++outstanding_;
    ++submitted_;
  }
  IMPRESS_LOG(kDebug, "tmgr") << "submit " << task->uid() << " ('"
                              << task->description().name << "') -> "
                              << pilot->uid();
  pilot->enqueue(task);
  return task;
}

std::vector<TaskPtr> TaskManager::submit(std::vector<TaskDescription> descriptions) {
  std::vector<TaskPtr> out;
  out.reserve(descriptions.size());
  for (auto& d : descriptions) out.push_back(submit(std::move(d)));
  return out;
}

std::size_t TaskManager::add_callback(Callback cb) {
  std::lock_guard lock(mutex_);
  callbacks_.push_back(std::move(cb));
  return callbacks_.size() - 1;
}

bool TaskManager::cancel(const TaskPtr& task) {
  if (is_terminal(task->state())) return false;
  PilotPtr pilot;
  {
    std::lock_guard lock(mutex_);
    const auto it = task_pilot_.find(task->uid());
    if (it == task_pilot_.end()) return false;
    pilot = it->second;
  }
  return pilot->cancel(task);
}

std::size_t TaskManager::outstanding() const {
  std::lock_guard lock(mutex_);
  return outstanding_;
}

std::size_t TaskManager::submitted() const {
  std::lock_guard lock(mutex_);
  return submitted_;
}

std::size_t TaskManager::done() const {
  std::lock_guard lock(mutex_);
  return done_;
}

std::size_t TaskManager::failed() const {
  std::lock_guard lock(mutex_);
  return failed_;
}

std::size_t TaskManager::cancelled() const {
  std::lock_guard lock(mutex_);
  return cancelled_;
}

void TaskManager::wait_all() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

CompletionFn TaskManager::terminal_handler() {
  return [this](const TaskPtr& task) { on_terminal(task); };
}

void TaskManager::on_terminal(const TaskPtr& task) {
  std::vector<Callback> callbacks;
  {
    std::lock_guard lock(mutex_);
    task_pilot_.erase(task->uid());
    if (outstanding_ > 0) --outstanding_;
    switch (task->state()) {
      case TaskState::kDone: ++done_; break;
      case TaskState::kFailed: ++failed_; break;
      case TaskState::kCancelled: ++cancelled_; break;
      default: break;
    }
    callbacks = callbacks_;  // snapshot: callbacks may submit more tasks
  }
  // Run callbacks before waking waiters: a callback that submits
  // follow-on work bumps `outstanding_` back up, so wait_all() does not
  // return in the middle of an adaptive campaign.
  for (const auto& cb : callbacks) cb(task);
  idle_cv_.notify_all();
}

}  // namespace impress::rp
