// Session: top-level owner of one runtime instance (RP's Session analog).
//
// A session fixes the execution mode (simulated virtual clock vs real
// worker threads), the master seed, and owns the engine, profiler, uid
// generator, pilots, executors and the TaskManager. Everything an IMPRESS
// campaign needs hangs off a Session, and two Sessions in one process are
// fully independent — the Table-I bench runs the CONT-V and IM-RP
// campaigns back to back in separate sessions.

#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/lockdep.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/uid.hpp"
#include "hpc/profiler.hpp"
#include "obs/obs.hpp"
#include "runtime/fault.hpp"
#include "runtime/pilot.hpp"
#include "runtime/task_manager.hpp"
#include "sim/engine.hpp"

namespace impress::rp {

enum class ExecutionMode {
  kSimulated,  ///< discrete-event virtual clock; deterministic, instant
  kThreaded,   ///< real worker threads; wall delays scaled by time_scale
};

struct SessionConfig {
  ExecutionMode mode = ExecutionMode::kSimulated;
  std::uint64_t seed = 42;
  /// Simulated mode: which event-queue structure backs the engine. Any
  /// choice replays bit-identically (the (time, seq) determinism
  /// contract); calendar wins on large pending sets — see
  /// docs/performance.md and BENCH_sim.json.
  sim::SchedulerKind scheduler = sim::SchedulerKind::kHeap;
  /// Threaded mode: wall seconds per simulated second (1e-4 => a one-hour
  /// task sleeps 0.36 s).
  double time_scale = 1e-4;
  /// Threaded mode: executor pool width; must be >= the maximum number of
  /// concurrently running tasks or placements will serialize behind
  /// sleeping workers.
  std::size_t worker_threads = 16;
  /// Seeded fault plan: task failures / slowdowns drawn per (task, attempt)
  /// plus scheduled pilot outages. Empty by default (no faults).
  FaultConfig faults;
  /// Observability (src/obs): span tracing and the metrics registry. Both
  /// default off — a disabled axis costs one branch per call site and, by
  /// the determinism contract, enabling either never perturbs results.
  bool enable_tracing = false;
  bool enable_metrics = false;
};

/// One pilot's checkpointed runtime state, applied by the restoring
/// submit_pilot overload (see docs/persistence.md).
struct PilotRestore {
  std::string uid;  ///< checkpointed uid; the generator counter is restored
                    ///< separately, so next() is NOT consulted
  bool failed = false;  ///< pilot was FAILED at the cut
  common::Rng::State executor_rng;  ///< duration-jitter stream position
  std::vector<hpc::UsageInterval> intervals;  ///< recorder contents
};

/// Runtime-layer checkpoint payload, applied at construction: clock warp,
/// profiler/trace/metrics preloads, uid counters and TaskManager totals.
/// Checkpoints are only cut at quiesce (nothing in flight), so no task or
/// scheduler state appears here.
struct SessionRestore {
  double now = 0.0;  ///< session clock at the cut (simulated seconds)
  std::vector<hpc::ProfileEvent> profiler_events;
  std::vector<obs::SpanRecord> trace;
  std::uint64_t trace_next_seq = 1;
  obs::MetricsSnapshot metrics;
  std::map<std::string, std::uint64_t> uid_counters;
  TaskManager::Counters task_counters;
};

class Session {
 public:
  explicit Session(SessionConfig config = {});
  /// Construct a session resuming from a checkpoint cut at restore.now.
  Session(SessionConfig config, const SessionRestore& restore);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Create a pilot, wire its executor, and schedule its bootstrap
  /// completion. The pilot becomes ACTIVE after description.bootstrap_s.
  PilotPtr submit_pilot(const PilotDescription& description);

  /// Checkpoint-restoring variant: rebuilds the pilot under its
  /// checkpointed uid, already past bootstrap (no bootstrap events or
  /// activation timer), with its recorder intervals and executor rng
  /// stream restored. Outages that already fired before the cut are not
  /// re-armed.
  PilotPtr submit_pilot(const PilotDescription& description,
                        const PilotRestore& restore);

  [[nodiscard]] TaskManager& task_manager() noexcept { return *tmgr_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] hpc::Profiler& profiler() noexcept { return profiler_; }
  [[nodiscard]] obs::Observability& observability() noexcept { return obs_; }
  [[nodiscard]] const obs::Observability& observability() const noexcept {
    return obs_;
  }
  [[nodiscard]] common::UidGenerator& uids() noexcept { return uids_; }
  [[nodiscard]] const SessionConfig& config() const noexcept { return config_; }
  [[nodiscard]] ExecutionMode mode() const noexcept { return config_.mode; }
  [[nodiscard]] const std::vector<PilotPtr>& pilots() const noexcept {
    return pilots_;
  }

  /// Aggregate queue-depth/saturation sample over every pilot
  /// (runtime/load.hpp) — the congestion signal the service layer's
  /// backpressure controller consumes.
  [[nodiscard]] LoadSnapshot load_snapshot() const {
    LoadSnapshot s;
    for (const auto& p : pilots_) s += p->load_snapshot();
    return s;
  }

  /// Session clock in simulated seconds (virtual clock or scaled wall).
  [[nodiscard]] double now() const;

  /// Per-pilot checkpoint payloads (uid, failed flag, executor rng stream
  /// position, recorder intervals), in submission order. Only meaningful
  /// at quiesce — no task outstanding.
  [[nodiscard]] std::vector<PilotRestore> checkpoint_pilots() const;

  /// Independent child generator for a named component.
  [[nodiscard]] common::Rng fork_rng(std::string_view tag) const;

  /// Run until the workload completes: simulated mode drains the event
  /// loop; threaded mode blocks until no task is outstanding.
  void run();

  /// Schedule a callback `delay_s` simulated seconds from now (engine
  /// event or detached timer depending on mode).
  void call_after(double delay_s, std::function<void()> fn);

  /// Mark all pilots done. Called by the destructor.
  void close();

 private:
  /// Executor construction + fault/obs wiring shared by both
  /// submit_pilot overloads.
  std::unique_ptr<Executor> make_executor(const PilotPtr& pilot,
                                          const PilotDescription& description,
                                          common::Rng exec_rng);
  /// Registration shared by both submit_pilot overloads (executor/pilot
  /// bookkeeping + TaskManager routing).
  void register_pilot(PilotPtr pilot, std::unique_ptr<Executor> exec);
  /// Arm scheduled outages for the pilot at `index`, skipping any at or
  /// before `horizon_s` (already fired before a checkpoint cut).
  void arm_outages(const PilotPtr& pilot, std::size_t index,
                   double horizon_s);

  SessionConfig config_;
  sim::Engine engine_;  ///< constructed with config_.scheduler
  hpc::Profiler profiler_;
  // Declared before the task manager / executors / pilots that hold a
  // pointer to it (and therefore destroyed after them).
  obs::Observability obs_;
  common::UidGenerator uids_;
  common::Rng rng_;
  std::chrono::steady_clock::time_point wall_start_;
  /// Simulated seconds already elapsed before this process started
  /// (checkpoint restore); added to the wall clock in threaded mode. The
  /// simulated engine warps its own clock instead.
  double clock_offset_ = 0.0;
  // Declared before the executors that hold a pointer to it.
  std::optional<FaultInjector> faults_;
  std::unique_ptr<TaskManager> tmgr_;
  std::vector<PilotPtr> pilots_;
  std::vector<std::unique_ptr<Executor>> executors_;
  // Declared after everything worker threads touch: destroying the pool
  // joins the workers, so the TaskManager, pilots and executors are
  // guaranteed to outlive every in-flight completion callback.
  std::optional<common::ThreadPool> pool_;
  /// A leaf lock in the canonical order: call_after only appends under
  /// it and never calls out.
  common::TrackedMutex timer_mutex_{"Session::timer_mutex_"};  // guards timers_
  std::vector<std::thread> timers_;
};

}  // namespace impress::rp
