#include "runtime/fault.hpp"

namespace impress::rp {

FaultInjector::AttemptFault FaultInjector::draw_attempt(
    std::string_view task_uid, int attempt) const noexcept {
  AttemptFault fate;
  if (!enabled()) return fate;
  // Key the child generator on (uid, attempt) so a retried attempt gets an
  // independent draw — otherwise a 100%-deterministic "unlucky" task would
  // fail every retry and max_attempts could never help.
  common::Rng draw = rng_.fork(common::splitmix64(
      common::stable_hash(task_uid) + 0x9e3779b97f4a7c15ULL *
                                          static_cast<std::uint64_t>(attempt)));
  if (draw.chance(config_.task_failure_rate)) {
    fate.fail = true;
    // Crash somewhere in the middle of the run, never exactly at the end:
    // a crashed attempt must be distinguishable from a completed one.
    fate.fail_fraction = draw.uniform(0.05, 0.95);
  }
  if (draw.chance(config_.slow_task_rate) && config_.slow_factor > 1.0)
    fate.slow_factor = config_.slow_factor;
  return fate;
}

}  // namespace impress::rp
