// Pilot: a placeholder job that owns a slice of machine resources and
// runs tasks inside it without further batch-system interaction — the
// central abstraction of RADICAL-Pilot, reimplemented here.
//
// Lifecycle: LAUNCHING --(bootstrap overhead)--> ACTIVE --> DONE, with a
// FAILED branch from any live state: a pilot that dies (node outage,
// injected fault) drains its queued tasks back to the TaskManager for
// re-routing and evicts its executing tasks so their attempts can be
// retried elsewhere, instead of stranding work.
// While ACTIVE, the pilot's agent scheduler places queued tasks onto the
// pilot's ResourcePool and hands them to the executor; completions release
// resources and immediately re-schedule, which is what produces the
// "offload new pipelines to idle resources" behaviour of IM-RP.

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lockdep.hpp"
#include "hpc/node.hpp"
#include "hpc/profiler.hpp"
#include "hpc/resource_pool.hpp"
#include "hpc/utilization.hpp"
#include "runtime/executor.hpp"
#include "runtime/load.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"

namespace impress::rp {

enum class PilotState { kLaunching, kActive, kDone, kFailed };

[[nodiscard]] std::string_view to_string(PilotState s) noexcept;

/// Invoked for each task a failing pilot hands back for re-routing.
using RequeueFn = std::function<void(const TaskPtr&)>;

struct PilotDescription {
  std::vector<hpc::NodeSpec> nodes{hpc::amarel_node()};
  double bootstrap_s = 0.0;  ///< agent start-up ("Bootstrap" in Fig 5)
  ExecOverheadModel exec_overhead;  ///< per-task sandbox/launch-script cost
  SchedulerPolicy policy = SchedulerPolicy::kBackfill;
};

class Pilot {
 public:
  /// `now_fn` reads the session clock; `on_task_terminal` reports back to
  /// the TaskManager after resources are released. A `restored` pilot is
  /// being rebuilt from a checkpoint: its bootstrap_start event already
  /// lives in the preloaded profiler, so the constructor must not record a
  /// second one (the caller then sets the checkpointed state via
  /// restore_state()).
  Pilot(std::string uid, PilotDescription description, hpc::Profiler& profiler,
        std::function<double()> now_fn, bool restored = false);

  /// Checkpoint restore: force the lifecycle state without emitting
  /// profiler events or draining/evicting anything.
  void restore_state(PilotState s) noexcept { state_.store(s); }

  Pilot(const Pilot&) = delete;
  Pilot& operator=(const Pilot&) = delete;

  [[nodiscard]] const std::string& uid() const noexcept { return uid_; }
  [[nodiscard]] const PilotDescription& description() const noexcept {
    return description_;
  }
  [[nodiscard]] PilotState state() const noexcept { return state_.load(); }
  [[nodiscard]] hpc::ResourcePool& pool() noexcept { return pool_; }
  [[nodiscard]] const hpc::ResourcePool& pool() const noexcept { return pool_; }
  [[nodiscard]] hpc::UtilizationRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const hpc::UtilizationRecorder& recorder() const noexcept {
    return recorder_;
  }

  /// Wire the executor (owned by the session, depends on this pilot's
  /// recorder), the terminal-task callback, and optionally the requeue
  /// callback used when this pilot fails. Must be called before any
  /// enqueue().
  void attach(Executor& executor, CompletionFn on_task_terminal,
              RequeueFn on_task_requeue = {});

  /// Wire the session's observability bundle (scheduler-decision
  /// counters). Pass nullptr (the default) to leave the pilot
  /// uninstrumented. Must outlive the pilot.
  void set_observability(obs::Observability* obs) noexcept { obs_ = obs; }

  /// Mark bootstrap finished; queued tasks start flowing.
  void activate();

  /// Accept a task into the agent scheduler queue. Throws std::logic_error
  /// if the pilot is no longer accepting work.
  void enqueue(TaskPtr task);

  /// Like enqueue(), but returns false instead of throwing when the pilot
  /// is DONE or FAILED — the TaskManager uses this to re-route around a
  /// pilot that died between routing and enqueueing.
  [[nodiscard]] bool try_enqueue(TaskPtr task);

  /// Remove a still-queued task; returns false if it already left the
  /// queue (executing or terminal).
  bool dequeue(const TaskPtr& task);

  /// Cancel a task owned by this pilot: removed from the queue if still
  /// waiting, otherwise forwarded to the executor. Returns false if the
  /// task is not under this pilot's control anymore.
  bool cancel(const TaskPtr& task);

  /// Number of tasks waiting in the agent queue.
  [[nodiscard]] std::size_t queue_length() const;

  /// Tasks currently holding an allocation.
  [[nodiscard]] std::size_t running() const noexcept {
    return running_.load();
  }

  /// Queue-depth/saturation sample for the service layer's backpressure
  /// controller (runtime/load.hpp).
  [[nodiscard]] LoadSnapshot load_snapshot() const;

  /// Mark the pilot done (no new placements; running tasks finish).
  void finish();

  /// Simulate a pilot/node outage: the pilot enters FAILED, queued tasks
  /// are handed to the requeue callback (or failed terminally if none is
  /// wired), and executing tasks are evicted so the TaskManager can retry
  /// them on another pilot.
  void fail();

  /// Spot capacity returned: a FAILED pilot re-enters ACTIVE with its
  /// (empty) queue and full resource pool, and the TaskManager may route
  /// to it again. No-op unless the pilot is FAILED — a DONE pilot stays
  /// done. Used by the session's FaultConfig::spot_reclaims schedule.
  void reactivate();

 private:
  void place(TaskPtr task, hpc::Allocation alloc);
  void on_complete(const TaskPtr& task);
  /// try_schedule + scheduler-decision metrics (ticks/placements).
  void run_scheduler();

  std::string uid_;
  PilotDescription description_;
  hpc::Profiler& profiler_;
  std::function<double()> now_;
  hpc::ResourcePool pool_;
  hpc::UtilizationRecorder recorder_;
  Scheduler scheduler_;
  Executor* executor_ = nullptr;
  obs::Observability* obs_ = nullptr;
  CompletionFn on_task_terminal_;
  RequeueFn on_task_requeue_;
  // Atomic: read lock-free by TaskManager::route while activate()/finish()
  // write it under mutex_ from timer/worker threads.
  std::atomic<PilotState> state_{PilotState::kLaunching};
  // Atomic for the same reason as state_: routing reads it lock-free.
  std::atomic<std::size_t> running_{0};
  /// Guards executing_ and scheduler_. Recursive: enqueue -> run_scheduler
  /// -> place re-enters under the same lock. Second tier of the canonical
  /// order: taken under TaskManager::mutex_ (route), holds Executor /
  /// ThreadPool / ResourcePool locks below it, and is always dropped
  /// before the terminal/requeue callbacks re-enter the TaskManager.
  mutable common::TrackedRecursiveMutex mutex_{"Pilot::mutex_"};
  // Tasks currently holding an allocation, by uid: fail() must evict them
  // without the executor exposing its in-flight bookkeeping.
  std::unordered_map<std::string, TaskPtr> executing_;
};

using PilotPtr = std::shared_ptr<Pilot>;

}  // namespace impress::rp
