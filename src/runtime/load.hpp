// Queue-depth / saturation signals published by the pilot runtime for the
// service layer's admission control (src/service): the PCC-style
// backpressure controller treats these as its congestion observations —
// when pilots saturate, queued work piles up here first, long before
// tasks start failing.

#pragma once

#include <cstddef>

namespace impress::rp {

/// Point-in-time load of one pilot (or an aggregate over a session's
/// pilots). Reads are racy-by-design instantaneous samples, exact once
/// the runtime has quiesced — the same contract as the metrics layer.
struct LoadSnapshot {
  std::size_t queued = 0;    ///< tasks waiting in agent queues
  std::size_t running = 0;   ///< tasks currently holding an allocation
  std::size_t capacity = 0;  ///< total cores (crude concurrency ceiling)

  /// Dimensionless backlog: queued work per unit of capacity. 0 on an
  /// empty or capacity-less snapshot; grows without bound as the front
  /// door outruns the machine.
  [[nodiscard]] double pressure() const noexcept {
    return capacity == 0 ? 0.0
                         : static_cast<double>(queued) /
                               static_cast<double>(capacity);
  }

  LoadSnapshot& operator+=(const LoadSnapshot& o) noexcept {
    queued += o.queued;
    running += o.running;
    capacity += o.capacity;
    return *this;
  }
};

}  // namespace impress::rp
