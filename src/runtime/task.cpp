#include "runtime/task.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace impress::rp {

std::string_view to_string(TaskState s) noexcept {
  switch (s) {
    case TaskState::kNew: return "NEW";
    case TaskState::kSubmitted: return "SUBMITTED";
    case TaskState::kScheduling: return "SCHEDULING";
    case TaskState::kExecuting: return "EXECUTING";
    case TaskState::kDone: return "DONE";
    case TaskState::kFailed: return "FAILED";
    case TaskState::kCancelled: return "CANCELLED";
  }
  return "?";
}

bool is_terminal(TaskState s) noexcept {
  return s == TaskState::kDone || s == TaskState::kFailed ||
         s == TaskState::kCancelled;
}

double RetryPolicy::backoff_delay(int next_attempt,
                                  common::Rng& rng) const noexcept {
  if (backoff_initial_s <= 0.0) return 0.0;
  double delay = backoff_initial_s;
  for (int a = 2; a < next_attempt; ++a) delay *= backoff_multiplier;
  if (backoff_jitter > 0.0)
    delay *= rng.uniform(1.0 - backoff_jitter, 1.0 + backoff_jitter);
  return delay < 0.0 ? 0.0 : delay;
}

void TaskDescription::validate_and_normalize() {
  if (resources.cores == 0 && resources.gpus == 0)
    throw std::invalid_argument("task '" + name + "': requests no resources");
  if (resources.gpu_slice_milli == 0 ||
      resources.gpu_slice_milli > hpc::kGpuSliceFull)
    throw std::invalid_argument("task '" + name +
                                "': gpu_slice_milli outside (0, 1000]");
  if (resources.gpu_mem_gb < 0.0 || resources.mem_gb < 0.0)
    throw std::invalid_argument("task '" + name + "': negative memory request");
  if (retry.max_attempts < 1)
    throw std::invalid_argument("task '" + name + "': max_attempts < 1");
  if (retry.backoff_initial_s < 0.0 || retry.attempt_timeout_s < 0.0)
    throw std::invalid_argument("task '" + name + "': negative retry timing");
  if (phases.empty())
    phases.push_back(TaskPhase{.name = "run",
                               .duration_s = 0.0,
                               .jitter_sigma = 0.0,
                               .cores = resources.cores,
                               .gpus = resources.gpus,
                               .cpu_intensity = 1.0,
                               .gpu_intensity = 1.0});
  for (auto& p : phases) {
    if (p.duration_s < 0.0)
      throw std::invalid_argument("task '" + name + "': negative duration");
    if (p.cores > resources.cores || p.gpus > resources.gpus)
      throw std::invalid_argument("task '" + name +
                                  "': phase uses more than the allocation");
    if (p.cpu_intensity < 0.0 || p.cpu_intensity > 1.0 ||
        p.gpu_intensity < 0.0 || p.gpu_intensity > 1.0)
      throw std::invalid_argument("task '" + name +
                                  "': intensity outside [0,1]");
  }
}

double TaskDescription::total_duration_s() const noexcept {
  double t = 0.0;
  for (const auto& p : phases) t += p.duration_s;
  return t;
}

TaskDescription make_simple_task(std::string name, std::uint32_t cores,
                                 std::uint32_t gpus, double duration_s,
                                 WorkFn work) {
  TaskDescription td;
  td.name = std::move(name);
  td.resources = hpc::ResourceRequest{.cores = cores, .gpus = gpus, .mem_gb = 0.0};
  td.phases.push_back(TaskPhase{.name = "run",
                                .duration_s = duration_s,
                                .jitter_sigma = 0.0,
                                .cores = cores,
                                .gpus = gpus,
                                .cpu_intensity = 1.0,
                                .gpu_intensity = 1.0});
  td.work = std::move(work);
  return td;
}

Task::Task(std::string uid, TaskDescription description)
    : uid_(std::move(uid)), description_(std::move(description)) {
  description_.validate_and_normalize();
  for (auto& t : state_times_) t = std::numeric_limits<double>::quiet_NaN();
  state_times_[static_cast<int>(TaskState::kNew)] = 0.0;
}

double Task::state_time(TaskState s) const noexcept {
  return state_times_[static_cast<int>(s)];
}

void Task::set_state(TaskState s, double now) noexcept {
  state_.store(s);
  auto& slot = state_times_[static_cast<int>(s)];
  if (std::isnan(slot)) slot = now;
}

void Task::begin_retry(double now) noexcept {
  attempt_.fetch_add(1);
  evict_reason_.store(EvictReason::kNone);
  error_.clear();
  result_.reset();
  set_state(TaskState::kSubmitted, now);
}

}  // namespace impress::rp
