#include "runtime/task_graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace impress::rp {

TaskGraph::NodeId TaskGraph::add(TaskDescription description) {
  description.validate_and_normalize();
  nodes_.push_back(NodeSpec{std::move(description), {}, 0});
  return nodes_.size() - 1;
}

void TaskGraph::add_edge(NodeId before, NodeId after) {
  if (before >= nodes_.size() || after >= nodes_.size())
    throw std::out_of_range("TaskGraph::add_edge: unknown node id");
  if (before == after)
    throw std::invalid_argument("TaskGraph::add_edge: self-dependency");
  auto& deps = nodes_[before].dependents;
  if (std::find(deps.begin(), deps.end(), after) != deps.end()) return;
  deps.push_back(after);
  ++nodes_[after].indegree;
}

void TaskGraph::validate() const {
  // Kahn's algorithm: if a topological order covers every node, no cycle.
  std::vector<std::size_t> indegree(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    indegree[i] = nodes_[i].indegree;
  std::deque<NodeId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (indegree[i] == 0) ready.push_back(i);
  std::size_t visited = 0;
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    ++visited;
    for (const NodeId d : nodes_[id].dependents)
      if (--indegree[d] == 0) ready.push_back(d);
  }
  if (visited != nodes_.size())
    throw std::invalid_argument("TaskGraph: dependency cycle detected");
}

std::shared_ptr<TaskGraph::Execution> TaskGraph::run(TaskManager& tmgr) const {
  validate();
  auto exec = std::make_shared<Execution>();
  exec->nodes_.reserve(nodes_.size());
  for (const auto& spec : nodes_) {
    Execution::Node node;
    node.description = spec.description;
    node.dependents = spec.dependents;
    node.indegree = spec.indegree;
    exec->nodes_.push_back(std::move(node));
  }
  exec->remaining_ = exec->nodes_.size();

  // The callback must keep the execution alive even if the caller drops
  // its handle mid-flight.
  tmgr.add_callback([exec, &tmgr](const TaskPtr& task) {
    exec->on_terminal(task, tmgr);
  });
  exec->submit_ready(tmgr);
  return exec;
}

void TaskGraph::Execution::submit_ready(TaskManager& tmgr) {
  // Collect ready nodes under the lock, submit outside it (submission
  // can complete synchronously in degenerate setups and re-enter).
  std::vector<NodeId> ready;
  {
    std::lock_guard lock(mutex_);
    for (NodeId id = 0; id < nodes_.size(); ++id)
      if (nodes_[id].state == NodeState::kPending && nodes_[id].indegree == 0) {
        nodes_[id].state = NodeState::kSubmitted;
        ready.push_back(id);
      }
  }
  for (const NodeId id : ready) {
    TaskDescription td;
    {
      std::lock_guard lock(mutex_);
      td = nodes_[id].description;
    }
    const TaskPtr task = tmgr.submit(std::move(td));
    std::lock_guard lock(mutex_);
    nodes_[id].task = task;
    by_uid_[task->uid()] = id;
  }
}

void TaskGraph::Execution::skip_dependents(NodeId id) {
  // Called with mutex_ held. BFS over the dependent closure.
  std::deque<NodeId> queue(nodes_[id].dependents.begin(),
                           nodes_[id].dependents.end());
  while (!queue.empty()) {
    const NodeId d = queue.front();
    queue.pop_front();
    auto& node = nodes_[d];
    if (node.state != NodeState::kPending) continue;
    node.state = NodeState::kSkipped;
    --remaining_;
    queue.insert(queue.end(), node.dependents.begin(), node.dependents.end());
  }
}

void TaskGraph::Execution::on_terminal(const TaskPtr& task, TaskManager& tmgr) {
  {
    std::lock_guard lock(mutex_);
    const auto it = by_uid_.find(task->uid());
    if (it == by_uid_.end()) return;  // not one of ours
    const NodeId id = it->second;
    auto& node = nodes_[id];
    --remaining_;
    if (task->state() == TaskState::kDone) {
      node.state = NodeState::kDone;
      for (const NodeId d : node.dependents) {
        if (nodes_[d].indegree > 0) --nodes_[d].indegree;
      }
    } else {
      node.state = NodeState::kFailed;
      skip_dependents(id);
    }
  }
  submit_ready(tmgr);
}

TaskPtr TaskGraph::Execution::task(NodeId id) const {
  std::lock_guard lock(mutex_);
  return nodes_.at(id).task;
}

TaskGraph::Execution::NodeState TaskGraph::Execution::state(NodeId id) const {
  std::lock_guard lock(mutex_);
  return nodes_.at(id).state;
}

bool TaskGraph::Execution::finished() const {
  std::lock_guard lock(mutex_);
  return remaining_ == 0;
}

bool TaskGraph::Execution::failed() const {
  std::lock_guard lock(mutex_);
  for (const auto& n : nodes_)
    if (n.state == NodeState::kFailed || n.state == NodeState::kSkipped)
      return true;
  return false;
}

std::size_t TaskGraph::Execution::done_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node.state == NodeState::kDone) ++n;
  return n;
}

std::size_t TaskGraph::Execution::skipped_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node.state == NodeState::kSkipped) ++n;
  return n;
}

TaskGraph make_chain(std::vector<TaskDescription> stages) {
  TaskGraph graph;
  TaskGraph::NodeId prev = 0;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto id = graph.add(std::move(stages[i]));
    if (i > 0) graph.add_edge(prev, id);
    prev = id;
  }
  return graph;
}

}  // namespace impress::rp
