// Task model of the pilot runtime (RADICAL-Pilot analog).
//
// A task is the unit of work the IMPRESS pipelines submit: a resource
// request (cores/GPUs/memory), one or more execution *phases* with
// durations and intensities, and a work function — the "science" payload
// (surrogate ProteinMPNN / AlphaFold call) that produces the task result.
//
// Phases model applications whose resource footprint changes over their
// lifetime: AlphaFold first runs a CPU-bound MSA/feature stage for hours
// and only then a GPU-bound inference stage [ParaFold, HPCAsia'22]. The
// allocation is held for the whole task (as a real batch allocation
// would be) while per-phase intensities drive the *active* utilization
// accounting that reproduces the paper's Fig 4/5 measurements.

#pragma once

#include <any>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hpc/resource_pool.hpp"

namespace impress::rp {

enum class TaskState {
  kNew,         ///< described, not yet submitted
  kSubmitted,   ///< accepted by the TaskManager
  kScheduling,  ///< waiting in an agent scheduler queue
  kExecuting,   ///< holds an allocation (includes exec-setup time)
  kDone,
  kFailed,
  kCancelled,
};

[[nodiscard]] std::string_view to_string(TaskState s) noexcept;
[[nodiscard]] bool is_terminal(TaskState s) noexcept;

/// Why a non-terminal task was forcibly evicted from its executor. The
/// TaskManager translates the resulting kCancelled completion back into a
/// kFailed attempt so the retry policy applies.
enum class EvictReason {
  kNone,          ///< a genuine user cancel
  kTimeout,       ///< per-attempt deadline expired
  kPilotFailure,  ///< the pilot running the task died
};

/// Per-task retry policy, enforced by the TaskManager. The default is the
/// pre-fault-tolerance behaviour: one attempt, no timeout.
struct RetryPolicy {
  int max_attempts = 1;             ///< total attempts incl. the first
  double backoff_initial_s = 0.0;   ///< delay before the second attempt
  double backoff_multiplier = 2.0;  ///< exponential growth per retry
  double backoff_jitter = 0.0;      ///< +/- fraction of the delay, uniform
  double attempt_timeout_s = 0.0;   ///< per-attempt deadline; 0 = none

  /// Delay before attempt `next_attempt` (>= 2), drawn with jitter from
  /// `rng`: initial * multiplier^(next_attempt - 2), scaled by a uniform
  /// factor in [1 - jitter, 1 + jitter].
  [[nodiscard]] double backoff_delay(int next_attempt,
                                     common::Rng& rng) const noexcept;

  bool operator==(const RetryPolicy&) const = default;
};

/// One temporal slice of a task's execution.
struct TaskPhase {
  std::string name = "run";
  double duration_s = 0.0;      ///< mean duration (simulated seconds)
  double jitter_sigma = 0.0;    ///< lognormal sigma; 0 = deterministic
  std::uint32_t cores = 0;      ///< cores actively used this phase
  std::uint32_t gpus = 0;       ///< gpus actively used this phase
  double cpu_intensity = 1.0;   ///< busy fraction of the used cores [0,1]
  double gpu_intensity = 1.0;   ///< busy fraction of the used gpus [0,1]

  bool operator==(const TaskPhase&) const = default;
};

class Task;

/// Science payload. Runs exactly once when the task reaches its final
/// execution phase; the return value becomes Task::result(). Throwing
/// moves the task to kFailed with the exception text as the error.
using WorkFn = std::function<std::any(Task&)>;

struct TaskDescription {
  std::string name;                     ///< human label, e.g. "af2.NHERF3.c2"
  hpc::ResourceRequest resources;       ///< allocation held for all phases
  std::vector<TaskPhase> phases;        ///< executed in order; never empty
                                        ///< after normalize()
  WorkFn work;                          ///< may be empty (pure timing task)
  int priority = 0;                     ///< higher runs earlier (backfill)
  RetryPolicy retry;                    ///< enforced by the TaskManager
  std::map<std::string, std::string> metadata;  ///< opaque to the runtime
  /// Trace context: span id (obs::SpanId) of the enclosing stage/pipeline
  /// span; the TaskManager parents the task's span under it. 0 = root.
  std::uint64_t trace_parent = 0;

  /// Ensure at least one phase exists and phase usage fits the request.
  /// Throws std::invalid_argument on inconsistent descriptions.
  void validate_and_normalize();

  /// Sum of mean phase durations.
  [[nodiscard]] double total_duration_s() const noexcept;
};

/// Convenience builder for a single-phase task.
[[nodiscard]] TaskDescription make_simple_task(std::string name,
                                               std::uint32_t cores,
                                               std::uint32_t gpus,
                                               double duration_s,
                                               WorkFn work = {});

class Task {
 public:
  Task(std::string uid, TaskDescription description);

  [[nodiscard]] const std::string& uid() const noexcept { return uid_; }
  [[nodiscard]] const TaskDescription& description() const noexcept {
    return description_;
  }

  [[nodiscard]] TaskState state() const noexcept { return state_.load(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const std::any& result() const noexcept { return result_; }

  /// 1-based attempt number of the current (or final) execution.
  [[nodiscard]] int attempt() const noexcept { return attempt_.load(); }

  /// Timestamp (seconds) of the first entry into each state; NaN if never.
  [[nodiscard]] double state_time(TaskState s) const noexcept;

  /// The allocation while executing (empty otherwise).
  [[nodiscard]] const hpc::Allocation& allocation() const noexcept {
    return allocation_;
  }

  /// Typed access to the result; throws std::bad_any_cast on mismatch.
  template <typename T>
  [[nodiscard]] const T& result_as() const {
    return std::any_cast<const T&>(result_);
  }

  // --- runtime-internal mutators (used by managers/executors) ---
  void set_state(TaskState s, double now) noexcept;
  void set_error(std::string msg) { error_ = std::move(msg); }
  void set_result(std::any r) { result_ = std::move(r); }
  void set_allocation(hpc::Allocation a) { allocation_ = std::move(a); }
  void clear_allocation() { allocation_ = {}; }

  /// Mark the task for forcible eviction (deadline/pilot failure) before
  /// cancelling it on the executor; the completion path reads the reason.
  void set_evict_reason(EvictReason r) noexcept { evict_reason_.store(r); }
  /// Consume the eviction reason (resets it to kNone).
  [[nodiscard]] EvictReason take_evict_reason() noexcept {
    return evict_reason_.exchange(EvictReason::kNone);
  }

  /// Reset the task for its next attempt: bumps the attempt counter,
  /// clears the previous error/result, and re-enters kSubmitted.
  void begin_retry(double now) noexcept;

  /// Trace span ids (obs::SpanId as raw integers so the runtime task
  /// model stays obs-free). The task span covers submit→terminal across
  /// every attempt; each executor launch opens its own attempt span under
  /// it. Atomic: written by the TaskManager / executor threads, read by
  /// whichever thread closes the span.
  void set_trace_span(std::uint64_t id) noexcept { trace_span_.store(id); }
  [[nodiscard]] std::uint64_t trace_span() const noexcept {
    return trace_span_.load();
  }
  void set_attempt_span(std::uint64_t id) noexcept {
    attempt_span_.store(id);
  }
  [[nodiscard]] std::uint64_t attempt_span() const noexcept {
    return attempt_span_.load();
  }

 private:
  std::string uid_;
  TaskDescription description_;
  // Atomic: executors write the state from worker threads / engine events
  // while TaskManager::cancel and user code poll it lock-free.
  std::atomic<TaskState> state_{TaskState::kNew};
  // Atomic for the same reason: bumped by the TaskManager's retry path
  // while executors read it to key fault-injection draws.
  std::atomic<int> attempt_{1};
  std::atomic<EvictReason> evict_reason_{EvictReason::kNone};
  std::atomic<std::uint64_t> trace_span_{0};
  std::atomic<std::uint64_t> attempt_span_{0};
  std::string error_;
  std::any result_;
  hpc::Allocation allocation_;
  double state_times_[7];
};

using TaskPtr = std::shared_ptr<Task>;

}  // namespace impress::rp
