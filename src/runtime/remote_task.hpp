// Remote task adapter: the serializable face of the task manager for the
// campaign fabric (src/net).
//
// A TaskDescription cannot cross a process boundary — its WorkFn is a
// closure. RemoteTaskSpec is the wire-safe subset (resources, phases,
// retry policy, metadata) with a JSON round-trip; a fabric worker
// rehydrates it into a TaskDescription with an empty work function (a
// pure timing task — the simulated executors model duration/utilization
// without running science payloads) and executes it in its own session.
// RemoteTaskOutcome carries the terminal state back the same way.
//
// This mirrors RADICAL-Pilot's agent-side TaskDescription dicts: the
// coordinator describes work, the agent owns execution (docs/fabric.md).

#pragma once

#include <string>

#include "common/json.hpp"
#include "runtime/session.hpp"
#include "runtime/task.hpp"

namespace impress::rp {

/// Wire-safe task description. Field-for-field TaskDescription minus the
/// WorkFn closure and trace parent (trace contexts don't cross the wire;
/// the worker opens its own spans).
struct RemoteTaskSpec {
  std::string name;
  hpc::ResourceRequest resources;
  std::vector<TaskPhase> phases;
  int priority = 0;
  RetryPolicy retry;
  std::map<std::string, std::string> metadata;

  /// The runnable description (empty WorkFn).
  [[nodiscard]] TaskDescription to_description() const;

  bool operator==(const RemoteTaskSpec&) const = default;
};

/// Capture the serializable fields of a description (drops work/trace).
[[nodiscard]] RemoteTaskSpec remote_task_spec(const TaskDescription& d);

[[nodiscard]] common::Json to_json(const RemoteTaskSpec& spec);
/// Throws std::invalid_argument / Json parse errors on malformed input.
[[nodiscard]] RemoteTaskSpec remote_task_spec_from_json(
    const common::Json& json);

/// Terminal outcome of one remotely executed task.
struct RemoteTaskOutcome {
  std::string name;
  std::string uid;        ///< uid in the *worker's* session namespace
  std::string state;      ///< to_string(TaskState) of the terminal state
  std::string error;      ///< empty unless failed/cancelled
  int attempts = 1;
  double duration_s = 0.0;  ///< submit -> terminal, worker session clock

  [[nodiscard]] bool ok() const noexcept { return state == "DONE"; }

  bool operator==(const RemoteTaskOutcome&) const = default;
};

[[nodiscard]] common::Json to_json(const RemoteTaskOutcome& outcome);
[[nodiscard]] RemoteTaskOutcome remote_task_outcome_from_json(
    const common::Json& json);

/// Execute one spec to completion in `session` (which must have at least
/// one pilot submitted) and report the terminal outcome. Deterministic in
/// simulated mode: same session seed + same spec => same outcome.
[[nodiscard]] RemoteTaskOutcome run_remote_task(Session& session,
                                                const RemoteTaskSpec& spec);

}  // namespace impress::rp
