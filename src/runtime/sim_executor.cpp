#include "runtime/sim_executor.hpp"

#include <exception>
#include <vector>

namespace impress::rp {

void SimExecutor::launch(TaskPtr task, CompletionFn on_complete) {
  const double now = engine_.now();
  profiler_.record(now, task->uid(), hpc::events::kExecSetupStart);
  double setup = overhead_.setup_mean_s;
  if (setup > 0.0 && overhead_.setup_jitter_sigma > 0.0)
    setup = rng_.lognormal_mean(setup, overhead_.setup_jitter_sigma);
  // Instrumentation strictly after the rng draw: tracing must not shift
  // the stream (the bit-exactness contract).
  if (const obs::RuntimeMetrics* m = metrics())
    m->exec_setup_seconds->observe(setup);
  if (obs::Tracer* tr = tracer()) {
    const obs::SpanId attempt =
        tr->begin(now, "attempt." + std::to_string(task->attempt()),
                  obs::categories::kAttempt, task->trace_span());
    task->set_attempt_span(attempt);
    const obs::SpanId span = tr->begin(now, "exec_setup",
                                       obs::categories::kPhase, attempt);
    tr->end(span, now + setup);
  }
  auto& entry = pending_[task->uid()];
  entry.on_complete = std::move(on_complete);
  entry.event =
      engine_.schedule_after(setup, [this, task] { start_phases(task); });
}

void SimExecutor::start_phases(const TaskPtr& task) {
  const double start = engine_.now();
  profiler_.record(start, task->uid(), hpc::events::kExecStart);

  const FaultInjector::AttemptFault fault = draw_fault(task);

  // Draw all phase durations now so the usage intervals and the completion
  // time agree exactly.
  double t = start;
  std::vector<hpc::UsageInterval> intervals;
  for (const auto& p : task->description().phases) {
    double d = p.duration_s;
    if (d > 0.0 && p.jitter_sigma > 0.0) d = rng_.lognormal_mean(d, p.jitter_sigma);
    d *= fault.slow_factor;
    intervals.push_back(hpc::UsageInterval{.start = t,
                                           .end = t + d,
                                           .cores = p.cores,
                                           .gpus = p.gpus,
                                           .cpu_intensity = p.cpu_intensity,
                                           .gpu_intensity = p.gpu_intensity,
                                           .task_uid = task->uid()});
    t += d;
  }

  const auto it = pending_.find(task->uid());
  if (it == pending_.end()) return;  // cancelled between events

  if (fault.fail) {
    // Injected crash partway through the run: no usage is recorded (the
    // attempt produced nothing), mirroring the cancel path.
    const double t_fail = start + (t - start) * fault.fail_fraction;
    it->second.event =
        engine_.schedule_at(t_fail, [this, task] { fail_injected(task); });
    return;
  }

  it->second.event = engine_.schedule_at(
      t, [this, task, intervals = std::move(intervals)]() mutable {
        // Usage is only recorded when the task actually ran to completion;
        // a cancelled task never reaches this event. Phase spans follow
        // the same rule, with the intervals' explicit times.
        if (obs::Tracer* tr = tracer()) {
          const auto& phases = task->description().phases;
          for (std::size_t i = 0; i < intervals.size(); ++i) {
            const obs::SpanId span = tr->begin(
                intervals[i].start, phases[i].name, obs::categories::kPhase,
                task->attempt_span());
            tr->end(span, intervals[i].end);
          }
        }
        for (auto& iv : intervals) recorder_.record(std::move(iv));
        finish(task);
      });
}

void SimExecutor::fail_injected(const TaskPtr& task) {
  const auto it = pending_.find(task->uid());
  if (it == pending_.end()) return;
  CompletionFn on_complete = std::move(it->second.on_complete);
  pending_.erase(it);

  const double now = engine_.now();
  task->set_error("injected fault (attempt " + std::to_string(task->attempt()) +
                  ")");
  task->set_state(TaskState::kFailed, now);
  profiler_.record(now, task->uid(), hpc::events::kExecStop, "injected-fault");
  if (obs::Tracer* tr = tracer()) {
    tr->attr(task->attempt_span(), "outcome", "injected-fault");
    tr->end(task->attempt_span(), now);
  }
  if (on_complete) on_complete(task);
}

void SimExecutor::finish(const TaskPtr& task) {
  const auto it = pending_.find(task->uid());
  if (it == pending_.end()) return;
  CompletionFn on_complete = std::move(it->second.on_complete);
  pending_.erase(it);

  const double now = engine_.now();
  if (task->description().work) {
    // Ambient context: code inside the work function (mpnn sampler, fold
    // surrogate, fold cache) can open child spans under this attempt.
    obs::AmbientContext ambient(tracer(), task->attempt_span());
    try {
      task->set_result(task->description().work(*task));
      task->set_state(TaskState::kDone, now);
    } catch (const std::exception& e) {
      task->set_error(e.what());
      task->set_state(TaskState::kFailed, now);
    } catch (...) {
      task->set_error("unknown error");
      task->set_state(TaskState::kFailed, now);
    }
  } else {
    task->set_state(TaskState::kDone, now);
  }
  profiler_.record(now, task->uid(), hpc::events::kExecStop);
  if (const obs::RuntimeMetrics* m = metrics())
    m->task_run_seconds->observe(now - task->state_time(TaskState::kExecuting));
  if (obs::Tracer* tr = tracer()) {
    tr->attr(task->attempt_span(), "outcome",
             std::string(to_string(task->state())));
    tr->end(task->attempt_span(), now);
  }
  if (on_complete) on_complete(task);
}

bool SimExecutor::cancel(const TaskPtr& task) {
  const auto it = pending_.find(task->uid());
  if (it == pending_.end()) return false;
  engine_.cancel(it->second.event);
  CompletionFn on_complete = std::move(it->second.on_complete);
  pending_.erase(it);
  task->set_state(TaskState::kCancelled, engine_.now());
  profiler_.record(engine_.now(), task->uid(), hpc::events::kExecStop,
                   "cancelled");
  if (obs::Tracer* tr = tracer()) {
    tr->attr(task->attempt_span(), "outcome", "cancelled");
    tr->end(task->attempt_span(), engine_.now());
  }
  if (on_complete) on_complete(task);
  return true;
}

}  // namespace impress::rp
