// Discrete-event executor: replays task execution against the virtual
// clock. The default backend for campaign replay — a 38-hour IM-RP run
// completes in milliseconds, deterministically.

#pragma once

#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "hpc/profiler.hpp"
#include "hpc/utilization.hpp"
#include "runtime/executor.hpp"
#include "sim/engine.hpp"

namespace impress::rp {

class SimExecutor : public Executor {
 public:
  SimExecutor(sim::Engine& engine, hpc::Profiler& profiler,
              hpc::UtilizationRecorder& recorder, ExecOverheadModel overhead,
              common::Rng rng)
      : engine_(engine),
        profiler_(profiler),
        recorder_(recorder),
        overhead_(overhead),
        rng_(rng) {}

  void launch(TaskPtr task, CompletionFn on_complete) override;
  bool cancel(const TaskPtr& task) override;

  /// Tasks currently between launch and completion.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return pending_.size();
  }

  [[nodiscard]] common::Rng::State rng_state() const override {
    return rng_.save_state();
  }
  void restore_rng_state(const common::Rng::State& s) override {
    rng_.restore_state(s);
  }

 private:
  struct InFlight {
    sim::EventId event = 0;  ///< the event that advances this task next
    CompletionFn on_complete;
  };

  void start_phases(const TaskPtr& task);
  void finish(const TaskPtr& task);
  void fail_injected(const TaskPtr& task);

  sim::Engine& engine_;
  hpc::Profiler& profiler_;
  hpc::UtilizationRecorder& recorder_;
  ExecOverheadModel overhead_;
  common::Rng rng_;
  std::unordered_map<std::string, InFlight> pending_;
};

}  // namespace impress::rp
