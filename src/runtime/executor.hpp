// Executor interface: the backend that runs an already-placed task.
//
// Two implementations exist:
//  * SimExecutor    — advances a discrete-event virtual clock; the default
//                     for campaign replay and figure reproduction.
//  * ThreadExecutor — real worker threads with (scaled) wall-clock delays;
//                     used to validate the middleware under genuine
//                     concurrency.
//
// Both honor the same contract: exec-setup overhead is applied, phases run
// in order, the work function executes once, usage intervals land in the
// pilot's UtilizationRecorder, profiler events are emitted, and exactly
// one completion callback fires with the task in a terminal state.

#pragma once

#include <functional>

#include "common/rng.hpp"
#include "hpc/resource_pool.hpp"
#include "obs/obs.hpp"
#include "runtime/fault.hpp"
#include "runtime/task.hpp"

namespace impress::rp {

/// Called exactly once when a launched task reaches a terminal state.
/// The allocation is still attached; the pilot releases it.
using CompletionFn = std::function<void(const TaskPtr&)>;

/// Per-task launch overhead model: RP creates a sandbox and launch script
/// before the application starts ("Exec setup" in Fig 5). The cost varies
/// with filesystem load, hence mean + lognormal jitter.
struct ExecOverheadModel {
  double setup_mean_s = 0.0;
  double setup_jitter_sigma = 0.0;
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Run `task` on the allocation it already carries (Task::allocation()).
  /// Must not block the caller.
  virtual void launch(TaskPtr task, CompletionFn on_complete) = 0;

  /// Best-effort cancel of a task this executor has in flight. Returns
  /// true if the task was prevented from completing normally (the
  /// completion callback still fires, with state kCancelled).
  virtual bool cancel(const TaskPtr& task) = 0;

  /// Checkpoint support: position of the executor's duration-jitter rng
  /// stream. Only meaningful while the executor has no task in flight (a
  /// checkpoint is only cut at quiesce).
  [[nodiscard]] virtual common::Rng::State rng_state() const = 0;
  virtual void restore_rng_state(const common::Rng::State& s) = 0;

  /// Wire a fault injector; each launched attempt draws its fate from it.
  /// Pass nullptr (the default) for a fault-free executor. The injector
  /// must outlive the executor.
  void set_fault_injector(const FaultInjector* faults) noexcept {
    faults_ = faults;
  }

  /// Wire the session's observability bundle (attempt/phase spans and the
  /// exec histograms). Pass nullptr (the default) for an uninstrumented
  /// executor. Must outlive the executor. Instrumentation never draws
  /// from the executor's rng, so wiring it cannot perturb results.
  void set_observability(obs::Observability* obs) noexcept { obs_ = obs; }

 protected:
  /// Fate of one attempt: neutral when no injector is wired.
  [[nodiscard]] FaultInjector::AttemptFault draw_fault(
      const TaskPtr& task) const noexcept {
    if (faults_ == nullptr) return {};
    return faults_->draw_attempt(task->uid(), task->attempt());
  }

  /// Tracer when span recording is live for this executor, else nullptr.
  [[nodiscard]] obs::Tracer* tracer() const noexcept {
    return obs_ != nullptr && obs_->tracer().enabled() ? &obs_->tracer()
                                                       : nullptr;
  }
  /// Pre-registered metric handles, or nullptr when no bundle is wired.
  [[nodiscard]] const obs::RuntimeMetrics* metrics() const noexcept {
    return obs_ != nullptr ? &obs_->metrics() : nullptr;
  }

 private:
  const FaultInjector* faults_ = nullptr;
  obs::Observability* obs_ = nullptr;
};

}  // namespace impress::rp
