#include "runtime/session.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/logging.hpp"
#include "runtime/sim_executor.hpp"
#include "runtime/thread_executor.hpp"

namespace impress::rp {

Session::Session(SessionConfig config)
    : config_(config),
      engine_(sim::EngineConfig{.scheduler = config.scheduler}),
      obs_(obs::Observability::Config{.tracing = config.enable_tracing,
                                      .metrics = config.enable_metrics}),
      rng_(common::Rng(config.seed)),
      wall_start_(std::chrono::steady_clock::now()) {
  obs_.tracer().set_clock([this] { return now(); });
  if (config_.mode == ExecutionMode::kThreaded)
    pool_.emplace(config_.worker_threads);
  if (config_.faults.any())
    faults_.emplace(config_.faults, rng_.fork("faults"));
  tmgr_ = std::make_unique<TaskManager>(
      uids_, profiler_, [this] { return now(); }, rng_.fork("tmgr"));
  tmgr_->set_observability(&obs_);
  tmgr_->set_defer(
      [this](double delay_s, std::function<void()> fn) {
        call_after(delay_s, std::move(fn));
      });
}

Session::Session(SessionConfig config, const SessionRestore& restore)
    : Session(config) {
  // Clock first: preloaded trace/profiler events carry pre-cut times, and
  // everything recorded from here on must stamp post-cut times.
  if (config_.mode == ExecutionMode::kSimulated) {
    // A fresh engine has no live events and now() == 0, so this can only
    // fail on a corrupt checkpoint (negative clock) or a restore sequenced
    // after work was scheduled — both are bugs that must not be absorbed
    // into a silently-wrong clock.
    if (!engine_.warp_to(restore.now))
      throw std::logic_error(
          "Session restore: illegal clock warp (events pending or clock "
          "would move backwards)");
  } else {
    clock_offset_ = restore.now;
  }
  profiler_.preload(restore.profiler_events);
  if (obs_.tracer().enabled())
    obs_.tracer().preload(restore.trace, restore.trace_next_seq);
  obs_.registry().preload(restore.metrics);
  uids_.restore_counters(restore.uid_counters);
  tmgr_->restore_counters(restore.task_counters);
}

Session::~Session() {
  close();
  // Join detached-timer threads before members are destroyed. Blocking:
  // a timer callback may need any runtime lock, so none may be held here.
  common::lockdep::check_blocking("Session timer join");
  for (auto& t : timers_)
    if (t.joinable()) t.join();
}

double Session::now() const {
  if (config_.mode == ExecutionMode::kSimulated) return engine_.now();
  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start_)
                        .count();
  return clock_offset_ + wall / config_.time_scale;
}

common::Rng Session::fork_rng(std::string_view tag) const {
  return rng_.fork(tag);
}

std::unique_ptr<Executor> Session::make_executor(
    const PilotPtr& pilot, const PilotDescription& description,
    common::Rng exec_rng) {
  std::unique_ptr<Executor> exec;
  if (config_.mode == ExecutionMode::kSimulated) {
    exec = std::make_unique<SimExecutor>(engine_, profiler_, pilot->recorder(),
                                         description.exec_overhead, exec_rng);
  } else {
    exec = std::make_unique<ThreadExecutor>(
        *pool_, profiler_, pilot->recorder(), description.exec_overhead,
        exec_rng, config_.time_scale, [this] { return now(); });
  }
  if (faults_) exec->set_fault_injector(&*faults_);
  exec->set_observability(&obs_);
  return exec;
}

void Session::register_pilot(PilotPtr pilot, std::unique_ptr<Executor> exec) {
  pilot->set_observability(&obs_);
  pilot->attach(*exec, tmgr_->terminal_handler(), tmgr_->requeue_handler());
  executors_.push_back(std::move(exec));
  pilots_.push_back(pilot);
  tmgr_->add_pilot(std::move(pilot));
}

void Session::arm_outages(const PilotPtr& pilot, std::size_t index,
                          double horizon_s) {
  for (const auto& outage : config_.faults.pilot_outages) {
    if (outage.pilot_index != index || outage.at_s <= horizon_s) continue;
    const double delay = std::max(0.0, outage.at_s - now());
    IMPRESS_LOG(kInfo, "session")
        << "pilot " << pilot->uid() << " will fail at t=" << outage.at_s;
    call_after(delay, [pilot] { pilot->fail(); });
  }
  for (const auto& reclaim : config_.faults.spot_reclaims) {
    if (reclaim.pilot_index != index) continue;
    // The eviction and the capacity return are armed independently against
    // the horizon: a checkpoint cut during the outage window re-arms only
    // the return, so a resumed run reactivates the pilot on schedule.
    if (reclaim.at_s > horizon_s) {
      IMPRESS_LOG(kInfo, "session")
          << "pilot " << pilot->uid() << " spot capacity reclaimed at t="
          << reclaim.at_s << " for " << reclaim.down_s << "s";
      call_after(std::max(0.0, reclaim.at_s - now()),
                 [pilot] { pilot->fail(); });
    }
    const double back_s = reclaim.at_s + reclaim.down_s;
    if (back_s > horizon_s) {
      call_after(std::max(0.0, back_s - now()),
                 [pilot] { pilot->reactivate(); });
    }
  }
}

PilotPtr Session::submit_pilot(const PilotDescription& description) {
  auto pilot = std::make_shared<Pilot>(uids_.next("pilot"), description,
                                       profiler_, [this] { return now(); });
  register_pilot(pilot,
                 make_executor(pilot, description,
                               rng_.fork("executor." + pilot->uid())));
  call_after(description.bootstrap_s, [pilot] { pilot->activate(); });
  // Arm any scheduled outage for this pilot (index in submission order).
  arm_outages(pilot, pilots_.size() - 1,
              -std::numeric_limits<double>::infinity());
  return pilot;
}

PilotPtr Session::submit_pilot(const PilotDescription& description,
                               const PilotRestore& restore) {
  // The checkpointed uid is reused verbatim; the uid counters restored at
  // construction already account for it, so next("pilot") is not drawn.
  auto pilot = std::make_shared<Pilot>(restore.uid, description, profiler_,
                                       [this] { return now(); },
                                       /*restored=*/true);
  for (const auto& interval : restore.intervals)
    pilot->recorder().record(interval);
  auto exec = make_executor(pilot, description,
                            rng_.fork("executor." + pilot->uid()));
  exec->restore_rng_state(restore.executor_rng);
  register_pilot(pilot, std::move(exec));
  // Bootstrap completed before the cut (its events are preloaded); jump
  // straight to the checkpointed lifecycle state.
  pilot->restore_state(restore.failed ? PilotState::kFailed
                                      : PilotState::kActive);
  // Re-arm only outages that had not fired by the cut.
  arm_outages(pilot, pilots_.size() - 1, now());
  return pilot;
}

std::vector<PilotRestore> Session::checkpoint_pilots() const {
  std::vector<PilotRestore> out;
  out.reserve(pilots_.size());
  for (std::size_t i = 0; i < pilots_.size(); ++i) {
    PilotRestore pr;
    pr.uid = pilots_[i]->uid();
    pr.failed = pilots_[i]->state() == PilotState::kFailed;
    pr.executor_rng = executors_[i]->rng_state();
    pr.intervals = pilots_[i]->recorder().intervals();
    out.push_back(std::move(pr));
  }
  return out;
}

void Session::run() {
  if (config_.mode == ExecutionMode::kSimulated) {
    engine_.run();
  } else {
    tmgr_->wait_all();
  }
}

void Session::call_after(double delay_s, std::function<void()> fn) {
  if (config_.mode == ExecutionMode::kSimulated) {
    engine_.schedule_after(delay_s, std::move(fn));
    return;
  }
  const auto wall = std::chrono::duration<double>(delay_s * config_.time_scale);
  std::lock_guard lock(timer_mutex_);
  timers_.emplace_back([wall, fn = std::move(fn)] {
    std::this_thread::sleep_for(wall);
    fn();
  });
}

void Session::close() {
  for (const auto& p : pilots_) p->finish();
}

}  // namespace impress::rp
