#include "runtime/session.hpp"

#include <algorithm>
#include <thread>

#include "common/logging.hpp"
#include "runtime/sim_executor.hpp"
#include "runtime/thread_executor.hpp"

namespace impress::rp {

Session::Session(SessionConfig config)
    : config_(config),
      obs_(obs::Observability::Config{.tracing = config.enable_tracing,
                                      .metrics = config.enable_metrics}),
      rng_(common::Rng(config.seed)),
      wall_start_(std::chrono::steady_clock::now()) {
  obs_.tracer().set_clock([this] { return now(); });
  if (config_.mode == ExecutionMode::kThreaded)
    pool_.emplace(config_.worker_threads);
  if (config_.faults.any())
    faults_.emplace(config_.faults, rng_.fork("faults"));
  tmgr_ = std::make_unique<TaskManager>(
      uids_, profiler_, [this] { return now(); }, rng_.fork("tmgr"));
  tmgr_->set_observability(&obs_);
  tmgr_->set_defer(
      [this](double delay_s, std::function<void()> fn) {
        call_after(delay_s, std::move(fn));
      });
}

Session::~Session() {
  close();
  // Join detached-timer threads before members are destroyed.
  for (auto& t : timers_)
    if (t.joinable()) t.join();
}

double Session::now() const {
  if (config_.mode == ExecutionMode::kSimulated) return engine_.now();
  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start_)
                        .count();
  return wall / config_.time_scale;
}

common::Rng Session::fork_rng(std::string_view tag) const {
  return rng_.fork(tag);
}

PilotPtr Session::submit_pilot(const PilotDescription& description) {
  auto pilot = std::make_shared<Pilot>(uids_.next("pilot"), description,
                                       profiler_, [this] { return now(); });

  std::unique_ptr<Executor> exec;
  const auto exec_rng = rng_.fork("executor." + pilot->uid());
  if (config_.mode == ExecutionMode::kSimulated) {
    exec = std::make_unique<SimExecutor>(engine_, profiler_, pilot->recorder(),
                                         description.exec_overhead, exec_rng);
  } else {
    exec = std::make_unique<ThreadExecutor>(
        *pool_, profiler_, pilot->recorder(), description.exec_overhead,
        exec_rng, config_.time_scale, [this] { return now(); });
  }
  if (faults_) exec->set_fault_injector(&*faults_);
  exec->set_observability(&obs_);
  pilot->set_observability(&obs_);
  pilot->attach(*exec, tmgr_->terminal_handler(), tmgr_->requeue_handler());
  executors_.push_back(std::move(exec));
  pilots_.push_back(pilot);
  tmgr_->add_pilot(pilot);

  call_after(description.bootstrap_s, [pilot] { pilot->activate(); });

  // Arm any scheduled outage for this pilot (index in submission order).
  const std::size_t index = pilots_.size() - 1;
  for (const auto& outage : config_.faults.pilot_outages) {
    if (outage.pilot_index != index) continue;
    const double delay = std::max(0.0, outage.at_s - now());
    IMPRESS_LOG(kInfo, "session")
        << "pilot " << pilot->uid() << " will fail at t=" << outage.at_s;
    call_after(delay, [pilot] { pilot->fail(); });
  }
  return pilot;
}

void Session::run() {
  if (config_.mode == ExecutionMode::kSimulated) {
    engine_.run();
  } else {
    tmgr_->wait_all();
  }
}

void Session::call_after(double delay_s, std::function<void()> fn) {
  if (config_.mode == ExecutionMode::kSimulated) {
    engine_.schedule_after(delay_s, std::move(fn));
    return;
  }
  const auto wall = std::chrono::duration<double>(delay_s * config_.time_scale);
  std::lock_guard lock(timer_mutex_);
  timers_.emplace_back([wall, fn = std::move(fn)] {
    std::this_thread::sleep_for(wall);
    fn();
  });
}

void Session::close() {
  for (const auto& p : pilots_) p->finish();
}

}  // namespace impress::rp
