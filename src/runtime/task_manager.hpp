// TaskManager: the client-facing entry point of the runtime.
//
// Mirrors RP's TaskManager: accepts task descriptions, assigns uids,
// routes tasks to pilots (least-loaded among the pilots that can ever fit
// the request), and fires user callbacks when tasks reach a terminal
// state. The IMPRESS coordinator registers one callback that feeds its
// completed-task channel.
//
// Fault tolerance (docs/fault_tolerance.md): each task carries a
// RetryPolicy. A failed attempt — work exception, injected fault, expired
// per-attempt deadline, or pilot failure — is resubmitted after an
// exponential-backoff delay, preferring a *different* pilot when one can
// fit the task. Only when the policy is exhausted (or no live pilot
// remains) does the task become terminally kFailed and reach callbacks.

#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lockdep.hpp"
#include "common/rng.hpp"
#include "common/uid.hpp"
#include "hpc/profiler.hpp"
#include "obs/obs.hpp"
#include "runtime/pilot.hpp"
#include "runtime/task.hpp"

namespace impress::rp {

class TaskManager {
 public:
  /// Fired once per task when it becomes kDone / kFailed / kCancelled.
  using Callback = std::function<void(const TaskPtr&)>;

  /// Schedules a deferred action `delay_s` simulated seconds from now;
  /// the session wires this to its clock (engine event or timer thread).
  /// Retry backoff and per-attempt deadlines are driven through it.
  using DeferFn = std::function<void(double, std::function<void()>)>;

  TaskManager(common::UidGenerator& uids, hpc::Profiler& profiler,
              std::function<double()> now_fn,
              common::Rng rng = common::Rng(0));

  /// Register a pilot as a routing target. The session wires the pilot's
  /// terminal notifications back to this manager.
  void add_pilot(PilotPtr pilot);

  /// Wire the deferred-execution hook. Without it, retries are submitted
  /// immediately (no backoff) and attempt deadlines are not enforced.
  void set_defer(DeferFn defer);

  /// Wire the session's observability bundle: task spans (submit →
  /// terminal, parented under TaskDescription::trace_parent) and the
  /// task-lifecycle counters. Pass nullptr (the default) to leave the
  /// manager uninstrumented. Must outlive the manager.
  void set_observability(obs::Observability* obs) noexcept { obs_ = obs; }

  /// Submit one task; returns the live Task handle.
  /// Throws std::runtime_error if no registered pilot can ever fit it.
  TaskPtr submit(TaskDescription description);
  std::vector<TaskPtr> submit(std::vector<TaskDescription> descriptions);

  /// Register a terminal-state callback; returns its registration id.
  std::size_t add_callback(Callback cb);

  /// Deregister a callback and block until no callback pass that may still
  /// hold it is executing. After this returns, the callback will never run
  /// again — safe to destroy whatever it captured. Must not be called from
  /// inside a callback (self-deadlock).
  void remove_callback(std::size_t id);

  /// Cancel a submitted task (queued, executing, or waiting out a retry
  /// backoff). Returns false if the task is already terminal or unknown.
  bool cancel(const TaskPtr& task);

  /// Tasks submitted but not yet terminal.
  [[nodiscard]] std::size_t outstanding() const;

  /// Counters over everything ever submitted.
  [[nodiscard]] std::size_t submitted() const;
  [[nodiscard]] std::size_t done() const;
  [[nodiscard]] std::size_t failed() const;
  [[nodiscard]] std::size_t cancelled() const;
  /// Failed attempts that were resubmitted under a RetryPolicy.
  [[nodiscard]] std::size_t retried() const;
  /// Attempts evicted because their per-attempt deadline expired.
  [[nodiscard]] std::size_t timed_out() const;
  /// Tasks handed back by failing pilots and re-routed.
  [[nodiscard]] std::size_t requeued() const;

  /// Lifetime counters as one plain-data bundle (checkpointed so a
  /// resumed campaign reports the same workload totals).
  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t retried = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t requeued = 0;
    bool operator==(const Counters&) const = default;
  };
  [[nodiscard]] Counters counters() const {
    std::lock_guard lock(mutex_);
    return {submitted_, done_, failed_, cancelled_,
            retried_,   timed_out_, requeued_};
  }
  /// Checkpoint restore; only valid while no task is outstanding.
  void restore_counters(const Counters& c) {
    std::lock_guard lock(mutex_);
    submitted_ = c.submitted;
    done_ = c.done;
    failed_ = c.failed;
    cancelled_ = c.cancelled;
    retried_ = c.retried;
    timed_out_ = c.timed_out;
    requeued_ = c.requeued;
  }

  /// Block the calling thread until no task is outstanding *and* no
  /// terminal callback is still running. Only meaningful with the
  /// threaded executor — with the simulated executor use Session::run(),
  /// which drives the event loop instead of blocking.
  void wait_all();

  /// The handler the session installs on each pilot.
  [[nodiscard]] CompletionFn terminal_handler();

  /// The requeue handler the session installs on each pilot: tasks a
  /// failing pilot drains from its queue are re-routed to a live pilot.
  [[nodiscard]] RequeueFn requeue_handler();

 private:
  void on_terminal(const TaskPtr& task);
  /// Counters + callbacks + idle notification for a truly terminal task.
  void finalize(const TaskPtr& task);
  /// Hand a task to `pilot`, re-routing if the pilot died in between.
  void dispatch(const TaskPtr& task, PilotPtr pilot);
  /// Second and later attempts enter here after their backoff delay.
  void resubmit(const TaskPtr& task);
  /// Tasks drained from a failed pilot's queue re-enter here.
  void requeue(const TaskPtr& task);
  /// Arm the per-attempt deadline for the task's current attempt.
  void arm_deadline(const TaskPtr& task);
  /// Mark the task terminally failed (no pilot) and finalize it.
  void fail_unroutable(const TaskPtr& task, const std::string& why);
  PilotPtr route(const TaskDescription& td, const Pilot* exclude = nullptr);

  common::UidGenerator& uids_;
  hpc::Profiler& profiler_;
  std::function<double()> now_;
  common::Rng rng_;  ///< backoff jitter; forked per (task, attempt)
  DeferFn defer_;
  obs::Observability* obs_ = nullptr;

  // Root of the canonical acquisition order (see lockdep.hpp): held while
  // peeking Pilot queue lengths in route() and drawing uids, never taken
  // while a pilot or executor lock is held.
  mutable common::TrackedMutex mutex_{"TaskManager::mutex_"};
  common::CondVar idle_cv_;
  std::vector<PilotPtr> pilots_;
  std::vector<Callback> callbacks_;
  std::unordered_map<std::string, PilotPtr> task_pilot_;
  /// Tasks waiting out a retry backoff, mapped to the pilot of the failed
  /// attempt (excluded on resubmission when an alternative exists).
  std::unordered_map<std::string, PilotPtr> backoff_;
  std::size_t outstanding_ = 0;
  /// Terminal callbacks currently executing; wait_all() must not return
  /// while one is in flight, because it may be about to submit follow-on
  /// work (see on_terminal).
  std::size_t callbacks_in_flight_ = 0;
  std::size_t submitted_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t retried_ = 0;
  std::size_t timed_out_ = 0;
  std::size_t requeued_ = 0;
};

}  // namespace impress::rp
