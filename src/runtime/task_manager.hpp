// TaskManager: the client-facing entry point of the runtime.
//
// Mirrors RP's TaskManager: accepts task descriptions, assigns uids,
// routes tasks to pilots (least-loaded among the pilots that can ever fit
// the request), and fires user callbacks when tasks reach a terminal
// state. The IMPRESS coordinator registers one callback that feeds its
// completed-task channel.

#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/uid.hpp"
#include "hpc/profiler.hpp"
#include "runtime/pilot.hpp"
#include "runtime/task.hpp"

namespace impress::rp {

class TaskManager {
 public:
  /// Fired once per task when it becomes kDone / kFailed / kCancelled.
  using Callback = std::function<void(const TaskPtr&)>;

  TaskManager(common::UidGenerator& uids, hpc::Profiler& profiler,
              std::function<double()> now_fn);

  /// Register a pilot as a routing target. The session wires the pilot's
  /// terminal notifications back to this manager.
  void add_pilot(PilotPtr pilot);

  /// Submit one task; returns the live Task handle.
  /// Throws std::runtime_error if no registered pilot can ever fit it.
  TaskPtr submit(TaskDescription description);
  std::vector<TaskPtr> submit(std::vector<TaskDescription> descriptions);

  /// Register a terminal-state callback; returns its registration id.
  std::size_t add_callback(Callback cb);

  /// Cancel a submitted task (queued or executing). Returns false if the
  /// task is already terminal.
  bool cancel(const TaskPtr& task);

  /// Tasks submitted but not yet terminal.
  [[nodiscard]] std::size_t outstanding() const;

  /// Counters over everything ever submitted.
  [[nodiscard]] std::size_t submitted() const;
  [[nodiscard]] std::size_t done() const;
  [[nodiscard]] std::size_t failed() const;
  [[nodiscard]] std::size_t cancelled() const;

  /// Block the calling thread until outstanding() == 0. Only meaningful
  /// with the threaded executor — with the simulated executor use
  /// Session::run(), which drives the event loop instead of blocking.
  void wait_all();

  /// The handler the session installs on each pilot.
  [[nodiscard]] CompletionFn terminal_handler();

 private:
  void on_terminal(const TaskPtr& task);
  PilotPtr route(const TaskDescription& td);

  common::UidGenerator& uids_;
  hpc::Profiler& profiler_;
  std::function<double()> now_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::vector<PilotPtr> pilots_;
  std::vector<Callback> callbacks_;
  std::unordered_map<std::string, PilotPtr> task_pilot_;
  std::size_t outstanding_ = 0;
  std::size_t submitted_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
  std::size_t cancelled_ = 0;
};

}  // namespace impress::rp
