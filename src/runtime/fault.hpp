// Seeded fault injection for the pilot runtime.
//
// The paper's adaptivity claim only matters when things go wrong: tasks
// crash, nodes slow down, pilots die mid-campaign. The FaultInjector turns
// those events on deterministically — every fate is a pure function of
// (seed, task uid, attempt number), so a campaign with 10% injected
// failures replays bit-identically and a chaos test can bisect a failing
// seed. Both executors consult the injector at launch time; pilot outages
// are armed by the Session against its clock (engine event or timer).

#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace impress::rp {

/// One scheduled pilot failure: the pilot created by the
/// `pilot_index`-th submit_pilot() call dies at `at_s` simulated seconds.
struct PilotOutage {
  std::size_t pilot_index = 0;
  double at_s = 0.0;
};

/// One spot/preemptible-capacity reclaim: the pilot created by the
/// `pilot_index`-th submit_pilot() call is evicted at `at_s` (exactly the
/// PilotOutage fail path — queued tasks requeue, executing tasks evict)
/// and the capacity returns `down_s` seconds later, re-entering ACTIVE.
/// Meant for pilots on preemptible nodes (NodeSpec::preemptible), though
/// the schedule is honored for any pilot.
struct SpotReclaim {
  std::size_t pilot_index = 0;
  double at_s = 0.0;
  double down_s = 0.0;
};

struct FaultConfig {
  /// Probability that a task attempt crashes partway through execution
  /// (ends kFailed with an "injected fault" error, no usage recorded).
  double task_failure_rate = 0.0;
  /// Probability that an attempt runs slow (straggler node model).
  double slow_task_rate = 0.0;
  /// Duration multiplier applied to every phase of a slow attempt.
  double slow_factor = 4.0;
  /// Pilot/node outages, armed by the session at submit_pilot time.
  std::vector<PilotOutage> pilot_outages;
  /// Spot-capacity reclaims (eviction + later return), armed alongside
  /// pilot_outages against the session clock.
  std::vector<SpotReclaim> spot_reclaims;

  /// True when any fault source is configured.
  [[nodiscard]] bool any() const noexcept {
    return task_failure_rate > 0.0 || slow_task_rate > 0.0 ||
           !pilot_outages.empty() || !spot_reclaims.empty();
  }
};

class FaultInjector {
 public:
  /// The fate of one task attempt, drawn up-front at launch.
  struct AttemptFault {
    bool fail = false;           ///< crash after `fail_fraction` of the runtime
    double fail_fraction = 1.0;  ///< fraction of phase time before the crash
    double slow_factor = 1.0;    ///< multiplier on every phase duration
  };

  FaultInjector(FaultConfig config, common::Rng rng) noexcept
      : config_(std::move(config)), rng_(rng) {}

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool enabled() const noexcept { return config_.any(); }

  /// Draw the fate of attempt `attempt` of `task_uid`. Deterministic per
  /// (seed, uid, attempt) and side-effect free, so concurrent executor
  /// threads can call it in any order without perturbing each other —
  /// the draw forks a fresh child generator instead of advancing shared
  /// state.
  [[nodiscard]] AttemptFault draw_attempt(std::string_view task_uid,
                                          int attempt) const noexcept;

 private:
  FaultConfig config_;
  common::Rng rng_;  ///< base generator; never advanced, only forked
};

}  // namespace impress::rp
