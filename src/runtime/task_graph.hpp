// Task graphs: explicit dependencies over runtime tasks.
//
// RADICAL-Pilot "does not provide an abstraction of a pipeline nor a
// workflow" (paper §II-D) — the IMPRESS authors built a Pipeline class on
// top of raw tasks. This is the general form of that layer: a DAG of task
// descriptions where each node is submitted the moment its predecessors
// complete. The IMPRESS coordinator keeps its bespoke state machine (its
// edges depend on results, not just completion), but linear stages,
// fan-out/fan-in ensembles and analysis postprocessing map directly onto
// a TaskGraph.
//
// Failure semantics: when a node fails (or is cancelled), every
// transitive dependent is *skipped* — never submitted — and the execution
// still terminates. Independent branches keep running.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lockdep.hpp"
#include "runtime/task.hpp"
#include "runtime/task_manager.hpp"

namespace impress::rp {

class TaskGraph {
 public:
  using NodeId = std::size_t;

  /// Add a node; returns its id (dense, starting at 0).
  NodeId add(TaskDescription description);

  /// Declare that `before` must complete before `after` starts.
  /// Throws std::out_of_range for unknown ids and std::invalid_argument
  /// for self-edges. Duplicate edges are idempotent.
  void add_edge(NodeId before, NodeId after);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Validate acyclicity; throws std::invalid_argument on a cycle.
  void validate() const;

  /// Live view of one graph execution.
  class Execution {
   public:
    enum class NodeState { kPending, kSubmitted, kDone, kFailed, kSkipped };

    /// Task handle for a node (null until submitted).
    [[nodiscard]] TaskPtr task(NodeId id) const;
    [[nodiscard]] NodeState state(NodeId id) const;
    /// True once every node is kDone/kFailed/kSkipped.
    [[nodiscard]] bool finished() const;
    /// True if any node failed or was skipped.
    [[nodiscard]] bool failed() const;
    [[nodiscard]] std::size_t done_count() const;
    [[nodiscard]] std::size_t skipped_count() const;

   private:
    friend class TaskGraph;
    struct Node {
      TaskDescription description;
      std::vector<NodeId> dependents;
      std::size_t indegree = 0;
      TaskPtr task;
      NodeState state = NodeState::kPending;
    };

    void submit_ready(TaskManager& tmgr);
    void on_terminal(const TaskPtr& task, TaskManager& tmgr);
    void skip_dependents(NodeId id);

    mutable common::TrackedMutex mutex_{"TaskGraph::mutex_"};
    std::vector<Node> nodes_;
    std::unordered_map<std::string, NodeId> by_uid_;
    std::size_t remaining_ = 0;
  };

  /// Start executing on `tmgr`. Non-blocking: drive the session to
  /// completion as usual (Session::run()). The returned Execution stays
  /// valid as long as the shared_ptr lives; the graph itself can be
  /// reused for further runs.
  [[nodiscard]] std::shared_ptr<Execution> run(TaskManager& tmgr) const;

 private:
  struct NodeSpec {
    TaskDescription description;
    std::vector<NodeId> dependents;
    std::size_t indegree = 0;
  };
  std::vector<NodeSpec> nodes_;
};

/// Convenience: a linear chain of task descriptions (stage_i -> stage_i+1),
/// the shape of one IMPRESS pipeline cycle.
[[nodiscard]] TaskGraph make_chain(std::vector<TaskDescription> stages);

}  // namespace impress::rp
