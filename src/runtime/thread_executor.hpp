// Real-concurrency executor: runs tasks on a worker pool with wall-clock
// delays scaled from simulated seconds. Validates that the middleware
// (scheduler, channels, coordinator) behaves correctly under genuine
// parallelism, races and all; campaign *figures* use SimExecutor instead.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/lockdep.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "hpc/profiler.hpp"
#include "hpc/utilization.hpp"
#include "runtime/executor.hpp"

namespace impress::rp {

class ThreadExecutor : public Executor {
 public:
  /// `time_scale` converts simulated seconds to wall seconds for sleeps
  /// (e.g. 1e-4 runs a 1-hour task in 0.36 s). `now_fn` reads the session
  /// clock in simulated seconds.
  ThreadExecutor(common::ThreadPool& pool, hpc::Profiler& profiler,
                 hpc::UtilizationRecorder& recorder,
                 ExecOverheadModel overhead, common::Rng rng,
                 double time_scale, std::function<double()> now_fn)
      : pool_(pool),
        profiler_(profiler),
        recorder_(recorder),
        overhead_(overhead),
        rng_(std::move(rng)),
        time_scale_(time_scale),
        now_(std::move(now_fn)) {}

  void launch(TaskPtr task, CompletionFn on_complete) override;

  /// Cooperative cancel: takes effect at the next phase boundary.
  bool cancel(const TaskPtr& task) override;

  /// Checkpoint accessors; only called at quiesce (no launches racing).
  [[nodiscard]] common::Rng::State rng_state() const override {
    std::lock_guard lock(mutex_);
    return rng_.save_state();
  }
  void restore_rng_state(const common::Rng::State& s) override {
    std::lock_guard lock(mutex_);
    rng_.restore_state(s);
  }

 private:
  void sleep_scaled(double sim_seconds) const;

  common::ThreadPool& pool_;
  hpc::Profiler& profiler_;
  hpc::UtilizationRecorder& recorder_;
  ExecOverheadModel overhead_;
  common::Rng rng_;
  double time_scale_;
  std::function<double()> now_;

  mutable common::TrackedMutex mutex_{"ThreadExecutor::mutex_"};
  std::unordered_map<std::string, std::shared_ptr<std::atomic<bool>>> cancel_flags_;
};

}  // namespace impress::rp
