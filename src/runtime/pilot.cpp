#include "runtime/pilot.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace impress::rp {

std::string_view to_string(PilotState s) noexcept {
  switch (s) {
    case PilotState::kLaunching: return "LAUNCHING";
    case PilotState::kActive: return "ACTIVE";
    case PilotState::kDone: return "DONE";
    case PilotState::kFailed: return "FAILED";
  }
  return "?";
}

Pilot::Pilot(std::string uid, PilotDescription description,
             hpc::Profiler& profiler, std::function<double()> now_fn,
             bool restored)
    : uid_(std::move(uid)),
      description_(std::move(description)),
      profiler_(profiler),
      now_(std::move(now_fn)),
      pool_(description_.nodes),
      recorder_(pool_.total_cores(), pool_.total_gpus()),
      scheduler_(description_.policy, pool_,
                 [this](TaskPtr t, hpc::Allocation a) {
                   place(std::move(t), std::move(a));
                 }) {
  if (!restored) profiler_.record(now_(), uid_, hpc::events::kBootstrapStart);
}

void Pilot::attach(Executor& executor, CompletionFn on_task_terminal,
                   RequeueFn on_task_requeue) {
  std::lock_guard lock(mutex_);
  executor_ = &executor;
  on_task_terminal_ = std::move(on_task_terminal);
  on_task_requeue_ = std::move(on_task_requeue);
}

void Pilot::activate() {
  std::lock_guard lock(mutex_);
  if (state_ != PilotState::kLaunching) return;
  state_ = PilotState::kActive;
  profiler_.record(now_(), uid_, hpc::events::kBootstrapStop);
  IMPRESS_LOG(kInfo, "pilot") << uid_ << " active ("
                              << pool_.total_cores() << " cores, "
                              << pool_.total_gpus() << " gpus)";
  run_scheduler();
}

void Pilot::run_scheduler() {
  // Called with mutex_ held.
  const std::size_t placed = scheduler_.try_schedule();
  if (obs_ != nullptr) {
    obs_->metrics().scheduler_ticks->inc();
    if (placed > 0) obs_->metrics().scheduler_placements->add(placed);
  }
}

void Pilot::enqueue(TaskPtr task) {
  const std::string uid = task->uid();
  if (!try_enqueue(std::move(task)))
    throw std::logic_error("Pilot::enqueue of " + uid + " on " +
                           std::string(to_string(state())) + " pilot " + uid_);
}

bool Pilot::try_enqueue(TaskPtr task) {
  std::lock_guard lock(mutex_);
  if (state_ == PilotState::kDone || state_ == PilotState::kFailed)
    return false;
  if (!pool_.fits_ever(task->description().resources))
    throw std::invalid_argument("task " + task->uid() +
                                " can never fit on pilot " + uid_);
  task->set_state(TaskState::kScheduling, now_());
  profiler_.record(now_(), task->uid(), hpc::events::kSchedule, uid_);
  if (obs_ != nullptr) obs_->metrics().scheduler_enqueues->inc();
  scheduler_.enqueue(std::move(task));
  if (state_ == PilotState::kActive) run_scheduler();
  return true;
}

bool Pilot::dequeue(const TaskPtr& task) {
  std::lock_guard lock(mutex_);
  return scheduler_.remove(task);
}

bool Pilot::cancel(const TaskPtr& task) {
  CompletionFn notify;
  Executor* executor = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (scheduler_.remove(task)) {
      task->set_state(TaskState::kCancelled, now_());
      profiler_.record(now_(), task->uid(), hpc::events::kCancelled, uid_);
      notify = on_task_terminal_;
    } else {
      executor = executor_;
    }
  }
  if (notify) {
    notify(task);
    return true;
  }
  // Executing (or already gone): forward to the executor *outside* the
  // pilot lock — its completion path re-enters on_complete and then the
  // TaskManager, and holding mutex_ across that inverts the
  // TaskManager->Pilot lock order used by submit()/route().
  return executor != nullptr && executor->cancel(task);
}

std::size_t Pilot::queue_length() const {
  std::lock_guard lock(mutex_);
  return scheduler_.queue_length();
}

LoadSnapshot Pilot::load_snapshot() const {
  LoadSnapshot s;
  {
    std::lock_guard lock(mutex_);
    s.queued = scheduler_.queue_length();
  }
  s.running = running_.load();
  s.capacity = pool_.total_cores();
  return s;
}

void Pilot::finish() {
  std::lock_guard lock(mutex_);
  if (state_ != PilotState::kFailed) state_ = PilotState::kDone;
}

void Pilot::fail() {
  std::deque<TaskPtr> drained;
  std::vector<TaskPtr> evicted;
  RequeueFn requeue;
  CompletionFn notify;
  Executor* executor = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (state_ == PilotState::kDone || state_ == PilotState::kFailed) return;
    state_ = PilotState::kFailed;
    profiler_.record(now_(), uid_, hpc::events::kPilotFailed);
    drained = scheduler_.drain();
    evicted.reserve(executing_.size());
    for (const auto& [uid, t] : executing_) evicted.push_back(t);
    requeue = on_task_requeue_;
    notify = on_task_terminal_;
    executor = executor_;
  }
  IMPRESS_LOG(kWarn, "pilot") << uid_ << " FAILED: draining "
                              << drained.size() << " queued, evicting "
                              << evicted.size() << " executing task(s)";
  // All callbacks run outside mutex_: requeue re-enters the TaskManager
  // (which routes to other pilots) and eviction re-enters on_complete via
  // the executor's cancel path.
  for (const auto& task : drained) {
    if (requeue) {
      profiler_.record(now_(), task->uid(), hpc::events::kRequeue, uid_);
      requeue(task);
    } else {
      task->set_error("pilot " + uid_ + " failed");
      task->set_state(TaskState::kFailed, now_());
      profiler_.record(now_(), task->uid(), hpc::events::kFailed, uid_);
      if (notify) notify(task);
    }
  }
  for (const auto& task : evicted) {
    task->set_evict_reason(EvictReason::kPilotFailure);
    if (executor != nullptr) (void)executor->cancel(task);
  }
}

void Pilot::reactivate() {
  std::lock_guard lock(mutex_);
  if (state_ != PilotState::kFailed) return;
  state_ = PilotState::kActive;
  profiler_.record(now_(), uid_, hpc::events::kPilotReactivated);
  IMPRESS_LOG(kInfo, "pilot") << uid_ << " reactivated (spot capacity back)";
  // fail() released nothing — evicted tasks return their allocations via
  // the executor's cancel path — so by the time work routes back here the
  // pool has drained naturally. Kick the (empty) scheduler anyway in case
  // a task was enqueued between the state flip and now.
  run_scheduler();
}

void Pilot::place(TaskPtr task, hpc::Allocation alloc) {
  // Called from scheduler.try_schedule() with mutex_ held.
  if (executor_ == nullptr)
    throw std::logic_error("Pilot::place before attach on " + uid_);
  task->set_allocation(std::move(alloc));
  task->set_state(TaskState::kExecuting, now_());
  ++running_;
  executing_[task->uid()] = task;
  executor_->launch(std::move(task),
                    [this](const TaskPtr& t) { on_complete(t); });
}

void Pilot::on_complete(const TaskPtr& task) {
  CompletionFn notify;
  {
    std::lock_guard lock(mutex_);
    pool_.release(task->allocation());
    task->clear_allocation();
    --running_;
    executing_.erase(task->uid());
    profiler_.record(now_(), task->uid(),
                     task->state() == TaskState::kDone ? hpc::events::kDone
                     : task->state() == TaskState::kFailed
                         ? hpc::events::kFailed
                         : hpc::events::kCancelled,
                     uid_);
    if (state_ == PilotState::kActive) run_scheduler();
    notify = on_task_terminal_;
  }
  if (notify) notify(task);
}

}  // namespace impress::rp
