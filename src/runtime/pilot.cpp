#include "runtime/pilot.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace impress::rp {

std::string_view to_string(PilotState s) noexcept {
  switch (s) {
    case PilotState::kLaunching: return "LAUNCHING";
    case PilotState::kActive: return "ACTIVE";
    case PilotState::kDone: return "DONE";
  }
  return "?";
}

Pilot::Pilot(std::string uid, PilotDescription description,
             hpc::Profiler& profiler, std::function<double()> now_fn)
    : uid_(std::move(uid)),
      description_(std::move(description)),
      profiler_(profiler),
      now_(std::move(now_fn)),
      pool_(description_.nodes),
      recorder_(pool_.total_cores(), pool_.total_gpus()),
      scheduler_(description_.policy, pool_,
                 [this](TaskPtr t, hpc::Allocation a) {
                   place(std::move(t), std::move(a));
                 }) {
  profiler_.record(now_(), uid_, hpc::events::kBootstrapStart);
}

void Pilot::attach(Executor& executor, CompletionFn on_task_terminal) {
  std::lock_guard lock(mutex_);
  executor_ = &executor;
  on_task_terminal_ = std::move(on_task_terminal);
}

void Pilot::activate() {
  std::lock_guard lock(mutex_);
  if (state_ != PilotState::kLaunching) return;
  state_ = PilotState::kActive;
  profiler_.record(now_(), uid_, hpc::events::kBootstrapStop);
  IMPRESS_LOG(kInfo, "pilot") << uid_ << " active ("
                              << pool_.total_cores() << " cores, "
                              << pool_.total_gpus() << " gpus)";
  (void)scheduler_.try_schedule();
}

void Pilot::enqueue(TaskPtr task) {
  std::lock_guard lock(mutex_);
  if (state_ == PilotState::kDone)
    throw std::logic_error("Pilot::enqueue on finished pilot " + uid_);
  if (!pool_.fits_ever(task->description().resources))
    throw std::invalid_argument("task " + task->uid() +
                                " can never fit on pilot " + uid_);
  task->set_state(TaskState::kScheduling, now_());
  profiler_.record(now_(), task->uid(), hpc::events::kSchedule, uid_);
  scheduler_.enqueue(std::move(task));
  if (state_ == PilotState::kActive) (void)scheduler_.try_schedule();
}

bool Pilot::dequeue(const TaskPtr& task) {
  std::lock_guard lock(mutex_);
  return scheduler_.remove(task);
}

bool Pilot::cancel(const TaskPtr& task) {
  CompletionFn notify;
  Executor* executor = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (scheduler_.remove(task)) {
      task->set_state(TaskState::kCancelled, now_());
      profiler_.record(now_(), task->uid(), hpc::events::kCancelled, uid_);
      notify = on_task_terminal_;
    } else {
      executor = executor_;
    }
  }
  if (notify) {
    notify(task);
    return true;
  }
  // Executing (or already gone): forward to the executor *outside* the
  // pilot lock — its completion path re-enters on_complete and then the
  // TaskManager, and holding mutex_ across that inverts the
  // TaskManager->Pilot lock order used by submit()/route().
  return executor != nullptr && executor->cancel(task);
}

std::size_t Pilot::queue_length() const {
  std::lock_guard lock(mutex_);
  return scheduler_.queue_length();
}

void Pilot::finish() {
  std::lock_guard lock(mutex_);
  state_ = PilotState::kDone;
}

void Pilot::place(TaskPtr task, hpc::Allocation alloc) {
  // Called from scheduler.try_schedule() with mutex_ held.
  if (executor_ == nullptr)
    throw std::logic_error("Pilot::place before attach on " + uid_);
  task->set_allocation(std::move(alloc));
  task->set_state(TaskState::kExecuting, now_());
  ++running_;
  executor_->launch(std::move(task),
                    [this](const TaskPtr& t) { on_complete(t); });
}

void Pilot::on_complete(const TaskPtr& task) {
  CompletionFn notify;
  {
    std::lock_guard lock(mutex_);
    pool_.release(task->allocation());
    task->clear_allocation();
    --running_;
    profiler_.record(now_(), task->uid(),
                     task->state() == TaskState::kDone ? hpc::events::kDone
                     : task->state() == TaskState::kFailed
                         ? hpc::events::kFailed
                         : hpc::events::kCancelled,
                     uid_);
    if (state_ == PilotState::kActive) (void)scheduler_.try_schedule();
    notify = on_task_terminal_;
  }
  if (notify) notify(task);
}

}  // namespace impress::rp
