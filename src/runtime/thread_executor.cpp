#include "runtime/thread_executor.hpp"

#include <chrono>
#include <exception>
#include <thread>
#include <vector>

namespace impress::rp {

void ThreadExecutor::sleep_scaled(double sim_seconds) const {
  if (sim_seconds <= 0.0) return;
  const auto wall = std::chrono::duration<double>(sim_seconds * time_scale_);
  std::this_thread::sleep_for(wall);
}

void ThreadExecutor::launch(TaskPtr task, CompletionFn on_complete) {
  // Draw jitter on the caller's thread (serialized by the pilot lock) so
  // the Rng needs no synchronization.
  double setup = overhead_.setup_mean_s;
  if (setup > 0.0 && overhead_.setup_jitter_sigma > 0.0)
    setup = rng_.lognormal_mean(setup, overhead_.setup_jitter_sigma);
  const FaultInjector::AttemptFault fault = draw_fault(task);
  std::vector<double> durations;
  durations.reserve(task->description().phases.size());
  double total = 0.0;
  for (const auto& p : task->description().phases) {
    double d = p.duration_s;
    if (d > 0.0 && p.jitter_sigma > 0.0) d = rng_.lognormal_mean(d, p.jitter_sigma);
    d *= fault.slow_factor;
    durations.push_back(d);
    total += d;
  }
  // An injected crash aborts the run after this much of the phase time.
  const double fail_budget = fault.fail ? total * fault.fail_fraction : -1.0;

  auto flag = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard lock(mutex_);
    cancel_flags_[task->uid()] = flag;
  }
  // Instrumentation strictly after every rng draw above (bit-exactness).
  if (const obs::RuntimeMetrics* m = metrics())
    m->exec_setup_seconds->observe(setup);
  if (obs::Tracer* tr = tracer())
    task->set_attempt_span(
        tr->begin(now_(), "attempt." + std::to_string(task->attempt()),
                  obs::categories::kAttempt, task->trace_span()));

  pool_.submit([this, task = std::move(task), on_complete = std::move(on_complete),
                setup, durations = std::move(durations), fault, fail_budget,
                flag] {
    profiler_.record(now_(), task->uid(), hpc::events::kExecSetupStart);
    const double setup_t0 = now_();
    sleep_scaled(setup);
    if (obs::Tracer* tr = tracer()) {
      const obs::SpanId span =
          tr->begin(setup_t0, "exec_setup", obs::categories::kPhase,
                    task->attempt_span());
      tr->end(span, now_());
    }
    profiler_.record(now_(), task->uid(), hpc::events::kExecStart);

    bool cancelled = false;
    bool crashed = false;
    double spent = 0.0;
    const auto& phases = task->description().phases;
    for (std::size_t i = 0; i < phases.size(); ++i) {
      if (flag->load()) {
        cancelled = true;
        break;
      }
      double d = durations[i];
      if (fault.fail && spent + d >= fail_budget) {
        // Crash partway through this phase; the attempt's usage is not
        // recorded (it produced nothing), mirroring the simulated path.
        sleep_scaled(fail_budget - spent);
        crashed = true;
        break;
      }
      spent += d;
      const double t0 = now_();
      sleep_scaled(d);
      if (fault.fail) continue;  // doomed attempt: no usage accounting
      if (obs::Tracer* tr = tracer()) {
        const obs::SpanId span = tr->begin(
            t0, phases[i].name, obs::categories::kPhase, task->attempt_span());
        tr->end(span, now_());
      }
      recorder_.record(hpc::UsageInterval{.start = t0,
                                          .end = now_(),
                                          .cores = phases[i].cores,
                                          .gpus = phases[i].gpus,
                                          .cpu_intensity = phases[i].cpu_intensity,
                                          .gpu_intensity = phases[i].gpu_intensity,
                                          .task_uid = task->uid()});
    }
    // Re-check after the last phase: a cancel() that returned true just
    // before we left the loop must not see its task complete normally.
    if (!cancelled && !crashed && flag->load()) cancelled = true;

    const double now = now_();
    if (cancelled) {
      task->set_state(TaskState::kCancelled, now);
    } else if (crashed) {
      task->set_error("injected fault (attempt " +
                      std::to_string(task->attempt()) + ")");
      task->set_state(TaskState::kFailed, now);
    } else if (task->description().work) {
      // Ambient context: library code inside the work function can open
      // child spans under this attempt (see obs::ambient_span).
      obs::AmbientContext ambient(tracer(), task->attempt_span());
      try {
        task->set_result(task->description().work(*task));
        task->set_state(TaskState::kDone, now);
      } catch (const std::exception& e) {
        task->set_error(e.what());
        task->set_state(TaskState::kFailed, now);
      } catch (...) {
        task->set_error("unknown error");
        task->set_state(TaskState::kFailed, now);
      }
    } else {
      task->set_state(TaskState::kDone, now);
    }
    profiler_.record(now_(), task->uid(), hpc::events::kExecStop,
                     crashed ? "injected-fault" : "");
    if (const obs::RuntimeMetrics* m = metrics())
      m->task_run_seconds->observe(now_() -
                                   task->state_time(TaskState::kExecuting));
    if (obs::Tracer* tr = tracer()) {
      tr->attr(task->attempt_span(), "outcome",
               crashed ? "injected-fault"
                       : std::string(to_string(task->state())));
      tr->end(task->attempt_span(), now_());
    }
    {
      std::lock_guard lock(mutex_);
      cancel_flags_.erase(task->uid());
    }
    if (on_complete) on_complete(task);
  });
}

bool ThreadExecutor::cancel(const TaskPtr& task) {
  std::lock_guard lock(mutex_);
  const auto it = cancel_flags_.find(task->uid());
  if (it == cancel_flags_.end()) return false;
  it->second->store(true);
  return true;
}

}  // namespace impress::rp
