#include "runtime/remote_task.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace impress::rp {

namespace {

using common::Json;

double num_or(const Json& obj, const std::string& key, double fallback) {
  return obj.contains(key) ? obj.at(key).as_number() : fallback;
}

std::string str_or(const Json& obj, const std::string& key) {
  return obj.contains(key) ? obj.at(key).as_string() : std::string{};
}

Json phase_to_json(const TaskPhase& p) {
  Json::Object o;
  o["name"] = p.name;
  o["duration_s"] = p.duration_s;
  o["jitter_sigma"] = p.jitter_sigma;
  o["cores"] = static_cast<double>(p.cores);
  o["gpus"] = static_cast<double>(p.gpus);
  o["cpu_intensity"] = p.cpu_intensity;
  o["gpu_intensity"] = p.gpu_intensity;
  return o;
}

TaskPhase phase_from_json(const Json& j) {
  TaskPhase p;
  p.name = str_or(j, "name");
  p.duration_s = num_or(j, "duration_s", 0.0);
  p.jitter_sigma = num_or(j, "jitter_sigma", 0.0);
  p.cores = static_cast<std::uint32_t>(num_or(j, "cores", 0.0));
  p.gpus = static_cast<std::uint32_t>(num_or(j, "gpus", 0.0));
  p.cpu_intensity = num_or(j, "cpu_intensity", 1.0);
  p.gpu_intensity = num_or(j, "gpu_intensity", 1.0);
  return p;
}

}  // namespace

TaskDescription RemoteTaskSpec::to_description() const {
  TaskDescription d;
  d.name = name;
  d.resources = resources;
  d.phases = phases;
  d.priority = priority;
  d.retry = retry;
  d.metadata = metadata;
  return d;
}

RemoteTaskSpec remote_task_spec(const TaskDescription& d) {
  RemoteTaskSpec spec;
  spec.name = d.name;
  spec.resources = d.resources;
  spec.phases = d.phases;
  spec.priority = d.priority;
  spec.retry = d.retry;
  spec.metadata = d.metadata;
  return spec;
}

Json to_json(const RemoteTaskSpec& spec) {
  Json::Object o;
  o["name"] = spec.name;
  Json::Object res;
  res["cores"] = static_cast<double>(spec.resources.cores);
  res["gpus"] = static_cast<double>(spec.resources.gpus);
  res["mem_gb"] = spec.resources.mem_gb;
  o["resources"] = std::move(res);
  Json::Array phases;
  phases.reserve(spec.phases.size());
  for (const TaskPhase& p : spec.phases) phases.push_back(phase_to_json(p));
  o["phases"] = std::move(phases);
  o["priority"] = static_cast<double>(spec.priority);
  Json::Object retry;
  retry["max_attempts"] = static_cast<double>(spec.retry.max_attempts);
  retry["backoff_initial_s"] = spec.retry.backoff_initial_s;
  retry["backoff_multiplier"] = spec.retry.backoff_multiplier;
  retry["backoff_jitter"] = spec.retry.backoff_jitter;
  retry["attempt_timeout_s"] = spec.retry.attempt_timeout_s;
  o["retry"] = std::move(retry);
  Json::Object meta;
  for (const auto& [k, v] : spec.metadata) meta[k] = v;
  o["metadata"] = std::move(meta);
  return o;
}

RemoteTaskSpec remote_task_spec_from_json(const Json& json) {
  if (!json.is_object()) {
    throw std::invalid_argument("RemoteTaskSpec: expected a JSON object");
  }
  RemoteTaskSpec spec;
  spec.name = str_or(json, "name");
  if (json.contains("resources")) {
    const Json& r = json.at("resources");
    spec.resources.cores = static_cast<std::uint32_t>(num_or(r, "cores", 1.0));
    spec.resources.gpus = static_cast<std::uint32_t>(num_or(r, "gpus", 0.0));
    spec.resources.mem_gb = num_or(r, "mem_gb", 0.0);
  }
  if (json.contains("phases")) {
    for (const Json& p : json.at("phases").as_array()) {
      spec.phases.push_back(phase_from_json(p));
    }
  }
  spec.priority = static_cast<int>(num_or(json, "priority", 0.0));
  if (json.contains("retry")) {
    const Json& r = json.at("retry");
    spec.retry.max_attempts =
        static_cast<int>(num_or(r, "max_attempts", 1.0));
    spec.retry.backoff_initial_s = num_or(r, "backoff_initial_s", 0.0);
    spec.retry.backoff_multiplier = num_or(r, "backoff_multiplier", 2.0);
    spec.retry.backoff_jitter = num_or(r, "backoff_jitter", 0.0);
    spec.retry.attempt_timeout_s = num_or(r, "attempt_timeout_s", 0.0);
  }
  if (json.contains("metadata")) {
    for (const auto& [k, v] : json.at("metadata").as_object()) {
      spec.metadata[k] = v.as_string();
    }
  }
  return spec;
}

Json to_json(const RemoteTaskOutcome& outcome) {
  Json::Object o;
  o["name"] = outcome.name;
  o["uid"] = outcome.uid;
  o["state"] = outcome.state;
  o["error"] = outcome.error;
  o["attempts"] = static_cast<double>(outcome.attempts);
  o["duration_s"] = outcome.duration_s;
  return o;
}

RemoteTaskOutcome remote_task_outcome_from_json(const Json& json) {
  if (!json.is_object()) {
    throw std::invalid_argument("RemoteTaskOutcome: expected a JSON object");
  }
  RemoteTaskOutcome outcome;
  outcome.name = str_or(json, "name");
  outcome.uid = str_or(json, "uid");
  outcome.state = str_or(json, "state");
  outcome.error = str_or(json, "error");
  outcome.attempts = static_cast<int>(num_or(json, "attempts", 1.0));
  outcome.duration_s = num_or(json, "duration_s", 0.0);
  return outcome;
}

RemoteTaskOutcome run_remote_task(Session& session,
                                  const RemoteTaskSpec& spec) {
  const double submitted_at = session.now();
  const TaskPtr task = session.task_manager().submit(spec.to_description());
  session.run();

  RemoteTaskOutcome outcome;
  outcome.name = spec.name;
  outcome.uid = task->uid();
  outcome.state = std::string(to_string(task->state()));
  outcome.error = task->error();
  outcome.attempts = task->attempt();
  const double terminal_at = session.now();
  outcome.duration_s =
      std::isnan(terminal_at) ? 0.0 : terminal_at - submitted_at;
  return outcome;
}

}  // namespace impress::rp
