// Agent-side scheduler: orders waiting tasks and places them onto the
// pilot's resource pool.
//
// Policies:
//  * kFifo     — strict submission order; the queue head blocks everything
//                behind it (models a plain sequential backend).
//  * kBackfill — any waiting task that fits may start, higher priority and
//                earlier submission first. This is what lets IM-RP fill
//                idle cores with sub-pipeline tasks while a wide AlphaFold
//                feature stage is still running (paper §III-B).

#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "hpc/resource_pool.hpp"
#include "runtime/task.hpp"

namespace impress::rp {

enum class SchedulerPolicy { kFifo, kBackfill };

[[nodiscard]] std::string_view to_string(SchedulerPolicy p) noexcept;

class Scheduler {
 public:
  /// `place` is invoked for every task the scheduler starts; the caller
  /// (the pilot) launches it on its executor.
  using PlaceFn = std::function<void(TaskPtr, hpc::Allocation)>;

  Scheduler(SchedulerPolicy policy, hpc::ResourcePool& pool, PlaceFn place)
      : policy_(policy), pool_(pool), place_(std::move(place)) {}

  /// Add a task to the waiting queue (does not schedule yet). Under
  /// kBackfill the queue is kept in priority order here — higher priority
  /// first, submission order preserved within a class — so try_schedule
  /// never has to sort.
  void enqueue(TaskPtr task);

  /// Remove a queued task; returns false if it is not waiting here.
  bool remove(const TaskPtr& task);

  /// Remove and return every waiting task (in queue order). Used when a
  /// pilot fails: its backlog is handed back to the TaskManager for
  /// re-routing instead of stranding.
  [[nodiscard]] std::deque<TaskPtr> drain();

  /// Place as many waiting tasks as the policy and free resources allow.
  /// Returns the number of tasks started.
  [[nodiscard]] std::size_t try_schedule();

  [[nodiscard]] std::size_t queue_length() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] SchedulerPolicy policy() const noexcept { return policy_; }

 private:
  SchedulerPolicy policy_;
  hpc::ResourcePool& pool_;
  PlaceFn place_;
  std::deque<TaskPtr> queue_;
};

}  // namespace impress::rp
