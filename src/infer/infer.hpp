// Inference-server surrogate: deterministic GPU batching accounting
// between the executors and the AlphaFold / ProteinMPNN model calls.
//
// Real adaptive-design middleware does not run one model invocation per
// task: requests funnel to a resident inference server that coalesces
// them into GPU batches, amortizing weight residency and launch setup
// over up to max_batch requests at the cost of bounded (max_linger_s)
// queueing delay. This module reproduces that component as a surrogate:
// the science (the actual predict/design call) is computed synchronously
// by the requesting executor with the caller's rng, while the batching is
// modeled as deterministic accounting over request arrival times.
//
// Determinism contract: batching on/off, batch size, linger, cost models
// and GPU speed factors are bit-unobservable in campaign results. fold()
// replicates FoldCache::predict exactly (same key, same lookup/insert
// sequence, same rng advance) and design() runs the generator call
// unchanged — the server adds counters, never behaviour. What batching
// *would* have changed — per-dispatch GPU seconds — is reported as
// modeled latency per stream:
//
//   batch_latency(n) = (setup_s + n * per_item_s) / speed_factor
//
// so a full batch of 8 under a setup cost 6x the per-item cost models the
// classic ~4x throughput gain over one-request-per-dispatch, and a mixed
// fleet's slowest GPU generation (speed_factor = min over the serving
// nodes' hpc::NodeSpec::gpu_speed_factor) bounds every batch it serves.
//
// The accounting is NOT part of campaign checkpoints: a resumed campaign
// restarts its batching statistics at zero while the science stays
// bit-exact (docs/inference.md).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "fold/fold.hpp"
#include "fold/fold_cache.hpp"
#include "mpnn/mpnn.hpp"

namespace impress::infer {

/// When a dispatch closes: at max_batch requests, or when a request
/// arrives more than max_linger_s after the open batch's first member
/// (the late request starts the next batch — the server would have
/// launched the stale one long before).
struct BatchPolicy {
  std::uint32_t max_batch = 8;
  double max_linger_s = 600.0;
};

/// Per-dispatch GPU latency model: fixed setup (weight load, graph
/// capture, host/device staging) plus a linear per-item cost.
struct GpuCostModel {
  double setup_s = 360.0;
  double per_item_s = 1800.0;

  /// Modeled latency of one dispatch of n items on a GPU `speed_factor`
  /// times faster than the calibration baseline.
  [[nodiscard]] double batch_latency_s(std::uint32_t n,
                                       double speed_factor = 1.0) const;
};

/// Lifetime accounting of one request stream (fold or design).
struct StreamStats {
  std::uint64_t requests = 0;    ///< all requests, including cache hits
  std::uint64_t cache_hits = 0;  ///< answered without a GPU dispatch
  std::uint64_t batches = 0;     ///< dispatches (closed batches)
  std::uint32_t max_batch = 0;   ///< largest batch dispatched
  double batched_gpu_s = 0.0;    ///< sum of batch_latency over dispatches
  double unbatched_gpu_s = 0.0;  ///< sum of batch_latency(1) per dispatch item

  /// Modeled throughput gain of batching: unbatched / batched GPU
  /// seconds for the same work (1.0 when nothing was dispatched).
  [[nodiscard]] double speedup() const noexcept;
};

/// Online batch-size selection from observed stage-completion cadence.
/// Pure arithmetic on the virtual timestamps the coordinator feeds it, so
/// decisions replay bit-for-bit in simulated mode: an EWMA of completion
/// gaps estimates the arrival rate, and the chosen size is the largest
/// batch that fills within the linger budget at that rate,
///
///   batch = clamp(1 + floor(max_linger_s / ewma_gap), min, max).
class BatchTuner {
 public:
  struct Config {
    double ewma_alpha = 0.25;      ///< weight of the newest gap
    std::uint32_t min_batch = 1;
    std::uint32_t max_batch = 16;
    double max_linger_s = 600.0;   ///< queueing-delay budget per batch
  };

  BatchTuner(Config config, std::uint32_t initial_batch);

  /// Observe one stage completion at virtual time now_s. Returns the new
  /// batch size when the decision changes it, nullopt otherwise.
  [[nodiscard]] std::optional<std::uint32_t> observe(double now_s);

  [[nodiscard]] std::uint32_t batch_size() const noexcept { return batch_; }
  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }

 private:
  Config config_;
  std::uint32_t batch_;
  double last_s_ = -1.0;
  double ewma_gap_ = 0.0;
  bool have_gap_ = false;
  std::uint64_t decisions_ = 0;
};

/// Everything the campaign harvest reports about a server (plain data,
/// session-dump serializable). `enabled` distinguishes "ran without a
/// server" from "ran with an idle one".
struct ServerSnapshot {
  bool enabled = false;
  StreamStats fold;
  StreamStats design;
  std::uint32_t batch_size = 0;       ///< live (possibly tuned) size
  double speed_factor = 1.0;
  std::uint64_t tuner_decisions = 0;  ///< batch-size changes applied
};

class InferenceServer {
 public:
  struct Config {
    BatchPolicy policy;
    /// Fold dispatches: setup ~ weight residency + compilation, per-item
    /// ~ the calibrated AlphaFold inference stage.
    GpuCostModel fold_cost{.setup_s = 360.0, .per_item_s = 1800.0};
    /// Design (ProteinMPNN-class) dispatches: far lighter weights.
    GpuCostModel design_cost{.setup_s = 60.0, .per_item_s = 360.0};
    double speed_factor = 1.0;
    /// Enable the BatchTuner: the coordinator feeds fold completions to
    /// observe_completion() and the chosen size applies to later batches.
    bool adaptive = false;
    BatchTuner::Config tuner;
  };

  InferenceServer();  ///< default Config
  explicit InferenceServer(Config config);

  /// Fold request at virtual time now_s. With a cache, replicates
  /// FoldCache::predict bit-for-bit (same key derivation, lookup/insert
  /// sequence and counter updates); a hit skips the GPU dispatch and is
  /// accounted as such. Thread-safe; the model call runs outside the
  /// server lock.
  [[nodiscard]] fold::Prediction fold(
      const fold::AlphaFold& folder,
      const std::shared_ptr<fold::FoldCache>& cache,
      const protein::Complex& complex,
      const protein::FitnessLandscape& landscape, common::Rng& rng,
      double now_s);

  /// Design request at virtual time now_s: accounts the dispatch, then
  /// runs `compute` (the generator call) unchanged on the caller thread.
  [[nodiscard]] std::vector<mpnn::ScoredSequence> design(
      const std::function<std::vector<mpnn::ScoredSequence>()>& compute,
      double now_s);

  /// Feed one fold-stage completion (virtual time) to the tuner. Returns
  /// the new batch size when the decision changed it; always nullopt when
  /// the server is not adaptive.
  [[nodiscard]] std::optional<std::uint32_t> observe_completion(double now_s);

  /// Slowest GPU generation serving the streams (min over the platform's
  /// NodeSpec::gpu_speed_factor); the campaign sets this from its
  /// configured pilots. Applies to subsequent dispatches only.
  void set_speed_factor(double factor);

  /// Accounting so far, with any open batches reported as if dispatched.
  [[nodiscard]] ServerSnapshot snapshot() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  struct Stream {
    StreamStats stats;
    std::uint32_t open = 0;     ///< requests in the open batch
    double open_since = 0.0;    ///< arrival of the open batch's first member
  };

  void dispatch(Stream& stream, const GpuCostModel& cost, double now_s);
  void close_batch(Stream& stream, const GpuCostModel& cost) const;
  void record_hit(Stream& stream);

  mutable std::mutex mutex_;
  Config config_;
  std::uint32_t batch_size_;  ///< live max batch (tuned when adaptive)
  double speed_factor_;
  Stream fold_;
  Stream design_;
  BatchTuner tuner_;
};

}  // namespace impress::infer
