#include "infer/infer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace impress::infer {

double GpuCostModel::batch_latency_s(std::uint32_t n,
                                     double speed_factor) const {
  if (n == 0) return 0.0;
  return (setup_s + static_cast<double>(n) * per_item_s) / speed_factor;
}

double StreamStats::speedup() const noexcept {
  if (batched_gpu_s <= 0.0) return 1.0;
  return unbatched_gpu_s / batched_gpu_s;
}

BatchTuner::BatchTuner(Config config, std::uint32_t initial_batch)
    : config_(config),
      batch_(std::clamp(initial_batch, config.min_batch, config.max_batch)) {
  if (config_.min_batch == 0 || config_.min_batch > config_.max_batch)
    throw std::invalid_argument("BatchTuner: need 0 < min_batch <= max_batch");
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0)
    throw std::invalid_argument("BatchTuner: ewma_alpha must be in (0, 1]");
}

std::optional<std::uint32_t> BatchTuner::observe(double now_s) {
  if (last_s_ < 0.0) {
    last_s_ = now_s;
    return std::nullopt;
  }
  const double gap = std::max(0.0, now_s - last_s_);
  last_s_ = now_s;
  ewma_gap_ = have_gap_
                  ? config_.ewma_alpha * gap +
                        (1.0 - config_.ewma_alpha) * ewma_gap_
                  : gap;
  have_gap_ = true;
  // Simultaneous completions (gap -> 0) mean arrivals outpace any linger
  // budget: saturate at max_batch rather than divide by zero.
  const std::uint32_t want =
      ewma_gap_ <= 1e-9
          ? config_.max_batch
          : static_cast<std::uint32_t>(std::clamp(
                1.0 + std::floor(config_.max_linger_s / ewma_gap_),
                static_cast<double>(config_.min_batch),
                static_cast<double>(config_.max_batch)));
  if (want == batch_) return std::nullopt;
  batch_ = want;
  ++decisions_;
  return batch_;
}

InferenceServer::InferenceServer() : InferenceServer(Config{}) {}

InferenceServer::InferenceServer(Config config)
    : config_(config),
      batch_size_(config.policy.max_batch),
      speed_factor_(config.speed_factor),
      tuner_(config.tuner, config.policy.max_batch) {
  if (config_.policy.max_batch == 0)
    throw std::invalid_argument("InferenceServer: max_batch must be > 0");
  if (!(config_.speed_factor > 0.0))
    throw std::invalid_argument("InferenceServer: speed_factor must be > 0");
}

void InferenceServer::close_batch(Stream& stream,
                                  const GpuCostModel& cost) const {
  if (stream.open == 0) return;
  ++stream.stats.batches;
  stream.stats.max_batch = std::max(stream.stats.max_batch, stream.open);
  stream.stats.batched_gpu_s +=
      cost.batch_latency_s(stream.open, speed_factor_);
  stream.open = 0;
}

void InferenceServer::dispatch(Stream& stream, const GpuCostModel& cost,
                               double now_s) {
  std::lock_guard lock(mutex_);
  ++stream.stats.requests;
  stream.stats.unbatched_gpu_s += cost.batch_latency_s(1, speed_factor_);
  if (stream.open > 0 &&
      now_s - stream.open_since > config_.policy.max_linger_s)
    close_batch(stream, cost);
  if (stream.open == 0) stream.open_since = now_s;
  ++stream.open;
  if (stream.open >= batch_size_) close_batch(stream, cost);
}

void InferenceServer::record_hit(Stream& stream) {
  std::lock_guard lock(mutex_);
  ++stream.stats.requests;
  ++stream.stats.cache_hits;
}

fold::Prediction InferenceServer::fold(
    const fold::AlphaFold& folder,
    const std::shared_ptr<fold::FoldCache>& cache,
    const protein::Complex& complex,
    const protein::FitnessLandscape& landscape, common::Rng& rng,
    double now_s) {
  if (cache) {
    // Mirror FoldCache::predict exactly — same key, span, lookup/insert
    // order and counter updates — so campaigns with and without a server
    // agree on every cache statistic, not just the science.
    const std::uint64_t k = fold::FoldCache::key(
        fold::FoldCache::content_key(complex, landscape, folder.config()),
        rng);
    obs::ScopedSpan span = obs::ambient_span("fold.cache");
    if (auto cached = cache->lookup(k)) {
      span.attr("cache", "hit");
      record_hit(fold_);
      return std::move(*cached);
    }
    span.attr("cache", "miss");
    dispatch(fold_, config_.fold_cost, now_s);
    fold::Prediction fresh = folder.predict(complex, landscape, rng);
    cache->insert(k, fresh);
    return fresh;
  }
  dispatch(fold_, config_.fold_cost, now_s);
  return folder.predict(complex, landscape, rng);
}

std::vector<mpnn::ScoredSequence> InferenceServer::design(
    const std::function<std::vector<mpnn::ScoredSequence>()>& compute,
    double now_s) {
  dispatch(design_, config_.design_cost, now_s);
  return compute();
}

std::optional<std::uint32_t> InferenceServer::observe_completion(
    double now_s) {
  std::lock_guard lock(mutex_);
  if (!config_.adaptive) return std::nullopt;
  const auto chosen = tuner_.observe(now_s);
  if (chosen) batch_size_ = *chosen;
  return chosen;
}

void InferenceServer::set_speed_factor(double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument(
        "InferenceServer::set_speed_factor: factor must be > 0");
  std::lock_guard lock(mutex_);
  speed_factor_ = factor;
}

ServerSnapshot InferenceServer::snapshot() const {
  std::lock_guard lock(mutex_);
  ServerSnapshot snap;
  snap.enabled = true;
  snap.fold = fold_.stats;
  snap.design = design_.stats;
  // Report open batches as if dispatched (the real server would flush
  // them at linger expiry) without mutating the live accounting.
  const auto flush = [this](StreamStats& stats, const Stream& stream,
                            const GpuCostModel& cost) {
    if (stream.open == 0) return;
    ++stats.batches;
    stats.max_batch = std::max(stats.max_batch, stream.open);
    stats.batched_gpu_s += cost.batch_latency_s(stream.open, speed_factor_);
  };
  flush(snap.fold, fold_, config_.fold_cost);
  flush(snap.design, design_, config_.design_cost);
  snap.batch_size = batch_size_;
  snap.speed_factor = speed_factor_;
  snap.tuner_decisions = tuner_.decisions();
  return snap;
}

}  // namespace impress::infer
