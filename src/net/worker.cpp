#include "net/worker.hpp"

#include <stdexcept>

#include "common/json.hpp"
#include "core/checkpoint.hpp"
#include "core/session_dump.hpp"
#include "core/shard.hpp"
#include "runtime/remote_task.hpp"

namespace impress::net {

WorkerNode::WorkerNode(WorkerConfig config, std::shared_ptr<Link> link,
                       const std::vector<protein::DesignTarget>* universe)
    : config_(std::move(config)),
      link_(std::move(link)),
      universe_(universe) {}

void WorkerNode::pump() {
  if (dead_) {
    return;
  }
  if (!hello_sent_) {
    send(HelloMsg{.worker_id = config_.worker_id,
                  .wire_version = kWireVersion,
                  .slots = 1,
                  .build_tag = config_.build_tag});
    hello_sent_ = true;
  }
  while (!dead_) {
    std::optional<Message> m = link_->poll();
    if (!m) {
      break;
    }
    handle(*m);
  }
}

void WorkerNode::handle(const Message& m) {
  if (const auto* assign = std::get_if<AssignShardMsg>(&m)) {
    // Last assignment wins; a duplicate (resubmission) is harmless.
    assignment_ = *assign;
    return;
  }
  if (const auto* hb = std::get_if<HeartbeatMsg>(&m)) {
    send(HeartbeatMsg{
        .worker_id = config_.worker_id,
        .tick = hb->tick,  // echo the probe's clock
        .active_shard = assignment_ ? assignment_->shard_id : kNoShard,
        .busy = 0});
    return;
  }
  if (const auto* submit = std::get_if<TaskSubmitMsg>(&m)) {
    if (submit->kind == TaskSubmitMsg::Kind::kRunShard) {
      run_shard(*submit);
    } else {
      run_remote(*submit);
    }
    return;
  }
  if (std::get_if<WorkerDeadMsg>(&m) != nullptr) {
    return;  // peer obituary; nothing to clean up with one slot
  }
  // HELLO / TASK_RESULT / CHECKPOINT_SHARD never flow coordinator->worker.
}

void WorkerNode::run_shard(const TaskSubmitMsg& submit) {
  // Idempotency: a completed (shard, epoch) re-serves its cached result.
  const auto key = std::make_pair(submit.shard_id, submit.epoch);
  if (const auto it = result_cache_.find(key); it != result_cache_.end()) {
    TaskResultMsg cached = it->second;
    cached.task_seq = submit.task_seq;
    send(cached);
    return;
  }
  if (!assignment_ || assignment_->shard_id != submit.shard_id ||
      assignment_->epoch != submit.epoch) {
    // The matching ASSIGN_SHARD was dropped or is still in flight; the
    // coordinator's resubmission timer will retry the pair.
    return;
  }
  const AssignShardMsg assign = *assignment_;

  TaskResultMsg result;
  result.shard_id = submit.shard_id;
  result.epoch = submit.epoch;
  result.task_seq = submit.task_seq;
  try {
    if (assign.campaign_name != config_.campaign.name) {
      throw std::runtime_error("campaign mismatch: assigned '" +
                               assign.campaign_name + "', configured '" +
                               config_.campaign.name + "'");
    }
    core::CampaignConfig shard_config = core::shard_campaign_config(
        config_.campaign, config_.checkpoint_every);
    shard_config.session.seed = assign.seed;
    checkpoints_this_run_ = 0;
    shard_config.checkpoint.halt_after = config_.kill.die_at_checkpoint;
    shard_config.checkpoint.sink =
        [this, &assign](const core::CampaignCheckpoint& doc) {
          ++checkpoints_this_run_;
          const bool fatal =
              config_.kill.die_at_checkpoint > 0 &&
              checkpoints_this_run_ >= config_.kill.die_at_checkpoint;
          if (fatal && !config_.kill.ship_final) {
            return;  // crash before the document leaves the process
          }
          send(CheckpointShardMsg{.shard_id = assign.shard_id,
                                  .epoch = assign.epoch,
                                  .ordinal = doc.ordinal,
                                  .checkpoint_json = to_json(doc).dump()});
        };
    if (config_.kill.die_at_checkpoint > 0 &&
        shard_config.checkpoint.every_n_completions == 0) {
      throw std::runtime_error(
          "WorkerKillPlan requires a checkpoint cadence");
    }

    // Resolve shard membership against the local universe, in wire order.
    std::vector<protein::DesignTarget> targets;
    targets.reserve(assign.target_names.size());
    for (const std::string& name : assign.target_names) {
      const protein::DesignTarget* found = nullptr;
      for (const protein::DesignTarget& t : *universe_) {
        if (t.name == name) {
          found = &t;
          break;
        }
      }
      if (found == nullptr) {
        throw std::runtime_error("unknown target '" + name + "'");
      }
      targets.push_back(*found);
    }

    core::Campaign campaign(shard_config);
    core::CampaignResult shard_result;
    if (assign.checkpoint_json.empty()) {
      shard_result = campaign.run(targets);
    } else {
      const core::CampaignCheckpoint doc = core::campaign_checkpoint_from_json(
          common::Json::parse(assign.checkpoint_json));
      shard_result = campaign.resume(targets, doc);
    }

    if (config_.kill.die_at_checkpoint > 0 &&
        checkpoints_this_run_ >= config_.kill.die_at_checkpoint) {
      // The engine was halted mid-run: this process "crashed". The
      // partial result is meaningless; go silent and close the link —
      // the kernel would send FIN/RST for a dead process, and the
      // coordinator uses that as its prompt, unambiguous death signal
      // (the heartbeat timeout covers silent partitions instead).
      dead_ = true;
      link_->close();
      return;
    }
    result.status = TaskResultMsg::Status::kOk;
    result.payload = to_json(shard_result).dump();
  } catch (const std::exception& e) {
    result.status = TaskResultMsg::Status::kError;
    result.payload = e.what();
  }
  result_cache_[key] = result;
  assignment_.reset();
  send(result);
}

void WorkerNode::run_remote(const TaskSubmitMsg& submit) {
  if (const auto it = remote_cache_.find(submit.task_seq);
      it != remote_cache_.end()) {
    send(it->second);
    return;
  }
  TaskResultMsg result;
  result.shard_id = submit.shard_id;
  result.epoch = submit.epoch;
  result.task_seq = submit.task_seq;
  try {
    const rp::RemoteTaskSpec spec =
        rp::remote_task_spec_from_json(common::Json::parse(submit.payload));
    // Each remote task runs in its own session: deterministic (same seed,
    // same spec => same outcome) and fully isolated from shard runs.
    rp::Session session(config_.campaign.session);
    session.submit_pilot(config_.campaign.pilot);
    const rp::RemoteTaskOutcome outcome = rp::run_remote_task(session, spec);
    result.status = outcome.ok() ? TaskResultMsg::Status::kOk
                                 : TaskResultMsg::Status::kError;
    result.payload = to_json(outcome).dump();
  } catch (const std::exception& e) {
    result.status = TaskResultMsg::Status::kError;
    result.payload = e.what();
  }
  remote_cache_[submit.task_seq] = result;
  send(result);
}

void WorkerNode::send(const Message& m) {
  if (!dead_) {
    link_->send(m);
  }
}

}  // namespace impress::net
