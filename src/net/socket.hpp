// SocketLink: the real-socket transport — a nonblocking stream fd pumped
// with poll(2) and reassembled incrementally with FrameAssembler.
//
// Production shape is an AF_UNIX/TCP stream per worker; make_socket_pair()
// builds a connected AF_UNIX socketpair so tests exercise the identical
// read/write/poll machinery without touching the filesystem or network
// namespace. Partial writes are buffered and flushed opportunistically on
// every send()/poll() call, so the transport never blocks the caller.
//
// A framing error from the peer (bad magic, length lie, version skew)
// poisons the assembler and closes the link: a byte stream has no
// resynchronization point after a malformed header (docs/fabric.md).

#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/transport.hpp"

namespace impress::net {

class SocketLink final : public Link {
 public:
  /// Takes ownership of a connected stream fd and switches it to
  /// non-blocking mode.
  explicit SocketLink(int fd);
  ~SocketLink() override;

  SocketLink(const SocketLink&) = delete;
  SocketLink& operator=(const SocketLink&) = delete;

  bool send(const Message& m) override;
  [[nodiscard]] std::optional<Message> poll() override;
  void close() override;
  [[nodiscard]] bool closed() const override;
  [[nodiscard]] std::string_view kind() const noexcept override {
    return "socket";
  }

  /// Block up to timeout_ms for the fd to become readable (poll(2)).
  /// Returns true if readable; false on timeout or closed link.
  bool wait_readable(int timeout_ms);

 private:
  /// Drain as much of tx_backlog_ as the kernel will take right now.
  void flush_tx();
  /// Pull available bytes off the fd into the assembler.
  void drain_rx();

  int fd_;
  bool closed_ = false;
  std::vector<std::uint8_t> tx_backlog_;
  std::size_t tx_offset_ = 0;  ///< bytes of tx_backlog_ already written
  FrameAssembler assembler_;
};

/// Connected AF_UNIX socketpair wrapped as two Links. Throws
/// std::system_error if the kernel refuses.
[[nodiscard]] std::pair<std::unique_ptr<SocketLink>, std::unique_ptr<SocketLink>>
make_socket_pair();

}  // namespace impress::net
