// WorkerNode: the execution side of the campaign fabric (docs/fabric.md).
//
// A worker owns one Link to the coordinator and a local copy of the
// campaign configuration plus the target universe (config distribution is
// out of band, as with a RADICAL-Pilot agent bootstrap — the wire carries
// shard *membership* by name, seeds and checkpoint documents, never
// closures). State machine:
//
//   idle --ASSIGN_SHARD--> armed --TASK_SUBMIT(run_shard)--> running
//        --(campaign completes)--> idle        [TASK_RESULT sent + cached]
//        --(kill plan fires)-----> dead        [silent forever]
//
// Shard execution reuses the ordinary core::Campaign machinery: from
// scratch when the assignment carries no checkpoint, via the PR-5
// bit-exact Campaign::resume when it does. Checkpoints cut on the
// configured cadence are shipped as CHECKPOINT_SHARD frames through the
// in-memory CheckpointConfig sink.
//
// Duplicate TASK_SUBMITs for a (shard, epoch) already completed re-send
// the cached TASK_RESULT — the coordinator resubmits on silence, so the
// worker must be idempotent. Frames for a stale epoch are answered with
// the *current* knowledge only when epochs match; otherwise dropped.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "net/transport.hpp"
#include "protein/datasets.hpp"

namespace impress::net {

/// Failure injection: die while cutting the Nth checkpoint of the current
/// run (counted per run, not per lineage — a worker resuming a shard
/// counts from 1 again).
struct WorkerKillPlan {
  std::size_t die_at_checkpoint = 0;  ///< 0 = never die
  /// Ship the fatal checkpoint before going silent? Both settings must
  /// yield bit-identical campaign results (the failover contract).
  bool ship_final = false;
};

struct WorkerConfig {
  std::uint32_t worker_id = 0;
  /// Base campaign configuration; must match the coordinator's (validated
  /// against AssignShardMsg.campaign_name).
  core::CampaignConfig campaign;
  /// Checkpoint cadence (completions) for shard runs; must equal the
  /// coordinator's FabricConfig.checkpoint_every or bit-identity breaks.
  std::size_t checkpoint_every = 0;
  WorkerKillPlan kill;
  std::string build_tag = "impress-net/1";
};

class WorkerNode {
 public:
  /// `universe` must outlive the node (targets resolve by name from it).
  WorkerNode(WorkerConfig config, std::shared_ptr<Link> link,
             const std::vector<protein::DesignTarget>* universe);

  /// Drain the link and act on every deliverable frame. A run_shard
  /// submit executes the whole shard campaign synchronously inside this
  /// call. No-op once dead.
  void pump();

  [[nodiscard]] bool dead() const noexcept { return dead_; }
  [[nodiscard]] std::uint32_t id() const noexcept {
    return config_.worker_id;
  }
  /// Checkpoints cut by the current/last run (kill-plan bookkeeping).
  [[nodiscard]] std::size_t checkpoints_cut() const noexcept {
    return checkpoints_this_run_;
  }

 private:
  void handle(const Message& m);
  void run_shard(const TaskSubmitMsg& submit);
  void run_remote(const TaskSubmitMsg& submit);
  void send(const Message& m);

  WorkerConfig config_;
  std::shared_ptr<Link> link_;
  const std::vector<protein::DesignTarget>* universe_;
  bool hello_sent_ = false;
  bool dead_ = false;

  std::optional<AssignShardMsg> assignment_;
  std::size_t checkpoints_this_run_ = 0;
  /// Last terminal result per (shard, epoch), for idempotent resubmits.
  std::map<std::pair<std::uint32_t, std::uint32_t>, TaskResultMsg>
      result_cache_;
  /// Same, for kRemoteTask submits (keyed by task_seq — remote tasks are
  /// not shard-scoped).
  std::map<std::uint64_t, TaskResultMsg> remote_cache_;
};

}  // namespace impress::net
