// LoopbackNet: the deterministic in-process transport.
//
// All links created from one LoopbackNet share a virtual tick clock and a
// seeded chaos stream. Every send encodes the message through the real
// wire framer, draws (under the net mutex, in send order) a delivery
// delay, an optional reorder penalty and a drop verdict from the seeded
// rng, and files the encoded frame into the destination queue keyed by
// (deliver_tick, send_seq). poll() decodes and returns frames whose
// deliver tick has passed, in that key order — so for a fixed seed and
// send sequence, delivery order (and every drop) replays exactly.
//
// Thread-safety: one TrackedMutex guards the whole net; links may be
// pumped from worker threads (the stress suite does) at the cost of
// send-order — and therefore chaos — determinism. Single-threaded
// driving keeps the full determinism contract (docs/fabric.md).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/lockdep.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"

namespace impress::net {

struct ChaosConfig {
  std::uint64_t seed = 0;
  double drop_rate = 0.0;     ///< per-frame loss probability
  double reorder_rate = 0.0;  ///< probability of an extra reorder penalty
  std::uint32_t delay_min = 0;  ///< delivery delay, ticks (inclusive)
  std::uint32_t delay_max = 0;
  std::uint32_t reorder_extra = 4;  ///< max extra ticks a reordered frame waits
};

class LoopbackNet {
 public:
  struct Stats {
    std::uint64_t sent = 0;       ///< frames offered to the net
    std::uint64_t delivered = 0;  ///< frames handed to a poller
    std::uint64_t dropped = 0;
    std::uint64_t reordered = 0;  ///< frames that drew the reorder penalty
  };

  explicit LoopbackNet(ChaosConfig chaos = {});

  /// Create a connected link pair; `a_to_b`/`b_to_a` name the directions
  /// in diagnostics only.
  [[nodiscard]] std::pair<std::shared_ptr<Link>, std::shared_ptr<Link>>
  make_link_pair(std::string a_name, std::string b_name);

  /// Advance the virtual clock: frames scheduled at or before the new
  /// tick become deliverable.
  void advance(std::uint64_t ticks = 1);
  [[nodiscard]] std::uint64_t now() const;

  [[nodiscard]] Stats stats() const;

 private:
  friend class LoopbackLink;

  /// One direction of one pair: frames waiting for their deliver tick.
  struct Queue {
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::vector<std::uint8_t>>
        frames;  ///< (deliver_tick, send_seq) -> encoded frame
    bool closed = false;
  };

  /// Called by links with the net mutex NOT held.
  bool send_frame(std::size_t queue_index, const Message& m);
  [[nodiscard]] std::optional<Message> poll_frame(std::size_t queue_index);
  void close_pair(std::size_t q_ab, std::size_t q_ba);
  [[nodiscard]] bool queue_closed(std::size_t queue_index) const;

  // Mutex first: it guards everything below.
  mutable common::TrackedMutex mutex_{"net::LoopbackNet::mutex_"};
  ChaosConfig chaos_;
  common::Rng rng_;
  std::uint64_t tick_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<std::unique_ptr<Queue>> queues_;
  Stats stats_;
};

}  // namespace impress::net
