#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace impress::net {

std::string_view to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kAssignShard: return "ASSIGN_SHARD";
    case MsgType::kTaskSubmit: return "TASK_SUBMIT";
    case MsgType::kTaskResult: return "TASK_RESULT";
    case MsgType::kHeartbeat: return "HEARTBEAT";
    case MsgType::kCheckpointShard: return "CHECKPOINT_SHARD";
    case MsgType::kWorkerDead: return "WORKER_DEAD";
  }
  return "UNKNOWN";
}

bool is_valid_type(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(MsgType::kHello) &&
         raw <= static_cast<std::uint8_t>(MsgType::kWorkerDead);
}

MsgType type_of(const Message& m) noexcept {
  return std::visit(
      [](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, HelloMsg>) return MsgType::kHello;
        if constexpr (std::is_same_v<T, AssignShardMsg>)
          return MsgType::kAssignShard;
        if constexpr (std::is_same_v<T, TaskSubmitMsg>)
          return MsgType::kTaskSubmit;
        if constexpr (std::is_same_v<T, TaskResultMsg>)
          return MsgType::kTaskResult;
        if constexpr (std::is_same_v<T, HeartbeatMsg>)
          return MsgType::kHeartbeat;
        if constexpr (std::is_same_v<T, CheckpointShardMsg>)
          return MsgType::kCheckpointShard;
        if constexpr (std::is_same_v<T, WorkerDeadMsg>)
          return MsgType::kWorkerDead;
      },
      m);
}

// --- WireWriter -------------------------------------------------------------

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(std::string_view v) {
  if (v.size() > kMaxPayload)
    throw WireError("string field exceeds the payload ceiling");
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void WireWriter::str_list(const std::vector<std::string>& v) {
  if (v.size() > kMaxPayload / 4)
    throw WireError("string list exceeds the payload ceiling");
  u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) str(s);
}

// --- WireReader -------------------------------------------------------------

void WireReader::need(std::size_t n) const {
  if (n > size_ - pos_)
    throw WireError("payload truncated: field extends past the frame end");
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint32_t n = u32();
  // Validate the declared length against bytes actually present BEFORE
  // sizing any allocation from it: a lying length field must not be able
  // to drive an allocation bomb or an over-read.
  need(n);
  std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return out;
}

std::vector<std::string> WireReader::str_list() {
  const std::uint32_t n = u32();
  // Each entry costs at least its own 4-byte length prefix; a count that
  // cannot fit in the remaining bytes is a lie.
  if (static_cast<std::size_t>(n) * 4 > remaining())
    throw WireError("string list count exceeds the remaining payload");
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(str());
  return out;
}

void WireReader::finish() const {
  if (pos_ != size_)
    throw WireError("payload carries trailing bytes past the last field");
}

// --- per-type payload encoding ----------------------------------------------

namespace {

void encode_payload(const HelloMsg& m, WireWriter& w) {
  w.u32(m.worker_id);
  w.u16(m.wire_version);
  w.u32(m.slots);
  w.str(m.build_tag);
}

HelloMsg decode_hello(WireReader& r) {
  HelloMsg m;
  m.worker_id = r.u32();
  m.wire_version = r.u16();
  m.slots = r.u32();
  m.build_tag = r.str();
  return m;
}

void encode_payload(const AssignShardMsg& m, WireWriter& w) {
  w.u32(m.shard_id);
  w.u32(m.epoch);
  w.u64(m.seed);
  w.str(m.campaign_name);
  w.str_list(m.target_names);
  w.u64(m.checkpoint_ordinal);
  w.str(m.checkpoint_json);
}

AssignShardMsg decode_assign(WireReader& r) {
  AssignShardMsg m;
  m.shard_id = r.u32();
  m.epoch = r.u32();
  m.seed = r.u64();
  m.campaign_name = r.str();
  m.target_names = r.str_list();
  m.checkpoint_ordinal = r.u64();
  m.checkpoint_json = r.str();
  return m;
}

void encode_payload(const TaskSubmitMsg& m, WireWriter& w) {
  w.u32(m.shard_id);
  w.u32(m.epoch);
  w.u64(m.task_seq);
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.str(m.payload);
}

TaskSubmitMsg decode_submit(WireReader& r) {
  TaskSubmitMsg m;
  m.shard_id = r.u32();
  m.epoch = r.u32();
  m.task_seq = r.u64();
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(TaskSubmitMsg::Kind::kRunShard) &&
      kind != static_cast<std::uint8_t>(TaskSubmitMsg::Kind::kRemoteTask))
    throw WireError("TASK_SUBMIT carries an unknown kind");
  m.kind = static_cast<TaskSubmitMsg::Kind>(kind);
  m.payload = r.str();
  return m;
}

void encode_payload(const TaskResultMsg& m, WireWriter& w) {
  w.u32(m.shard_id);
  w.u32(m.epoch);
  w.u64(m.task_seq);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.str(m.payload);
}

TaskResultMsg decode_result(WireReader& r) {
  TaskResultMsg m;
  m.shard_id = r.u32();
  m.epoch = r.u32();
  m.task_seq = r.u64();
  const std::uint8_t status = r.u8();
  if (status != static_cast<std::uint8_t>(TaskResultMsg::Status::kOk) &&
      status != static_cast<std::uint8_t>(TaskResultMsg::Status::kError))
    throw WireError("TASK_RESULT carries an unknown status");
  m.status = static_cast<TaskResultMsg::Status>(status);
  m.payload = r.str();
  return m;
}

void encode_payload(const HeartbeatMsg& m, WireWriter& w) {
  w.u32(m.worker_id);
  w.u64(m.tick);
  w.u32(m.active_shard);
  w.u8(m.busy);
}

HeartbeatMsg decode_heartbeat(WireReader& r) {
  HeartbeatMsg m;
  m.worker_id = r.u32();
  m.tick = r.u64();
  m.active_shard = r.u32();
  m.busy = r.u8();
  if (m.busy > 1) throw WireError("HEARTBEAT busy flag is not 0/1");
  return m;
}

void encode_payload(const CheckpointShardMsg& m, WireWriter& w) {
  w.u32(m.shard_id);
  w.u32(m.epoch);
  w.u64(m.ordinal);
  w.str(m.checkpoint_json);
}

CheckpointShardMsg decode_checkpoint(WireReader& r) {
  CheckpointShardMsg m;
  m.shard_id = r.u32();
  m.epoch = r.u32();
  m.ordinal = r.u64();
  m.checkpoint_json = r.str();
  return m;
}

void encode_payload(const WorkerDeadMsg& m, WireWriter& w) {
  w.u32(m.worker_id);
  w.u32(m.shard_id);
  w.u32(m.epoch);
  w.str(m.reason);
}

WorkerDeadMsg decode_dead(WireReader& r) {
  WorkerDeadMsg m;
  m.worker_id = r.u32();
  m.shard_id = r.u32();
  m.epoch = r.u32();
  m.reason = r.str();
  return m;
}

Message decode_payload(MsgType type, const std::uint8_t* data,
                       std::size_t size) {
  WireReader r(data, size);
  Message m = [&]() -> Message {
    switch (type) {
      case MsgType::kHello: return decode_hello(r);
      case MsgType::kAssignShard: return decode_assign(r);
      case MsgType::kTaskSubmit: return decode_submit(r);
      case MsgType::kTaskResult: return decode_result(r);
      case MsgType::kHeartbeat: return decode_heartbeat(r);
      case MsgType::kCheckpointShard: return decode_checkpoint(r);
      case MsgType::kWorkerDead: return decode_dead(r);
    }
    throw WireError("frame header carries an unknown message type");
  }();
  r.finish();
  return m;
}

}  // namespace

// --- framing ----------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Message& m) {
  WireWriter payload;
  std::visit([&](const auto& msg) { encode_payload(msg, payload); }, m);
  const std::vector<std::uint8_t>& body = payload.bytes();
  if (body.size() > kMaxPayload)
    throw WireError("encoded payload exceeds kMaxPayload");

  WireWriter frame;
  frame.u8(kMagic0);
  frame.u8(kMagic1);
  frame.u8(kWireVersion);
  frame.u8(static_cast<std::uint8_t>(type_of(m)));
  frame.u32(static_cast<std::uint32_t>(body.size()));
  std::vector<std::uint8_t> out = frame.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

namespace {

/// Validate a header. Returns the payload length.
std::size_t check_header(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderSize) throw WireError("frame shorter than its header");
  if (data[0] != kMagic0 || data[1] != kMagic1)
    throw WireError("bad frame magic");
  if (data[2] != kWireVersion)
    throw WireError("wire version skew: peer speaks version " +
                    std::to_string(static_cast<int>(data[2])) +
                    ", this build speaks " +
                    std::to_string(static_cast<int>(kWireVersion)));
  if (!is_valid_type(data[3]))
    throw WireError("frame header carries an unknown message type");
  WireReader len_reader(data + 4, 4);
  const std::uint32_t len = len_reader.u32();
  if (len > kMaxPayload)
    throw WireError("length field exceeds the payload ceiling");
  return len;
}

}  // namespace

Message decode_frame(const std::uint8_t* data, std::size_t size) {
  const std::size_t len = check_header(data, size);
  if (size != kHeaderSize + len)
    throw WireError("frame length field disagrees with the bytes supplied");
  return decode_payload(static_cast<MsgType>(data[3]), data + kHeaderSize,
                        len);
}

// --- FrameAssembler ---------------------------------------------------------

void FrameAssembler::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned_)
    throw WireError("assembler poisoned by an earlier framing error");
  buf_.insert(buf_.end(), data, data + size);
}

std::optional<Message> FrameAssembler::next() {
  if (poisoned_)
    throw WireError("assembler poisoned by an earlier framing error");
  if (buf_.size() < kHeaderSize) return std::nullopt;
  std::size_t len = 0;
  try {
    len = check_header(buf_.data(), buf_.size());
  } catch (const WireError&) {
    poisoned_ = true;
    throw;
  }
  if (buf_.size() < kHeaderSize + len) return std::nullopt;
  Message m = [&] {
    try {
      return decode_payload(static_cast<MsgType>(buf_[3]),
                            buf_.data() + kHeaderSize, len);
    } catch (const WireError&) {
      poisoned_ = true;
      throw;
    }
  }();
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + len));
  return m;
}

}  // namespace impress::net
