#include "net/fabric_backend.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace impress::net {

FabricBackend::FabricBackend(FabricBackendConfig config)
    : config_(std::move(config)) {}

void FabricBackend::start(service::SubmissionRecord& rec,
                          std::uint64_t now_ns) {
  const CampaignSample s = sample(rec.seed);
  const std::uint64_t first_ns =
      now_ns + static_cast<std::uint64_t>(
                   static_cast<double>(s.duration_ns) *
                   std::clamp(config_.first_result_fraction, 0.0, 1.0));
  const std::uint64_t done_ns = now_ns + s.duration_ns;

  rec.quality = s.quality;
  Event first{first_ns, rec.seq, /*complete=*/false, &rec};
  Event complete{done_ns, rec.seq, /*complete=*/true, &rec};
  const auto order = [](const Event& a, const Event& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.complete < b.complete;
  };
  events_.insert(std::upper_bound(events_.begin(), events_.end(), first,
                                  order),
                 first);
  events_.insert(std::upper_bound(events_.begin(), events_.end(), complete,
                                  order),
                 complete);
  ++running_;
  ++started_;
}

rp::LoadSnapshot FabricBackend::load() const {
  rp::LoadSnapshot s;
  s.running = running_;
  s.capacity = config_.slots;
  return s;
}

std::size_t FabricBackend::advance_to(std::uint64_t now_ns) {
  std::size_t fired = 0;
  while (!events_.empty() && events_.front().at_ns <= now_ns) {
    const Event e = events_.front();
    events_.erase(events_.begin());
    ++fired;
    if (e.complete) {
      --running_;
      ++completed_;
      service_->on_complete(*e.rec, e.at_ns, e.rec->quality);
    } else {
      service_->on_first_result(*e.rec, e.at_ns);
    }
  }
  return fired;
}

FabricBackend::CampaignSample FabricBackend::sample(std::uint64_t seed) {
  if (const auto it = by_seed_.find(seed); it != by_seed_.end()) {
    return it->second;
  }
  DistributedConfig run_config = config_.distributed;
  run_config.fabric.campaign.session.seed = seed;
  const DistributedOutcome outcome =
      run_distributed(run_config, config_.targets);
  CampaignSample s;
  s.duration_ns = static_cast<std::uint64_t>(
      std::max(0.0, outcome.result.makespan_h) * config_.ns_per_makespan_hour);
  s.quality = static_cast<double>(outcome.result.total_trajectories());
  by_seed_[seed] = s;
  ++campaigns_run_;
  return s;
}

}  // namespace impress::net
