// The fabric wire protocol: compact length-prefixed binary frames with
// explicit, bounds-checked serialization (docs/fabric.md).
//
// Frame layout (all integers little-endian, written byte by byte — no
// struct dumping; the raw-struct-serialization lint rule enforces this):
//
//   offset  size  field
//   0       2     magic      0x49 0x4D ("IM")
//   2       1     version    kWireVersion
//   3       1     type       MsgType
//   4       4     length     payload byte count (<= kMaxPayload)
//   8       n     payload    message fields, per-type encoding below
//
// Decoder contract (pinned by tests/net/test_wire_fuzz.cpp under
// ASan/UBSan): for ANY byte sequence, decoding either yields a valid
// message or throws WireError — it never crashes, never reads outside
// the supplied buffer, and never accepts a frame whose payload is
// malformed, truncated, oversized, version-skewed, or carries trailing
// garbage. Strings and lists are length-prefixed and validated against
// the bytes actually present before any allocation is sized from them.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace impress::net {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint8_t kMagic0 = 0x49;  // 'I'
inline constexpr std::uint8_t kMagic1 = 0x4D;  // 'M'
inline constexpr std::size_t kHeaderSize = 8;
/// Payload ceiling: large enough for a checkpoint document, small enough
/// that a lying length field cannot drive an allocation bomb.
inline constexpr std::size_t kMaxPayload = 64u << 20;
/// HeartbeatMsg::active_shard value meaning "no shard assigned".
inline constexpr std::uint32_t kNoShard = 0xFFFFFFFFu;

/// Every decoder failure mode: truncation, over-read, bad magic/version,
/// unknown type, length lies, trailing bytes, invalid enum values.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Versioned message types. Values are wire-stable: append only.
enum class MsgType : std::uint8_t {
  kHello = 1,            ///< worker -> coordinator: registration
  kAssignShard = 2,      ///< coordinator -> worker: shard ownership grant
  kTaskSubmit = 3,       ///< coordinator -> worker: unit of work
  kTaskResult = 4,       ///< worker -> coordinator: terminal work outcome
  kHeartbeat = 5,        ///< both ways: liveness probe / reply
  kCheckpointShard = 6,  ///< worker -> coordinator: shard checkpoint doc
  kWorkerDead = 7,       ///< coordinator -> workers: death declaration
};

[[nodiscard]] std::string_view to_string(MsgType t) noexcept;
[[nodiscard]] bool is_valid_type(std::uint8_t raw) noexcept;
/// Number of distinct message types (for per-type counter arrays).
inline constexpr std::size_t kMsgTypeCount = 7;
/// Dense 0-based index of a type (kHello -> 0 ... kWorkerDead -> 6).
[[nodiscard]] constexpr std::size_t type_index(MsgType t) noexcept {
  return static_cast<std::size_t>(t) - 1;
}

// --- explicit little-endian encoding primitives -----------------------------

/// Appends fields to a byte buffer, one byte at a time. The only way
/// bytes enter a frame.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern via the u64 path (bit-exact round-trip).
  void f64(double v);
  /// u32 length + raw bytes.
  void str(std::string_view v);
  void str_list(const std::vector<std::string>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reads over a borrowed buffer. Every accessor throws
/// WireError instead of reading past the end; finish() rejects trailing
/// bytes so a payload must be consumed exactly.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::string> str_list();

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  /// Throws WireError if any bytes remain unconsumed.
  void finish() const;

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- message payloads -------------------------------------------------------

struct HelloMsg {
  std::uint32_t worker_id = 0;
  std::uint16_t wire_version = kWireVersion;
  std::uint32_t slots = 1;  ///< concurrent shard capacity (informational)
  std::string build_tag;

  bool operator==(const HelloMsg&) const = default;
};

struct AssignShardMsg {
  std::uint32_t shard_id = 0;
  std::uint32_t epoch = 0;  ///< fencing token; bumped on every reassignment
  std::uint64_t seed = 0;
  std::string campaign_name;
  std::vector<std::string> target_names;  ///< shard membership, plan order
  /// Resume point: ordinal + serialized checkpoint document (empty json =
  /// run the shard from scratch).
  std::uint64_t checkpoint_ordinal = 0;
  std::string checkpoint_json;

  bool operator==(const AssignShardMsg&) const = default;
};

struct TaskSubmitMsg {
  enum class Kind : std::uint8_t {
    kRunShard = 1,    ///< execute the assigned shard campaign to completion
    kRemoteTask = 2,  ///< execute the serialized task spec in `payload`
  };
  std::uint32_t shard_id = 0;
  std::uint32_t epoch = 0;
  std::uint64_t task_seq = 0;  ///< conservation accounting key
  Kind kind = Kind::kRunShard;
  std::string payload;  ///< kRemoteTask: rp::RemoteTaskSpec JSON

  bool operator==(const TaskSubmitMsg&) const = default;
};

struct TaskResultMsg {
  enum class Status : std::uint8_t { kOk = 1, kError = 2 };
  std::uint32_t shard_id = 0;
  std::uint32_t epoch = 0;
  std::uint64_t task_seq = 0;
  Status status = Status::kOk;
  /// kOk: session-dump JSON of the shard CampaignResult (kRunShard) or
  /// rp::RemoteTaskResult JSON (kRemoteTask); kError: error text.
  std::string payload;

  bool operator==(const TaskResultMsg&) const = default;
};

struct HeartbeatMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t tick = 0;  ///< sender's clock (coordinator ticks)
  std::uint32_t active_shard = kNoShard;
  std::uint8_t busy = 0;

  bool operator==(const HeartbeatMsg&) const = default;
};

struct CheckpointShardMsg {
  std::uint32_t shard_id = 0;
  std::uint32_t epoch = 0;
  std::uint64_t ordinal = 0;  ///< monotone per shard lineage
  std::string checkpoint_json;

  bool operator==(const CheckpointShardMsg&) const = default;
};

struct WorkerDeadMsg {
  std::uint32_t worker_id = 0;
  std::uint32_t shard_id = kNoShard;  ///< shard being rerouted, if any
  std::uint32_t epoch = 0;
  std::string reason;

  bool operator==(const WorkerDeadMsg&) const = default;
};

using Message = std::variant<HelloMsg, AssignShardMsg, TaskSubmitMsg,
                             TaskResultMsg, HeartbeatMsg, CheckpointShardMsg,
                             WorkerDeadMsg>;

[[nodiscard]] MsgType type_of(const Message& m) noexcept;

// --- framing ----------------------------------------------------------------

/// Encode a complete frame (header + payload).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Message& m);

/// Decode one complete frame. Throws WireError on any malformation;
/// requires the buffer to contain exactly one frame.
[[nodiscard]] Message decode_frame(const std::uint8_t* data, std::size_t size);
[[nodiscard]] inline Message decode_frame(
    const std::vector<std::uint8_t>& frame) {
  return decode_frame(frame.data(), frame.size());
}

/// Incremental frame splitter for byte-stream transports (sockets): feed
/// arbitrary chunks, pull complete messages. A malformed header or
/// payload throws WireError and poisons the assembler — a byte stream
/// has no resynchronization point after a framing error, so the link
/// must be torn down (the socket transport does exactly that).
class FrameAssembler {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  /// Next complete message, or nullopt if more bytes are needed.
  [[nodiscard]] std::optional<Message> next();
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  std::vector<std::uint8_t> buf_;
  bool poisoned_ = false;
};

}  // namespace impress::net
