#include "net/loopback.hpp"

#include <mutex>

namespace impress::net {

/// One endpoint of a loopback pair: sends into one queue, polls the other.
/// Namespace scope (not anonymous) so the friend declaration in
/// LoopbackNet binds to it.
class LoopbackLink final : public Link {
 public:
  LoopbackLink(LoopbackNet* net, std::size_t tx, std::size_t rx,
               std::string name)
      : net_(net), tx_(tx), rx_(rx), name_(std::move(name)) {}

  bool send(const Message& m) override { return net_->send_frame(tx_, m); }

  std::optional<Message> poll() override { return net_->poll_frame(rx_); }

  void close() override { net_->close_pair(tx_, rx_); }

  bool closed() const override { return net_->queue_closed(tx_); }

  std::string_view kind() const noexcept override { return "loopback"; }

 private:
  LoopbackNet* net_;
  std::size_t tx_;
  std::size_t rx_;
  std::string name_;
};

LoopbackNet::LoopbackNet(ChaosConfig chaos)
    : chaos_(chaos), rng_(chaos.seed, /*stream=*/0x10095) {}

std::pair<std::shared_ptr<Link>, std::shared_ptr<Link>>
LoopbackNet::make_link_pair(std::string a_name, std::string b_name) {
  std::lock_guard lock(mutex_);
  const std::size_t q_ab = queues_.size();
  queues_.push_back(std::make_unique<Queue>());
  const std::size_t q_ba = queues_.size();
  queues_.push_back(std::make_unique<Queue>());
  auto a = std::make_shared<LoopbackLink>(this, q_ab, q_ba, std::move(a_name));
  auto b = std::make_shared<LoopbackLink>(this, q_ba, q_ab, std::move(b_name));
  return {std::move(a), std::move(b)};
}

void LoopbackNet::advance(std::uint64_t ticks) {
  std::lock_guard lock(mutex_);
  tick_ += ticks;
}

std::uint64_t LoopbackNet::now() const {
  std::lock_guard lock(mutex_);
  return tick_;
}

LoopbackNet::Stats LoopbackNet::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

bool LoopbackNet::send_frame(std::size_t queue_index, const Message& m) {
  // Encode outside the lock: the wire path runs even for dropped frames,
  // so a chaos run exercises exactly the same encoder calls as a calm one.
  std::vector<std::uint8_t> frame = encode_frame(m);

  std::lock_guard lock(mutex_);
  Queue& q = *queues_[queue_index];
  if (q.closed) {
    return false;
  }
  ++stats_.sent;
  // Chaos draws happen for every send, in send order, whether or not any
  // knob is non-zero — the rng stream consumed is a function of the send
  // sequence alone, so enabling chaos never shifts later draws.
  const bool drop = rng_.chance(chaos_.drop_rate);
  std::uint64_t delay = chaos_.delay_min;
  if (chaos_.delay_max > chaos_.delay_min) {
    delay += rng_.below(chaos_.delay_max - chaos_.delay_min + 1);
  }
  if (rng_.chance(chaos_.reorder_rate)) {
    ++stats_.reordered;
    delay += 1 + rng_.below(chaos_.reorder_extra);
  }
  if (drop) {
    ++stats_.dropped;
    return true;  // accepted by the net, then lost — like a real network
  }
  q.frames.emplace(std::make_pair(tick_ + delay, seq_++), std::move(frame));
  return true;
}

std::optional<Message> LoopbackNet::poll_frame(std::size_t queue_index) {
  std::vector<std::uint8_t> frame;
  {
    std::lock_guard lock(mutex_);
    Queue& q = *queues_[queue_index];
    if (q.frames.empty()) {
      return std::nullopt;
    }
    auto it = q.frames.begin();
    if (it->first.first > tick_) {
      return std::nullopt;  // earliest frame not yet deliverable
    }
    frame = std::move(it->second);
    q.frames.erase(it);
    ++stats_.delivered;
  }
  // Decode outside the lock; a loopback frame we encoded is well-formed
  // by construction, so WireError here is a genuine bug worth propagating.
  return decode_frame(frame);
}

void LoopbackNet::close_pair(std::size_t q_ab, std::size_t q_ba) {
  std::lock_guard lock(mutex_);
  queues_[q_ab]->closed = true;
  queues_[q_ba]->closed = true;
}

bool LoopbackNet::queue_closed(std::size_t queue_index) const {
  std::lock_guard lock(mutex_);
  return queues_[queue_index]->closed;
}

}  // namespace impress::net
