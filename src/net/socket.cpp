#include "net/socket.hpp"

#include <cerrno>
#include <cstring>
#include <system_error>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace impress::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "fcntl(O_NONBLOCK)");
  }
}

}  // namespace

SocketLink::SocketLink(int fd) : fd_(fd) { set_nonblocking(fd_); }

SocketLink::~SocketLink() { close(); }

bool SocketLink::send(const Message& m) {
  if (closed_) {
    return false;
  }
  const std::vector<std::uint8_t> frame = encode_frame(m);
  tx_backlog_.insert(tx_backlog_.end(), frame.begin(), frame.end());
  flush_tx();
  return !closed_;
}

std::optional<Message> SocketLink::poll() {
  if (closed_) {
    return std::nullopt;
  }
  flush_tx();
  try {
    // Serve already-buffered frames before touching the fd, so a burst
    // read in one drain yields every message it contained.
    if (auto m = assembler_.next()) {
      return m;
    }
    drain_rx();
    return closed_ ? std::nullopt : assembler_.next();
  } catch (const WireError&) {
    close();  // no resynchronization point after a framing error
    throw;
  }
}

void SocketLink::close() {
  if (!closed_) {
    closed_ = true;
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketLink::closed() const { return closed_; }

bool SocketLink::wait_readable(int timeout_ms) {
  if (closed_) {
    return false;
  }
  struct pollfd pfd {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

void SocketLink::flush_tx() {
  while (tx_offset_ < tx_backlog_.size()) {
    const ssize_t n =
        ::write(fd_, tx_backlog_.data() + tx_offset_,
                tx_backlog_.size() - tx_offset_);
    if (n > 0) {
      tx_offset_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // kernel buffer full; retry on the next pump
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    close();  // EPIPE, ECONNRESET, ... — peer is gone
    return;
  }
  tx_backlog_.clear();
  tx_offset_ = 0;
}

void SocketLink::drain_rx() {
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      try {
        assembler_.feed(chunk, static_cast<std::size_t>(n));
      } catch (const WireError&) {
        close();  // unrecoverable framing error; see header comment
        throw;
      }
      continue;
    }
    if (n == 0) {
      close();  // orderly peer shutdown
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    close();
    return;
  }
}

std::pair<std::unique_ptr<SocketLink>, std::unique_ptr<SocketLink>>
make_socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::system_error(errno, std::generic_category(), "socketpair");
  }
  return {std::make_unique<SocketLink>(fds[0]),
          std::make_unique<SocketLink>(fds[1])};
}

}  // namespace impress::net
