// Transport abstraction for the campaign fabric: a Link is one side of a
// bidirectional, message-framed connection between the coordinator and a
// worker. Two implementations ship (docs/fabric.md):
//
//   * LoopbackNet (net/loopback.hpp) — in-process, deterministic, with
//     seeded latency/reorder/drop chaos knobs; every frame still passes
//     through the real wire encoder/decoder.
//   * SocketTransport (net/socket.hpp) — real nonblocking sockets with a
//     poll(2) loop and incremental frame reassembly.
//
// Both are safe to use from one thread per side; the loopback transport
// additionally allows concurrent senders (guarded internally).

#pragma once

#include <optional>
#include <string_view>

#include "net/wire.hpp"

namespace impress::net {

class Link {
 public:
  virtual ~Link() = default;

  /// Encode and enqueue one message toward the peer. Returns false when
  /// the link is closed (the message is dropped, as a dead TCP peer
  /// would drop it).
  virtual bool send(const Message& m) = 0;

  /// Non-blocking receive of the next fully decoded message, in delivery
  /// order. nullopt = nothing deliverable right now. Throws WireError if
  /// the byte stream is unrecoverably malformed (socket transport).
  [[nodiscard]] virtual std::optional<Message> poll() = 0;

  /// Tear the link down; both sides observe closed() afterwards.
  virtual void close() = 0;
  [[nodiscard]] virtual bool closed() const = 0;

  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;
};

}  // namespace impress::net
