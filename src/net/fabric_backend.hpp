// FabricBackend: a service ExecutionBackend that points the front door at
// the campaign fabric (ROADMAP item 2 follow-on; docs/fabric.md).
//
// Each dispatched submission executes as a real multi-worker distributed
// campaign (net::run_distributed) seeded from the record: the campaign's
// merged makespan becomes the record's virtual completion latency and its
// trajectory count its quality. Results are memoized per seed — the
// fabric run is deterministic, so two records with one seed share one
// campaign. Service callbacks fire from advance_to() in (time, seq)
// order, mirroring service::SimulatedBackend's virtual-time contract.
//
// Still a stub in one deliberate way: campaigns run synchronously inside
// start() (the fabric pump is not yet interleaved with the service pump);
// wiring the two event loops together is the ROADMAP item 2 follow-on.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/fabric.hpp"
#include "service/service.hpp"

namespace impress::net {

struct FabricBackendConfig {
  /// Template for every campaign; the record seed overrides
  /// fabric.campaign.session.seed per submission.
  DistributedConfig distributed;
  /// Target set every campaign designs against (copied; campaigns of a
  /// richer backend would carry their own).
  std::vector<protein::DesignTarget> targets;
  /// Virtual nanoseconds per simulated campaign hour.
  double ns_per_makespan_hour = 3.6e12;
  /// First result lands this fraction of the way into the campaign.
  double first_result_fraction = 0.25;
  /// Advertised concurrency ceiling for the load signal.
  std::size_t slots = 8;
};

class FabricBackend final : public service::ExecutionBackend {
 public:
  explicit FabricBackend(FabricBackendConfig config);

  /// Must be called once before the service dispatches anything.
  void attach(service::CampaignService& service) noexcept {
    service_ = &service;
  }

  // ExecutionBackend
  void start(service::SubmissionRecord& rec, std::uint64_t now_ns) override;
  [[nodiscard]] rp::LoadSnapshot load() const override;

  /// Fire every pending first-result/completion callback with timestamp
  /// <= now_ns, in (time, seq) order. Returns the number fired.
  std::size_t advance_to(std::uint64_t now_ns);

  [[nodiscard]] std::size_t started() const noexcept { return started_; }
  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }
  /// Distinct campaigns actually executed (cache misses).
  [[nodiscard]] std::size_t campaigns_run() const noexcept {
    return campaigns_run_;
  }

 private:
  struct CampaignSample {
    std::uint64_t duration_ns = 0;
    double quality = 0.0;
  };
  struct Event {
    std::uint64_t at_ns = 0;
    std::uint64_t seq = 0;
    bool complete = false;  ///< false = first result
    service::SubmissionRecord* rec = nullptr;
  };

  [[nodiscard]] CampaignSample sample(std::uint64_t seed);

  FabricBackendConfig config_;
  service::CampaignService* service_ = nullptr;
  std::map<std::uint64_t, CampaignSample> by_seed_;
  std::vector<Event> events_;  ///< kept sorted on insert (cold path)
  std::size_t running_ = 0;
  std::size_t started_ = 0;
  std::size_t completed_ = 0;
  std::size_t campaigns_run_ = 0;
};

}  // namespace impress::net
