// CoordinatorNode + run_distributed: the control side of the campaign
// fabric (docs/fabric.md).
//
// The coordinator owns the shard table. Each shard walks
//
//   unassigned --ASSIGN_SHARD+TASK_SUBMIT--> running --TASK_RESULT--> done
//        ^                                      |
//        +----------- WORKER_DEAD --------------+   (epoch++, resume from
//                                                    the latest stored
//                                                    CHECKPOINT_SHARD)
//
// Correctness mechanisms, each pinned by tests:
//   * Epoch fencing — every (re)assignment bumps the shard's epoch; any
//     TASK_RESULT / CHECKPOINT_SHARD carrying an older epoch is counted
//     stale and dropped, so a spuriously-declared-dead worker can finish
//     late without corrupting the shard table.
//   * Heartbeat timeout — the coordinator probes workers every
//     heartbeat_period ticks; heartbeat_timeout ticks of silence declare
//     the worker dead, broadcast WORKER_DEAD, and reroute its shard.
//   * Resubmission — a running shard with no progress for resubmit_after
//     ticks gets its ASSIGN_SHARD + TASK_SUBMIT re-sent (same epoch); the
//     worker side is idempotent, so this is safe under frame loss.
//   * Conservation — every (shard, epoch) submission closes exactly once:
//     by a matching TASK_RESULT or by the owner's death (FabricStats).
//
// Determinism contract: the merged campaign result equals
// core::run_sharded(config, targets, plan, checkpoint_every) bit-exactly,
// for any worker count, chaos schedule, kill plan, or transport — each
// shard is a pure function of (config, seed, membership) and PR-5
// checkpoint resume is bit-exact.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/shard.hpp"
#include "net/loopback.hpp"
#include "net/transport.hpp"
#include "net/worker.hpp"
#include "obs/obs.hpp"
#include "protein/datasets.hpp"

namespace impress::net {

struct FabricConfig {
  core::CampaignConfig campaign;
  /// Per-shard checkpoint cadence (completions); 0 = no checkpoints (and
  /// therefore no failover — a death then forces a from-scratch rerun).
  std::size_t checkpoint_every = 0;
  std::uint64_t heartbeat_period = 4;   ///< ticks between liveness probes
  std::uint64_t heartbeat_timeout = 0;  ///< silence => dead; 0 = never
  std::uint64_t resubmit_after = 64;    ///< no-progress ticks before re-send
};

/// Conservation + failover accounting (docs/fabric.md "invariants").
struct FabricStats {
  std::uint64_t submits_opened = 0;  ///< distinct (shard, epoch) submissions
  std::uint64_t submits_closed_result = 0;
  std::uint64_t submits_closed_death = 0;
  std::uint64_t resubmits = 0;     ///< duplicate sends, same epoch
  std::uint64_t stale_frames = 0;  ///< epoch-fenced discards
  std::uint64_t checkpoints_stored = 0;
  std::uint64_t workers_declared_dead = 0;
  std::uint64_t reassignments = 0;

  /// Every submission is open or closed exactly once.
  [[nodiscard]] std::uint64_t submits_open() const noexcept {
    return submits_opened - submits_closed_result - submits_closed_death;
  }
};

/// Restartable coordinator state: stored shard results and the latest
/// checkpoint per unfinished shard. A fresh CoordinatorNode restored from
/// a snapshot re-runs only the unfinished shards, resuming each from its
/// checkpoint — the coordinator-restart path of the failover contract.
struct FabricSnapshot {
  struct Shard {
    std::uint32_t shard_id = 0;
    std::uint32_t epoch = 0;  ///< restored epochs keep fencing monotone
    bool done = false;
    std::string result_json;      ///< session dump, when done
    std::uint64_t checkpoint_ordinal = 0;
    std::string checkpoint_json;  ///< latest stored document, else empty
  };
  std::vector<Shard> shards;
};

class CoordinatorNode {
 public:
  /// `targets` must outlive the node. `obs` is optional; when its metrics
  /// axis is enabled the node registers obs::FabricMetrics and counts
  /// every frame sent/received, and when tracing is enabled it opens one
  /// span per shard assignment.
  CoordinatorNode(FabricConfig config,
                  const std::vector<protein::DesignTarget>* targets,
                  core::ShardPlan plan, obs::Observability* obs = nullptr);

  /// Attach a worker link; returns the coordinator-side worker index.
  std::size_t add_worker(std::shared_ptr<Link> link);

  /// Drive one step at tick `now`: drain links, detect deaths, assign /
  /// resubmit shards, emit heartbeat probes.
  void pump(std::uint64_t now);

  [[nodiscard]] bool done() const noexcept;
  /// Merged campaign result; only valid once done().
  [[nodiscard]] core::CampaignResult result() const;

  [[nodiscard]] const FabricStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const core::ShardPlan& plan() const noexcept { return plan_; }

  [[nodiscard]] FabricSnapshot snapshot() const;
  /// Adopt a snapshot's progress. Must be called before any pump().
  void restore(const FabricSnapshot& snap);

 private:
  enum class ShardState { kUnassigned, kRunning, kDone };

  struct ShardSlot {
    ShardState state = ShardState::kUnassigned;
    std::uint32_t epoch = 0;        ///< bumped on every (re)assignment
    std::size_t owner = SIZE_MAX;   ///< worker index while running
    std::uint64_t submitted_at = 0;
    std::uint64_t last_progress = 0;
    std::string result_json;
    std::string error;  ///< terminal kError payload (result() throws it)
    std::uint64_t checkpoint_ordinal = 0;
    std::string checkpoint_json;
    std::uint64_t span = 0;  ///< open assignment span (tracing)
  };

  struct WorkerSlot {
    std::shared_ptr<Link> link;
    std::uint32_t id = 0;  ///< from HELLO
    bool registered = false;
    bool alive = true;
    std::uint64_t last_heard = 0;
    std::size_t active_shard = SIZE_MAX;
  };

  void drain(std::size_t w, std::uint64_t now);
  void handle(std::size_t w, const Message& m, std::uint64_t now);
  void declare_dead(std::size_t w, std::uint64_t now, const std::string& why);
  void assign(std::size_t shard, std::size_t w, std::uint64_t now,
              bool new_epoch);
  void send(std::size_t w, const Message& m);
  void count_rx(const Message& m);

  FabricConfig config_;
  const std::vector<protein::DesignTarget>* targets_;
  core::ShardPlan plan_;
  std::vector<ShardSlot> shards_;
  std::vector<WorkerSlot> workers_;
  FabricStats stats_;
  std::uint64_t next_task_seq_ = 1;
  std::uint64_t last_probe_ = 0;
  obs::Observability* obs_;
  std::optional<obs::FabricMetrics> metrics_;
};

// --- single-call drivers ----------------------------------------------------

struct DistributedConfig {
  FabricConfig fabric;
  std::size_t num_workers = 2;
  std::size_t num_shards = 2;
  ChaosConfig chaos;
  /// Per-worker failure injection (index-aligned; missing = no kill).
  std::vector<WorkerKillPlan> kill_plans;
  /// Safety valve for the pump loop (chaos can stretch convergence).
  std::uint64_t max_ticks = 200000;
  /// Run each worker's pump loop on its own thread (stress mode). The
  /// merged result is unchanged — only the chaos draw order moves.
  bool threaded = false;
  /// Use AF_UNIX socketpairs instead of the loopback net (no chaos knobs;
  /// ticks count pump iterations).
  bool use_sockets = false;
};

struct DistributedOutcome {
  core::CampaignResult result;
  FabricStats stats;
  LoopbackNet::Stats net;  ///< zeros in socket mode
};

/// Run one campaign over the fabric end to end. Throws std::runtime_error
/// if the campaign fails to converge within max_ticks (e.g. every worker
/// killed with no survivor to reroute to).
[[nodiscard]] DistributedOutcome run_distributed(
    const DistributedConfig& config,
    const std::vector<protein::DesignTarget>& targets,
    obs::Observability* obs = nullptr);

}  // namespace impress::net
