#include "net/fabric.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/json.hpp"
#include "core/session_dump.hpp"
#include "net/socket.hpp"

namespace impress::net {

CoordinatorNode::CoordinatorNode(
    FabricConfig config, const std::vector<protein::DesignTarget>* targets,
    core::ShardPlan plan, obs::Observability* obs)
    : config_(std::move(config)),
      targets_(targets),
      plan_(std::move(plan)),
      shards_(plan_.shards.size()),
      obs_(obs) {
  if (obs_ != nullptr && obs_->registry().enabled()) {
    metrics_ = obs::FabricMetrics::registered(obs_->registry());
  }
}

std::size_t CoordinatorNode::add_worker(std::shared_ptr<Link> link) {
  WorkerSlot w;
  w.link = std::move(link);
  workers_.push_back(std::move(w));
  return workers_.size() - 1;
}

void CoordinatorNode::pump(std::uint64_t now) {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    drain(w, now);
  }

  // Death detection before assignment, so a freed shard can be rerouted
  // in the same pump. Two signals: a closed link (a crashed peer's FIN —
  // prompt and unambiguous, the only signal safe in threaded mode where
  // a busy worker can outlast any tick-based timeout) and heartbeat
  // silence (covers partitions where the link stays open).
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerSlot& worker = workers_[w];
    if (!worker.alive) {
      continue;
    }
    if (worker.link->closed()) {
      declare_dead(w, now, "link closed");
    } else if (config_.heartbeat_timeout > 0 && worker.registered &&
               now - worker.last_heard > config_.heartbeat_timeout) {
      declare_dead(w, now, "heartbeat timeout");
    }
  }

  // Assignment: lowest unassigned shard to lowest free worker, so the
  // schedule is a pure function of the message history.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].state != ShardState::kUnassigned) {
      continue;
    }
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const WorkerSlot& worker = workers_[w];
      if (worker.alive && worker.registered &&
          worker.active_shard == SIZE_MAX) {
        assign(s, w, now, /*new_epoch=*/true);
        break;
      }
    }
  }

  // Resubmission: a running shard whose owner has made no visible
  // progress gets the ASSIGN/SUBMIT pair again (same epoch; the worker
  // side is idempotent). Covers dropped frames in either direction.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardSlot& shard = shards_[s];
    if (shard.state == ShardState::kRunning &&
        now - shard.last_progress > config_.resubmit_after) {
      ++stats_.resubmits;
      if (metrics_) metrics_->resubmits->add(1);
      assign(s, shard.owner, now, /*new_epoch=*/false);
    }
  }

  // Liveness probes.
  if (config_.heartbeat_period > 0 &&
      (last_probe_ == 0 || now - last_probe_ >= config_.heartbeat_period)) {
    last_probe_ = now;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].alive) {
        send(w, HeartbeatMsg{.worker_id = workers_[w].id,
                             .tick = now,
                             .active_shard = kNoShard,
                             .busy = 0});
      }
    }
  }
}

bool CoordinatorNode::done() const noexcept {
  for (const ShardSlot& s : shards_) {
    if (s.state != ShardState::kDone) {
      return false;
    }
  }
  return true;
}

core::CampaignResult CoordinatorNode::result() const {
  std::vector<core::CampaignResult> results;
  results.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardSlot& shard = shards_[s];
    if (shard.state != ShardState::kDone) {
      throw std::runtime_error("CoordinatorNode::result: shard " +
                               std::to_string(s) + " not done");
    }
    if (shard.result_json.empty()) {
      throw std::runtime_error("CoordinatorNode::result: shard " +
                               std::to_string(s) + " failed: " + shard.error);
    }
    results.push_back(core::campaign_result_from_json(
        common::Json::parse(shard.result_json)));
  }
  return core::merge_shard_results(std::move(results));
}

FabricSnapshot CoordinatorNode::snapshot() const {
  FabricSnapshot snap;
  snap.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardSlot& shard = shards_[s];
    FabricSnapshot::Shard out;
    out.shard_id = static_cast<std::uint32_t>(s);
    out.epoch = shard.epoch;
    out.done = shard.state == ShardState::kDone;
    out.result_json = shard.result_json;
    out.checkpoint_ordinal = shard.checkpoint_ordinal;
    out.checkpoint_json = shard.checkpoint_json;
    snap.shards.push_back(std::move(out));
  }
  return snap;
}

void CoordinatorNode::restore(const FabricSnapshot& snap) {
  for (const FabricSnapshot::Shard& in : snap.shards) {
    if (in.shard_id >= shards_.size()) {
      throw std::invalid_argument("FabricSnapshot: unknown shard " +
                                  std::to_string(in.shard_id));
    }
    ShardSlot& shard = shards_[in.shard_id];
    shard.epoch = in.epoch;
    if (in.done) {
      shard.state = ShardState::kDone;
      shard.result_json = in.result_json;
    } else {
      shard.state = ShardState::kUnassigned;
      shard.checkpoint_ordinal = in.checkpoint_ordinal;
      shard.checkpoint_json = in.checkpoint_json;
    }
  }
}

void CoordinatorNode::drain(std::size_t w, std::uint64_t now) {
  for (;;) {
    std::optional<Message> m = workers_[w].link->poll();
    if (!m) {
      return;
    }
    count_rx(*m);
    handle(w, *m, now);
  }
}

void CoordinatorNode::handle(std::size_t w, const Message& m,
                             std::uint64_t now) {
  WorkerSlot& worker = workers_[w];
  if (const auto* hello = std::get_if<HelloMsg>(&m)) {
    if (hello->wire_version != kWireVersion) {
      return;  // speaks a future protocol; leave unregistered
    }
    worker.id = hello->worker_id;
    worker.registered = true;
    worker.last_heard = now;
    return;
  }
  worker.last_heard = now;
  if (const auto* hb = std::get_if<HeartbeatMsg>(&m)) {
    // A heartbeat reply also registers: HELLO is sent once and chaos may
    // eat it, but probes recur, so registration converges regardless.
    if (!worker.registered) {
      worker.id = hb->worker_id;
      worker.registered = true;
    }
    return;
  }
  if (const auto* result = std::get_if<TaskResultMsg>(&m)) {
    if (result->shard_id >= shards_.size()) {
      return;
    }
    ShardSlot& shard = shards_[result->shard_id];
    if (shard.state != ShardState::kRunning || result->epoch != shard.epoch) {
      ++stats_.stale_frames;
      if (metrics_) metrics_->stale_frames->add(1);
      return;
    }
    shard.state = ShardState::kDone;
    if (result->status == TaskResultMsg::Status::kOk) {
      shard.result_json = result->payload;
    } else {
      shard.result_json.clear();
      shard.error = result->payload;
    }
    ++stats_.submits_closed_result;
    if (shard.owner != SIZE_MAX) {
      workers_[shard.owner].active_shard = SIZE_MAX;
    }
    shard.owner = SIZE_MAX;
    if (shard.span != 0 && obs_ != nullptr) {
      obs_->tracer().end(shard.span, static_cast<double>(now));
      shard.span = 0;
    }
    return;
  }
  if (const auto* ckpt = std::get_if<CheckpointShardMsg>(&m)) {
    if (ckpt->shard_id >= shards_.size()) {
      return;
    }
    ShardSlot& shard = shards_[ckpt->shard_id];
    if (shard.state != ShardState::kRunning || ckpt->epoch != shard.epoch) {
      ++stats_.stale_frames;
      if (metrics_) metrics_->stale_frames->add(1);
      return;
    }
    shard.last_progress = now;
    if (ckpt->ordinal > shard.checkpoint_ordinal) {
      shard.checkpoint_ordinal = ckpt->ordinal;
      shard.checkpoint_json = ckpt->checkpoint_json;
      ++stats_.checkpoints_stored;
      if (metrics_) metrics_->checkpoints_stored->add(1);
    }
    return;
  }
  // ASSIGN/SUBMIT/WORKER_DEAD never flow worker -> coordinator.
}

void CoordinatorNode::declare_dead(std::size_t w, std::uint64_t now,
                                   const std::string& why) {
  WorkerSlot& worker = workers_[w];
  worker.alive = false;
  ++stats_.workers_declared_dead;
  if (metrics_) metrics_->workers_dead->add(1);

  std::uint32_t dead_shard = kNoShard;
  std::uint32_t dead_epoch = 0;
  if (worker.active_shard != SIZE_MAX) {
    ShardSlot& shard = shards_[worker.active_shard];
    dead_shard = static_cast<std::uint32_t>(worker.active_shard);
    dead_epoch = shard.epoch;
    shard.state = ShardState::kUnassigned;
    shard.owner = SIZE_MAX;
    ++stats_.submits_closed_death;
    if (shard.span != 0 && obs_ != nullptr) {
      obs_->tracer().attr(shard.span, "outcome", "worker_dead");
      obs_->tracer().end(shard.span, static_cast<double>(now));
      shard.span = 0;
    }
    worker.active_shard = SIZE_MAX;
  }
  const WorkerDeadMsg obituary{.worker_id = worker.id,
                               .shard_id = dead_shard,
                               .epoch = dead_epoch,
                               .reason = why};
  for (std::size_t peer = 0; peer < workers_.size(); ++peer) {
    if (workers_[peer].alive) {
      send(peer, obituary);
    }
  }
}

void CoordinatorNode::assign(std::size_t shard_index, std::size_t w,
                             std::uint64_t now, bool new_epoch) {
  ShardSlot& shard = shards_[shard_index];
  if (new_epoch) {
    ++shard.epoch;
    ++stats_.submits_opened;
    if (shard.epoch > 1) {
      ++stats_.reassignments;
      if (metrics_) metrics_->reassignments->add(1);
    }
    if (obs_ != nullptr && obs_->tracer().enabled()) {
      shard.span = obs_->tracer().begin(
          static_cast<double>(now),
          "fabric.shard." + std::to_string(shard_index) + ".e" +
              std::to_string(shard.epoch),
          obs::categories::kDecision);
      obs_->tracer().attr(shard.span, "worker",
                          std::to_string(workers_[w].id));
    }
  }
  send(w, AssignShardMsg{
              .shard_id = static_cast<std::uint32_t>(shard_index),
              .epoch = shard.epoch,
              .seed = config_.campaign.session.seed,
              .campaign_name = config_.campaign.name,
              .target_names = plan_.shards[shard_index].target_names,
              .checkpoint_ordinal = shard.checkpoint_ordinal,
              .checkpoint_json = shard.checkpoint_json});
  send(w, TaskSubmitMsg{.shard_id = static_cast<std::uint32_t>(shard_index),
                        .epoch = shard.epoch,
                        .task_seq = next_task_seq_++,
                        .kind = TaskSubmitMsg::Kind::kRunShard,
                        .payload = {}});
  shard.state = ShardState::kRunning;
  shard.owner = w;
  shard.submitted_at = now;
  shard.last_progress = now;
  workers_[w].active_shard = shard_index;
}

void CoordinatorNode::send(std::size_t w, const Message& m) {
  if (metrics_) metrics_->tx[type_index(type_of(m))]->add(1);
  workers_[w].link->send(m);
}

void CoordinatorNode::count_rx(const Message& m) {
  if (metrics_) metrics_->rx[type_index(type_of(m))]->add(1);
}

// --- run_distributed --------------------------------------------------------

DistributedOutcome run_distributed(
    const DistributedConfig& config,
    const std::vector<protein::DesignTarget>& targets,
    obs::Observability* obs) {
  const core::ShardPlan plan =
      core::ShardPlan::contiguous(targets, config.num_shards);
  CoordinatorNode coordinator(config.fabric, &targets, plan, obs);

  LoopbackNet net(config.chaos);
  std::vector<std::unique_ptr<WorkerNode>> workers;
  for (std::size_t w = 0; w < config.num_workers; ++w) {
    std::shared_ptr<Link> coord_side;
    std::shared_ptr<Link> worker_side;
    if (config.use_sockets) {
      auto [a, b] = make_socket_pair();
      coord_side = std::move(a);
      worker_side = std::move(b);
    } else {
      auto [a, b] = net.make_link_pair("coord->w" + std::to_string(w),
                                       "w" + std::to_string(w) + "->coord");
      coord_side = std::move(a);
      worker_side = std::move(b);
    }
    coordinator.add_worker(std::move(coord_side));

    WorkerConfig wc;
    wc.worker_id = static_cast<std::uint32_t>(w);
    wc.campaign = config.fabric.campaign;
    wc.checkpoint_every = config.fabric.checkpoint_every;
    if (w < config.kill_plans.size()) {
      wc.kill = config.kill_plans[w];
    }
    workers.push_back(std::make_unique<WorkerNode>(
        std::move(wc), std::move(worker_side), &targets));
  }

  std::uint64_t tick = 0;
  if (config.threaded) {
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (auto& worker : workers) {
      threads.emplace_back([&stop, &worker] {
        while (!stop.load(std::memory_order_acquire)) {
          worker->pump();
          std::this_thread::yield();
        }
      });
    }
    while (!coordinator.done() && tick < config.max_ticks) {
      net.advance(1);
      ++tick;
      coordinator.pump(config.use_sockets ? tick : net.now());
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : threads) {
      t.join();
    }
  } else {
    while (!coordinator.done() && tick < config.max_ticks) {
      net.advance(1);
      ++tick;
      coordinator.pump(config.use_sockets ? tick : net.now());
      for (auto& worker : workers) {
        worker->pump();
      }
    }
  }
  if (!coordinator.done()) {
    throw std::runtime_error(
        "run_distributed: campaign did not converge within " +
        std::to_string(config.max_ticks) + " ticks");
  }

  DistributedOutcome outcome;
  outcome.result = coordinator.result();
  outcome.stats = coordinator.stats();
  outcome.net = net.stats();
  return outcome;
}

}  // namespace impress::net
