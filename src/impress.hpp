// Umbrella header: the full public API of the IMPRESS reproduction.
//
//   #include "impress.hpp"
//
// Modules (each usable independently — see docs/):
//   impress::common  — rng, stats, channels, thread pool, json, charts
//   impress::sim     — discrete-event engine
//   impress::hpc     — nodes, resource pools, profiler, utilization,
//                      gantt, analytics
//   impress::rp      — pilot-job runtime (sessions, pilots, tasks,
//                      schedulers, executors, task graphs)
//   impress::protein — sequences, structures, PDB/FASTA, contacts,
//                      landscapes, datasets
//   impress::mpnn    — ProteinMPNN surrogate + task factory
//   impress::fold    — AlphaFold surrogate + task factory
//   impress::core    — pipelines, coordinator, campaigns, generators,
//                      reports, exports, session dumps

#pragma once

#include "common/ascii_chart.hpp"
#include "common/channel.hpp"
#include "common/histogram.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/time_util.hpp"
#include "common/uid.hpp"

#include "sim/engine.hpp"

#include "hpc/analytics.hpp"
#include "hpc/gantt.hpp"
#include "hpc/node.hpp"
#include "hpc/profiler.hpp"
#include "hpc/resource_pool.hpp"
#include "hpc/utilization.hpp"

#include "runtime/executor.hpp"
#include "runtime/pilot.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/session.hpp"
#include "runtime/task.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/task_manager.hpp"

#include "protein/contacts.hpp"
#include "protein/datasets.hpp"
#include "protein/fasta.hpp"
#include "protein/geometry.hpp"
#include "protein/landscape.hpp"
#include "protein/msa.hpp"
#include "protein/pdb.hpp"
#include "protein/residue.hpp"
#include "protein/sequence.hpp"
#include "protein/structure.hpp"

#include "mpnn/mpnn.hpp"
#include "mpnn/mpnn_task.hpp"

#include "fold/fold.hpp"
#include "fold/fold_task.hpp"

#include "core/calibration.hpp"
#include "core/campaign.hpp"
#include "core/coordinator.hpp"
#include "core/dpo_generator.hpp"
#include "core/crossover_generator.hpp"
#include "core/export.hpp"
#include "core/generator.hpp"
#include "core/pipeline.hpp"
#include "core/protocol.hpp"
#include "core/report.hpp"
#include "core/session_dump.hpp"
