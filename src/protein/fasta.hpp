// FASTA I/O. Pipeline Stage 3 "compiles the highest-ranking sequences
// into a fasta file for input into downstream tasks" — this module is
// that file format.

#pragma once

#include <string>
#include <vector>

#include "protein/sequence.hpp"

namespace impress::protein {

struct FastaRecord {
  std::string id;           ///< text up to the first whitespace after '>'
  std::string description;  ///< remainder of the header line
  Sequence sequence;
};

/// Serialize records, wrapping sequence lines at 60 columns.
[[nodiscard]] std::string to_fasta(const std::vector<FastaRecord>& records);

/// Parse a FASTA document. Throws std::invalid_argument on residues
/// outside the canonical 20 or content before the first header.
[[nodiscard]] std::vector<FastaRecord> from_fasta(const std::string& text);

}  // namespace impress::protein
