// The twenty proteinogenic amino acids with the physicochemical
// properties the surrogate models condition on.

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace impress::protein {

enum class AminoAcid : std::uint8_t {
  kAla, kArg, kAsn, kAsp, kCys, kGln, kGlu, kGly, kHis, kIle,
  kLeu, kLys, kMet, kPhe, kPro, kSer, kThr, kTrp, kTyr, kVal,
};

inline constexpr std::size_t kNumAminoAcids = 20;

/// All residues in enum order, for iteration.
[[nodiscard]] const std::array<AminoAcid, kNumAminoAcids>& all_amino_acids() noexcept;

/// One-letter code ('A', 'R', ...).
[[nodiscard]] char to_char(AminoAcid aa) noexcept;

/// Three-letter code ("ALA", "ARG", ...), as used in PDB ATOM records.
[[nodiscard]] std::string_view to_code3(AminoAcid aa) noexcept;

/// Parse a one-letter code (case-insensitive); nullopt for unknown.
[[nodiscard]] std::optional<AminoAcid> from_char(char c) noexcept;

/// Parse a three-letter code (case-insensitive); nullopt for unknown.
[[nodiscard]] std::optional<AminoAcid> from_code3(std::string_view code) noexcept;

/// Kyte–Doolittle hydropathy index, in [-4.5, 4.5].
[[nodiscard]] double hydropathy(AminoAcid aa) noexcept;

/// Net side-chain charge at pH 7: -1, 0 or +1 (His treated as 0).
[[nodiscard]] int charge(AminoAcid aa) noexcept;

/// Side-chain volume in cubic angstroms (Zamyatnin, 1972).
[[nodiscard]] double volume(AminoAcid aa) noexcept;

/// Whether the side chain is polar (including charged residues).
[[nodiscard]] bool is_polar(AminoAcid aa) noexcept;

}  // namespace impress::protein
