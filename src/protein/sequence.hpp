// Protein sequence value type.

#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "protein/residue.hpp"

namespace impress::protein {

class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(std::vector<AminoAcid> residues)
      : residues_(std::move(residues)) {}
  Sequence(std::initializer_list<AminoAcid> residues) : residues_(residues) {}

  /// Parse from one-letter codes; throws std::invalid_argument on any
  /// character that is not one of the 20 canonical residues.
  [[nodiscard]] static Sequence from_string(std::string_view s);

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t size() const noexcept { return residues_.size(); }
  [[nodiscard]] bool empty() const noexcept { return residues_.empty(); }

  [[nodiscard]] AminoAcid operator[](std::size_t i) const { return residues_[i]; }
  [[nodiscard]] AminoAcid at(std::size_t i) const { return residues_.at(i); }
  void set(std::size_t i, AminoAcid aa) { residues_.at(i) = aa; }

  [[nodiscard]] auto begin() const noexcept { return residues_.begin(); }
  [[nodiscard]] auto end() const noexcept { return residues_.end(); }

  [[nodiscard]] const std::vector<AminoAcid>& residues() const noexcept {
    return residues_;
  }

  /// Last `n` residues (the paper uses the last 10 and last 4 residues of
  /// alpha-synuclein as the design targets). Throws if n > size().
  [[nodiscard]] Sequence tail(std::size_t n) const;

  /// Copy with one substitution.
  [[nodiscard]] Sequence with_mutation(std::size_t pos, AminoAcid aa) const;

  /// Number of differing positions; sequences must be equal length
  /// (throws std::invalid_argument otherwise).
  [[nodiscard]] std::size_t hamming_distance(const Sequence& other) const;

  /// Fraction of identical positions in [0,1]; equal-length required.
  [[nodiscard]] double identity(const Sequence& other) const;

  bool operator==(const Sequence&) const = default;

 private:
  std::vector<AminoAcid> residues_;
};

/// Allocation-lean scratch pad for mutation proposal loops.
///
/// `Sequence::with_mutation` copies the full residue vector per proposal,
/// which dominates hot loops that try thousands of candidate mutations
/// (seed_sequence, Mpnn::design sampling, crossover). A MutationBuffer
/// holds one working copy, applies mutations in place while recording an
/// undo log, and either reverts (rejected proposal) or materializes an
/// accepted candidate — the only allocations are one copy per rebase and
/// one per materialize.
class MutationBuffer {
 public:
  MutationBuffer() = default;
  explicit MutationBuffer(const Sequence& base) { rebase(base); }

  /// Reset the working copy to `base`, reusing capacity; clears the log.
  void rebase(const Sequence& base);

  /// Mutate position i in place, recording the previous residue. No-op
  /// (and not recorded) if the residue is unchanged.
  void set(std::size_t i, AminoAcid aa);

  /// Undo all set() calls since the last rebase()/commit(), in reverse.
  void revert();

  /// Keep the applied mutations and clear the undo log.
  void commit() { undo_.clear(); }

  [[nodiscard]] AminoAcid operator[](std::size_t i) const {
    return residues_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return residues_.size(); }
  [[nodiscard]] std::size_t pending() const noexcept { return undo_.size(); }

  /// Copy the current working state out as a Sequence.
  [[nodiscard]] Sequence materialize() const { return Sequence(residues_); }

 private:
  std::vector<AminoAcid> residues_;
  std::vector<std::pair<std::size_t, AminoAcid>> undo_;
};

}  // namespace impress::protein
