#include "protein/residue.hpp"

#include <cctype>

namespace impress::protein {

namespace {

struct ResidueInfo {
  char code1;
  std::string_view code3;
  double hydropathy;  // Kyte–Doolittle
  int charge;
  double volume;  // A^3
  bool polar;
};

// Indexed by the AminoAcid enum order.
constexpr std::array<ResidueInfo, kNumAminoAcids> kInfo{{
    {'A', "ALA", 1.8, 0, 88.6, false},   // Ala
    {'R', "ARG", -4.5, +1, 173.4, true}, // Arg
    {'N', "ASN", -3.5, 0, 114.1, true},  // Asn
    {'D', "ASP", -3.5, -1, 111.1, true}, // Asp
    {'C', "CYS", 2.5, 0, 108.5, false},  // Cys
    {'Q', "GLN", -3.5, 0, 143.8, true},  // Gln
    {'E', "GLU", -3.5, -1, 138.4, true}, // Glu
    {'G', "GLY", -0.4, 0, 60.1, false},  // Gly
    {'H', "HIS", -3.2, 0, 153.2, true},  // His
    {'I', "ILE", 4.5, 0, 166.7, false},  // Ile
    {'L', "LEU", 3.8, 0, 166.7, false},  // Leu
    {'K', "LYS", -3.9, +1, 168.6, true}, // Lys
    {'M', "MET", 1.9, 0, 162.9, false},  // Met
    {'F', "PHE", 2.8, 0, 189.9, false},  // Phe
    {'P', "PRO", -1.6, 0, 112.7, false}, // Pro
    {'S', "SER", -0.8, 0, 89.0, true},   // Ser
    {'T', "THR", -0.7, 0, 116.1, true},  // Thr
    {'W', "TRP", -0.9, 0, 227.8, false}, // Trp
    {'Y', "TYR", -1.3, 0, 193.6, true},  // Tyr
    {'V', "VAL", 4.2, 0, 140.0, false},  // Val
}};

constexpr std::array<AminoAcid, kNumAminoAcids> kAll = [] {
  std::array<AminoAcid, kNumAminoAcids> a{};
  for (std::size_t i = 0; i < kNumAminoAcids; ++i)
    a[i] = static_cast<AminoAcid>(i);
  return a;
}();

}  // namespace

const std::array<AminoAcid, kNumAminoAcids>& all_amino_acids() noexcept {
  return kAll;
}

char to_char(AminoAcid aa) noexcept {
  return kInfo[static_cast<std::size_t>(aa)].code1;
}

std::string_view to_code3(AminoAcid aa) noexcept {
  return kInfo[static_cast<std::size_t>(aa)].code3;
}

std::optional<AminoAcid> from_char(char c) noexcept {
  const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  for (std::size_t i = 0; i < kNumAminoAcids; ++i)
    if (kInfo[i].code1 == upper) return static_cast<AminoAcid>(i);
  return std::nullopt;
}

std::optional<AminoAcid> from_code3(std::string_view code) noexcept {
  if (code.size() != 3) return std::nullopt;
  char upper[3];
  for (int i = 0; i < 3; ++i)
    upper[i] = static_cast<char>(std::toupper(static_cast<unsigned char>(code[i])));
  const std::string_view key(upper, 3);
  for (std::size_t i = 0; i < kNumAminoAcids; ++i)
    if (kInfo[i].code3 == key) return static_cast<AminoAcid>(i);
  return std::nullopt;
}

double hydropathy(AminoAcid aa) noexcept {
  return kInfo[static_cast<std::size_t>(aa)].hydropathy;
}

int charge(AminoAcid aa) noexcept {
  return kInfo[static_cast<std::size_t>(aa)].charge;
}

double volume(AminoAcid aa) noexcept {
  return kInfo[static_cast<std::size_t>(aa)].volume;
}

bool is_polar(AminoAcid aa) noexcept {
  return kInfo[static_cast<std::size_t>(aa)].polar;
}

}  // namespace impress::protein
