#include "protein/pdb.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace impress::protein {

void write_pdb(std::ostream& os, const Structure& s) {
  int serial = 1;
  std::size_t global_res = 0;
  const auto& plddt = s.plddt();
  for (const auto& chain : s.chains()) {
    for (std::size_t i = 0; i < chain.size(); ++i, ++global_res) {
      const double b = global_res < plddt.size() ? plddt[global_res] : 0.0;
      char line[96];
      std::snprintf(line, sizeof line,
                    "ATOM  %5d  CA  %3s %c%4zu    %8.3f%8.3f%8.3f%6.2f%6.2f"
                    "           C",
                    serial++,
                    std::string(to_code3(chain.sequence[i])).c_str(), chain.id,
                    i + 1, chain.ca[i].x, chain.ca[i].y, chain.ca[i].z, 1.0, b);
      os << line << '\n';
    }
    os << "TER\n";
  }
  os << "END\n";
}

std::string to_pdb(const Structure& s) {
  std::ostringstream os;
  write_pdb(os, s);
  return os.str();
}

Structure from_pdb(const std::string& text, std::string name) {
  // Preserve chain order of appearance.
  std::vector<char> chain_order;
  std::map<char, Chain> chains;
  std::vector<double> plddt;

  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!common::starts_with(line, "ATOM")) continue;
    if (line.size() < 54)
      throw std::invalid_argument("from_pdb: truncated ATOM record");
    // PDB fixed columns (0-based): atom name 12-15, resName 17-19,
    // chainID 21, x 30-37, y 38-45, z 46-53, B-factor 60-65.
    const std::string atom_name(common::trim(line.substr(12, 4)));
    if (atom_name != "CA") continue;
    const auto aa = from_code3(common::trim(line.substr(17, 3)));
    if (!aa)
      throw std::invalid_argument("from_pdb: unknown residue '" +
                                  std::string(common::trim(line.substr(17, 3))) + "'");
    const char chain_id = line[21];
    Vec3 p;
    try {
      p.x = std::stod(line.substr(30, 8));
      p.y = std::stod(line.substr(38, 8));
      p.z = std::stod(line.substr(46, 8));
    } catch (const std::exception&) {
      throw std::invalid_argument("from_pdb: bad coordinates");
    }
    double b = 0.0;
    if (line.size() >= 66) {
      try {
        b = std::stod(line.substr(60, 6));
      } catch (const std::exception&) {
        b = 0.0;
      }
    }

    auto it = chains.find(chain_id);
    if (it == chains.end()) {
      it = chains.emplace(chain_id, Chain{}).first;
      it->second.id = chain_id;
      chain_order.push_back(chain_id);
    }
    auto residues = it->second.sequence.residues();
    residues.push_back(*aa);
    it->second.sequence = Sequence(std::move(residues));
    it->second.ca.push_back(p);
    plddt.push_back(b);
  }

  std::vector<Chain> ordered;
  ordered.reserve(chain_order.size());
  for (char id : chain_order) ordered.push_back(std::move(chains.at(id)));
  Structure out(std::move(name), std::move(ordered));
  // Only attach pLDDT when any record carried one.
  for (double b : plddt)
    if (b != 0.0) {
      out.set_plddt(std::move(plddt));
      break;
    }
  return out;
}

}  // namespace impress::protein
