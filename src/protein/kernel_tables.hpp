// Precomputed 20×20 residue-pair kernels.
//
// residue_similarity() and complementarity() are pure functions of two
// amino acids, but the direct formulas cost an exp() (similarity) or a
// handful of branches (complementarity) per call — and they sit on the
// hottest paths in the codebase: every scaffold-term evaluation touches
// ~L positions, and seed_sequence / Mpnn::design evaluate thousands of
// proposals per call. Both kernels are materialized here into 400-entry
// tables built once per process; the table entries are produced by the
// exact same formulas, so lookups are bit-identical to direct evaluation.

#pragma once

#include <array>

#include "protein/residue.hpp"

namespace impress::protein {

/// 20×20 table of doubles indexed by [a][b].
using PairTable =
    std::array<std::array<double, kNumAminoAcids>, kNumAminoAcids>;

/// Chemical similarity of two residues in [0,1] (1 = identical).
/// Gaussian in hydropathy and volume space, penalized on charge mismatch.
/// Symmetric in its arguments.
[[nodiscard]] const PairTable& residue_similarity_table() noexcept;

/// Physicochemical complementarity of a pocket residue against a peptide
/// residue: opposite charges attract, hydrophobics pack, and the pair's
/// combined volume should fill (not overflow) the pocket.
[[nodiscard]] const PairTable& complementarity_table() noexcept;

[[nodiscard]] inline double residue_similarity(AminoAcid a,
                                               AminoAcid b) noexcept {
  return residue_similarity_table()[static_cast<std::size_t>(a)]
                                   [static_cast<std::size_t>(b)];
}

[[nodiscard]] inline double complementarity(AminoAcid pocket,
                                            AminoAcid pep) noexcept {
  return complementarity_table()[static_cast<std::size_t>(pocket)]
                                [static_cast<std::size_t>(pep)];
}

namespace detail {
/// Direct (un-tabulated) evaluations; used to build the tables and kept
/// callable so benches and tests can verify table/direct equivalence.
[[nodiscard]] double residue_similarity_direct(AminoAcid a,
                                               AminoAcid b) noexcept;
[[nodiscard]] double complementarity_direct(AminoAcid pocket,
                                            AminoAcid pep) noexcept;
}  // namespace detail

}  // namespace impress::protein
