#include "protein/msa.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace impress::protein {

Msa::Msa(Sequence query) { rows_.push_back(std::move(query)); }

Msa::Msa(Sequence query, std::size_t depth,
         std::vector<std::size_t> conserved_positions, double divergence,
         common::Rng& rng) {
  if (query.empty()) throw std::invalid_argument("Msa: empty query");
  if (divergence < 0.0 || divergence > 1.0)
    throw std::invalid_argument("Msa: divergence outside [0,1]");
  std::vector<bool> conserved(query.size(), false);
  for (auto pos : conserved_positions) {
    if (pos >= query.size())
      throw std::invalid_argument("Msa: conserved position out of range");
    conserved[pos] = true;
  }

  rows_.reserve(depth + 1);
  rows_.push_back(query);
  for (std::size_t h = 0; h < depth; ++h) {
    Sequence row = query;
    for (std::size_t pos = 0; pos < query.size(); ++pos) {
      const double rate = conserved[pos] ? divergence * 0.1 : divergence;
      if (rng.chance(rate))
        row.set(pos, static_cast<AminoAcid>(rng.below(kNumAminoAcids)));
    }
    rows_.push_back(std::move(row));
  }
}

std::vector<double> Msa::column_conservation() const {
  std::vector<double> out(length(), 0.0);
  for (std::size_t col = 0; col < length(); ++col) {
    std::array<std::size_t, kNumAminoAcids> counts{};
    for (const auto& row : rows_)
      ++counts[static_cast<std::size_t>(row[col])];
    const auto max_count = *std::max_element(counts.begin(), counts.end());
    out[col] = static_cast<double>(max_count) / static_cast<double>(rows_.size());
  }
  return out;
}

double Msa::mean_conservation() const {
  const auto cons = column_conservation();
  double s = 0.0;
  for (double c : cons) s += c;
  return cons.empty() ? 0.0 : s / static_cast<double>(cons.size());
}

double Msa::effective_depth() const {
  // Greedy redundancy filter at 90% identity, the usual Neff flavor:
  // a row only counts if it is <90% identical to every retained row.
  std::vector<const Sequence*> retained;
  for (const auto& row : rows_) {
    bool redundant = false;
    for (const auto* kept : retained) {
      if (row.identity(*kept) >= 0.9) {
        redundant = true;
        break;
      }
    }
    if (!redundant) retained.push_back(&row);
  }
  // The query itself does not count toward evolutionary signal.
  return static_cast<double>(retained.empty() ? 0 : retained.size() - 1);
}

double Msa::predictor_quality() const {
  // Saturating map: quality = floor + (1 - floor) * neff/(neff + k).
  constexpr double kFloor = 0.55;  // single-sequence mode
  constexpr double kHalf = 4.0;    // Neff at which half the headroom is won
  const double neff = effective_depth();
  return kFloor + (1.0 - kFloor) * neff / (neff + kHalf);
}

}  // namespace impress::protein
