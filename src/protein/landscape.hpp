// Hidden fitness landscape: the synthetic ground truth that replaces the
// physical reality the paper's tools (ProteinMPNN + AlphaFold) probe.
//
// Each design target (a PDZ domain + peptide pair) owns one landscape,
// deterministically derived from its name. The landscape assigns every
// receptor sequence a binding fitness in [0, 1]:
//
//   fitness = 0.70 * pocket     (per-position preferences at the binding
//                                interface, biased toward physicochemical
//                                complementarity with the peptide)
//           + 0.15 * couplings  (pairwise epistasis between pocket
//                                positions — what makes greedy one-shot
//                                design insufficient and iteration useful)
//           + 0.15 * scaffold   (similarity of non-interface positions to
//                                the native scaffold: drifting the core
//                                destabilizes the fold)
//
// The surrogates consume this: ProteinMPNN's sampler sees a *noisy* view
// of the per-position preferences (informative but imperfect proposals and
// log-likelihoods), and AlphaFold's metrics are noisy monotone functions
// of the true fitness. The adaptive protocol never reads the landscape
// directly — it only sees what the paper's protocol saw.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sum_tree.hpp"
#include "protein/sequence.hpp"

namespace impress::protein {

class FitnessLandscape {
 public:
  /// Build the landscape for a named target. `receptor_length` fixes the
  /// domain size; `peptide` shapes the pocket preferences; `seed` (usually
  /// stable_hash(name)) makes it reproducible.
  FitnessLandscape(std::string target_name, std::size_t receptor_length,
                   Sequence peptide, std::uint64_t seed);

  [[nodiscard]] const std::string& target_name() const noexcept { return name_; }
  [[nodiscard]] std::size_t receptor_length() const noexcept { return length_; }
  [[nodiscard]] const Sequence& peptide() const noexcept { return peptide_; }

  /// Binding fitness of a receptor sequence, in [0, 1]. Throws
  /// std::invalid_argument if the length does not match.
  [[nodiscard]] double fitness(const Sequence& receptor) const;

  /// Pocket (interface) positions, ascending.
  [[nodiscard]] const std::vector<std::size_t>& interface_positions() const noexcept {
    return interface_;
  }

  /// Normalized preference for residue `aa` at receptor position `pos`,
  /// in [0, 1]; non-interface positions return the scaffold preference
  /// (1 for the native residue, a fraction for chemically similar ones).
  [[nodiscard]] double preference(std::size_t pos, AminoAcid aa) const;

  /// The native scaffold sequence (moderate fitness by construction).
  [[nodiscard]] const Sequence& native_sequence() const noexcept { return native_; }

  /// Per-position argmax of preference — a strong but (because couplings
  /// are ignored) not globally optimal sequence. Used by tests.
  [[nodiscard]] Sequence greedy_optimal_sequence() const;

  /// A random receptor whose fitness is roughly `target_fitness`:
  /// the greedy optimum with positions re-randomized until close. Used to
  /// make starting structures with controlled headroom.
  [[nodiscard]] Sequence seed_sequence(double target_fitness,
                                       common::Rng& rng) const;

  /// Stable 64-bit digest of the landscape's identity (name, size,
  /// peptide, seed). Equal fingerprints imply bit-identical fitness
  /// functions; fold::FoldCache keys memoized predictions on this.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  class MutationScorer;

 private:
  using Profile = std::array<double, kNumAminoAcids>;

  std::string name_;
  std::size_t length_;
  Sequence peptide_;
  std::vector<std::size_t> interface_;
  std::vector<Profile> pocket_pref_;  ///< one per interface position
  Sequence native_;
  struct Coupling {
    std::size_t a;        ///< interface index (into interface_)
    std::size_t b;
    bool want_hydrophobic;  ///< both-hydrophobic vs opposite-charge bonus
  };
  std::vector<Coupling> couplings_;

  // Derived lookup structure (built once in the constructor) that turns
  // the per-call searches of the naive implementation into O(1) indexing:
  //   pocket_index_[pos]   = index into interface_/pocket_pref_, or -1
  //   scaffold_index_[pos] = index into the scaffold-term leaf array, or -1
  //   couplings_at_[ii]    = coupling indices touching interface index ii
  std::vector<std::int32_t> pocket_index_;
  std::vector<std::int32_t> scaffold_index_;
  std::vector<std::size_t> scaffold_positions_;  ///< non-interface, ascending
  std::vector<std::vector<std::size_t>> couplings_at_;
  std::uint64_t fingerprint_ = 0;

  [[nodiscard]] double pocket_term(const Sequence& receptor) const;
  [[nodiscard]] double coupling_term(const Sequence& receptor) const;
  [[nodiscard]] double scaffold_term(const Sequence& receptor) const;
  /// Whether coupling `c` is satisfied by the given pocket residues.
  [[nodiscard]] bool coupling_satisfied(const Coupling& c, AminoAcid a,
                                        AminoAcid b) const noexcept;
  /// The weighted, clamped combination used by fitness() and the scorer.
  /// Shared so both paths perform the identical float operations.
  [[nodiscard]] static double combine_terms(double pocket, double coupling,
                                            double scaffold) noexcept;
  [[nodiscard]] double normalized_pocket(double sum) const noexcept;
  [[nodiscard]] double normalized_coupling(std::size_t satisfied) const noexcept;
  [[nodiscard]] double normalized_scaffold(double sum) const noexcept;
  [[nodiscard]] std::size_t count_satisfied(const Sequence& receptor) const;
};

/// Incremental fitness evaluation: caches the pocket/coupling/scaffold
/// decomposition of one sequence and scores a point mutation in O(log L)
/// instead of the O(L·exp) full recompute — the kernel behind
/// seed_sequence and the generator proposal loops. All partial sums use
/// the same canonical binary-tree association as FitnessLandscape::
/// fitness(), so score_mutation(pos, aa) is bit-identical to
/// fitness(seq.with_mutation(pos, aa)) and fitness() to fitness(seq).
class FitnessLandscape::MutationScorer {
 public:
  /// The landscape must outlive the scorer; `sequence` must match its
  /// receptor length (throws std::invalid_argument otherwise).
  MutationScorer(const FitnessLandscape& landscape, Sequence sequence);

  /// Fitness of the current sequence.
  [[nodiscard]] double fitness() const noexcept { return fitness_; }

  /// Fitness the sequence would have with `aa` at `pos`, without
  /// mutating. O(log L).
  [[nodiscard]] double score_mutation(std::size_t pos, AminoAcid aa) const;

  /// Commit the mutation, updating the cached decomposition. O(log L).
  void apply(std::size_t pos, AminoAcid aa);

  [[nodiscard]] const Sequence& sequence() const noexcept { return seq_; }
  /// Move the sequence out; the scorer must not be used afterwards.
  [[nodiscard]] Sequence take_sequence() && { return std::move(seq_); }

 private:
  const FitnessLandscape* land_;
  Sequence seq_;
  common::SumTree pocket_;    ///< leaf per interface position: preference
  common::SumTree scaffold_;  ///< leaf per scaffold position: similarity
  std::size_t satisfied_ = 0; ///< couplings currently satisfied
  double fitness_ = 0.0;

  /// satisfied_ if interface position ii held `aa` instead. Exact
  /// (integer) incremental recount over couplings_at_[ii].
  [[nodiscard]] std::size_t satisfied_with(std::size_t ii,
                                           AminoAcid aa) const noexcept;
};

}  // namespace impress::protein
