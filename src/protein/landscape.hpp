// Hidden fitness landscape: the synthetic ground truth that replaces the
// physical reality the paper's tools (ProteinMPNN + AlphaFold) probe.
//
// Each design target (a PDZ domain + peptide pair) owns one landscape,
// deterministically derived from its name. The landscape assigns every
// receptor sequence a binding fitness in [0, 1]:
//
//   fitness = 0.70 * pocket     (per-position preferences at the binding
//                                interface, biased toward physicochemical
//                                complementarity with the peptide)
//           + 0.15 * couplings  (pairwise epistasis between pocket
//                                positions — what makes greedy one-shot
//                                design insufficient and iteration useful)
//           + 0.15 * scaffold   (similarity of non-interface positions to
//                                the native scaffold: drifting the core
//                                destabilizes the fold)
//
// The surrogates consume this: ProteinMPNN's sampler sees a *noisy* view
// of the per-position preferences (informative but imperfect proposals and
// log-likelihoods), and AlphaFold's metrics are noisy monotone functions
// of the true fitness. The adaptive protocol never reads the landscape
// directly — it only sees what the paper's protocol saw.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "protein/sequence.hpp"

namespace impress::protein {

class FitnessLandscape {
 public:
  /// Build the landscape for a named target. `receptor_length` fixes the
  /// domain size; `peptide` shapes the pocket preferences; `seed` (usually
  /// stable_hash(name)) makes it reproducible.
  FitnessLandscape(std::string target_name, std::size_t receptor_length,
                   Sequence peptide, std::uint64_t seed);

  [[nodiscard]] const std::string& target_name() const noexcept { return name_; }
  [[nodiscard]] std::size_t receptor_length() const noexcept { return length_; }
  [[nodiscard]] const Sequence& peptide() const noexcept { return peptide_; }

  /// Binding fitness of a receptor sequence, in [0, 1]. Throws
  /// std::invalid_argument if the length does not match.
  [[nodiscard]] double fitness(const Sequence& receptor) const;

  /// Pocket (interface) positions, ascending.
  [[nodiscard]] const std::vector<std::size_t>& interface_positions() const noexcept {
    return interface_;
  }

  /// Normalized preference for residue `aa` at receptor position `pos`,
  /// in [0, 1]; non-interface positions return the scaffold preference
  /// (1 for the native residue, a fraction for chemically similar ones).
  [[nodiscard]] double preference(std::size_t pos, AminoAcid aa) const;

  /// The native scaffold sequence (moderate fitness by construction).
  [[nodiscard]] const Sequence& native_sequence() const noexcept { return native_; }

  /// Per-position argmax of preference — a strong but (because couplings
  /// are ignored) not globally optimal sequence. Used by tests.
  [[nodiscard]] Sequence greedy_optimal_sequence() const;

  /// A random receptor whose fitness is roughly `target_fitness`:
  /// the greedy optimum with positions re-randomized until close. Used to
  /// make starting structures with controlled headroom.
  [[nodiscard]] Sequence seed_sequence(double target_fitness,
                                       common::Rng& rng) const;

 private:
  using Profile = std::array<double, kNumAminoAcids>;

  std::string name_;
  std::size_t length_;
  Sequence peptide_;
  std::vector<std::size_t> interface_;
  std::vector<Profile> pocket_pref_;  ///< one per interface position
  Sequence native_;
  struct Coupling {
    std::size_t a;        ///< interface index (into interface_)
    std::size_t b;
    bool want_hydrophobic;  ///< both-hydrophobic vs opposite-charge bonus
  };
  std::vector<Coupling> couplings_;

  [[nodiscard]] double pocket_term(const Sequence& receptor) const;
  [[nodiscard]] double coupling_term(const Sequence& receptor) const;
  [[nodiscard]] double scaffold_term(const Sequence& receptor) const;
};

}  // namespace impress::protein
