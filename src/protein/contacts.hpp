// Interface analysis of receptor-peptide complexes: inter-chain contacts
// and their physicochemical character. Complements the AlphaFold
// surrogate's learned confidence metrics with direct geometric readouts —
// the kind of analysis a designer runs on candidate PDBs before ordering
// genes.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "protein/structure.hpp"

namespace impress::protein {

/// Inter-chain C-alpha contact pairs (receptor index, peptide index)
/// within `cutoff` angstroms. Requires chains 'A' and 'B'.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
interchain_contacts(const Complex& complex, double cutoff = 8.0);

struct InterfaceStats {
  std::size_t contacts = 0;            ///< CA-CA pairs within cutoff
  double contact_density = 0.0;        ///< contacts per peptide residue
  std::size_t salt_bridges = 0;        ///< contacts with opposite charges
  std::size_t hydrophobic_pairs = 0;   ///< both residues hydropathy > 1.5
  std::size_t polar_pairs = 0;         ///< both residues polar
  double mean_contact_distance = 0.0;  ///< angstroms; 0 when no contacts

  /// Crude packing score in [0,1]: density saturating at 4 contacts per
  /// peptide residue, bonus-weighted by specific interactions.
  [[nodiscard]] double packing_score() const noexcept;
};

/// Analyze the receptor-peptide interface of a complex.
[[nodiscard]] InterfaceStats analyze_interface(const Complex& complex,
                                               double cutoff = 8.0);

/// Receptor residue indices participating in at least one contact —
/// the *geometric* pocket (compare with the landscape's hidden pocket).
[[nodiscard]] std::vector<std::size_t> contact_residues(
    const Complex& complex, double cutoff = 8.0);

}  // namespace impress::protein
