#include "protein/contacts.hpp"

#include <algorithm>
#include <cmath>

namespace impress::protein {

std::vector<std::pair<std::size_t, std::size_t>> interchain_contacts(
    const Complex& complex, double cutoff) {
  const Chain& receptor = complex.receptor();
  const Chain& peptide = complex.peptide();
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t r = 0; r < receptor.size(); ++r) {
    for (std::size_t p = 0; p < peptide.size(); ++p) {
      if (distance(receptor.ca[r], peptide.ca[p]) <= cutoff)
        out.emplace_back(r, p);
    }
  }
  return out;
}

double InterfaceStats::packing_score() const noexcept {
  const double density_term = std::min(contact_density / 4.0, 1.0);
  if (contacts == 0) return 0.0;
  const double specific =
      static_cast<double>(salt_bridges + hydrophobic_pairs + polar_pairs) /
      static_cast<double>(contacts);
  return std::clamp(0.7 * density_term + 0.3 * std::min(specific, 1.0), 0.0,
                    1.0);
}

InterfaceStats analyze_interface(const Complex& complex, double cutoff) {
  const Chain& receptor = complex.receptor();
  const Chain& peptide = complex.peptide();
  InterfaceStats s;
  const auto pairs = interchain_contacts(complex, cutoff);
  s.contacts = pairs.size();
  if (peptide.size() > 0)
    s.contact_density =
        static_cast<double>(s.contacts) / static_cast<double>(peptide.size());
  double dist_sum = 0.0;
  for (const auto& [r, p] : pairs) {
    const AminoAcid ra = receptor.sequence[r];
    const AminoAcid pa = peptide.sequence[p];
    if (charge(ra) * charge(pa) < 0) ++s.salt_bridges;
    if (hydropathy(ra) > 1.5 && hydropathy(pa) > 1.5) ++s.hydrophobic_pairs;
    if (is_polar(ra) && is_polar(pa)) ++s.polar_pairs;
    dist_sum += distance(receptor.ca[r], peptide.ca[p]);
  }
  if (!pairs.empty()) s.mean_contact_distance = dist_sum / static_cast<double>(pairs.size());
  return s;
}

std::vector<std::size_t> contact_residues(const Complex& complex,
                                          double cutoff) {
  std::vector<std::size_t> out;
  for (const auto& [r, p] : interchain_contacts(complex, cutoff)) {
    if (out.empty() || out.back() != r) {
      if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace impress::protein
