// Coarse-grained (C-alpha trace) protein structures and two-chain
// complexes: the objects that flow between pipeline stages. A Structure
// carries the sequence, per-residue coordinates, and optional per-residue
// confidence (the AlphaFold surrogate fills pLDDT in).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "protein/geometry.hpp"
#include "protein/sequence.hpp"

namespace impress::protein {

struct Chain {
  char id = 'A';
  Sequence sequence;
  std::vector<Vec3> ca;  ///< one C-alpha per residue; sizes must match

  /// Chain with an idealized helical trace for the given sequence.
  [[nodiscard]] static Chain idealized(char id, Sequence seq, Vec3 origin = {});

  [[nodiscard]] std::size_t size() const noexcept { return sequence.size(); }

  /// Throws std::invalid_argument when sequence/coordinates disagree.
  void validate() const;
};

class Structure {
 public:
  Structure() = default;
  Structure(std::string name, std::vector<Chain> chains);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] const std::vector<Chain>& chains() const noexcept { return chains_; }
  [[nodiscard]] std::vector<Chain>& chains() noexcept { return chains_; }

  [[nodiscard]] const Chain& chain(char id) const;
  [[nodiscard]] bool has_chain(char id) const noexcept;

  /// Total residues across chains.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Per-residue confidence (pLDDT, 0-100) in chain-then-residue order;
  /// empty when the structure is not a prediction.
  [[nodiscard]] const std::vector<double>& plddt() const noexcept { return plddt_; }
  void set_plddt(std::vector<double> p) { plddt_ = std::move(p); }

  /// All C-alpha positions in chain-then-residue order.
  [[nodiscard]] std::vector<Vec3> all_ca() const;

  bool operator==(const Structure&) const = default;

 private:
  std::string name_;
  std::vector<Chain> chains_;
  std::vector<double> plddt_;
};

/// Receptor+peptide two-chain complex (chain A = designable receptor,
/// chain B = fixed target peptide), the unit the IMPRESS pipeline designs.
struct Complex {
  Structure structure;  ///< exactly two chains, A then B

  [[nodiscard]] static Complex make(std::string name, Sequence receptor,
                                    Sequence peptide);

  [[nodiscard]] const Chain& receptor() const { return structure.chain('A'); }
  [[nodiscard]] const Chain& peptide() const { return structure.chain('B'); }

  /// Replace the receptor sequence (coordinates re-idealized).
  [[nodiscard]] Complex with_receptor(Sequence receptor) const;
};

}  // namespace impress::protein
