// Evaluation datasets.
//
// The paper designs PDZ-domain binders for the C-terminus of human
// alpha-synuclein: four named domains (NHERF3, HTRA1, SCRIB, SHANK1) in
// complex with the last 10 residues (Table I / Fig 2), and 70 PDZ-peptide
// complexes mined from the PDB in complex with the last 4 residues
// (Fig 3). We cannot ship PDB coordinates, so each target is synthesized
// deterministically from its name: realistic domain length, a native
// scaffold from its landscape, and a starting receptor tuned to the
// moderate initial quality the paper's Figure 2 iteration-1 bars show.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "protein/landscape.hpp"
#include "protein/sequence.hpp"
#include "protein/structure.hpp"

namespace impress::protein {

/// One design problem instance.
struct DesignTarget {
  std::string name;
  Sequence peptide;            ///< fixed target peptide (chain B)
  Sequence start_receptor;     ///< iteration-0 receptor (chain A)
  FitnessLandscape landscape;  ///< hidden ground truth for the surrogates

  /// The starting two-chain complex for the pipeline.
  [[nodiscard]] Complex start_complex() const {
    return Complex::make(name, start_receptor, peptide);
  }
};

/// Full-length human alpha-synuclein (UniProt P37840, 140 residues).
[[nodiscard]] Sequence alpha_synuclein();

/// Build one synthetic target. `start_fitness` controls the initial
/// design quality (the paper's starting structures score moderately).
[[nodiscard]] DesignTarget make_target(const std::string& name,
                                       std::size_t receptor_length,
                                       Sequence peptide,
                                       double start_fitness = 0.22);

/// The four named PDZ domains, each against the alpha-synuclein 10-mer.
[[nodiscard]] std::vector<DesignTarget> four_pdz_domains();

/// `n` synthetic "PDB-mined" PDZ-peptide complexes against the
/// alpha-synuclein 4-mer (EPEA); n defaults to the paper's 70.
[[nodiscard]] std::vector<DesignTarget> pdz_benchmark(std::size_t n = 70);

}  // namespace impress::protein
