// Minimal PDB reader/writer for C-alpha traces.
//
// Writes standard ATOM records (one CA atom per residue, with the
// structure's pLDDT in the B-factor column as AlphaFold does) plus TER and
// END. The parser accepts anything it writes and tolerates full-atom PDB
// files by keeping only " CA " atoms.

#pragma once

#include <iosfwd>
#include <string>

#include "protein/structure.hpp"

namespace impress::protein {

/// Serialize to PDB text.
[[nodiscard]] std::string to_pdb(const Structure& s);
void write_pdb(std::ostream& os, const Structure& s);

/// Parse a PDB document (CA atoms only). Throws std::invalid_argument on
/// malformed ATOM records or unknown residue names.
[[nodiscard]] Structure from_pdb(const std::string& text,
                                 std::string name = "pdb");

}  // namespace impress::protein
