// 3-D geometry for coarse (C-alpha) protein models: vector algebra,
// idealized backbone generation, and Kabsch superposition RMSD.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace impress::protein {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3 operator+(const Vec3& o) const noexcept { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const noexcept { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  bool operator==(const Vec3&) const = default;
};

[[nodiscard]] double dot(const Vec3& a, const Vec3& b) noexcept;
[[nodiscard]] Vec3 cross(const Vec3& a, const Vec3& b) noexcept;
[[nodiscard]] double norm(const Vec3& v) noexcept;
[[nodiscard]] double distance(const Vec3& a, const Vec3& b) noexcept;

[[nodiscard]] Vec3 centroid(std::span<const Vec3> pts) noexcept;

/// Idealized alpha-helix C-alpha trace of n residues starting at `origin`:
/// rise 1.5 A per residue along z, 100 degrees twist, 2.3 A radius. Used
/// to give every generated structure physically plausible coordinates.
[[nodiscard]] std::vector<Vec3> ideal_helix(std::size_t n, Vec3 origin = {});

/// Root-mean-square deviation without superposition (same length required;
/// throws std::invalid_argument otherwise).
[[nodiscard]] double rmsd_raw(std::span<const Vec3> a, std::span<const Vec3> b);

/// Minimal RMSD after optimal rigid superposition (Kabsch, via the Horn
/// quaternion method). Same length required.
[[nodiscard]] double rmsd_superposed(std::span<const Vec3> a,
                                     std::span<const Vec3> b);

/// Apply the optimal rigid transform mapping `mobile` onto `target`,
/// returning the transformed copy of `mobile`.
[[nodiscard]] std::vector<Vec3> superpose(std::span<const Vec3> mobile,
                                          std::span<const Vec3> target);

}  // namespace impress::protein
