#include "protein/landscape.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "protein/kernel_tables.hpp"

namespace impress::protein {

FitnessLandscape::FitnessLandscape(std::string target_name,
                                   std::size_t receptor_length,
                                   Sequence peptide, std::uint64_t seed)
    : name_(std::move(target_name)),
      length_(receptor_length),
      peptide_(std::move(peptide)) {
  if (length_ == 0) throw std::invalid_argument("FitnessLandscape: empty receptor");
  if (peptide_.empty()) throw std::invalid_argument("FitnessLandscape: empty peptide");
  common::Rng rng(seed);

  // Binding pocket: ~20% of positions, at least 6 (PDZ pockets contact a
  // handful of residues around the carboxylate-binding loop).
  const std::size_t k = std::max<std::size_t>(6, length_ / 5);
  std::vector<std::size_t> order(length_);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  interface_.assign(order.begin(), order.begin() + static_cast<long>(std::min(k, length_)));
  std::sort(interface_.begin(), interface_.end());

  // Per-pocket-position preferences: complementarity with a peptide
  // residue (pocket positions read the peptide from its C-terminus, the
  // part PDZ domains recognize) plus target-specific noise, softmaxed and
  // rescaled so the best residue scores 1.
  pocket_pref_.reserve(interface_.size());
  for (std::size_t ii = 0; ii < interface_.size(); ++ii) {
    const AminoAcid pep_aa =
        peptide_[peptide_.size() - 1 - (ii % peptide_.size())];
    Profile raw{};
    for (std::size_t a = 0; a < kNumAminoAcids; ++a) {
      raw[a] = complementarity(static_cast<AminoAcid>(a), pep_aa) +
               0.8 * rng.normal();
    }
    // Softmax with moderate temperature, then max-normalize.
    Profile pref{};
    double zmax = *std::max_element(raw.begin(), raw.end());
    double sum = 0.0;
    for (std::size_t a = 0; a < kNumAminoAcids; ++a) {
      pref[a] = std::exp((raw[a] - zmax) / 0.9);
      sum += pref[a];
    }
    double pmax = 0.0;
    for (auto& p : pref) {
      p /= sum;
      pmax = std::max(pmax, p);
    }
    for (auto& p : pref) p /= pmax;
    pocket_pref_.push_back(pref);
  }

  // Epistatic couplings between pocket positions.
  if (interface_.size() >= 2) {
    const std::size_t n_couplings = std::max<std::size_t>(2, interface_.size() / 2);
    for (std::size_t c = 0; c < n_couplings; ++c) {
      Coupling cp;
      cp.a = rng.below(static_cast<std::uint32_t>(interface_.size()));
      do {
        cp.b = rng.below(static_cast<std::uint32_t>(interface_.size()));
      } while (cp.b == cp.a);
      cp.want_hydrophobic = rng.chance(0.5);
      couplings_.push_back(cp);
    }
  }

  // Native scaffold: random residues off-pocket; deliberately mediocre
  // residues in the pocket (median-preference picks) so the design
  // campaign starts with headroom, as a natural PDZ domain repurposed for
  // a new peptide would.
  std::vector<AminoAcid> native(length_);
  for (std::size_t i = 0; i < length_; ++i)
    native[i] = static_cast<AminoAcid>(rng.below(kNumAminoAcids));
  for (std::size_t ii = 0; ii < interface_.size(); ++ii) {
    std::array<std::size_t, kNumAminoAcids> idx{};
    std::iota(idx.begin(), idx.end(), 0);
    const auto& pref = pocket_pref_[ii];
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return pref[a] > pref[b]; });
    // Rank 8..13 of 20: present but suboptimal.
    const std::size_t rank = 8 + rng.below(6);
    native[interface_[ii]] = static_cast<AminoAcid>(idx[rank]);
  }
  native_ = Sequence(std::move(native));

  // Derived O(1) lookup structure over the finished landscape. Built
  // after all rng draws so the generative sequence above is untouched.
  pocket_index_.assign(length_, -1);
  scaffold_index_.assign(length_, -1);
  for (std::size_t ii = 0; ii < interface_.size(); ++ii)
    pocket_index_[interface_[ii]] = static_cast<std::int32_t>(ii);
  scaffold_positions_.reserve(length_ - interface_.size());
  for (std::size_t pos = 0; pos < length_; ++pos) {
    if (pocket_index_[pos] >= 0) continue;
    scaffold_index_[pos] = static_cast<std::int32_t>(scaffold_positions_.size());
    scaffold_positions_.push_back(pos);
  }
  couplings_at_.assign(interface_.size(), {});
  for (std::size_t ci = 0; ci < couplings_.size(); ++ci) {
    couplings_at_[couplings_[ci].a].push_back(ci);
    couplings_at_[couplings_[ci].b].push_back(ci);
  }

  std::uint64_t fp = common::splitmix64(seed);
  fp = common::splitmix64(fp ^ common::stable_hash(name_));
  fp = common::splitmix64(fp ^ static_cast<std::uint64_t>(length_));
  for (AminoAcid aa : peptide_)
    fp = common::splitmix64(fp ^ (static_cast<std::uint64_t>(aa) + 1));
  fingerprint_ = fp;
}

double FitnessLandscape::preference(std::size_t pos, AminoAcid aa) const {
  const std::int32_t ii = pocket_index_.at(pos);
  if (ii >= 0)
    return pocket_pref_[static_cast<std::size_t>(ii)][static_cast<std::size_t>(aa)];
  return residue_similarity(aa, native_[pos]);
}

bool FitnessLandscape::coupling_satisfied(const Coupling& c, AminoAcid a,
                                          AminoAcid b) const noexcept {
  if (c.want_hydrophobic) return hydropathy(a) > 1.5 && hydropathy(b) > 1.5;
  return charge(a) * charge(b) < 0;
}

double FitnessLandscape::combine_terms(double pocket, double coupling,
                                       double scaffold) noexcept {
  const double f = 0.70 * pocket + 0.15 * coupling + 0.15 * scaffold;
  return std::clamp(f, 0.0, 1.0);
}

double FitnessLandscape::normalized_pocket(double sum) const noexcept {
  return interface_.empty() ? 0.0
                            : sum / static_cast<double>(interface_.size());
}

double FitnessLandscape::normalized_coupling(
    std::size_t satisfied) const noexcept {
  if (couplings_.empty()) return 0.0;
  return static_cast<double>(satisfied) /
         static_cast<double>(couplings_.size());
}

double FitnessLandscape::normalized_scaffold(double sum) const noexcept {
  return scaffold_positions_.empty()
             ? 1.0
             : sum / static_cast<double>(scaffold_positions_.size());
}

std::size_t FitnessLandscape::count_satisfied(const Sequence& receptor) const {
  std::size_t satisfied = 0;
  for (const auto& c : couplings_)
    if (coupling_satisfied(c, receptor[interface_[c.a]],
                           receptor[interface_[c.b]]))
      ++satisfied;
  return satisfied;
}

double FitnessLandscape::pocket_term(const Sequence& receptor) const {
  const double sum = common::tree_reduce(
      [&](std::size_t ii) {
        return pocket_pref_[ii][static_cast<std::size_t>(
            receptor[interface_[ii]])];
      },
      interface_.size());
  return normalized_pocket(sum);
}

double FitnessLandscape::coupling_term(const Sequence& receptor) const {
  return normalized_coupling(count_satisfied(receptor));
}

double FitnessLandscape::scaffold_term(const Sequence& receptor) const {
  const double sum = common::tree_reduce(
      [&](std::size_t j) {
        const std::size_t pos = scaffold_positions_[j];
        return residue_similarity(receptor[pos], native_[pos]);
      },
      scaffold_positions_.size());
  return normalized_scaffold(sum);
}

double FitnessLandscape::fitness(const Sequence& receptor) const {
  if (receptor.size() != length_)
    throw std::invalid_argument("FitnessLandscape::fitness: length mismatch (" +
                                std::to_string(receptor.size()) + " vs " +
                                std::to_string(length_) + ")");
  return combine_terms(pocket_term(receptor), coupling_term(receptor),
                       scaffold_term(receptor));
}

Sequence FitnessLandscape::greedy_optimal_sequence() const {
  std::vector<AminoAcid> best(native_.residues());
  for (std::size_t ii = 0; ii < interface_.size(); ++ii) {
    const auto& pref = pocket_pref_[ii];
    std::size_t arg = 0;
    for (std::size_t a = 1; a < kNumAminoAcids; ++a)
      if (pref[a] > pref[arg]) arg = a;
    best[interface_[ii]] = static_cast<AminoAcid>(arg);
  }
  return Sequence(std::move(best));
}

Sequence FitnessLandscape::seed_sequence(double target_fitness,
                                         common::Rng& rng) const {
  // Incremental hill-descent toward the target fitness. Draw order and
  // accept logic match the naive loop exactly; score_mutation() returns
  // the same bits fitness(seq.with_mutation(...)) would.
  MutationScorer scorer(*this, native_);
  double f = scorer.fitness();
  for (int iter = 0; iter < 4000 && std::fabs(f - target_fitness) > 0.01; ++iter) {
    const std::size_t pos = rng.below(static_cast<std::uint32_t>(length_));
    const auto aa = static_cast<AminoAcid>(rng.below(kNumAminoAcids));
    const double fc = scorer.score_mutation(pos, aa);
    if (std::fabs(fc - target_fitness) < std::fabs(f - target_fitness)) {
      scorer.apply(pos, aa);
      f = fc;
    }
  }
  return std::move(scorer).take_sequence();
}

FitnessLandscape::MutationScorer::MutationScorer(
    const FitnessLandscape& landscape, Sequence sequence)
    : land_(&landscape), seq_(std::move(sequence)) {
  if (seq_.size() != land_->length_)
    throw std::invalid_argument(
        "MutationScorer: sequence length mismatch (" +
        std::to_string(seq_.size()) + " vs " + std::to_string(land_->length_) +
        ")");
  std::vector<double> leaves(land_->interface_.size());
  for (std::size_t ii = 0; ii < leaves.size(); ++ii)
    leaves[ii] = land_->pocket_pref_[ii][static_cast<std::size_t>(
        seq_[land_->interface_[ii]])];
  pocket_.assign(leaves);

  leaves.resize(land_->scaffold_positions_.size());
  for (std::size_t j = 0; j < leaves.size(); ++j) {
    const std::size_t pos = land_->scaffold_positions_[j];
    leaves[j] = residue_similarity(seq_[pos], land_->native_[pos]);
  }
  scaffold_.assign(leaves);

  satisfied_ = land_->count_satisfied(seq_);
  fitness_ = combine_terms(land_->normalized_pocket(pocket_.total()),
                           land_->normalized_coupling(satisfied_),
                           land_->normalized_scaffold(scaffold_.total()));
}

std::size_t FitnessLandscape::MutationScorer::satisfied_with(
    std::size_t ii, AminoAcid aa) const noexcept {
  std::size_t sat = satisfied_;
  const AminoAcid old = seq_[land_->interface_[ii]];
  for (const std::size_t ci : land_->couplings_at_[ii]) {
    const auto& c = land_->couplings_[ci];
    const AminoAcid ra = c.a == ii ? old : seq_[land_->interface_[c.a]];
    const AminoAcid rb = c.b == ii ? old : seq_[land_->interface_[c.b]];
    const AminoAcid na = c.a == ii ? aa : ra;
    const AminoAcid nb = c.b == ii ? aa : rb;
    if (land_->coupling_satisfied(c, ra, rb)) --sat;
    if (land_->coupling_satisfied(c, na, nb)) ++sat;
  }
  return sat;
}

double FitnessLandscape::MutationScorer::score_mutation(std::size_t pos,
                                                        AminoAcid aa) const {
  const AminoAcid old = seq_.at(pos);
  if (aa == old) return fitness_;
  const FitnessLandscape& L = *land_;
  const std::int32_t ii = L.pocket_index_[pos];
  if (ii >= 0) {
    const auto iu = static_cast<std::size_t>(ii);
    const double psum =
        pocket_.total_with(iu, L.pocket_pref_[iu][static_cast<std::size_t>(aa)]);
    return combine_terms(L.normalized_pocket(psum),
                         L.normalized_coupling(satisfied_with(iu, aa)),
                         L.normalized_scaffold(scaffold_.total()));
  }
  const auto j = static_cast<std::size_t>(L.scaffold_index_[pos]);
  const double ssum =
      scaffold_.total_with(j, residue_similarity(aa, L.native_[pos]));
  return combine_terms(L.normalized_pocket(pocket_.total()),
                       L.normalized_coupling(satisfied_),
                       L.normalized_scaffold(ssum));
}

void FitnessLandscape::MutationScorer::apply(std::size_t pos, AminoAcid aa) {
  const AminoAcid old = seq_.at(pos);
  if (aa == old) return;
  const FitnessLandscape& L = *land_;
  const std::int32_t ii = L.pocket_index_[pos];
  if (ii >= 0) {
    const auto iu = static_cast<std::size_t>(ii);
    satisfied_ = satisfied_with(iu, aa);  // recount before seq_ changes
    pocket_.update(iu, L.pocket_pref_[iu][static_cast<std::size_t>(aa)]);
  } else {
    scaffold_.update(static_cast<std::size_t>(L.scaffold_index_[pos]),
                     residue_similarity(aa, L.native_[pos]));
  }
  seq_.set(pos, aa);
  fitness_ = combine_terms(L.normalized_pocket(pocket_.total()),
                           L.normalized_coupling(satisfied_),
                           L.normalized_scaffold(scaffold_.total()));
}

}  // namespace impress::protein
