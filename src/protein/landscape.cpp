#include "protein/landscape.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace impress::protein {

namespace {

/// Chemical similarity of two residues in [0,1] (1 = identical).
/// Gaussian in hydropathy and volume space, penalized on charge mismatch.
double residue_similarity(AminoAcid a, AminoAcid b) {
  if (a == b) return 1.0;
  const double dh = (hydropathy(a) - hydropathy(b)) / 9.0;   // span of KD scale
  const double dv = (volume(a) - volume(b)) / 170.0;         // span of volumes
  double sim = std::exp(-(dh * dh + dv * dv) * 3.0);
  if (charge(a) != charge(b)) sim *= 0.5;
  return sim;
}

/// Physicochemical complementarity of a pocket residue against a peptide
/// residue: opposite charges attract, hydrophobics pack, and the pair's
/// combined volume should fill (not overflow) the pocket.
double complementarity(AminoAcid pocket, AminoAcid pep) {
  double s = 0.0;
  const int cp = charge(pocket) * charge(pep);
  if (cp < 0) s += 1.0;          // salt bridge
  else if (cp > 0) s -= 0.8;     // electrostatic clash
  if (hydropathy(pocket) > 1.5 && hydropathy(pep) > 1.5) s += 0.7;
  const double v = volume(pocket) + volume(pep);
  if (v > 230.0 && v < 320.0) s += 0.4;
  if (is_polar(pocket) && is_polar(pep)) s += 0.25;  // H-bond capability
  return s;
}

}  // namespace

FitnessLandscape::FitnessLandscape(std::string target_name,
                                   std::size_t receptor_length,
                                   Sequence peptide, std::uint64_t seed)
    : name_(std::move(target_name)),
      length_(receptor_length),
      peptide_(std::move(peptide)) {
  if (length_ == 0) throw std::invalid_argument("FitnessLandscape: empty receptor");
  if (peptide_.empty()) throw std::invalid_argument("FitnessLandscape: empty peptide");
  common::Rng rng(seed);

  // Binding pocket: ~20% of positions, at least 6 (PDZ pockets contact a
  // handful of residues around the carboxylate-binding loop).
  const std::size_t k = std::max<std::size_t>(6, length_ / 5);
  std::vector<std::size_t> order(length_);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  interface_.assign(order.begin(), order.begin() + static_cast<long>(std::min(k, length_)));
  std::sort(interface_.begin(), interface_.end());

  // Per-pocket-position preferences: complementarity with a peptide
  // residue (pocket positions read the peptide from its C-terminus, the
  // part PDZ domains recognize) plus target-specific noise, softmaxed and
  // rescaled so the best residue scores 1.
  pocket_pref_.reserve(interface_.size());
  for (std::size_t ii = 0; ii < interface_.size(); ++ii) {
    const AminoAcid pep_aa =
        peptide_[peptide_.size() - 1 - (ii % peptide_.size())];
    Profile raw{};
    for (std::size_t a = 0; a < kNumAminoAcids; ++a) {
      raw[a] = complementarity(static_cast<AminoAcid>(a), pep_aa) +
               0.8 * rng.normal();
    }
    // Softmax with moderate temperature, then max-normalize.
    Profile pref{};
    double zmax = *std::max_element(raw.begin(), raw.end());
    double sum = 0.0;
    for (std::size_t a = 0; a < kNumAminoAcids; ++a) {
      pref[a] = std::exp((raw[a] - zmax) / 0.9);
      sum += pref[a];
    }
    double pmax = 0.0;
    for (auto& p : pref) {
      p /= sum;
      pmax = std::max(pmax, p);
    }
    for (auto& p : pref) p /= pmax;
    pocket_pref_.push_back(pref);
  }

  // Epistatic couplings between pocket positions.
  if (interface_.size() >= 2) {
    const std::size_t n_couplings = std::max<std::size_t>(2, interface_.size() / 2);
    for (std::size_t c = 0; c < n_couplings; ++c) {
      Coupling cp;
      cp.a = rng.below(static_cast<std::uint32_t>(interface_.size()));
      do {
        cp.b = rng.below(static_cast<std::uint32_t>(interface_.size()));
      } while (cp.b == cp.a);
      cp.want_hydrophobic = rng.chance(0.5);
      couplings_.push_back(cp);
    }
  }

  // Native scaffold: random residues off-pocket; deliberately mediocre
  // residues in the pocket (median-preference picks) so the design
  // campaign starts with headroom, as a natural PDZ domain repurposed for
  // a new peptide would.
  std::vector<AminoAcid> native(length_);
  for (std::size_t i = 0; i < length_; ++i)
    native[i] = static_cast<AminoAcid>(rng.below(kNumAminoAcids));
  for (std::size_t ii = 0; ii < interface_.size(); ++ii) {
    std::array<std::size_t, kNumAminoAcids> idx{};
    std::iota(idx.begin(), idx.end(), 0);
    const auto& pref = pocket_pref_[ii];
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return pref[a] > pref[b]; });
    // Rank 8..13 of 20: present but suboptimal.
    const std::size_t rank = 8 + rng.below(6);
    native[interface_[ii]] = static_cast<AminoAcid>(idx[rank]);
  }
  native_ = Sequence(std::move(native));
}

double FitnessLandscape::preference(std::size_t pos, AminoAcid aa) const {
  const auto it = std::lower_bound(interface_.begin(), interface_.end(), pos);
  if (it != interface_.end() && *it == pos) {
    const auto ii = static_cast<std::size_t>(it - interface_.begin());
    return pocket_pref_[ii][static_cast<std::size_t>(aa)];
  }
  return residue_similarity(aa, native_[pos]);
}

double FitnessLandscape::pocket_term(const Sequence& receptor) const {
  double s = 0.0;
  for (std::size_t ii = 0; ii < interface_.size(); ++ii)
    s += pocket_pref_[ii][static_cast<std::size_t>(receptor[interface_[ii]])];
  return interface_.empty() ? 0.0 : s / static_cast<double>(interface_.size());
}

double FitnessLandscape::coupling_term(const Sequence& receptor) const {
  if (couplings_.empty()) return 0.0;
  std::size_t satisfied = 0;
  for (const auto& c : couplings_) {
    const AminoAcid a = receptor[interface_[c.a]];
    const AminoAcid b = receptor[interface_[c.b]];
    if (c.want_hydrophobic) {
      if (hydropathy(a) > 1.5 && hydropathy(b) > 1.5) ++satisfied;
    } else {
      if (charge(a) * charge(b) < 0) ++satisfied;
    }
  }
  return static_cast<double>(satisfied) / static_cast<double>(couplings_.size());
}

double FitnessLandscape::scaffold_term(const Sequence& receptor) const {
  double s = 0.0;
  std::size_t n = 0;
  std::size_t ii = 0;
  for (std::size_t pos = 0; pos < length_; ++pos) {
    if (ii < interface_.size() && interface_[ii] == pos) {
      ++ii;
      continue;
    }
    s += residue_similarity(receptor[pos], native_[pos]);
    ++n;
  }
  return n == 0 ? 1.0 : s / static_cast<double>(n);
}

double FitnessLandscape::fitness(const Sequence& receptor) const {
  if (receptor.size() != length_)
    throw std::invalid_argument("FitnessLandscape::fitness: length mismatch (" +
                                std::to_string(receptor.size()) + " vs " +
                                std::to_string(length_) + ")");
  const double f = 0.70 * pocket_term(receptor) +
                   0.15 * coupling_term(receptor) +
                   0.15 * scaffold_term(receptor);
  return std::clamp(f, 0.0, 1.0);
}

Sequence FitnessLandscape::greedy_optimal_sequence() const {
  std::vector<AminoAcid> best(native_.residues());
  for (std::size_t ii = 0; ii < interface_.size(); ++ii) {
    const auto& pref = pocket_pref_[ii];
    std::size_t arg = 0;
    for (std::size_t a = 1; a < kNumAminoAcids; ++a)
      if (pref[a] > pref[arg]) arg = a;
    best[interface_[ii]] = static_cast<AminoAcid>(arg);
  }
  return Sequence(std::move(best));
}

Sequence FitnessLandscape::seed_sequence(double target_fitness,
                                         common::Rng& rng) const {
  Sequence seq = native_;
  double f = fitness(seq);
  for (int iter = 0; iter < 4000 && std::fabs(f - target_fitness) > 0.01; ++iter) {
    const std::size_t pos = rng.below(static_cast<std::uint32_t>(length_));
    const auto aa = static_cast<AminoAcid>(rng.below(kNumAminoAcids));
    const Sequence cand = seq.with_mutation(pos, aa);
    const double fc = fitness(cand);
    if (std::fabs(fc - target_fitness) < std::fabs(f - target_fitness)) {
      seq = cand;
      f = fc;
    }
  }
  return seq;
}

}  // namespace impress::protein
