#include "protein/kernel_tables.hpp"

#include <cmath>

namespace impress::protein {

namespace detail {

double residue_similarity_direct(AminoAcid a, AminoAcid b) noexcept {
  if (a == b) return 1.0;
  const double dh = (hydropathy(a) - hydropathy(b)) / 9.0;   // span of KD scale
  const double dv = (volume(a) - volume(b)) / 170.0;         // span of volumes
  double sim = std::exp(-(dh * dh + dv * dv) * 3.0);
  if (charge(a) != charge(b)) sim *= 0.5;
  return sim;
}

double complementarity_direct(AminoAcid pocket, AminoAcid pep) noexcept {
  double s = 0.0;
  const int cp = charge(pocket) * charge(pep);
  if (cp < 0) s += 1.0;          // salt bridge
  else if (cp > 0) s -= 0.8;     // electrostatic clash
  if (hydropathy(pocket) > 1.5 && hydropathy(pep) > 1.5) s += 0.7;
  const double v = volume(pocket) + volume(pep);
  if (v > 230.0 && v < 320.0) s += 0.4;
  if (is_polar(pocket) && is_polar(pep)) s += 0.25;  // H-bond capability
  return s;
}

}  // namespace detail

namespace {

template <typename Fn>
PairTable build_table(Fn fn) {
  PairTable t{};
  for (std::size_t a = 0; a < kNumAminoAcids; ++a)
    for (std::size_t b = 0; b < kNumAminoAcids; ++b)
      t[a][b] = fn(static_cast<AminoAcid>(a), static_cast<AminoAcid>(b));
  return t;
}

}  // namespace

const PairTable& residue_similarity_table() noexcept {
  static const PairTable table = build_table(detail::residue_similarity_direct);
  return table;
}

const PairTable& complementarity_table() noexcept {
  static const PairTable table = build_table(detail::complementarity_direct);
  return table;
}

}  // namespace impress::protein
