// Synthetic multiple sequence alignments.
//
// The paper's §IV argument for IMPRESS over EvoPro rests on AlphaFold's
// use of evolutionary information: "Allowing AlphaFold2 to utilize
// evolutionary information in its constructed MSA improves its predictive
// abilities". This module gives the repository an actual MSA object:
// a family of homolog sequences generated around a query with
// per-position conservation (conserved pocket, drifting surface),
// plus the standard depth/conservation statistics AlphaFold-style
// predictors consume. fold::AlphaFold can derive its msa_quality from an
// Msa instead of taking it as an opaque config number.

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "protein/sequence.hpp"

namespace impress::protein {

class Msa {
 public:
  /// Build an alignment containing the query followed by `depth`
  /// homologs. `conserved_positions` mutate rarely (10% of the base
  /// rate); everything else drifts at `divergence` (expected fraction of
  /// positions mutated per homolog, in [0,1]).
  Msa(Sequence query, std::size_t depth,
      std::vector<std::size_t> conserved_positions, double divergence,
      common::Rng& rng);

  /// Alignment with the query only (single-sequence mode).
  explicit Msa(Sequence query);

  [[nodiscard]] const Sequence& query() const noexcept { return rows_.front(); }
  [[nodiscard]] const std::vector<Sequence>& rows() const noexcept {
    return rows_;
  }
  /// Homolog count (rows minus the query).
  [[nodiscard]] std::size_t depth() const noexcept { return rows_.size() - 1; }
  [[nodiscard]] std::size_t length() const noexcept {
    return rows_.front().size();
  }

  /// Per-column conservation in [0,1]: frequency of the most common
  /// residue in that column.
  [[nodiscard]] std::vector<double> column_conservation() const;

  /// Mean column conservation.
  [[nodiscard]] double mean_conservation() const;

  /// Effective depth: homolog count discounted by redundancy (pairwise
  /// identity above 0.9 collapses), the Neff-style quantity predictors
  /// care about.
  [[nodiscard]] double effective_depth() const;

  /// The predictor-quality proxy in (0, 1]: saturating in effective
  /// depth (Neff of ~32 is as good as full genetic databases; a lone
  /// query gives the single-sequence floor of ~0.55).
  [[nodiscard]] double predictor_quality() const;

 private:
  std::vector<Sequence> rows_;  ///< rows_[0] is the query
};

}  // namespace impress::protein
