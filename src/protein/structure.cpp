#include "protein/structure.hpp"

#include <stdexcept>

namespace impress::protein {

Chain Chain::idealized(char id, Sequence seq, Vec3 origin) {
  Chain c;
  c.id = id;
  c.ca = ideal_helix(seq.size(), origin);
  c.sequence = std::move(seq);
  return c;
}

void Chain::validate() const {
  if (sequence.size() != ca.size())
    throw std::invalid_argument("Chain: sequence/coordinate length mismatch");
}

Structure::Structure(std::string name, std::vector<Chain> chains)
    : name_(std::move(name)), chains_(std::move(chains)) {
  for (const auto& c : chains_) c.validate();
}

const Chain& Structure::chain(char id) const {
  for (const auto& c : chains_)
    if (c.id == id) return c;
  throw std::out_of_range(std::string("Structure: no chain '") + id + "'");
}

bool Structure::has_chain(char id) const noexcept {
  for (const auto& c : chains_)
    if (c.id == id) return true;
  return false;
}

std::size_t Structure::size() const noexcept {
  std::size_t n = 0;
  for (const auto& c : chains_) n += c.size();
  return n;
}

std::vector<Vec3> Structure::all_ca() const {
  std::vector<Vec3> out;
  out.reserve(size());
  for (const auto& c : chains_) out.insert(out.end(), c.ca.begin(), c.ca.end());
  return out;
}

Complex Complex::make(std::string name, Sequence receptor, Sequence peptide) {
  // Receptor helix at the origin; peptide offset to sit against it like a
  // bound ligand (8 A away in x).
  Chain a = Chain::idealized('A', std::move(receptor), Vec3{0.0, 0.0, 0.0});
  Chain b = Chain::idealized('B', std::move(peptide), Vec3{8.0, 0.0, 0.0});
  Complex cx;
  cx.structure = Structure(std::move(name), {std::move(a), std::move(b)});
  return cx;
}

Complex Complex::with_receptor(Sequence receptor) const {
  return make(structure.name(), std::move(receptor), peptide().sequence);
}

}  // namespace impress::protein
