#include "protein/fasta.hpp"

#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace impress::protein {

std::string to_fasta(const std::vector<FastaRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += '>';
    out += r.id;
    if (!r.description.empty()) {
      out += ' ';
      out += r.description;
    }
    out += '\n';
    const std::string seq = r.sequence.to_string();
    for (std::size_t i = 0; i < seq.size(); i += 60) {
      out += seq.substr(i, 60);
      out += '\n';
    }
  }
  return out;
}

std::vector<FastaRecord> from_fasta(const std::string& text) {
  std::vector<FastaRecord> out;
  std::string pending_seq;
  bool in_record = false;

  auto flush = [&] {
    if (!in_record) return;
    out.back().sequence = Sequence::from_string(pending_seq);
    pending_seq.clear();
  };

  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto trimmed = common::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '>') {
      flush();
      in_record = true;
      FastaRecord r;
      const auto header = trimmed.substr(1);
      const auto space = header.find_first_of(" \t");
      if (space == std::string_view::npos) {
        r.id = std::string(header);
      } else {
        r.id = std::string(header.substr(0, space));
        r.description = std::string(common::trim(header.substr(space + 1)));
      }
      out.push_back(std::move(r));
    } else {
      if (!in_record)
        throw std::invalid_argument("from_fasta: sequence before header");
      pending_seq += std::string(trimmed);
    }
  }
  flush();
  return out;
}

}  // namespace impress::protein
