#include "protein/geometry.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace impress::protein {

double dot(const Vec3& a, const Vec3& b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

double norm(const Vec3& v) noexcept { return std::sqrt(dot(v, v)); }

double distance(const Vec3& a, const Vec3& b) noexcept { return norm(a - b); }

Vec3 centroid(std::span<const Vec3> pts) noexcept {
  Vec3 c;
  if (pts.empty()) return c;
  for (const auto& p : pts) c += p;
  return c * (1.0 / static_cast<double>(pts.size()));
}

std::vector<Vec3> ideal_helix(std::size_t n, Vec3 origin) {
  // Canonical alpha-helix parameters: 3.6 residues/turn (100 deg twist),
  // 1.5 A rise per residue, 2.3 A C-alpha radius.
  constexpr double kRise = 1.5;
  constexpr double kRadius = 2.3;
  constexpr double kTwist = 100.0 * std::numbers::pi / 180.0;
  std::vector<Vec3> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = kTwist * static_cast<double>(i);
    pts.push_back(Vec3{origin.x + kRadius * std::cos(a),
                       origin.y + kRadius * std::sin(a),
                       origin.z + kRise * static_cast<double>(i)});
  }
  return pts;
}

double rmsd_raw(std::span<const Vec3> a, std::span<const Vec3> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("rmsd_raw: size mismatch");
  if (a.empty()) return 0.0;
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Vec3 d = a[i] - b[i];
    ss += dot(d, d);
  }
  return std::sqrt(ss / static_cast<double>(a.size()));
}

namespace {

using Mat4 = std::array<std::array<double, 4>, 4>;

/// Jacobi eigenvalue iteration for a symmetric 4x4 matrix. Returns the
/// eigenvalues on the diagonal of `m` and accumulates eigenvectors in the
/// columns of `v`.
void jacobi_eigen4(Mat4& m, Mat4& v) {
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) v[r][c] = (r == c) ? 1.0 : 0.0;
  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < 4; ++p)
      for (int q = p + 1; q < 4; ++q) off += m[p][q] * m[p][q];
    if (off < 1e-24) return;
    for (int p = 0; p < 4; ++p) {
      for (int q = p + 1; q < 4; ++q) {
        if (std::fabs(m[p][q]) < 1e-18) continue;
        const double theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < 4; ++k) {
          const double mkp = m[k][p], mkq = m[k][q];
          m[k][p] = c * mkp - s * mkq;
          m[k][q] = s * mkp + c * mkq;
        }
        for (int k = 0; k < 4; ++k) {
          const double mpk = m[p][k], mqk = m[q][k];
          m[p][k] = c * mpk - s * mqk;
          m[q][k] = s * mpk + c * mqk;
        }
        for (int k = 0; k < 4; ++k) {
          const double vkp = v[k][p], vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
}

struct Superposition {
  double rmsd = 0.0;
  std::array<std::array<double, 3>, 3> rotation{};  // maps mobile -> target
  Vec3 mobile_centroid;
  Vec3 target_centroid;
};

Superposition kabsch(std::span<const Vec3> mobile, std::span<const Vec3> target) {
  if (mobile.size() != target.size())
    throw std::invalid_argument("superpose: size mismatch");
  Superposition out;
  const std::size_t n = mobile.size();
  if (n == 0) return out;
  out.mobile_centroid = centroid(mobile);
  out.target_centroid = centroid(target);

  // Covariance of the centered point sets plus the total spreads.
  double S[3][3] = {};
  double ga = 0.0, gb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 a = mobile[i] - out.mobile_centroid;
    const Vec3 b = target[i] - out.target_centroid;
    const double av[3] = {a.x, a.y, a.z};
    const double bv[3] = {b.x, b.y, b.z};
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) S[r][c] += av[r] * bv[c];
    ga += dot(a, a);
    gb += dot(b, b);
  }

  // Horn's quaternion key matrix.
  Mat4 K{};
  K[0][0] = S[0][0] + S[1][1] + S[2][2];
  K[0][1] = K[1][0] = S[1][2] - S[2][1];
  K[0][2] = K[2][0] = S[2][0] - S[0][2];
  K[0][3] = K[3][0] = S[0][1] - S[1][0];
  K[1][1] = S[0][0] - S[1][1] - S[2][2];
  K[1][2] = K[2][1] = S[0][1] + S[1][0];
  K[1][3] = K[3][1] = S[2][0] + S[0][2];
  K[2][2] = -S[0][0] + S[1][1] - S[2][2];
  K[2][3] = K[3][2] = S[1][2] + S[2][1];
  K[3][3] = -S[0][0] - S[1][1] + S[2][2];

  Mat4 V{};
  jacobi_eigen4(K, V);
  int best = 0;
  for (int i = 1; i < 4; ++i)
    if (K[i][i] > K[best][best]) best = i;
  const double lambda = K[best][best];
  const double q0 = V[0][best], q1 = V[1][best], q2 = V[2][best],
               q3 = V[3][best];

  // Quaternion (q0; q1,q2,q3) -> rotation matrix.
  auto& R = out.rotation;
  R[0][0] = q0 * q0 + q1 * q1 - q2 * q2 - q3 * q3;
  R[0][1] = 2.0 * (q1 * q2 - q0 * q3);
  R[0][2] = 2.0 * (q1 * q3 + q0 * q2);
  R[1][0] = 2.0 * (q1 * q2 + q0 * q3);
  R[1][1] = q0 * q0 - q1 * q1 + q2 * q2 - q3 * q3;
  R[1][2] = 2.0 * (q2 * q3 - q0 * q1);
  R[2][0] = 2.0 * (q1 * q3 - q0 * q2);
  R[2][1] = 2.0 * (q2 * q3 + q0 * q1);
  R[2][2] = q0 * q0 - q1 * q1 - q2 * q2 + q3 * q3;

  const double msd = std::max(0.0, (ga + gb - 2.0 * lambda) / static_cast<double>(n));
  out.rmsd = std::sqrt(msd);
  return out;
}

}  // namespace

double rmsd_superposed(std::span<const Vec3> a, std::span<const Vec3> b) {
  return kabsch(a, b).rmsd;
}

std::vector<Vec3> superpose(std::span<const Vec3> mobile,
                            std::span<const Vec3> target) {
  const auto sp = kabsch(mobile, target);
  std::vector<Vec3> out;
  out.reserve(mobile.size());
  for (const auto& p : mobile) {
    const Vec3 c = p - sp.mobile_centroid;
    const double v[3] = {c.x, c.y, c.z};
    Vec3 r;
    r.x = sp.rotation[0][0] * v[0] + sp.rotation[0][1] * v[1] + sp.rotation[0][2] * v[2];
    r.y = sp.rotation[1][0] * v[0] + sp.rotation[1][1] * v[1] + sp.rotation[1][2] * v[2];
    r.z = sp.rotation[2][0] * v[0] + sp.rotation[2][1] * v[1] + sp.rotation[2][2] * v[2];
    out.push_back(r + sp.target_centroid);
  }
  return out;
}

}  // namespace impress::protein
