#include "protein/datasets.hpp"

#include <cstdio>

#include "common/rng.hpp"

namespace impress::protein {

Sequence alpha_synuclein() {
  // UniProt P37840 (SYUA_HUMAN), 140 residues. The last 10 are
  // "EGYQDYEPEA" and the last 4 "EPEA" — the design targets used in the
  // paper's two experiments.
  return Sequence::from_string(
      "MDVFMKGLSKAKEGVVAAAEKTKQGVAEAAGKTKEGVLYVGSKTKEGVVHGVATVAEKTK"
      "EQVTNVGGAVVTGVTAVAQKTVEGAGSIAAATGFVKKDQLGKNEEGAPQEGILEDMPVDP"
      "DNEAYEMPSEEGYQDYEPEA");
}

DesignTarget make_target(const std::string& name, std::size_t receptor_length,
                         Sequence peptide, double start_fitness) {
  FitnessLandscape landscape(name, receptor_length, peptide,
                             common::stable_hash(name));
  common::Rng rng(common::stable_hash(name + ".start"));
  Sequence start = landscape.seed_sequence(start_fitness, rng);
  return DesignTarget{.name = name,
                      .peptide = std::move(peptide),
                      .start_receptor = std::move(start),
                      .landscape = std::move(landscape)};
}

std::vector<DesignTarget> four_pdz_domains() {
  // Approximate real domain lengths of the four PDZ domains the paper
  // prepared; each is placed in complex with the alpha-synuclein 10-mer.
  const Sequence pep10 = alpha_synuclein().tail(10);
  std::vector<DesignTarget> out;
  out.push_back(make_target("NHERF3", 89, pep10));
  out.push_back(make_target("HTRA1", 102, pep10));
  out.push_back(make_target("SCRIB", 94, pep10));
  out.push_back(make_target("SHANK1", 96, pep10));
  return out;
}

std::vector<DesignTarget> pdz_benchmark(std::size_t n) {
  const Sequence pep4 = alpha_synuclein().tail(4);  // "EPEA"
  std::vector<DesignTarget> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "PDZ%03u",
                  static_cast<unsigned>(i + 1));
    // Heterogeneous domain sizes (80-115 residues) and slightly varied
    // starting quality, like a real PDB-mined set.
    common::Rng rng(common::stable_hash(std::string(name) + ".meta"));
    const std::size_t length = 80 + rng.below(36);
    const double start_fitness = 0.18 + rng.uniform() * 0.10;
    out.push_back(make_target(name, length, pep4, start_fitness));
  }
  return out;
}

}  // namespace impress::protein
