#include "protein/sequence.hpp"

#include <stdexcept>

namespace impress::protein {

Sequence Sequence::from_string(std::string_view s) {
  std::vector<AminoAcid> residues;
  residues.reserve(s.size());
  for (char c : s) {
    const auto aa = from_char(c);
    if (!aa)
      throw std::invalid_argument(std::string("Sequence: invalid residue '") +
                                  c + "'");
    residues.push_back(*aa);
  }
  return Sequence(std::move(residues));
}

std::string Sequence::to_string() const {
  std::string out;
  out.reserve(residues_.size());
  for (auto aa : residues_) out.push_back(to_char(aa));
  return out;
}

Sequence Sequence::tail(std::size_t n) const {
  if (n > residues_.size())
    throw std::out_of_range("Sequence::tail: n exceeds length");
  return Sequence(std::vector<AminoAcid>(residues_.end() - static_cast<long>(n),
                                         residues_.end()));
}

Sequence Sequence::with_mutation(std::size_t pos, AminoAcid aa) const {
  Sequence copy = *this;
  copy.set(pos, aa);
  return copy;
}

std::size_t Sequence::hamming_distance(const Sequence& other) const {
  if (size() != other.size())
    throw std::invalid_argument("hamming_distance: length mismatch");
  std::size_t d = 0;
  for (std::size_t i = 0; i < size(); ++i)
    if (residues_[i] != other.residues_[i]) ++d;
  return d;
}

double Sequence::identity(const Sequence& other) const {
  if (empty() && other.empty()) return 1.0;
  const std::size_t d = hamming_distance(other);
  return 1.0 - static_cast<double>(d) / static_cast<double>(size());
}

void MutationBuffer::rebase(const Sequence& base) {
  residues_.assign(base.residues().begin(), base.residues().end());
  undo_.clear();
}

void MutationBuffer::set(std::size_t i, AminoAcid aa) {
  AminoAcid& slot = residues_.at(i);
  if (slot == aa) return;
  undo_.emplace_back(i, slot);
  slot = aa;
}

void MutationBuffer::revert() {
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it)
    residues_[it->first] = it->second;
  undo_.clear();
}

}  // namespace impress::protein
