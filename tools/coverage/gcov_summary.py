#!/usr/bin/env python3
"""Aggregate gcov line coverage for src/ from a coverage-instrumented build.

Usage: tools/coverage/gcov_summary.py BUILD_DIR [SRC_PREFIX]

Walks BUILD_DIR for .gcda files, asks gcov for JSON intermediate output,
and unions per-(file, line) execution counts across translation units
(headers are counted once, with the max count seen anywhere). Prints a
per-file table and the aggregate line rate for files under SRC_PREFIX
(default: <repo>/src). This mirrors what the CI coverage job computes
with lcov, without requiring lcov locally.
"""

import json
import os
import subprocess
import sys


def gcov_json(gcda: str):
    """One JSON document per input file, via gcov --stdout."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        capture_output=True,
        text=True,
        cwd=os.path.dirname(gcda),
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    build_dir = os.path.abspath(sys.argv[1])
    repo = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    prefix = os.path.abspath(sys.argv[2]) if len(sys.argv) > 2 else \
        os.path.join(repo, "src")

    # (file, line) -> max count over all TUs that compiled the line.
    counts: dict[tuple[str, int], int] = {}
    n_gcda = 0
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if not name.endswith(".gcda"):
                continue
            n_gcda += 1
            doc = gcov_json(os.path.join(root, name))
            if doc is None:
                continue
            for f in doc.get("files", []):
                path = f.get("file", "")
                if not os.path.isabs(path):
                    path = os.path.abspath(os.path.join(root, path))
                if not path.startswith(prefix + os.sep):
                    continue
                for line in f.get("lines", []):
                    key = (path, int(line["line_number"]))
                    count = int(line.get("count", 0))
                    if counts.get(key, -1) < count:
                        counts[key] = count
    if not counts:
        print(f"no coverage data under {build_dir} for {prefix}",
              file=sys.stderr)
        return 1

    per_file: dict[str, list[int]] = {}
    for (path, _line), count in counts.items():
        hit_total = per_file.setdefault(path, [0, 0])
        hit_total[1] += 1
        if count > 0:
            hit_total[0] += 1

    width = max(len(os.path.relpath(p, repo)) for p in per_file)
    for path in sorted(per_file):
        hit, total = per_file[path]
        print(f"{os.path.relpath(path, repo):{width}}  "
              f"{100.0 * hit / total:6.1f}%  ({hit}/{total})")

    hit = sum(h for h, _t in per_file.values())
    total = sum(t for _h, t in per_file.values())
    print(f"\n{n_gcda} .gcda files, {len(per_file)} source files")
    print(f"TOTAL src/ line coverage: {100.0 * hit / total:.1f}% "
          f"({hit}/{total})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
