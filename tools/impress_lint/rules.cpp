#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <regex>
#include <sstream>

namespace lint {

namespace {

// --- shared helpers ---------------------------------------------------------

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(std::count(
                 text.begin(), text.begin() + static_cast<long>(pos), '\n'));
}

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Append unless the raw source line carries `lint:allow <rule>`.
void emit(const SourceFile& file, Violation v, std::vector<Violation>& out) {
  if (v.line >= 1 && v.line <= file.lines.size()) {
    const std::string& raw_line = file.lines[v.line - 1];
    const std::size_t at = raw_line.find("lint:allow");
    if (at != std::string::npos &&
        raw_line.find(v.rule, at) != std::string::npos)
      return;
  }
  out.push_back(std::move(v));
}

// Count top-level arguments of a call whose '(' is at `open`. Returns
// nullopt if the parenthesis never closes (macro soup).
std::optional<int> count_call_args(const std::string& text, std::size_t open) {
  int depth = 0;
  int args = 0;
  bool saw_token = false;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return saw_token ? args + 1 : 0;
    } else if (c == ',' && depth == 1) {
      ++args;
    } else if (depth == 1 && !std::isspace(static_cast<unsigned char>(c))) {
      saw_token = true;
    }
  }
  return std::nullopt;
}

// Extract line `n` (1-based) from `text`.
std::string get_line(const std::string& text, std::size_t n) {
  std::istringstream in(text);
  std::string line;
  for (std::size_t i = 0; i < n && std::getline(in, line); ++i) {
  }
  return line;
}

// --- legacy rule: naked-cv-wait ---------------------------------------------

void check_naked_cv_wait(const SourceFile& f, std::vector<Violation>& out) {
  static const std::regex re(R"((\.|->)\s*(wait|wait_for|wait_until)\s*\()");
  for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), re);
       it != std::sregex_iterator(); ++it) {
    const std::string fn = (*it)[2].str();
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    const auto args = count_call_args(f.code, open);
    if (!args) continue;
    // wait(lock, pred) is fine; wait(lock) is naked. wait_for/wait_until
    // need (lock, time, pred); two args means no predicate. Zero-arg
    // wait() is std::future / std::thread territory — not a cv.
    const bool naked = (fn == "wait" && *args == 1) ||
                       ((fn == "wait_for" || fn == "wait_until") && *args == 2);
    if (!naked) continue;
    emit(f,
         {f.rel, line_of(f.code, static_cast<std::size_t>(it->position())),
          "naked-cv-wait", fn,
          "condition-variable " + fn +
              " without predicate: spurious wakeups and lost "
              "notifications slip through; use the predicate overload"},
         out);
  }
}

// --- legacy rule pack: class-member scanner ---------------------------------
// mutex-member-order + nodiscard-try. Scope tracking over the stripped
// text; v2 additionally recognises TrackedMutex members and steps over
// brace initialisers (`TrackedMutex m_{"name"};`), which v1 mistook for
// scope openings and never inspected.

void check_class_members(const SourceFile& f, std::vector<Violation>& out) {
  const std::string& raw = f.raw;
  const std::string& code = f.code;
  enum class Scope { kClass, kOther };
  std::vector<Scope> scopes;
  std::string decl;  // accumulating declaration text at class depth
  std::vector<std::pair<std::string, std::string>> class_stack;  // name, first container member

  static const std::regex mutex_re(
      R"((^|[\s,])(mutable\s+)?(std::)?(recursive_)?(shared_|timed_)?mutex\s+(\w+))");
  static const std::regex tracked_re(
      R"((^|[\s,])(mutable\s+)?(\w+::)*Tracked(Recursive)?Mutex\s+(\w+))");
  static const std::regex container_re(
      R"((^|[\s,])(mutable\s+)?std::(vector|deque|queue|priority_queue|unordered_map|unordered_set|map|set|list)\s*<)");
  static const std::regex container_name_re(R"(>\s+(\w+)\s*(=[^;]*)?$)");
  static const std::regex try_decl_re(R"(\b(try_\w+)\s*\($)");

  auto flush_decl = [&](std::size_t pos) {
    if (scopes.empty() || scopes.back() != Scope::kClass) {
      decl.clear();
      return;
    }
    // Trim access specifiers off the front.
    static const std::regex access_re(R"(^\s*(public|private|protected)\s*:\s*)");
    std::string d = std::regex_replace(decl, access_re, "");
    decl.clear();

    std::smatch m;
    std::string mutex_name;
    if (std::regex_search(d, m, tracked_re))
      mutex_name = m[5].str();
    else if (std::regex_search(d, m, mutex_re))
      mutex_name = m[6].str();
    if (!mutex_name.empty()) {
      // Escape hatch: a declaration-line comment `guards <member>` names
      // what the mutex protects, which satisfies the rule's real goal
      // (readable lock discipline) even when unrelated containers precede
      // the mutex in the class layout.
      static const std::regex guards_re(R"(//.*\bguards\s+\w+)");
      const std::size_t ln = line_of(code, pos);
      if (std::regex_search(get_line(raw, ln), guards_re)) return;
      if (!class_stack.empty() && !class_stack.back().second.empty()) {
        emit(f,
             {f.rel, ln, "mutex-member-order", mutex_name,
              "mutex member '" + mutex_name + "' declared after data member '" +
                  class_stack.back().second +
                  "' it may guard; declare mutexes before the data "
                  "they protect"},
             out);
      }
      return;
    }
    // A data-member declaration (no parameter list ⇒ not a function).
    if (d.find('(') == std::string::npos && std::regex_search(d, m, container_re)) {
      std::smatch nm;
      std::string name = "<member>";
      if (std::regex_search(d, nm, container_name_re)) name = nm[1].str();
      if (!class_stack.empty() && class_stack.back().second.empty())
        class_stack.back().second = name;
      return;
    }
    // Member function declaration: enforce [[nodiscard]] on try_*.
    const std::size_t paren = d.find('(');
    if (paren != std::string::npos) {
      std::string head = d.substr(0, paren + 1);
      std::smatch tm;
      std::string head_trim = std::regex_replace(head, std::regex(R"(\s+)"), " ");
      if (std::regex_search(head_trim, tm, try_decl_re)) {
        const std::string fn = tm[1].str();
        const bool is_decl =
            head.find("return") == std::string::npos &&
            head.find('.') == std::string::npos &&
            head.find("->") == std::string::npos &&
            head.find('=') == std::string::npos &&
            head_trim.find(' ') != std::string::npos;  // has a return type
        if (is_decl && d.find("[[nodiscard]]") == std::string::npos) {
          emit(f,
               {f.rel, line_of(code, pos), "nodiscard-try", fn,
                "try_* API '" + fn +
                    "' reports success via its return value; mark it "
                    "[[nodiscard]] so callers cannot drop it"},
               out);
        }
      }
    }
  };

  static const std::regex class_re(R"(\b(class|struct)\s+(\w+)[^;=()]*$)");
  static const std::regex enum_re(R"(\benum\b)");

  std::string pending;  // text since last ; { } at any depth (for scope kind)
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '{') {
      std::smatch m;
      const bool is_class = std::regex_search(pending, m, class_re) &&
                            !std::regex_search(pending, enum_re);
      // Member brace initialiser (`TrackedMutex m_{"..."};`): no parameter
      // list, not a nested type — step over it so the declaration keeps
      // accumulating toward its ';' instead of opening a phantom scope.
      if (!is_class && !scopes.empty() && scopes.back() == Scope::kClass &&
          decl.find('(') == std::string::npos &&
          decl.find_first_not_of(" \t\n") != std::string::npos &&
          !std::regex_search(pending, enum_re)) {
        int depth = 0;
        std::size_t j = i;
        for (; j < code.size(); ++j) {
          if (code[j] == '{') ++depth;
          else if (code[j] == '}' && --depth == 0) break;
        }
        if (j < code.size()) {
          i = j;  // resume right after the initialiser
          continue;
        }
      }
      scopes.push_back(is_class ? Scope::kClass : Scope::kOther);
      if (is_class) class_stack.emplace_back(m[2].str(), "");
      pending.clear();
      decl.clear();
    } else if (c == '}') {
      if (!scopes.empty()) {
        if (scopes.back() == Scope::kClass && !class_stack.empty())
          class_stack.pop_back();
        scopes.pop_back();
      }
      pending.clear();
      decl.clear();
    } else if (c == ';') {
      flush_decl(i);
      pending.clear();
    } else {
      pending += c;
      if (!scopes.empty() && scopes.back() == Scope::kClass) decl += c;
    }
  }
}

// --- legacy rule: hot-string-key --------------------------------------------

bool ends_with_any(const std::string& rel,
                   const std::vector<std::string>& suffixes) {
  for (const auto& suffix : suffixes)
    if (rel.size() >= suffix.size() &&
        rel.compare(rel.size() - suffix.size(), suffix.size(), suffix) == 0)
      return true;
  return false;
}

// Files on the campaign's per-proposal / per-record hot paths, where a
// heap-allocating lookup key is a measured regression (see
// docs/performance.md). Kept as an explicit list: elsewhere readability
// wins and the rule stays silent. The service entries are suffix-matched
// without the src/ prefix so the fixture twins exercise them too.
bool is_hot_path_file(const std::string& rel) {
  static const std::vector<std::string> hot = {
      "src/protein/landscape.cpp",  "src/protein/kernel_tables.cpp",
      "src/protein/sequence.cpp",   "src/mpnn/mpnn.cpp",
      "src/fold/fold_cache.cpp",    "src/hpc/profiler.cpp",
      "src/core/crossover_generator.cpp",
      "service/service.cpp",        "service/backpressure.cpp",
      "service/sim_backend.cpp",
  };
  return ends_with_any(rel, hot);
}

// TUs under the service's ZERO-allocation steady-state contract (pinned
// at run time by tests/service/test_alloc_free.cpp's counting allocator).
// The cold/report TU (service_report.cpp) is deliberately absent: string
// and container churn belongs there.
bool is_zero_alloc_file(const std::string& rel) {
  static const std::vector<std::string> files = {
      "service/service.cpp",
      "service/backpressure.cpp",
      "service/sim_backend.cpp",
  };
  return ends_with_any(rel, files);
}

void check_hot_string_key(const SourceFile& f, std::vector<Violation>& out) {
  if (!is_hot_path_file(f.rel)) return;
  const std::string& code = f.code;
  // A freshly built string used directly as an associative-container key:
  // accessor call or subscript whose argument opens with std::to_string(
  // or std::string(. (String literals are already blanked out by the
  // preprocessing, so quoted keys cannot false-positive here.)
  static const std::regex accessor_re(
      R"((\.|->)(find|at|count|contains|erase)\s*\(\s*std::(to_string|string)\s*\()");
  static const std::regex subscript_re(R"(\[\s*std::(to_string|string)\s*\()");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), accessor_re);
       it != std::sregex_iterator(); ++it)
    emit(f,
         {f.rel, line_of(code, static_cast<std::size_t>(it->position())),
          "hot-string-key", (*it)[3].str(),
          "hot-path map lookup builds a temporary std::" + (*it)[3].str() +
              " key; hoist the key out of the loop or switch to a "
              "numeric/content-addressed key"},
         out);
  for (auto it = std::sregex_iterator(code.begin(), code.end(), subscript_re);
       it != std::sregex_iterator(); ++it)
    emit(f,
         {f.rel, line_of(code, static_cast<std::size_t>(it->position())),
          "hot-string-key", (*it)[1].str(),
          "hot-path subscript builds a temporary std::" + (*it)[1].str() +
              " key; hoist the key out of the loop or switch to a "
              "numeric/content-addressed key"},
         out);
}

// --- legacy rule pack: header hygiene ---------------------------------------

void check_header_rules(const SourceFile& f, std::vector<Violation>& out) {
  if (!f.is_header) return;
  if (f.raw.find("#pragma once") == std::string::npos)
    emit(f,
         {f.rel, 1, "missing-pragma-once", "header",
          "header lacks #pragma once include guard"},
         out);
  static const std::regex using_ns(R"(\busing\s+namespace\s+([\w:]+))");
  for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(), using_ns);
       it != std::sregex_iterator(); ++it) {
    emit(f,
         {f.rel, line_of(f.code, static_cast<std::size_t>(it->position())),
          "using-namespace", (*it)[1].str(),
          "'using namespace " + (*it)[1].str() +
              "' in a header leaks into every includer"},
         out);
  }
}

// --- v2 token-walker infrastructure -----------------------------------------

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

/// Skip a balanced token run starting at `i` (tokens[i] must be the
/// opener). Returns the index one past the matching closer, or
/// tokens.size() if unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i,
                          const char* open, const char* close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == open)
      ++depth;
    else if (toks[i].text == close && --depth == 0)
      return i + 1;
  }
  return toks.size();
}

/// Lambda introducer at `i`? A '[' that is not a subscript (previous
/// token ends an expression) and not an attribute ('[[').
bool is_lambda_start(const std::vector<Token>& toks, std::size_t i) {
  if (toks[i].text != "[") return false;
  if (i + 1 < toks.size() && toks[i + 1].text == "[") return false;  // [[attr]]
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == Token::Kind::kIdent || prev.kind == Token::Kind::kNumber)
    return false;  // name[... — subscript
  if (prev.text == "]" || prev.text == ")") return false;  // a[i][j], f()[k]
  if (prev.text == "[") return false;  // second bracket of [[attr]]
  if (prev.text == "&") return false;  // auto& [a, b] — structured binding
  return true;
}

/// Given a lambda introducer at `i`, return the index one past the end of
/// the lambda's body (or past the capture/params if there is no body).
std::size_t skip_lambda(const std::vector<Token>& toks, std::size_t i) {
  std::size_t j = skip_balanced(toks, i, "[", "]");
  if (j < toks.size() && toks[j].text == "(")
    j = skip_balanced(toks, j, "(", ")");
  // Skip specifiers / trailing return type up to the body brace.
  while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";" &&
         toks[j].text != ")" && toks[j].text != "," && toks[j].text != "(")
    ++j;
  if (j < toks.size() && toks[j].text == "{")
    j = skip_balanced(toks, j, "{", "}");
  return j;
}

// --- v2 rules: blocking-under-lock + manual-double-lock ---------------------
//
// One walk tracks RAII lock guards per scope. Lambda bodies are stepped
// over: they execute later (thread bodies, callbacks) or at least not
// provably under the guard, and skipping them only under-reports.

constexpr const char* kSingleGuards[] = {"lock_guard", "unique_lock",
                                         "shared_lock"};
constexpr const char* kMultiGuards[] = {"scoped_lock", "MultiGuard"};

bool in_list(const std::string& s, const char* const* list, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (s == list[i]) return true;
  return false;
}

// Calls that park the calling thread until *another* thread acts. A cv
// wait is exempt: it atomically releases the mutex it waits on (and the
// naked-cv-wait rule polices its shape separately).
bool is_blocking_callee(const std::string& s) {
  return s == "send" || s == "receive" || s == "receive_for" ||
         s == "wait_idle" || s == "wait_all" || s == "join" ||
         s == "sleep_for";
}

void check_guard_rules(const SourceFile& f, std::vector<Violation>& out) {
  struct Guard {
    std::string var;
    int depth;
    bool multi;   // scoped_lock / MultiGuard — address-ordered acquire
    bool active;  // false after var.unlock()
  };
  const auto& toks = f.tokens;
  std::vector<Guard> guards;
  int depth = 0;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_lambda_start(toks, i)) {
      i = skip_lambda(toks, i) - 1;
      continue;
    }
    if (t.text == "{") {
      ++depth;
      continue;
    }
    if (t.text == "}") {
      while (!guards.empty() && guards.back().depth >= depth) guards.pop_back();
      --depth;
      continue;
    }
    if (t.kind != Token::Kind::kIdent) continue;

    const bool single = in_list(t.text, kSingleGuards, 3);
    const bool multi = in_list(t.text, kMultiGuards, 2);
    if (single || multi) {
      // `lock_guard<...> name(...)` / CTAD `scoped_lock name(a, b)` /
      // `MultiGuard name(a, b)`.
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<")
        j = skip_balanced(toks, j, "<", ">");
      if (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
          j + 1 < toks.size() &&
          (toks[j + 1].text == "(" || toks[j + 1].text == "{")) {
        const std::string var = toks[j].text;
        if (single) {
          for (const Guard& g : guards) {
            if (!g.active || g.depth != depth) continue;
            emit(f,
                 {f.rel, t.line, "manual-double-lock", var,
                  "second lock guard '" + var + "' opened while '" + g.var +
                      "' is held in the same scope; textual acquisition "
                      "order invites ABBA — use std::scoped_lock / "
                      "MultiGuard for an address-ordered multi-acquire"},
                 out);
            break;
          }
        }
        guards.push_back({var, depth, multi, true});
        i = j;  // resume at the variable name
        continue;
      }
    }

    // `guard.unlock()` releases; `guard.lock()` re-arms.
    if ((t.text == "unlock" || t.text == "lock") && i >= 2 &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        toks[i - 2].kind == Token::Kind::kIdent && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      for (Guard& g : guards)
        if (g.var == toks[i - 2].text) g.active = (t.text == "lock");
      continue;
    }

    if (!is_blocking_callee(t.text)) continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    const bool member_call =
        i >= 1 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    // sleep_for arrives as std::this_thread::sleep_for.
    const bool qualified_sleep =
        t.text == "sleep_for" && i >= 1 && toks[i - 1].text == "::";
    if (!member_call && !qualified_sleep) continue;

    for (const Guard& g : guards) {
      if (!g.active) continue;
      emit(f,
           {f.rel, t.line, "blocking-under-lock", t.text,
            "blocking call '" + t.text + "' while lock guard '" + g.var +
                "' is active: the held mutex stalls (or deadlocks) every "
                "contender; release the guard before blocking"},
           out);
      break;
    }
  }
}

// --- v2 rule: detached-thread -----------------------------------------------

void check_detached_thread(const SourceFile& f, std::vector<Violation>& out) {
  const auto& toks = f.tokens;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "detach")) continue;
    if (toks[i - 1].text != "." && toks[i - 1].text != "->") continue;
    if (toks[i + 1].text != "(") continue;
    emit(f,
         {f.rel, toks[i].line, "detached-thread", "detach",
          "thread.detach() escapes join discipline; detached threads can "
          "outlive session teardown and touch freed state — keep the "
          "handle and join it"},
         out);
  }
}

// --- v2 rule: unordered-iteration-in-serialization --------------------------

bool is_keyword(const std::string& s) {
  static const char* const kw[] = {"if",    "for",   "while", "switch",
                                   "catch", "do",    "else",  "return",
                                   "new",   "delete"};
  for (const char* k : kw)
    if (s == k) return true;
  return false;
}

/// Name of the function whose body opens at toks[brace] ('{'), or "" when
/// the brace belongs to something else (namespace, class, control flow).
std::string enclosing_function_name(const std::vector<Token>& toks,
                                    std::size_t brace) {
  if (brace == 0) return "";
  std::size_t j = brace - 1;
  // Step back over trailing specifiers and return types: `const`,
  // `noexcept`, `override`, `-> T`.
  while (j > 0 && (toks[j].kind == Token::Kind::kIdent ||
                   toks[j].text == "->" || toks[j].text == "::" ||
                   toks[j].text == "&" || toks[j].text == "*" ||
                   toks[j].text == "<" || toks[j].text == ">" ||
                   toks[j].text == ","))
    --j;
  if (toks[j].text != ")") return "";
  // Match backwards to the opening '('.
  int depth = 0;
  while (true) {
    if (toks[j].text == ")") ++depth;
    else if (toks[j].text == "(" && --depth == 0) break;
    if (j == 0) return "";
    --j;
  }
  if (j == 0) return "";
  const Token& name = toks[j - 1];
  if (name.kind != Token::Kind::kIdent || is_keyword(name.text)) return "";
  return name.text;
}

bool serialization_function(const std::string& name) {
  static const char* const marks[] = {"checkpoint", "serialize", "to_json",
                                      "dump",       "save",      "export",
                                      "snapshot",   "write"};
  const std::string lower = to_lower(name);
  for (const char* m : marks)
    if (lower.find(m) != std::string::npos) return true;
  return false;
}

bool serialization_file(const std::string& rel) {
  static const char* const marks[] = {"session_dump", "checkpoint", "export",
                                      "persistence", "serialize"};
  for (const char* m : marks)
    if (rel.find(m) != std::string::npos) return true;
  return false;
}

void check_unordered_iteration(const SourceFile& f,
                               const std::map<std::string, std::string>& visible,
                               std::vector<Violation>& out) {
  const auto& toks = f.tokens;
  const bool whole_file = serialization_file(f.rel);
  // (depth, name) for every function body we are inside of.
  std::vector<std::pair<int, std::string>> fn_stack;
  int depth = 0;

  auto in_serial_context = [&]() {
    if (whole_file) return true;
    for (const auto& [d, name] : fn_stack)
      if (serialization_function(name)) return true;
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.text == "{") {
      ++depth;
      const std::string name = enclosing_function_name(toks, i);
      if (!name.empty()) fn_stack.emplace_back(depth, name);
      continue;
    }
    if (t.text == "}") {
      if (!fn_stack.empty() && fn_stack.back().first == depth) fn_stack.pop_back();
      --depth;
      continue;
    }
    if (!is_ident(t, "for") || i + 1 >= toks.size() || toks[i + 1].text != "(")
      continue;
    if (!in_serial_context()) continue;
    // Range-for: find the ':' at parenthesis depth 1 (note "::" is a
    // single token, so a plain ":" here is unambiguous).
    const std::size_t close = skip_balanced(toks, i + 1, "(", ")");
    std::size_t colon = 0;
    int pd = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (toks[j].text == "(") ++pd;
      else if (toks[j].text == ")") --pd;
      else if (toks[j].text == ":" && pd == 1) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;  // classic three-clause for
    // The range expression: last identifier names the container
    // (`spans_`, `state.track_name`, `this->m_`).
    std::string range_name;
    std::size_t range_line = t.line;
    for (std::size_t j = colon + 1; j + 1 < close; ++j)
      if (toks[j].kind == Token::Kind::kIdent) {
        range_name = toks[j].text;
        range_line = toks[j].line;
      }
    if (range_name.empty()) continue;
    const auto it = visible.find(range_name);
    if (it == visible.end()) continue;
    emit(f,
         {f.rel, range_line, "unordered-iteration-in-serialization", range_name,
          "iterating std::" + it->second + " '" + range_name +
              "' in a serialization path writes hash order into persisted "
              "output and breaks bit-exact resume; iterate a sorted view "
              "(or an ordered sibling container) instead"},
         out);
  }
}

// --- v2 rule: wall-clock-in-deterministic-path ------------------------------

void check_wall_clock(const SourceFile& f, std::vector<Violation>& out) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    const bool member_access =
        i >= 1 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (member_access) continue;  // project types may reuse these names
    const bool is_type_source = t.text == "system_clock" ||
                                t.text == "random_device" ||
                                t.text == "gettimeofday";
    const bool is_c_rng = t.text == "rand" || t.text == "srand";
    if (!is_type_source && !is_c_rng) continue;
    // rand/srand only as calls — `rand` is too common as a fragment of a
    // declared identifier to flag bare mentions (the tokenizer already
    // keeps `rand` distinct from `rand48`, but `gen.rand()` methods on
    // project RNGs are filtered by the member-access test above).
    if (is_c_rng && (i + 1 >= toks.size() || toks[i + 1].text != "("))
      continue;
    emit(f,
         {f.rel, t.line, "wall-clock-in-deterministic-path", t.text,
          "'" + t.text +
              "' is a nondeterministic source; campaigns must replay "
              "bit-exact from a seed and the session clock — use "
              "SimClock/steady_clock for time and the seeded RNG for "
              "randomness"},
         out);
  }
}

// --- v2 rule: hot-path-alloc ------------------------------------------------
//
// The service steady-state TUs carry a zero-allocation contract: the
// counting-allocator test pins it at run time; this rule catches the
// textual precursors at review time. Construction-time allocations are
// fine — annotate them `// lint:allow hot-path-alloc — <reason>` so the
// exemption is visible in review.

// Allocating standard types whose very *spelling* in a zero-alloc TU is
// suspect: constructing any of these does (or may) hit the heap.
constexpr const char* kAllocatingStd[] = {
    "vector",        "deque",         "list",
    "map",           "set",           "unordered_map",
    "unordered_set", "queue",         "priority_queue",
    "function",      "stringstream",  "ostringstream",
    "istringstream",
};

void check_hot_path_alloc(const SourceFile& f, std::vector<Violation>& out) {
  if (!is_zero_alloc_file(f.rel)) return;
  const auto& toks = f.tokens;
  auto flag = [&](const Token& t, const std::string& what) {
    emit(f,
         {f.rel, t.line, "hot-path-alloc", t.text,
          what + " in a zero-allocation service TU; carve records from the "
                 "SlabPool / pre-reserved storage, or move the code to the "
                 "cold report TU (construction-time sites may carry "
                 "`lint:allow hot-path-alloc` with a reason)"},
         out);
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    const bool has_next = i + 1 < toks.size();
    if (t.text == "new") {
      flag(t, "naked 'new'");
      continue;
    }
    if (t.text == "delete") {
      // `= delete`d members are declarations, not deallocations.
      if (i >= 1 && toks[i - 1].text == "=") continue;
      flag(t, "naked 'delete'");
      continue;
    }
    if ((t.text == "make_unique" || t.text == "make_shared") && has_next &&
        (toks[i + 1].text == "<" || toks[i + 1].text == "(")) {
      flag(t, "std::" + t.text);
      continue;
    }
    // The remaining patterns are std-qualified type/function spellings.
    const bool std_qualified =
        i >= 2 && toks[i - 1].text == "::" && is_ident(toks[i - 2], "std");
    if (!std_qualified) continue;
    if (t.text == "string") {
      // References, pointers, and string_view (a distinct token) are free;
      // a by-value std::string constructs per request.
      if (has_next && (toks[i + 1].text == "&" || toks[i + 1].text == "*"))
        continue;
      flag(t, "by-value std::string");
      continue;
    }
    if (t.text == "to_string" && has_next && toks[i + 1].text == "(") {
      flag(t, "std::to_string");
      continue;
    }
    if (in_list(t.text, kAllocatingStd,
                sizeof(kAllocatingStd) / sizeof(kAllocatingStd[0])) &&
        has_next && (toks[i + 1].text == "<" || toks[i + 1].text == "(")) {
      flag(t, "allocating container std::" + t.text);
      continue;
    }
  }
}

// --- v2 rule: raw-struct-serialization --------------------------------------
//
// Wire messages cross links through WireWriter/WireReader, field by
// field, because struct memory layout is not a wire format: padding,
// field order and endianness all vary by ABI, and a frame produced by
// memcpy'ing a struct is unparseable the moment either end is rebuilt.
// Two shapes are flagged in net TUs:
//   * memcpy with a sizeof-sized length — a struct-sized raw copy.
//     Explicit byte counts (header windows, payload spans) stay legal.
//   * reinterpret_cast naming a *Msg type — casting raw bytes to/from a
//     message struct on either the encode or decode side.
// std::bit_cast of scalars (the f64 <-> u64 bridge) and byte-pointer
// casts that never mention a message type are deliberately not flagged.

bool is_net_wire_file(const std::string& rel) {
  // Suffix-free prefix/infix match so the fixture twins
  // (bad/net/wire.cpp, good/net/wire.cpp) exercise the rule too.
  return rel.rfind("net/", 0) == 0 || rel.find("/net/") != std::string::npos;
}

bool names_message_type(const std::string& s) {
  return s.size() > 3 && s.compare(s.size() - 3, 3, "Msg") == 0;
}

void check_raw_struct_serialization(const SourceFile& f,
                                    std::vector<Violation>& out) {
  if (!is_net_wire_file(f.rel)) return;
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (t.text == "memcpy" && i + 1 < toks.size() && toks[i + 1].text == "(") {
      const std::size_t close = skip_balanced(toks, i + 1, "(", ")");
      bool struct_sized = false;
      for (std::size_t j = i + 2; j + 1 < close; ++j)
        if (is_ident(toks[j], "sizeof")) {
          struct_sized = true;
          break;
        }
      if (!struct_sized) continue;
      emit(f,
           {f.rel, t.line, "raw-struct-serialization", "memcpy",
            "memcpy with a sizeof-sized length dumps in-memory struct "
            "layout (padding, endianness) onto the wire; encode field by "
            "field through WireWriter/WireReader instead"},
           out);
      continue;
    }
    if (t.text == "reinterpret_cast" && i + 1 < toks.size() &&
        toks[i + 1].text == "<") {
      const std::size_t close = skip_balanced(toks, i + 1, "<", ">");
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            names_message_type(toks[j].text)) {
          emit(f,
               {f.rel, toks[j].line, "raw-struct-serialization", toks[j].text,
                "reinterpret_cast involving message type '" + toks[j].text +
                    "' treats raw bytes as in-memory struct layout; decode "
                    "through WireReader field by field instead"},
               out);
          break;
        }
      }
    }
  }
}

}  // namespace

void run_rules(const IncludeGraph& graph, std::vector<Violation>& out) {
  const auto& files = graph.files();
  for (std::size_t i = 0; i < files.size(); ++i) {
    const SourceFile& f = files[i];
    check_naked_cv_wait(f, out);
    check_class_members(f, out);
    check_hot_string_key(f, out);
    check_hot_path_alloc(f, out);
    check_header_rules(f, out);
    check_guard_rules(f, out);
    check_detached_thread(f, out);
    check_unordered_iteration(f, graph.visible_unordered(i), out);
    check_wall_clock(f, out);
    check_raw_struct_serialization(f, out);
  }
}

}  // namespace lint
