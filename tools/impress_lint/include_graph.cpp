#include "include_graph.hpp"

#include <algorithm>

namespace lint {

namespace fs = std::filesystem;

std::vector<std::string> parse_includes(const std::string& raw) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t eol = raw.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? raw.size() : eol;
    // Directive lines only; tolerate leading whitespace and `#  include`.
    std::size_t p = pos;
    while (p < end && (raw[p] == ' ' || raw[p] == '\t')) ++p;
    if (p < end && raw[p] == '#') {
      ++p;
      while (p < end && (raw[p] == ' ' || raw[p] == '\t')) ++p;
      if (raw.compare(p, 7, "include") == 0) {
        p += 7;
        while (p < end && (raw[p] == ' ' || raw[p] == '\t')) ++p;
        if (p < end && raw[p] == '"') {
          const std::size_t close = raw.find('"', p + 1);
          if (close != std::string::npos && close < end)
            out.push_back(raw.substr(p + 1, close - p - 1));
        }
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return out;
}

std::map<std::string, std::string> collect_unordered_decls(
    const std::vector<Token>& tokens) {
  std::map<std::string, std::string> out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != Token::Kind::kIdent ||
        (t.text != "unordered_map" && t.text != "unordered_set"))
      continue;
    // Must open a template argument list; a bare mention (e.g. in a
    // concept or comment survivor) declares nothing.
    std::size_t j = i + 1;
    if (j >= tokens.size() || tokens[j].text != "<") continue;
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].text == "<")
        ++depth;
      else if (tokens[j].text == ">" && --depth == 0) {
        ++j;
        break;
      }
    }
    if (depth != 0) continue;  // unclosed (macro soup) — skip
    // Skip ref/pointer/cv decoration between the type and the name.
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const"))
      ++j;
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kIdent) {
      // `unordered_map<K,V> name` followed by ; = { ( ) , — i.e. a
      // variable/member/param, not a function return type (next would
      // be the parameter list's '(' — which we accept too: a param IS
      // a binding the rules may see iterated).
      out.emplace(tokens[j].text, t.text);
    }
  }
  return out;
}

std::size_t IncludeGraph::add(SourceFile file) {
  const std::size_t index = files_.size();
  by_abs_.emplace(file.abs.generic_string(), index);
  files_.push_back(std::move(file));
  return index;
}

void IncludeGraph::resolve(const std::vector<fs::path>& include_dirs) {
  edges_.assign(files_.size(), {});
  for (std::size_t i = 0; i < files_.size(); ++i) {
    for (const auto& spelling : files_[i].includes) {
      // Project layout: quoted includes are spelled relative to a root
      // (src/) first, falling back to the including file's directory.
      std::vector<fs::path> candidates;
      for (const auto& dir : include_dirs) candidates.push_back(dir / spelling);
      candidates.push_back(files_[i].abs.parent_path() / spelling);
      for (const auto& cand : candidates) {
        const auto it =
            by_abs_.find(fs::weakly_canonical(cand).generic_string());
        if (it != by_abs_.end()) {
          edges_[i].push_back(it->second);
          break;
        }
      }
    }
  }
}

std::map<std::string, std::string> IncludeGraph::visible_unordered(
    std::size_t index) const {
  std::map<std::string, std::string> out;
  std::vector<char> seen(files_.size(), 0);
  std::vector<std::size_t> stack = {index};
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = 1;
    for (const auto& [name, type] : files_[cur].unordered_decls)
      out.emplace(name, type);
    if (cur < edges_.size())
      for (const std::size_t next : edges_[cur]) stack.push_back(next);
  }
  return out;
}

std::size_t IncludeGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& e : edges_) n += e.size();
  return n;
}

}  // namespace lint
