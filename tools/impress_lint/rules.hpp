// impress_lint rule set: the project invariants the scanner enforces.
//
// Legacy rules (v1, regex-era — keys unchanged so baselines survive):
//   naked-cv-wait        cv wait()/wait_for()/wait_until() need a predicate.
//   mutex-member-order   mutexes declared before the data they guard
//                        (now also recognises TrackedMutex /
//                        TrackedRecursiveMutex and brace-initialised
//                        members, which v1 skipped over).
//   missing-pragma-once  every header starts with #pragma once.
//   using-namespace      no using-namespace directives in headers.
//   nodiscard-try        try_* members carry [[nodiscard]].
//   hot-string-key       no temporary std::string keys in hot-path files.
//
// Concurrency/determinism rules (v2, token-walker era):
//   blocking-under-lock  Channel::send/receive, ThreadPool::wait_idle,
//                        TaskManager::wait_all, thread join and sleep_for
//                        must not run while a lock guard is active in the
//                        enclosing scope — that is a deadlock (or latency
//                        cliff) the runtime lockdep would report at run
//                        time; the linter reports it at review time.
//   manual-double-lock   two single-mutex guards opened back-to-back in
//                        one scope acquire in textual order; use
//                        std::scoped_lock / MultiGuard, which order by
//                        address and cannot ABBA.
//   detached-thread      thread.detach() escapes join discipline; nothing
//                        may outlive the session teardown.
//   unordered-iteration-in-serialization
//                        iterating an unordered container inside a
//                        checkpoint/serialize/export/dump function writes
//                        hash order into persisted artifacts and breaks
//                        bit-exact resume; iterate a sorted view instead.
//                        Member types resolve through the include graph.
//   wall-clock-in-deterministic-path
//                        system_clock / random_device / rand / srand /
//                        gettimeofday in library code breaks replayable
//                        sims; use the session clock and seeded RNGs.
//                        (steady_clock stays legal: it is the profiler's
//                        clock and never reaches persisted state.)
//   raw-struct-serialization
//                        net TUs must encode messages field by field
//                        through WireWriter/WireReader; memcpy with a
//                        sizeof-sized length and reinterpret_cast naming
//                        a *Msg type bake in-memory struct layout
//                        (padding, endianness) into the wire format.
//                        std::bit_cast of scalars and byte-pointer casts
//                        without a message type stay legal.
//   hot-path-alloc       the service steady-state TUs (service.cpp,
//                        backpressure.cpp, sim_backend.cpp) carry a
//                        zero-allocation contract, pinned at run time by
//                        the counting-allocator test; naked new/delete,
//                        make_unique/make_shared, by-value std::string,
//                        std::to_string, and allocating std containers
//                        are flagged at review time. Construction-time
//                        sites carry `lint:allow hot-path-alloc`.
//
// Any rule can be silenced at a specific site with a trailing comment:
//   do_thing();  // lint:allow <rule-name> — reason
// The escape is per-line and per-rule; reviewers see the reason inline.

#pragma once

#include <string>
#include <vector>

#include "include_graph.hpp"

namespace lint {

struct Violation {
  std::string file;  ///< relative path
  std::size_t line = 0;
  std::string rule;
  std::string token;  ///< stable identifier for the baseline key
  std::string message;

  /// Baseline key — deliberately line-number-free so unrelated edits do
  /// not churn the baseline file.
  [[nodiscard]] std::string key() const {
    return file + ":" + rule + ":" + token;
  }
};

/// Run every applicable rule over every file in the graph, appending to
/// `out`. Sites carrying a `lint:allow <rule>` comment are skipped.
void run_rules(const IncludeGraph& graph, std::vector<Violation>& out);

}  // namespace lint
