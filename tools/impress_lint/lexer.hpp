// impress_lint lexer: comment/string stripping + a real token stream.
//
// The v1 linter matched regexes against flat text; v2 rules walk tokens,
// which makes scope tracking, argument counting and lambda skipping exact
// instead of approximate. The stripper stays the front end: tokens are
// produced from code with comments and literals blanked (newlines kept),
// so every token knows its 1-based source line.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lint {

/// Replace comments and string/char literals with spaces, preserving line
/// structure so offsets still map to line numbers.
std::string strip_comments_and_strings(const std::string& src);

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  std::size_t line = 0;  ///< 1-based source line
};

/// Tokenize stripped code. Identifiers and numbers are single tokens;
/// punctuation is one token per character except the multi-char operators
/// the rules care about ("->", "::").
std::vector<Token> tokenize(const std::string& code);

/// Source lines of the *raw* file (1-based via lines[i-1]); used for
/// `lint:allow` / `guards` comment escapes and --explain output.
std::vector<std::string> split_lines(const std::string& raw);

}  // namespace lint
