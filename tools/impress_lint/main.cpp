// impress_lint: project-invariant linter for the IMPRESS sources.
//
// A deliberately small, dependency-free "AST-lite" scanner that enforces
// concurrency and header hygiene rules that clang-tidy does not know
// about but that this codebase relies on:
//
//   naked-cv-wait        condition_variable wait()/wait_for()/wait_until()
//                        must take a predicate; a naked wait is a lost-
//                        wakeup / spurious-wakeup bug waiting to happen.
//   mutex-member-order   a mutex member must be declared before the
//                        container members it guards, so reviewers can
//                        read lock discipline top-down and destruction
//                        order never kills a mutex before its data.
//   missing-pragma-once  every header starts with #pragma once.
//   using-namespace      headers must not contain using-namespace
//                        directives (they leak into every includer).
//   nodiscard-try        try_* member functions report success through
//                        their return value; callers must not silently
//                        drop it, so the declaration carries
//                        [[nodiscard]].
//   hot-string-key       in the designated hot-path files, map lookups
//                        must not build a fresh std::string (to_string /
//                        string(...) temporaries) as the key — the
//                        allocation dominates the lookup. Hoist the key
//                        or use a numeric/content-addressed one.
//
// Violations are keyed as "<relative-path>:<rule>:<token>" (no line
// numbers, so unrelated edits do not churn the baseline). Keys listed in
// the baseline file are tolerated; anything new fails the run, which is
// how the ctest target keeps CI honest.
//
// Usage:
//   impress_lint --root <dir> [--root <dir>...] --baseline <file>
//                [--update-baseline]

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // relative path
  std::size_t line = 0;
  std::string rule;
  std::string token;    // stable identifier for the baseline key
  std::string message;

  [[nodiscard]] std::string key() const { return file + ":" + rule + ":" + token; }
};

// --- source preprocessing ---------------------------------------------------

// Replace comments and string/char literals with spaces, preserving line
// structure so offsets still map to line numbers.
std::string strip_comments_and_strings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"') {
          // raw string literal R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < src.size() && src[p] != '(') ++p;
          raw_delim = ")" + src.substr(i + 2, p - (i + 2)) + "\"";
          state = State::kRawString;
          for (std::size_t j = i; j <= p && j < src.size(); ++j) out[j] = ' ';
          i = p;
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) out[i + j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos), '\n'));
}

// Count top-level arguments of a call whose '(' is at `open`. Returns
// nullopt if the parenthesis never closes (macro soup); `close_out`
// receives the index of the matching ')'.
std::optional<int> count_call_args(const std::string& text, std::size_t open,
                                   std::size_t* close_out) {
  int depth = 0;
  int args = 0;
  bool saw_token = false;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        if (close_out) *close_out = i;
        return saw_token ? args + 1 : 0;
      }
    } else if (c == ',' && depth == 1) {
      ++args;
    } else if (depth == 1 && !std::isspace(static_cast<unsigned char>(c))) {
      saw_token = true;
    }
  }
  return std::nullopt;
}

// --- rules ------------------------------------------------------------------

void check_naked_cv_wait(const std::string& rel, const std::string& code,
                         std::vector<Violation>& out) {
  static const std::regex re(R"((\.|->)\s*(wait|wait_for|wait_until)\s*\()");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
       it != std::sregex_iterator(); ++it) {
    const std::string fn = (*it)[2].str();
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    const auto args = count_call_args(code, open, nullptr);
    if (!args) continue;
    // wait(lock, pred) is fine; wait(lock) is naked. wait_for/wait_until
    // need (lock, time, pred); two args means no predicate. Zero-arg
    // wait() is std::future / std::thread territory — not a cv.
    const bool naked = (fn == "wait" && *args == 1) ||
                       ((fn == "wait_for" || fn == "wait_until") && *args == 2);
    if (!naked) continue;
    out.push_back({rel, line_of(code, static_cast<std::size_t>(it->position())),
                   "naked-cv-wait", fn,
                   "condition-variable " + fn +
                       " without predicate: spurious wakeups and lost "
                       "notifications slip through; use the predicate overload"});
  }
}

// Extract line `n` (1-based) from `text`.
std::string get_line(const std::string& text, std::size_t n) {
  std::istringstream in(text);
  std::string line;
  for (std::size_t i = 0; i < n && std::getline(in, line); ++i) {
  }
  return line;
}

// Scope tracking: we only inspect member declarations at the direct depth
// of a class/struct body (not inside member function bodies).
void check_class_members(const std::string& rel, const std::string& raw,
                         const std::string& code,
                         std::vector<Violation>& out) {
  enum class Scope { kClass, kOther };
  std::vector<Scope> scopes;
  std::string decl;  // accumulating declaration text at class depth
  std::string first_guarded;  // first container member seen in current class
  std::vector<std::pair<std::string, std::string>> class_stack;  // name, first_guarded

  static const std::regex mutex_re(
      R"((^|[\s,])(mutable\s+)?(std::)?(recursive_)?(shared_|timed_)?mutex\s+(\w+))");
  static const std::regex container_re(
      R"((^|[\s,])(mutable\s+)?std::(vector|deque|queue|priority_queue|unordered_map|unordered_set|map|set|list)\s*<)");
  static const std::regex container_name_re(R"(>\s+(\w+)\s*(=[^;]*)?$)");
  static const std::regex try_decl_re(R"(\b(try_\w+)\s*\($)");

  auto flush_decl = [&](std::size_t pos) {
    if (scopes.empty() || scopes.back() != Scope::kClass) {
      decl.clear();
      return;
    }
    // Trim access specifiers off the front.
    static const std::regex access_re(R"(^\s*(public|private|protected)\s*:\s*)");
    std::string d = std::regex_replace(decl, access_re, "");
    decl.clear();

    std::smatch m;
    if (std::regex_search(d, m, mutex_re)) {
      const std::string name = m[6].str();
      // Escape hatch: a declaration-line comment `guards <member>` names
      // what the mutex protects, which satisfies the rule's real goal
      // (readable lock discipline) even when unrelated containers precede
      // the mutex in the class layout.
      static const std::regex guards_re(R"(//.*\bguards\s+\w+)");
      const std::size_t ln = line_of(code, pos);
      if (std::regex_search(get_line(raw, ln), guards_re)) return;
      if (!class_stack.empty() && !class_stack.back().second.empty()) {
        out.push_back({rel, ln, "mutex-member-order", name,
                       "mutex member '" + name + "' declared after data member '" +
                           class_stack.back().second +
                           "' it may guard; declare mutexes before the data "
                           "they protect"});
      }
      return;
    }
    // A data-member declaration (no parameter list ⇒ not a function).
    if (d.find('(') == std::string::npos && std::regex_search(d, m, container_re)) {
      std::smatch nm;
      std::string name = "<member>";
      if (std::regex_search(d, nm, container_name_re)) name = nm[1].str();
      if (!class_stack.empty() && class_stack.back().second.empty())
        class_stack.back().second = name;
      return;
    }
    // Member function declaration: enforce [[nodiscard]] on try_*.
    const std::size_t paren = d.find('(');
    if (paren != std::string::npos) {
      std::string head = d.substr(0, paren + 1);
      // Collapse whitespace for matching.
      std::smatch tm;
      std::string head_trim = std::regex_replace(head, std::regex(R"(\s+)"), " ");
      if (std::regex_search(head_trim, tm, try_decl_re)) {
        const std::string fn = tm[1].str();
        const bool is_decl =
            head.find("return") == std::string::npos &&
            head.find('.') == std::string::npos &&
            head.find("->") == std::string::npos &&
            head.find('=') == std::string::npos &&
            head_trim.find(' ') != std::string::npos;  // has a return type
        if (is_decl && d.find("[[nodiscard]]") == std::string::npos) {
          out.push_back({rel, line_of(code, pos), "nodiscard-try", fn,
                         "try_* API '" + fn +
                             "' reports success via its return value; mark it "
                             "[[nodiscard]] so callers cannot drop it"});
        }
      }
    }
  };

  std::string pending;  // text since last ; { } at any depth (for scope kind)
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '{') {
      static const std::regex class_re(R"(\b(class|struct)\s+(\w+)[^;=()]*$)");
      static const std::regex enum_re(R"(\benum\b)");
      std::smatch m;
      const bool is_class = std::regex_search(pending, m, class_re) &&
                            !std::regex_search(pending, enum_re);
      scopes.push_back(is_class ? Scope::kClass : Scope::kOther);
      if (is_class) class_stack.emplace_back(m[2].str(), "");
      pending.clear();
      decl.clear();
    } else if (c == '}') {
      if (!scopes.empty()) {
        if (scopes.back() == Scope::kClass && !class_stack.empty())
          class_stack.pop_back();
        scopes.pop_back();
      }
      pending.clear();
      decl.clear();
    } else if (c == ';') {
      flush_decl(i);
      pending.clear();
    } else {
      pending += c;
      if (!scopes.empty() && scopes.back() == Scope::kClass) decl += c;
    }
  }
}

// Files on the campaign's per-proposal / per-record hot paths, where a
// heap-allocating lookup key is a measured regression (see
// docs/performance.md). Kept as an explicit list: elsewhere readability
// wins and the rule stays silent.
bool is_hot_path_file(const std::string& rel) {
  static const std::vector<std::string> hot = {
      "src/protein/landscape.cpp",  "src/protein/kernel_tables.cpp",
      "src/protein/sequence.cpp",   "src/mpnn/mpnn.cpp",
      "src/fold/fold_cache.cpp",    "src/hpc/profiler.cpp",
      "src/core/crossover_generator.cpp",
  };
  for (const auto& suffix : hot)
    if (rel.size() >= suffix.size() &&
        rel.compare(rel.size() - suffix.size(), suffix.size(), suffix) == 0)
      return true;
  return false;
}

void check_hot_string_key(const std::string& rel, const std::string& code,
                          std::vector<Violation>& out) {
  if (!is_hot_path_file(rel)) return;
  // A freshly built string used directly as an associative-container key:
  // accessor call or subscript whose argument opens with std::to_string(
  // or std::string(. (String literals are already blanked out by the
  // preprocessing, so quoted keys cannot false-positive here.)
  static const std::regex accessor_re(
      R"((\.|->)(find|at|count|contains|erase)\s*\(\s*std::(to_string|string)\s*\()");
  static const std::regex subscript_re(
      R"(\[\s*std::(to_string|string)\s*\()");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), accessor_re);
       it != std::sregex_iterator(); ++it)
    out.push_back({rel, line_of(code, static_cast<std::size_t>(it->position())),
                   "hot-string-key", (*it)[3].str(),
                   "hot-path map lookup builds a temporary std::" +
                       (*it)[3].str() +
                       " key; hoist the key out of the loop or switch to a "
                       "numeric/content-addressed key"});
  for (auto it = std::sregex_iterator(code.begin(), code.end(), subscript_re);
       it != std::sregex_iterator(); ++it)
    out.push_back({rel, line_of(code, static_cast<std::size_t>(it->position())),
                   "hot-string-key", (*it)[1].str(),
                   "hot-path subscript builds a temporary std::" +
                       (*it)[1].str() +
                       " key; hoist the key out of the loop or switch to a "
                       "numeric/content-addressed key"});
}

void check_header_rules(const std::string& rel, const std::string& raw,
                        const std::string& code, std::vector<Violation>& out) {
  if (raw.find("#pragma once") == std::string::npos)
    out.push_back({rel, 1, "missing-pragma-once", "header",
                   "header lacks #pragma once include guard"});
  static const std::regex using_ns(R"(\busing\s+namespace\s+([\w:]+))");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), using_ns);
       it != std::sregex_iterator(); ++it) {
    out.push_back({rel, line_of(code, static_cast<std::size_t>(it->position())),
                   "using-namespace", (*it)[1].str(),
                   "'using namespace " + (*it)[1].str() +
                       "' in a header leaks into every includer"});
  }
}

// --- driver -----------------------------------------------------------------

std::set<std::string> load_baseline(const fs::path& path) {
  std::set<std::string> keys;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back())))
      line.pop_back();
    if (!line.empty()) keys.insert(line);
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  fs::path baseline_path;
  bool update_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      roots.emplace_back(argv[++i]);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else {
      std::cerr << "usage: impress_lint --root <dir> [--root <dir>...] "
                   "--baseline <file> [--update-baseline]\n";
      return 2;
    }
  }
  if (roots.empty()) {
    std::cerr << "impress_lint: no --root given\n";
    return 2;
  }

  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
  for (const auto& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "impress_lint: root does not exist: " << root << "\n";
      return 2;
    }
    // Canonicalize so `--root src` and `--root /abs/path/src` produce the
    // same "src/..." baseline keys.
    const fs::path canon = fs::weakly_canonical(root);
    const fs::path base = canon.has_parent_path() ? canon.parent_path() : canon;
    for (const auto& entry : fs::recursive_directory_iterator(canon)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
      ++files_scanned;
      std::ifstream in(entry.path(), std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string raw = ss.str();
      const std::string code = strip_comments_and_strings(raw);
      const std::string rel =
          fs::relative(entry.path(), base).generic_string();
      check_naked_cv_wait(rel, code, violations);
      check_class_members(rel, raw, code, violations);
      check_hot_string_key(rel, code, violations);
      if (ext == ".hpp" || ext == ".h")
        check_header_rules(rel, raw, code, violations);
    }
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  if (update_baseline) {
    if (baseline_path.empty()) {
      std::cerr << "impress_lint: --update-baseline needs --baseline\n";
      return 2;
    }
    std::set<std::string> keys;
    for (const auto& v : violations) keys.insert(v.key());
    std::ofstream outf(baseline_path, std::ios::trunc);
    outf << "# impress_lint baseline — tolerated pre-existing violations.\n"
         << "# Regenerate with: impress_lint --root src --baseline "
            "tools/impress_lint/baseline.txt --update-baseline\n"
         << "# Key format: <file>:<rule>:<token>\n";
    for (const auto& k : keys) outf << k << "\n";
    std::cout << "impress_lint: wrote " << keys.size() << " baseline key(s)\n";
    return 0;
  }

  const std::set<std::string> baseline =
      baseline_path.empty() ? std::set<std::string>{} : load_baseline(baseline_path);

  std::set<std::string> seen_keys;
  std::size_t fresh = 0, tolerated = 0;
  for (const auto& v : violations) {
    seen_keys.insert(v.key());
    if (baseline.count(v.key())) {
      ++tolerated;
      continue;
    }
    ++fresh;
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message
              << "\n    key: " << v.key() << "\n";
  }
  for (const auto& k : baseline)
    if (!seen_keys.count(k))
      std::cout << "note: stale baseline entry (violation fixed — remove it): "
                << k << "\n";

  std::cout << "impress_lint: " << files_scanned << " file(s), " << fresh
            << " new violation(s), " << tolerated << " baselined\n";
  return fresh == 0 ? 0 : 1;
}
