// impress_lint: project-invariant linter for the IMPRESS sources.
//
// v2: a real tokenizer (lexer.cpp) plus a quoted-include graph
// (include_graph.cpp) drive the rules in rules.cpp — see the rule
// catalogue at the top of rules.hpp. The v1 regex scanner's rules were
// ported 1:1, so baseline keys are unchanged.
//
// Violations are keyed as "<relative-path>:<rule>:<token>" (no line
// numbers, so unrelated edits do not churn the baseline). Keys listed in
// the baseline file are tolerated; anything new fails the run, which is
// how the ctest target keeps CI honest. `--explain` additionally prints
// the offending source line under each finding — output meant for humans,
// while the default format (and the key format) stays byte-stable for
// scripts that parse it.
//
// Usage:
//   impress_lint --root <dir> [--root <dir>...] --baseline <file>
//                [--update-baseline] [--explain]

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "include_graph.hpp"
#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

std::set<std::string> load_baseline(const fs::path& path) {
  std::set<std::string> keys;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back())))
      line.pop_back();
    if (!line.empty()) keys.insert(line);
  }
  return keys;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  fs::path baseline_path;
  bool update_baseline = false;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      roots.emplace_back(argv[++i]);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--explain") {
      explain = true;
    } else {
      std::cerr << "usage: impress_lint --root <dir> [--root <dir>...] "
                   "--baseline <file> [--update-baseline] [--explain]\n";
      return 2;
    }
  }
  if (roots.empty()) {
    std::cerr << "impress_lint: no --root given\n";
    return 2;
  }

  // Pass 1: load every file under every root into the include graph.
  lint::IncludeGraph graph;
  std::vector<fs::path> include_dirs;
  for (const auto& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "impress_lint: root does not exist: " << root << "\n";
      return 2;
    }
    // Canonicalize so `--root src` and `--root /abs/path/src` produce the
    // same "src/..." baseline keys.
    const fs::path canon = fs::weakly_canonical(root);
    include_dirs.push_back(canon);
    const fs::path base = canon.has_parent_path() ? canon.parent_path() : canon;
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(canon)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
      paths.push_back(entry.path());
    }
    // Directory iteration order is filesystem-dependent; sort so the
    // report (and any tie in it) is stable across machines.
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
      std::ifstream in(path, std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      lint::SourceFile file;
      file.abs = fs::weakly_canonical(path);
      file.rel = fs::relative(path, base).generic_string();
      file.raw = ss.str();
      file.code = lint::strip_comments_and_strings(file.raw);
      file.lines = lint::split_lines(file.raw);
      file.tokens = lint::tokenize(file.code);
      file.includes = lint::parse_includes(file.raw);
      file.unordered_decls = lint::collect_unordered_decls(file.tokens);
      const auto e = path.extension().string();
      file.is_header = (e == ".hpp" || e == ".h");
      graph.add(std::move(file));
    }
  }
  graph.resolve(include_dirs);

  // Pass 2: rules.
  std::vector<lint::Violation> violations;
  run_rules(graph, violations);

  std::sort(violations.begin(), violations.end(),
            [](const lint::Violation& a, const lint::Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  if (update_baseline) {
    if (baseline_path.empty()) {
      std::cerr << "impress_lint: --update-baseline needs --baseline\n";
      return 2;
    }
    std::set<std::string> keys;
    for (const auto& v : violations) keys.insert(v.key());
    std::ofstream outf(baseline_path, std::ios::trunc);
    outf << "# impress_lint baseline — tolerated pre-existing violations.\n"
         << "# Regenerate with: impress_lint --root src --baseline "
            "tools/impress_lint/baseline.txt --update-baseline\n"
         << "# Key format: <file>:<rule>:<token>\n";
    for (const auto& k : keys) outf << k << "\n";
    std::cout << "impress_lint: wrote " << keys.size() << " baseline key(s)\n";
    return 0;
  }

  const std::set<std::string> baseline =
      baseline_path.empty() ? std::set<std::string>{} : load_baseline(baseline_path);

  // For --explain, index files by relative path to pull source lines.
  std::size_t files_scanned = graph.files().size();
  auto source_line = [&](const std::string& rel, std::size_t ln) -> std::string {
    for (const auto& f : graph.files())
      if (f.rel == rel && ln >= 1 && ln <= f.lines.size())
        return trim(f.lines[ln - 1]);
    return "";
  };

  std::set<std::string> seen_keys;
  std::size_t fresh = 0, tolerated = 0;
  for (const auto& v : violations) {
    seen_keys.insert(v.key());
    if (baseline.count(v.key())) {
      ++tolerated;
      continue;
    }
    ++fresh;
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message
              << "\n    key: " << v.key() << "\n";
    if (explain) {
      const std::string src = source_line(v.file, v.line);
      if (!src.empty()) std::cout << "    > " << src << "\n";
    }
  }
  for (const auto& k : baseline)
    if (!seen_keys.count(k))
      std::cout << "note: stale baseline entry (violation fixed — remove it): "
                << k << "\n";

  if (explain)
    std::cout << "impress_lint: include graph resolved " << graph.edge_count()
              << " edge(s) across " << files_scanned << " file(s)\n";
  std::cout << "impress_lint: " << files_scanned << " file(s), " << fresh
            << " new violation(s), " << tolerated << " baselined\n";
  return fresh == 0 ? 0 : 1;
}
