#include "lexer.hpp"

#include <cctype>

namespace lint {

std::string strip_comments_and_strings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"') {
          // raw string literal R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < src.size() && src[p] != '(') ++p;
          raw_delim = ")" + src.substr(i + 2, p - (i + 2)) + "\"";
          state = State::kRawString;
          for (std::size_t j = i; j <= p && j < src.size(); ++j) out[j] = ' ';
          i = p;
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) out[i + j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[j])) ||
              code[j] == '_'))
        ++j;
      tokens.push_back({Token::Kind::kIdent, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[j])) ||
              code[j] == '.' || code[j] == '\''))
        ++j;
      tokens.push_back({Token::Kind::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    const char next = i + 1 < code.size() ? code[i + 1] : '\0';
    if ((c == '-' && next == '>') || (c == ':' && next == ':')) {
      tokens.push_back({Token::Kind::kPunct, code.substr(i, 2), line});
      i += 2;
      continue;
    }
    tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return tokens;
}

std::vector<std::string> split_lines(const std::string& raw) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : raw) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

}  // namespace lint
