// impress_lint include graph: quoted-include resolution across the scanned
// roots, plus the symbol table the determinism rules need.
//
// The v2 rules have to answer "what type is `pipeline_spans_`?" while
// linting a .cpp whose members are declared in the matching header. A full
// C++ front end is out of scope for a dependency-free tool, so we settle
// for the projection that matters: every declaration whose type spells
// std::unordered_map / std::unordered_set, keyed by declared name, made
// visible to each file through its transitive quoted includes.

#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace lint {

struct SourceFile {
  std::filesystem::path abs;  ///< weakly_canonical absolute path
  std::string rel;            ///< baseline-stable path, e.g. "src/core/x.cpp"
  std::string raw;            ///< original bytes
  std::string code;           ///< comments/strings blanked
  std::vector<std::string> lines;   ///< raw source lines (for escapes/--explain)
  std::vector<Token> tokens;        ///< token stream of `code`
  std::vector<std::string> includes;  ///< quoted include spellings, in order
  /// declared-name -> "unordered_map" | "unordered_set" for every
  /// declaration in this file (members, locals, params alike).
  std::map<std::string, std::string> unordered_decls;
  bool is_header = false;
};

/// Quoted `#include "..."` spellings in `raw` (angle includes are system
/// headers and carry no project symbols).
std::vector<std::string> parse_includes(const std::string& raw);

/// Scan a token stream for declarations of std::unordered_map /
/// std::unordered_set variables: `unordered_map < ... > name`.
std::map<std::string, std::string> collect_unordered_decls(
    const std::vector<Token>& tokens);

class IncludeGraph {
 public:
  /// Returns the index of the added file.
  std::size_t add(SourceFile file);

  /// Resolve each file's quoted includes against `include_dirs` (the
  /// scanned roots, mirroring the build's -I layout) and the including
  /// file's own directory. Unresolvable spellings (system or generated
  /// headers) are dropped silently.
  void resolve(const std::vector<std::filesystem::path>& include_dirs);

  [[nodiscard]] const std::vector<SourceFile>& files() const { return files_; }

  /// Unordered-container declarations visible from files_[index]: its own
  /// plus everything reachable through resolved includes.
  [[nodiscard]] std::map<std::string, std::string> visible_unordered(
      std::size_t index) const;

  /// Resolved edge count (for --explain diagnostics).
  [[nodiscard]] std::size_t edge_count() const;

 private:
  std::vector<SourceFile> files_;
  std::map<std::string, std::size_t> by_abs_;
  std::vector<std::vector<std::size_t>> edges_;  ///< includer -> included
};

}  // namespace lint
