#include "hpc/analytics.hpp"

#include <gtest/gtest.h>

namespace impress::hpc {
namespace {

void add_task(Profiler& p, const std::string& uid, double schedule,
              double setup, double start, double stop) {
  p.record(schedule, uid, events::kSchedule);
  p.record(setup, uid, events::kExecSetupStart);
  p.record(start, uid, events::kExecStart);
  p.record(stop, uid, events::kExecStop);
}

TEST(Analytics, TaskTimingDecomposition) {
  Profiler p;
  add_task(p, "task.0", 0.0, 10.0, 15.0, 115.0);
  const auto timings = task_timings(p);
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_DOUBLE_EQ(timings[0].wait, 10.0);
  EXPECT_DOUBLE_EQ(timings[0].setup, 5.0);
  EXPECT_DOUBLE_EQ(timings[0].run, 100.0);
}

TEST(Analytics, IncompleteTasksSkipped) {
  Profiler p;
  add_task(p, "task.0", 0.0, 1.0, 2.0, 3.0);
  p.record(0.0, "task.queued", events::kSchedule);  // never ran
  p.record(0.0, "task.running", events::kExecStart);  // no stop
  EXPECT_EQ(task_timings(p).size(), 1u);
}

TEST(Analytics, SummaryAggregates) {
  Profiler p;
  add_task(p, "task.0", 0.0, 10.0, 12.0, 112.0);   // wait 10 setup 2 run 100
  add_task(p, "task.1", 0.0, 30.0, 34.0, 234.0);   // wait 30 setup 4 run 200
  const auto s = summarize_timings(p);
  EXPECT_EQ(s.tasks, 2u);
  EXPECT_DOUBLE_EQ(s.mean_wait, 20.0);
  EXPECT_DOUBLE_EQ(s.mean_setup, 3.0);
  EXPECT_DOUBLE_EQ(s.mean_run, 150.0);
  EXPECT_NEAR(s.overhead_fraction, 23.0 / 173.0, 1e-12);
  EXPECT_GE(s.p95_wait, 20.0);
}

TEST(Analytics, EmptyProfilerSummary) {
  Profiler p;
  const auto s = summarize_timings(p);
  EXPECT_EQ(s.tasks, 0u);
  EXPECT_EQ(s.overhead_fraction, 0.0);
}

TEST(Analytics, ConcurrencySeriesCountsRunningTasks) {
  Profiler p;
  add_task(p, "task.0", 0.0, 0.0, 0.0, 100.0);
  add_task(p, "task.1", 0.0, 0.0, 50.0, 100.0);
  const auto series = concurrency_series(p, 4, 100.0);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_NEAR(series[0], 1.0, 1e-9);  // 0-25: only task.0
  EXPECT_NEAR(series[1], 1.0, 1e-9);  // 25-50
  EXPECT_NEAR(series[2], 2.0, 1e-9);  // 50-75: both
  EXPECT_NEAR(series[3], 2.0, 1e-9);
}

TEST(Analytics, ConcurrencyHandlesRunningAtEnd) {
  Profiler p;
  p.record(0.0, "task.0", events::kSchedule);
  p.record(0.0, "task.0", events::kExecSetupStart);
  p.record(0.0, "task.0", events::kExecStart);  // never stops
  const auto series = concurrency_series(p, 2, 10.0);
  EXPECT_NEAR(series[0], 1.0, 1e-9);
  EXPECT_NEAR(series[1], 1.0, 1e-9);
}

TEST(Analytics, PeakConcurrency) {
  Profiler p;
  add_task(p, "task.0", 0, 0, 0.0, 10.0);
  add_task(p, "task.1", 0, 0, 5.0, 15.0);
  add_task(p, "task.2", 0, 0, 8.0, 9.0);
  add_task(p, "task.3", 0, 0, 20.0, 30.0);
  EXPECT_EQ(peak_concurrency(p), 3u);
}

TEST(Analytics, PeakConcurrencyBackToBackIsOne) {
  Profiler p;
  add_task(p, "task.0", 0, 0, 0.0, 10.0);
  add_task(p, "task.1", 0, 0, 10.0, 20.0);  // starts exactly as 0 stops
  EXPECT_EQ(peak_concurrency(p), 1u);
}

TEST(Analytics, EmptyInputs) {
  Profiler p;
  EXPECT_EQ(peak_concurrency(p), 0u);
  EXPECT_TRUE(concurrency_series(p, 0).empty());
  const auto series = concurrency_series(p, 3);
  for (double v : series) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace impress::hpc
