#include "hpc/resource_pool.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <random>
#include <set>
#include <stdexcept>
#include <vector>

namespace impress::hpc {
namespace {

NodeSpec small_node(std::uint32_t cores = 4, std::uint32_t gpus = 2,
                    double mem = 16.0) {
  return NodeSpec{.name = "n", .cores = cores, .gpus = gpus, .mem_gb = mem};
}

TEST(ResourcePool, TotalsMatchNodes) {
  ResourcePool pool({small_node(4, 2), small_node(8, 0)});
  EXPECT_EQ(pool.total_cores(), 12u);
  EXPECT_EQ(pool.total_gpus(), 2u);
  EXPECT_EQ(pool.node_count(), 2u);
}

TEST(ResourcePool, AmarelNodeShape) {
  ResourcePool pool(amarel_node());
  EXPECT_EQ(pool.total_cores(), 28u);
  EXPECT_EQ(pool.total_gpus(), 4u);
}

TEST(ResourcePool, AllocateReturnsRequestedCounts) {
  ResourcePool pool(small_node());
  const auto a = pool.allocate({.cores = 2, .gpus = 1, .mem_gb = 4.0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->cores.size(), 2u);
  EXPECT_EQ(a->gpus.size(), 1u);
  EXPECT_EQ(a->mem_gb, 4.0);
}

TEST(ResourcePool, AllocationsAreDisjoint) {
  ResourcePool pool(small_node());
  const auto a = pool.allocate({.cores = 2, .gpus = 1});
  const auto b = pool.allocate({.cores = 2, .gpus = 1});
  ASSERT_TRUE(a && b);
  std::set<std::uint32_t> cores(a->cores.begin(), a->cores.end());
  for (auto c : b->cores) EXPECT_FALSE(cores.contains(c));
  EXPECT_NE(a->gpus[0], b->gpus[0]);
}

TEST(ResourcePool, ExhaustionReturnsNullopt) {
  ResourcePool pool(small_node(4, 0));
  EXPECT_TRUE(pool.allocate({.cores = 4}));
  EXPECT_FALSE(pool.allocate({.cores = 1}));
}

TEST(ResourcePool, ReleaseMakesResourcesReusable) {
  ResourcePool pool(small_node(2, 1));
  auto a = pool.allocate({.cores = 2, .gpus = 1});
  ASSERT_TRUE(a);
  EXPECT_FALSE(pool.allocate({.cores = 1}));
  pool.release(*a);
  EXPECT_TRUE(pool.allocate({.cores = 2, .gpus = 1}));
}

TEST(ResourcePool, DoubleReleaseThrows) {
  ResourcePool pool(small_node());
  auto a = pool.allocate({.cores = 1});
  ASSERT_TRUE(a);
  pool.release(*a);
  EXPECT_THROW(pool.release(*a), std::logic_error);
}

TEST(ResourcePool, MemoryIsAccounted) {
  ResourcePool pool(small_node(4, 0, 10.0));
  const auto a = pool.allocate({.cores = 1, .mem_gb = 8.0});
  ASSERT_TRUE(a);
  EXPECT_FALSE(pool.allocate({.cores = 1, .mem_gb = 4.0}));
  pool.release(*a);
  EXPECT_TRUE(pool.allocate({.cores = 1, .mem_gb = 4.0}));
}

TEST(ResourcePool, NeverSpansNodes) {
  ResourcePool pool({small_node(2, 0), small_node(2, 0)});
  // 3 cores cannot come from one 2-core node.
  EXPECT_FALSE(pool.allocate({.cores = 3}));
  EXPECT_FALSE(pool.fits_ever({.cores = 3}));
}

TEST(ResourcePool, SecondNodeUsedWhenFirstFull) {
  ResourcePool pool({small_node(2, 0), small_node(2, 0)});
  const auto a = pool.allocate({.cores = 2});
  const auto b = pool.allocate({.cores = 2});
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->node, 0u);
  EXPECT_EQ(b->node, 1u);
  // Global ids on node 1 are offset.
  EXPECT_EQ(b->cores[0], 2u);
}

TEST(ResourcePool, FitsEverChecksCapacityNotAvailability) {
  ResourcePool pool(small_node(4, 1));
  auto a = pool.allocate({.cores = 4, .gpus = 1});
  ASSERT_TRUE(a);
  EXPECT_TRUE(pool.fits_ever({.cores = 4, .gpus = 1}));  // busy but possible
  EXPECT_FALSE(pool.fits_ever({.cores = 5}));
  EXPECT_FALSE(pool.fits_ever({.gpus = 2}));
  EXPECT_FALSE(pool.fits_ever({.cores = 1, .mem_gb = 99.0}));
}

TEST(ResourcePool, FreeCountsTrackAllocations) {
  ResourcePool pool(small_node(4, 2));
  EXPECT_EQ(pool.free_cores(), 4u);
  EXPECT_EQ(pool.free_gpus(), 2u);
  auto a = pool.allocate({.cores = 3, .gpus = 1});
  EXPECT_EQ(pool.free_cores(), 1u);
  EXPECT_EQ(pool.free_gpus(), 1u);
  pool.release(*a);
  EXPECT_EQ(pool.free_cores(), 4u);
}

TEST(ResourcePool, GpuOnlyRequest) {
  ResourcePool pool(small_node(4, 2));
  const auto a = pool.allocate({.cores = 0, .gpus = 2});
  ASSERT_TRUE(a);
  EXPECT_TRUE(a->cores.empty());
  EXPECT_EQ(a->gpus.size(), 2u);
}

// Property: allocate/release cycles conserve resources for any request mix.
struct PoolParam {
  std::uint32_t cores;
  std::uint32_t gpus;
};

class PoolConservation : public ::testing::TestWithParam<PoolParam> {};

TEST_P(PoolConservation, FullCycleRestoresCapacity) {
  ResourcePool pool(amarel_node());
  const auto p = GetParam();
  std::vector<Allocation> held;
  while (auto a = pool.allocate({.cores = p.cores, .gpus = p.gpus}))
    held.push_back(*a);
  EXPECT_FALSE(held.empty());
  // All distinct global ids.
  std::set<std::uint32_t> cores, gpus;
  for (const auto& a : held) {
    for (auto c : a.cores) EXPECT_TRUE(cores.insert(c).second);
    for (auto g : a.gpus) EXPECT_TRUE(gpus.insert(g).second);
  }
  for (const auto& a : held) pool.release(a);
  EXPECT_EQ(pool.free_cores(), 28u);
  EXPECT_EQ(pool.free_gpus(), 4u);
}

INSTANTIATE_TEST_SUITE_P(RequestShapes, PoolConservation,
                         ::testing::Values(PoolParam{1, 0}, PoolParam{7, 0},
                                           PoolParam{2, 1}, PoolParam{7, 1},
                                           PoolParam{28, 4}, PoolParam{0, 1},
                                           PoolParam{5, 2}));

// ---------------------------------------------------------------------------
// Scale-up coverage: the segment-tree + bitmask pool must place exactly
// like the naive linear first-fit it replaced (placement order feeds the
// determinism contract), and must stay fast at 10k heterogeneous nodes.

/// Linear first-fit reference model, updated in lockstep with the pool's
/// GPU-memory/slice semantics: scan nodes in order, place the first that
/// fits every axis, pack GPU slices onto devices in id order. The segment
/// tree must be placement-identical to this under any churn.
class NaivePool {
 public:
  explicit NaivePool(const std::vector<NodeSpec>& nodes) : nodes_(nodes) {
    for (const auto& n : nodes_) {
      State st;
      st.core_busy.assign(n.cores, false);
      st.gpu_milli_free.assign(n.gpus, 1000u);
      st.gpu_mem_free.assign(n.gpus, gpu_mem(n));
      st.mem_free_gb = n.mem_gb;
      st.core_base = total_cores_;
      st.gpu_base = total_gpus_;
      total_cores_ += n.cores;
      total_gpus_ += n.gpus;
      states_.push_back(std::move(st));
    }
  }

  /// Unmodeled device memory (gpu_mem_gb = 0 with GPUs present) never
  /// constrains — mirrored from the pool.
  static double gpu_mem(const NodeSpec& n) {
    return n.gpu_mem_gb > 0.0 ? n.gpu_mem_gb
                              : std::numeric_limits<double>::infinity();
  }

  /// Same per-device capacity formula as the pool (identical float ops so
  /// the placement comparison is bitwise-meaningful).
  static std::uint32_t slice_capacity(std::uint32_t milli_free,
                                      double mem_free,
                                      const ResourceRequest& req) {
    std::uint32_t cap = milli_free / req.gpu_slice_milli;
    if (req.gpu_mem_gb > 0.0) {
      const double by_mem = std::floor(mem_free / req.gpu_mem_gb);
      if (by_mem < static_cast<double>(cap))
        cap = by_mem <= 0.0 ? 0u : static_cast<std::uint32_t>(by_mem);
    }
    return cap;
  }

  std::optional<Allocation> allocate(const ResourceRequest& req) {
    for (std::size_t ni = 0; ni < states_.size(); ++ni) {
      auto& st = states_[ni];
      if (st.mem_free_gb < req.mem_gb) continue;
      std::vector<std::uint32_t> cores;
      for (std::uint32_t c = 0;
           c < st.core_busy.size() && cores.size() < req.cores; ++c)
        if (!st.core_busy[c]) cores.push_back(c);
      if (cores.size() < req.cores) continue;
      // Greedy slice packing in device-id order; (device, count) pairs.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> slices;
      std::uint32_t need = req.gpus;
      for (std::uint32_t g = 0; g < st.gpu_milli_free.size() && need > 0; ++g) {
        const std::uint32_t take = std::min(
            slice_capacity(st.gpu_milli_free[g], st.gpu_mem_free[g], req),
            need);
        if (take == 0) continue;
        slices.emplace_back(g, take);
        need -= take;
      }
      if (need > 0) continue;
      for (auto c : cores) st.core_busy[c] = true;
      Allocation alloc;
      alloc.node = static_cast<std::uint32_t>(ni);
      alloc.mem_gb = req.mem_gb;
      alloc.gpu_slice_milli = req.gpu_slice_milli;
      alloc.gpu_mem_gb = req.gpu_mem_gb;
      for (auto c : cores) alloc.cores.push_back(st.core_base + c);
      for (const auto& [g, take] : slices) {
        st.gpu_milli_free[g] -= take * req.gpu_slice_milli;
        st.gpu_mem_free[g] -= take * req.gpu_mem_gb;
        for (std::uint32_t k = 0; k < take; ++k)
          alloc.gpus.push_back(st.gpu_base + g);
      }
      st.mem_free_gb -= req.mem_gb;
      return alloc;
    }
    return std::nullopt;
  }

  void release(const Allocation& alloc) {
    auto& st = states_.at(alloc.node);
    for (auto c : alloc.cores) st.core_busy[c - st.core_base] = false;
    for (auto g : alloc.gpus) {
      const std::uint32_t local = g - st.gpu_base;
      st.gpu_milli_free[local] += alloc.gpu_slice_milli;
      st.gpu_mem_free[local] =
          std::min(st.gpu_mem_free[local] + alloc.gpu_mem_gb,
                   gpu_mem(nodes_[alloc.node]));
    }
    st.mem_free_gb =
        std::min(st.mem_free_gb + alloc.mem_gb, nodes_[alloc.node].mem_gb);
  }

 private:
  struct State {
    std::vector<bool> core_busy;
    std::vector<std::uint32_t> gpu_milli_free;
    std::vector<double> gpu_mem_free;
    double mem_free_gb = 0.0;
    std::uint32_t core_base = 0;
    std::uint32_t gpu_base = 0;
  };
  std::vector<NodeSpec> nodes_;
  std::uint32_t total_cores_ = 0;
  std::uint32_t total_gpus_ = 0;
  std::vector<State> states_;
};

void expect_same_allocation(const std::optional<Allocation>& a,
                            const std::optional<Allocation>& b) {
  ASSERT_EQ(a.has_value(), b.has_value());
  if (!a) return;
  EXPECT_EQ(a->node, b->node);
  EXPECT_EQ(a->cores, b->cores);
  EXPECT_EQ(a->gpus, b->gpus);
  EXPECT_EQ(a->mem_gb, b->mem_gb);
  EXPECT_EQ(a->gpu_slice_milli, b->gpu_slice_milli);
  EXPECT_EQ(a->gpu_mem_gb, b->gpu_mem_gb);
}

TEST(ResourcePoolScale, PlacementMatchesNaiveFirstFitUnderChurn) {
  const auto nodes = make_cluster(37);  // odd count: exercises tree padding
  ResourcePool pool(nodes);
  NaivePool naive(nodes);
  std::mt19937_64 rng(2024);
  std::vector<Allocation> held;
  for (int op = 0; op < 5000; ++op) {
    if (held.empty() || rng() % 3 != 0) {
      const ResourceRequest req{
          .cores = static_cast<std::uint32_t>(rng() % 32),
          .gpus = static_cast<std::uint32_t>(rng() % 5),
          .mem_gb = static_cast<double>(rng() % 200)};
      const auto a = pool.allocate(req);
      const auto b = naive.allocate(req);
      expect_same_allocation(a, b);
      if (a) held.push_back(*a);
    } else {
      const std::size_t pick = rng() % held.size();
      pool.release(held[pick]);
      naive.release(held[pick]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
}

TEST(ResourcePoolScale, SlicedPlacementMatchesNaiveFirstFitUnderChurn) {
  // Same churn harness, but requests carry GPU memory and fractional
  // slices — the axes the memory-enforcement fix added. The segment-tree
  // prune + exact leaf check must stay placement-identical to the linear
  // reference.
  const auto nodes = make_cluster(23);
  ResourcePool pool(nodes);
  NaivePool naive(nodes);
  std::mt19937_64 rng(2024);
  constexpr std::uint32_t kSlices[] = {125, 250, 500, 1000};
  std::vector<Allocation> held;
  for (int op = 0; op < 5000; ++op) {
    if (held.empty() || rng() % 3 != 0) {
      const ResourceRequest req{
          .cores = static_cast<std::uint32_t>(rng() % 16),
          .gpus = static_cast<std::uint32_t>(rng() % 7),
          .mem_gb = static_cast<double>(rng() % 128),
          .gpu_mem_gb = static_cast<double>(rng() % 14),
          .gpu_slice_milli = kSlices[rng() % 4]};
      const auto a = pool.allocate(req);
      const auto b = naive.allocate(req);
      expect_same_allocation(a, b);
      if (a) held.push_back(*a);
    } else {
      const std::size_t pick = rng() % held.size();
      pool.release(held[pick]);
      naive.release(held[pick]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  for (const auto& a : held) {
    pool.release(a);
    naive.release(a);
  }
  EXPECT_EQ(pool.free_gpus(), pool.total_gpus());
  EXPECT_EQ(pool.free_gpu_milli(),
            static_cast<std::uint64_t>(pool.total_gpus()) * kGpuSliceFull);
}

TEST(ResourcePoolScale, TenThousandNodesAllocateReleaseChurn) {
  const std::size_t kNodes = 10'000;
  ResourcePool pool(make_cluster(kNodes));
  EXPECT_EQ(pool.node_count(), kNodes);
  const auto total = pool.free_cores();

  // Fill every GPU node's GPUs (2500 gpu-dense * 8 + 2500 amarel * 4).
  std::vector<Allocation> gpu_allocs;
  while (auto a = pool.allocate({.cores = 1, .gpus = 4, .mem_gb = 16.0}))
    gpu_allocs.push_back(*a);
  EXPECT_EQ(gpu_allocs.size(), 2500u * 2 + 2500u);  // 8/4 gpus per shape
  EXPECT_EQ(pool.free_gpus(), 0u);

  // CPU-heavy requests skip the exhausted GPU nodes without scanning them.
  std::mt19937_64 rng(7);
  std::vector<Allocation> held;
  for (int op = 0; op < 20'000; ++op) {
    if (held.empty() || rng() % 2 == 0) {
      if (auto a = pool.allocate({.cores = 16, .mem_gb = 8.0}))
        held.push_back(*a);
    } else {
      const std::size_t pick = rng() % held.size();
      pool.release(held[pick]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  for (const auto& a : held) pool.release(a);
  for (const auto& a : gpu_allocs) pool.release(a);
  EXPECT_EQ(pool.free_cores(), total);
  EXPECT_EQ(pool.free_gpus(), pool.total_gpus());
}

TEST(ResourcePoolScale, FitsEverRequiresOneNodeSatisfyingAllAxes) {
  // Node 0 has the cores, node 1 has the gpus — no single node has both,
  // and fits_ever must not combine maxima across nodes.
  ResourcePool pool({small_node(8, 0, 32.0), small_node(2, 2, 16.0)});
  EXPECT_TRUE(pool.fits_ever({.cores = 8}));
  EXPECT_TRUE(pool.fits_ever({.gpus = 2}));
  EXPECT_FALSE(pool.fits_ever({.cores = 4, .gpus = 1}));
  EXPECT_FALSE(pool.fits_ever({.cores = 8, .mem_gb = 33.0}));
  EXPECT_TRUE(pool.fits_ever({.cores = 2, .gpus = 1, .mem_gb = 16.0}));
}

TEST(ResourcePoolScale, MakeClusterIsDeterministicAndHeterogeneous) {
  const auto a = make_cluster(8);
  const auto b = make_cluster(8);
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].cores, b[i].cores);
    EXPECT_EQ(a[i].gpus, b[i].gpus);
  }
  // All four shapes present.
  std::set<std::uint32_t> core_counts;
  for (const auto& n : a) core_counts.insert(n.cores);
  EXPECT_EQ(core_counts.size(), 4u);
}

// ---------------------------------------------------------------------------
// GPU memory enforcement + MPS-style slices (the PR-10 accounting fix: a
// request's device-memory footprint used to be entirely unchecked, so a
// 12 GB-GPU node would happily host a 40 GB-per-GPU model).

TEST(ResourcePoolGpu, DeviceMemoryIsEnforced) {
  ResourcePool pool(amarel_node());  // 4x 12 GB GPUs
  EXPECT_FALSE(pool.fits_ever({.cores = 1, .gpus = 1, .gpu_mem_gb = 40.0}));
  EXPECT_FALSE(pool.allocate({.cores = 1, .gpus = 1, .gpu_mem_gb = 40.0}));
  EXPECT_TRUE(pool.fits_ever({.cores = 1, .gpus = 1, .gpu_mem_gb = 12.0}));
  EXPECT_TRUE(pool.allocate({.cores = 1, .gpus = 1, .gpu_mem_gb = 12.0}));
}

TEST(ResourcePoolGpu, UnmodeledDeviceMemoryNeverConstrains) {
  // Regression: platforms that declare GPUs but never modeled device
  // memory (gpu_mem_gb left at 0) must keep accepting tasks that reserve
  // GPU memory — enforcement applies only where the node declares the
  // axis. Before the fix, mixed-platform campaigns starved with "no pilot
  // can run task" as soon as task factories started requesting gpu_mem_gb.
  ResourcePool pool(
      NodeSpec{.name = "legacy", .cores = 8, .gpus = 1, .mem_gb = 64.0});
  const ResourceRequest req{
      .cores = 1, .gpus = 1, .gpu_mem_gb = 40.0, .gpu_slice_milli = 500};
  EXPECT_TRUE(pool.fits_ever(req));
  const auto a = pool.allocate(req);
  const auto b = pool.allocate(req);  // co-locates: memory never narrows
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(pool.allocate(req)) << "compute, not memory, is the limit";
  pool.release(*a);
  pool.release(*b);
  // Release round-trips cleanly (no clamp against the unmodeled axis).
  EXPECT_TRUE(pool.allocate({.cores = 1, .gpus = 1, .gpu_mem_gb = 99.0}));
}

TEST(ResourcePoolGpu, FractionalSlicesShareOneDevice) {
  ResourcePool pool(NodeSpec{.name = "g", .cores = 4, .gpus = 1,
                             .mem_gb = 32.0, .gpu_mem_gb = 12.0});
  std::vector<Allocation> held;
  for (int i = 0; i < 4; ++i) {
    auto a = pool.allocate(
        {.cores = 1, .gpus = 1, .gpu_mem_gb = 3.0, .gpu_slice_milli = 250});
    ASSERT_TRUE(a) << "slice " << i;
    EXPECT_EQ(a->gpus, std::vector<std::uint32_t>{0});
    held.push_back(*a);
  }
  // Device is saturated on both compute and memory.
  EXPECT_FALSE(pool.allocate(
      {.cores = 0, .gpus = 1, .gpu_mem_gb = 3.0, .gpu_slice_milli = 250}));
  EXPECT_EQ(pool.free_gpus(), 0u);   // no *fully free* device
  EXPECT_EQ(pool.free_gpu_milli(), 0u);
  pool.release(held.back());
  held.pop_back();
  EXPECT_EQ(pool.free_gpu_milli(), 250u);
  EXPECT_TRUE(pool.allocate(
      {.cores = 0, .gpus = 1, .gpu_mem_gb = 3.0, .gpu_slice_milli = 250}));
}

TEST(ResourcePoolGpu, SliceMemoryLimitsCoLocation) {
  // Compute would admit 4 quarter-slices, but 6 GB per slice on a 12 GB
  // device caps co-location at 2.
  ResourcePool pool(NodeSpec{.name = "g", .cores = 4, .gpus = 1,
                             .mem_gb = 32.0, .gpu_mem_gb = 12.0});
  const ResourceRequest req{
      .cores = 0, .gpus = 1, .gpu_mem_gb = 6.0, .gpu_slice_milli = 250};
  EXPECT_TRUE(pool.allocate(req));
  EXPECT_TRUE(pool.allocate(req));
  EXPECT_FALSE(pool.allocate(req));
  EXPECT_EQ(pool.free_gpu_milli(), 500u);  // compute left, memory gone
}

TEST(ResourcePoolGpu, MultiSliceRequestPacksDevicesInOrder) {
  ResourcePool pool(NodeSpec{.name = "g", .cores = 4, .gpus = 2,
                             .mem_gb = 32.0, .gpu_mem_gb = 12.0});
  const auto a = pool.allocate({.cores = 0, .gpus = 3, .gpu_slice_milli = 500});
  ASSERT_TRUE(a);
  EXPECT_EQ(a->gpus, (std::vector<std::uint32_t>{0, 0, 1}));
  // Remaining half of device 1 is still placeable; a whole device is not.
  EXPECT_TRUE(pool.allocate({.cores = 0, .gpus = 1, .gpu_slice_milli = 500}));
  EXPECT_FALSE(pool.allocate({.cores = 0, .gpus = 1}));
}

TEST(ResourcePoolGpu, SliceDoubleReleaseThrows) {
  ResourcePool pool(NodeSpec{.name = "g", .cores = 1, .gpus = 1,
                             .mem_gb = 4.0, .gpu_mem_gb = 12.0});
  auto a = pool.allocate({.cores = 0, .gpus = 1, .gpu_slice_milli = 750});
  ASSERT_TRUE(a);
  pool.release(*a);
  EXPECT_THROW(pool.release(*a), std::logic_error);
}

TEST(ResourcePoolGpu, MalformedSliceRequests) {
  ResourcePool pool(amarel_node());
  EXPECT_FALSE(pool.fits_ever({.cores = 1, .gpus = 1, .gpu_slice_milli = 0}));
  EXPECT_FALSE(
      pool.fits_ever({.cores = 1, .gpus = 1, .gpu_slice_milli = 1001}));
  EXPECT_THROW(
      (void)pool.allocate({.cores = 1, .gpus = 1, .gpu_slice_milli = 0}),
      std::invalid_argument);
}

TEST(ResourcePoolGpu, FitsEverPacksSlicesAcrossDevicesOfOneNode) {
  // 8 half-slices fit on one 4-GPU node; 9 never can.
  ResourcePool pool(amarel_node());
  EXPECT_TRUE(pool.fits_ever({.cores = 0, .gpus = 8, .gpu_slice_milli = 500}));
  EXPECT_FALSE(pool.fits_ever({.cores = 0, .gpus = 9, .gpu_slice_milli = 500}));
  // Memory-bound: 8 GB per half-slice allows one per 12 GB device.
  EXPECT_FALSE(pool.fits_ever(
      {.cores = 0, .gpus = 5, .gpu_mem_gb = 8.0, .gpu_slice_milli = 500}));
  EXPECT_TRUE(pool.fits_ever(
      {.cores = 0, .gpus = 4, .gpu_mem_gb = 8.0, .gpu_slice_milli = 500}));
}

TEST(ResourcePoolGpu, WholeGpuRequestsSkipPartiallySlicedDevices) {
  // A whole-device request must not land on a device with outstanding
  // slices — it takes the lowest *fully free* id, as the bitmask pool did.
  ResourcePool pool(NodeSpec{.name = "g", .cores = 4, .gpus = 3,
                             .mem_gb = 32.0, .gpu_mem_gb = 12.0});
  const auto s = pool.allocate({.cores = 0, .gpus = 1, .gpu_slice_milli = 100});
  ASSERT_TRUE(s);
  EXPECT_EQ(s->gpus, std::vector<std::uint32_t>{0});
  const auto w = pool.allocate({.cores = 0, .gpus = 2});
  ASSERT_TRUE(w);
  EXPECT_EQ(w->gpus, (std::vector<std::uint32_t>{1, 2}));
}

TEST(ResourcePoolScale, WideNodeCrossesBitmaskWordBoundary) {
  // 128 cores = two 64-bit occupancy words; ids must stay contiguous and
  // lowest-first across the word seam.
  ResourcePool pool(small_node(128, 0, 512.0));
  const auto a = pool.allocate({.cores = 100});
  ASSERT_TRUE(a);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(a->cores[i], i);
  const auto b = pool.allocate({.cores = 28});
  ASSERT_TRUE(b);
  EXPECT_EQ(b->cores.front(), 100u);
  EXPECT_EQ(b->cores.back(), 127u);
  EXPECT_FALSE(pool.allocate({.cores = 1}));
  pool.release(*a);
  // After the low block frees, allocation resumes from the lowest ids.
  const auto c = pool.allocate({.cores = 1});
  ASSERT_TRUE(c);
  EXPECT_EQ(c->cores.front(), 0u);
}

}  // namespace
}  // namespace impress::hpc
