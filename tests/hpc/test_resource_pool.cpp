#include "hpc/resource_pool.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace impress::hpc {
namespace {

NodeSpec small_node(std::uint32_t cores = 4, std::uint32_t gpus = 2,
                    double mem = 16.0) {
  return NodeSpec{.name = "n", .cores = cores, .gpus = gpus, .mem_gb = mem};
}

TEST(ResourcePool, TotalsMatchNodes) {
  ResourcePool pool({small_node(4, 2), small_node(8, 0)});
  EXPECT_EQ(pool.total_cores(), 12u);
  EXPECT_EQ(pool.total_gpus(), 2u);
  EXPECT_EQ(pool.node_count(), 2u);
}

TEST(ResourcePool, AmarelNodeShape) {
  ResourcePool pool(amarel_node());
  EXPECT_EQ(pool.total_cores(), 28u);
  EXPECT_EQ(pool.total_gpus(), 4u);
}

TEST(ResourcePool, AllocateReturnsRequestedCounts) {
  ResourcePool pool(small_node());
  const auto a = pool.allocate({.cores = 2, .gpus = 1, .mem_gb = 4.0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->cores.size(), 2u);
  EXPECT_EQ(a->gpus.size(), 1u);
  EXPECT_EQ(a->mem_gb, 4.0);
}

TEST(ResourcePool, AllocationsAreDisjoint) {
  ResourcePool pool(small_node());
  const auto a = pool.allocate({.cores = 2, .gpus = 1});
  const auto b = pool.allocate({.cores = 2, .gpus = 1});
  ASSERT_TRUE(a && b);
  std::set<std::uint32_t> cores(a->cores.begin(), a->cores.end());
  for (auto c : b->cores) EXPECT_FALSE(cores.contains(c));
  EXPECT_NE(a->gpus[0], b->gpus[0]);
}

TEST(ResourcePool, ExhaustionReturnsNullopt) {
  ResourcePool pool(small_node(4, 0));
  EXPECT_TRUE(pool.allocate({.cores = 4}));
  EXPECT_FALSE(pool.allocate({.cores = 1}));
}

TEST(ResourcePool, ReleaseMakesResourcesReusable) {
  ResourcePool pool(small_node(2, 1));
  auto a = pool.allocate({.cores = 2, .gpus = 1});
  ASSERT_TRUE(a);
  EXPECT_FALSE(pool.allocate({.cores = 1}));
  pool.release(*a);
  EXPECT_TRUE(pool.allocate({.cores = 2, .gpus = 1}));
}

TEST(ResourcePool, DoubleReleaseThrows) {
  ResourcePool pool(small_node());
  auto a = pool.allocate({.cores = 1});
  ASSERT_TRUE(a);
  pool.release(*a);
  EXPECT_THROW(pool.release(*a), std::logic_error);
}

TEST(ResourcePool, MemoryIsAccounted) {
  ResourcePool pool(small_node(4, 0, 10.0));
  const auto a = pool.allocate({.cores = 1, .mem_gb = 8.0});
  ASSERT_TRUE(a);
  EXPECT_FALSE(pool.allocate({.cores = 1, .mem_gb = 4.0}));
  pool.release(*a);
  EXPECT_TRUE(pool.allocate({.cores = 1, .mem_gb = 4.0}));
}

TEST(ResourcePool, NeverSpansNodes) {
  ResourcePool pool({small_node(2, 0), small_node(2, 0)});
  // 3 cores cannot come from one 2-core node.
  EXPECT_FALSE(pool.allocate({.cores = 3}));
  EXPECT_FALSE(pool.fits_ever({.cores = 3}));
}

TEST(ResourcePool, SecondNodeUsedWhenFirstFull) {
  ResourcePool pool({small_node(2, 0), small_node(2, 0)});
  const auto a = pool.allocate({.cores = 2});
  const auto b = pool.allocate({.cores = 2});
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->node, 0u);
  EXPECT_EQ(b->node, 1u);
  // Global ids on node 1 are offset.
  EXPECT_EQ(b->cores[0], 2u);
}

TEST(ResourcePool, FitsEverChecksCapacityNotAvailability) {
  ResourcePool pool(small_node(4, 1));
  auto a = pool.allocate({.cores = 4, .gpus = 1});
  ASSERT_TRUE(a);
  EXPECT_TRUE(pool.fits_ever({.cores = 4, .gpus = 1}));  // busy but possible
  EXPECT_FALSE(pool.fits_ever({.cores = 5}));
  EXPECT_FALSE(pool.fits_ever({.gpus = 2}));
  EXPECT_FALSE(pool.fits_ever({.cores = 1, .mem_gb = 99.0}));
}

TEST(ResourcePool, FreeCountsTrackAllocations) {
  ResourcePool pool(small_node(4, 2));
  EXPECT_EQ(pool.free_cores(), 4u);
  EXPECT_EQ(pool.free_gpus(), 2u);
  auto a = pool.allocate({.cores = 3, .gpus = 1});
  EXPECT_EQ(pool.free_cores(), 1u);
  EXPECT_EQ(pool.free_gpus(), 1u);
  pool.release(*a);
  EXPECT_EQ(pool.free_cores(), 4u);
}

TEST(ResourcePool, GpuOnlyRequest) {
  ResourcePool pool(small_node(4, 2));
  const auto a = pool.allocate({.cores = 0, .gpus = 2});
  ASSERT_TRUE(a);
  EXPECT_TRUE(a->cores.empty());
  EXPECT_EQ(a->gpus.size(), 2u);
}

// Property: allocate/release cycles conserve resources for any request mix.
struct PoolParam {
  std::uint32_t cores;
  std::uint32_t gpus;
};

class PoolConservation : public ::testing::TestWithParam<PoolParam> {};

TEST_P(PoolConservation, FullCycleRestoresCapacity) {
  ResourcePool pool(amarel_node());
  const auto p = GetParam();
  std::vector<Allocation> held;
  while (auto a = pool.allocate({.cores = p.cores, .gpus = p.gpus}))
    held.push_back(*a);
  EXPECT_FALSE(held.empty());
  // All distinct global ids.
  std::set<std::uint32_t> cores, gpus;
  for (const auto& a : held) {
    for (auto c : a.cores) EXPECT_TRUE(cores.insert(c).second);
    for (auto g : a.gpus) EXPECT_TRUE(gpus.insert(g).second);
  }
  for (const auto& a : held) pool.release(a);
  EXPECT_EQ(pool.free_cores(), 28u);
  EXPECT_EQ(pool.free_gpus(), 4u);
}

INSTANTIATE_TEST_SUITE_P(RequestShapes, PoolConservation,
                         ::testing::Values(PoolParam{1, 0}, PoolParam{7, 0},
                                           PoolParam{2, 1}, PoolParam{7, 1},
                                           PoolParam{28, 4}, PoolParam{0, 1},
                                           PoolParam{5, 2}));

}  // namespace
}  // namespace impress::hpc
