#include "hpc/gantt.hpp"

#include <gtest/gtest.h>

namespace impress::hpc {
namespace {

void fill_task_profile(Profiler& p) {
  p.record(0.0, "task.0", events::kSchedule);
  p.record(0.0, "task.0", events::kExecSetupStart);
  p.record(100.0, "task.0", events::kExecStart);
  p.record(1000.0, "task.0", events::kExecStop);
  p.record(0.0, "task.1", events::kSchedule);
  p.record(500.0, "task.1", events::kExecSetupStart);
  p.record(600.0, "task.1", events::kExecStart);
  p.record(1500.0, "task.1", events::kExecStop);
}

TEST(Gantt, EmptyProfilerHandled) {
  Profiler p;
  EXPECT_EQ(render_gantt(p), "(no events)\n");
}

TEST(Gantt, RendersOneRowPerStartedTask) {
  Profiler p;
  fill_task_profile(p);
  const auto out = render_gantt(p);
  EXPECT_NE(out.find("task.0"), std::string::npos);
  EXPECT_NE(out.find("task.1"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(Gantt, WaitingSegmentShownForQueuedTasks) {
  Profiler p;
  fill_task_profile(p);
  GanttOptions opts;
  opts.include_waiting = true;
  const auto with_wait = render_gantt(p, 0.0, opts);
  // task.1 waited from 0 to 500 before setup: leading dots on its row.
  EXPECT_NE(with_wait.find('.'), std::string::npos);
}

TEST(Gantt, NeverStartedTasksOmitted) {
  Profiler p;
  p.record(0.0, "task.queued", events::kSchedule);
  p.record(0.0, "task.ran", events::kExecSetupStart);
  p.record(1.0, "task.ran", events::kExecStart);
  p.record(2.0, "task.ran", events::kExecStop);
  const auto out = render_gantt(p);
  EXPECT_EQ(out.find("task.queued"), std::string::npos);
  EXPECT_NE(out.find("task.ran"), std::string::npos);
}

TEST(Gantt, RowCapSummarizesOverflow) {
  Profiler p;
  for (int i = 0; i < 10; ++i) {
    const std::string uid = "task." + std::to_string(i);
    p.record(i, uid, events::kExecSetupStart);
    p.record(i + 0.5, uid, events::kExecStart);
    p.record(i + 1.0, uid, events::kExecStop);
  }
  GanttOptions opts;
  opts.max_rows = 3;
  const auto out = render_gantt(p, 0.0, opts);
  EXPECT_NE(out.find("(+7 more tasks)"), std::string::npos);
}

TEST(Gantt, RunningTaskExtendsToEnd) {
  Profiler p;
  p.record(0.0, "task.0", events::kExecSetupStart);
  p.record(1.0, "task.0", events::kExecStart);
  // No stop event: still running at t_end.
  const auto out = render_gantt(p, 100.0);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Gantt, AxisShowsSpanInHours) {
  Profiler p;
  fill_task_profile(p);
  const auto out = render_gantt(p, 7200.0);
  EXPECT_NE(out.find("2.0h"), std::string::npos);
}

}  // namespace
}  // namespace impress::hpc
