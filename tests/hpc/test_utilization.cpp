#include "hpc/utilization.hpp"

#include <gtest/gtest.h>

#include <random>

#include "hpc/node.hpp"

namespace impress::hpc {
namespace {

UsageInterval interval(double start, double end, std::uint32_t cores,
                       std::uint32_t gpus, double ci = 1.0, double gi = 1.0) {
  return UsageInterval{.start = start,
                       .end = end,
                       .cores = cores,
                       .gpus = gpus,
                       .cpu_intensity = ci,
                       .gpu_intensity = gi,
                       .task_uid = "t"};
}

TEST(Utilization, EmptyRecorderIsZero) {
  UtilizationRecorder rec(28, 4);
  const auto s = rec.summarize();
  EXPECT_EQ(s.cpu_active, 0.0);
  EXPECT_EQ(s.gpu_active, 0.0);
  EXPECT_EQ(rec.latest_end(), 0.0);
}

TEST(Utilization, FullNodeFullTimeIsOne) {
  UtilizationRecorder rec(28, 4);
  rec.record(interval(0.0, 100.0, 28, 4));
  const auto s = rec.summarize(0.0, 100.0);
  EXPECT_DOUBLE_EQ(s.cpu_allocated, 1.0);
  EXPECT_DOUBLE_EQ(s.cpu_active, 1.0);
  EXPECT_DOUBLE_EQ(s.gpu_allocated, 1.0);
  EXPECT_DOUBLE_EQ(s.gpu_active, 1.0);
}

TEST(Utilization, IntensitySeparatesActiveFromAllocated) {
  UtilizationRecorder rec(10, 2);
  rec.record(interval(0.0, 10.0, 10, 2, 0.5, 0.25));
  const auto s = rec.summarize(0.0, 10.0);
  EXPECT_DOUBLE_EQ(s.cpu_allocated, 1.0);
  EXPECT_DOUBLE_EQ(s.cpu_active, 0.5);
  EXPECT_DOUBLE_EQ(s.gpu_allocated, 1.0);
  EXPECT_DOUBLE_EQ(s.gpu_active, 0.25);
}

TEST(Utilization, PartialTimeCoverage) {
  UtilizationRecorder rec(10, 0);
  rec.record(interval(0.0, 5.0, 10, 0));
  const auto s = rec.summarize(0.0, 10.0);
  EXPECT_DOUBLE_EQ(s.cpu_active, 0.5);
}

TEST(Utilization, WindowClipsIntervals) {
  UtilizationRecorder rec(10, 0);
  rec.record(interval(0.0, 100.0, 10, 0));
  const auto s = rec.summarize(40.0, 60.0);
  EXPECT_DOUBLE_EQ(s.cpu_active, 1.0);
  EXPECT_DOUBLE_EQ(s.span_seconds, 20.0);
}

TEST(Utilization, DefaultWindowEndsAtLatest) {
  UtilizationRecorder rec(4, 0);
  rec.record(interval(0.0, 10.0, 4, 0));
  rec.record(interval(10.0, 40.0, 2, 0));
  EXPECT_DOUBLE_EQ(rec.latest_end(), 40.0);
  const auto s = rec.summarize();
  // (10*4 + 30*2) / (40*4) = 100/160.
  EXPECT_DOUBLE_EQ(s.cpu_active, 0.625);
}

TEST(Utilization, OverlappingIntervalsSum) {
  UtilizationRecorder rec(10, 0);
  rec.record(interval(0.0, 10.0, 4, 0));
  rec.record(interval(0.0, 10.0, 6, 0));
  const auto s = rec.summarize(0.0, 10.0);
  EXPECT_DOUBLE_EQ(s.cpu_active, 1.0);
}

TEST(Utilization, InvertedIntervalNormalized) {
  UtilizationRecorder rec(4, 0);
  rec.record(interval(10.0, 5.0, 4, 0));  // end < start
  EXPECT_DOUBLE_EQ(rec.latest_end(), 10.0);
  const auto s = rec.summarize(0.0, 10.0);
  EXPECT_DOUBLE_EQ(s.cpu_active, 0.0);  // zero-length after normalization
}

TEST(Utilization, SeriesBinsIntegrateToAverage) {
  UtilizationRecorder rec(10, 0);
  rec.record(interval(0.0, 50.0, 10, 0, 0.8, 1.0));
  rec.record(interval(50.0, 100.0, 5, 0, 0.8, 1.0));
  const auto series = rec.cpu_series(10);
  ASSERT_EQ(series.size(), 10u);
  for (int b = 0; b < 5; ++b) EXPECT_NEAR(series[b], 0.8, 1e-9);
  for (int b = 5; b < 10; ++b) EXPECT_NEAR(series[b], 0.4, 1e-9);
}

TEST(Utilization, GpuSeriesIndependentOfCpu) {
  UtilizationRecorder rec(10, 4);
  rec.record(interval(0.0, 10.0, 10, 0));
  const auto gpu = rec.gpu_series(5);
  for (double v : gpu) EXPECT_EQ(v, 0.0);
}

TEST(Utilization, SeriesEmptyAndZeroBins) {
  UtilizationRecorder rec(10, 4);
  EXPECT_TRUE(rec.cpu_series(0).empty());
  const auto s = rec.cpu_series(5);
  for (double v : s) EXPECT_EQ(v, 0.0);
}

TEST(Utilization, SeriesClampsToOne) {
  UtilizationRecorder rec(2, 0);
  rec.record(interval(0.0, 10.0, 2, 0));
  rec.record(interval(0.0, 10.0, 2, 0));  // oversubscribed record
  const auto s = rec.cpu_series(4);
  for (double v : s) EXPECT_LE(v, 1.0);
}

TEST(Utilization, IntervalsAccessorReturnsCopies) {
  UtilizationRecorder rec(4, 0);
  rec.record(interval(0.0, 1.0, 1, 0));
  const auto ivs = rec.intervals();
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0].task_uid, "t");
}

TEST(Utilization, EnergyEstimateMatchesHandComputation) {
  UtilizationRecorder rec(28, 4);
  // 10 cores at intensity 0.5 for 3600 s + 2 GPUs at intensity 1.0 for
  // 1800 s: (10*0.5*12 W * 3600 s + 2*1.0*250 W * 1800 s) / 3.6e6 J/kWh.
  rec.record(interval(0.0, 3600.0, 10, 0, 0.5, 0.0));
  rec.record(interval(0.0, 1800.0, 0, 2, 0.0, 1.0));
  const double expected = (60.0 * 3600.0 + 500.0 * 1800.0) / 3.6e6;
  EXPECT_NEAR(rec.energy_kwh(), expected, 1e-9);
}

TEST(Utilization, EnergyScalesWithDraw) {
  UtilizationRecorder rec(4, 1);
  rec.record(interval(0.0, 100.0, 4, 1));
  EXPECT_NEAR(rec.energy_kwh(24.0, 500.0), 2.0 * rec.energy_kwh(12.0, 250.0),
              1e-12);
  EXPECT_EQ(UtilizationRecorder(4, 1).energy_kwh(), 0.0);
}

TEST(Utilization, NegativeStartClampedConsistentlyAcrossPaths) {
  // Regression (PR 10): utilization clamped a negative interval start to 0
  // but the energy term used the raw span, so the O(1) energy total
  // disagreed with any windowed recomputation. Both must see 10 s here.
  UtilizationRecorder rec(4, 2);
  rec.record(interval(-5.0, 10.0, 4, 2, 0.5, 0.5));
  ASSERT_EQ(rec.intervals().size(), 1u);
  EXPECT_EQ(rec.intervals()[0].start, 0.0);  // normalized at the door
  const auto s = rec.summarize(0.0, 10.0);
  EXPECT_DOUBLE_EQ(s.cpu_active, 0.5);
  const double expected =
      10.0 * (4 * 0.5 * 12.0 + 2 * 0.5 * 250.0) / 3.6e6;
  EXPECT_NEAR(rec.energy_kwh(), expected, 1e-15);
}

TEST(Utilization, RunningTotalsMatchWindowedScanOnHeterogeneousCluster) {
  // Property test: thousands of seeded intervals over a heterogeneous
  // cluster — including negative starts, inverted spans and zero-length
  // intervals — must leave the O(1) running-total paths *bit-identical*
  // to the O(n) windowed scans they shortcut.
  const auto nodes = make_cluster(13);
  std::uint32_t cores = 0, gpus = 0;
  for (const auto& n : nodes) {
    cores += n.cores;
    gpus += n.gpus;
  }
  UtilizationRecorder rec(cores, gpus);
  std::mt19937_64 rng(2024);
  for (int i = 0; i < 4000; ++i) {
    const auto& n = nodes[rng() % nodes.size()];
    const double start = static_cast<double>(rng() % 1000) - 20.0;
    const double end = start + static_cast<double>(rng() % 300) - 10.0;
    rec.record(UsageInterval{
        .start = start,
        .end = end,
        .cores = static_cast<std::uint32_t>(rng() % (n.cores + 1)),
        .gpus = static_cast<std::uint32_t>(rng() % (n.gpus + 1)),
        .cpu_intensity = static_cast<double>(rng() % 101) / 100.0,
        .gpu_intensity = static_cast<double>(rng() % 101) / 100.0,
        .task_uid = "p"});
  }
  // Full-span O(1) summarize vs the explicit-window O(n) scan.
  const auto fast = rec.summarize();
  const auto slow = rec.summarize(0.0, rec.latest_end());
  EXPECT_EQ(fast.span_seconds, slow.span_seconds);
  EXPECT_EQ(fast.cpu_allocated, slow.cpu_allocated);
  EXPECT_EQ(fast.cpu_active, slow.cpu_active);
  EXPECT_EQ(fast.gpu_allocated, slow.gpu_allocated);
  EXPECT_EQ(fast.gpu_active, slow.gpu_active);
  // O(1) default-wattage energy vs a manual O(n) scan with the same terms.
  double joules = 0.0;
  for (const auto& iv : rec.intervals()) {
    const double dt = iv.end - iv.start;
    if (dt <= 0.0) continue;
    joules += dt * (iv.cores * iv.cpu_intensity *
                        UtilizationRecorder::kDefaultWattsPerCore +
                    iv.gpus * iv.gpu_intensity *
                        UtilizationRecorder::kDefaultWattsPerGpu);
  }
  EXPECT_EQ(rec.energy_kwh(), joules / 3.6e6);
  // The custom-wattage O(n) member path, pinned against its own manual
  // scan (non-default draws force the slow branch).
  double joules_custom = 0.0;
  for (const auto& iv : rec.intervals()) {
    const double dt = iv.end - iv.start;
    if (dt <= 0.0) continue;
    joules_custom += dt * (iv.cores * iv.cpu_intensity * 17.0 +
                           iv.gpus * iv.gpu_intensity * 400.0);
  }
  EXPECT_EQ(rec.energy_kwh(17.0, 400.0), joules_custom / 3.6e6);
}

TEST(Utilization, ZeroCapacityGpuStaysZero) {
  UtilizationRecorder rec(4, 0);
  rec.record(interval(0.0, 1.0, 1, 0));
  const auto s = rec.summarize(0.0, 1.0);
  EXPECT_EQ(s.gpu_active, 0.0);
  EXPECT_EQ(s.gpu_allocated, 0.0);
}

}  // namespace
}  // namespace impress::hpc
