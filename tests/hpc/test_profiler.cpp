#include "hpc/profiler.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace impress::hpc {
namespace {

TEST(Profiler, RecordsInOrder) {
  Profiler p;
  p.record(1.0, "task.0", events::kSubmit);
  p.record(2.0, "task.0", events::kSchedule);
  const auto evs = p.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].event, events::kSubmit);
  EXPECT_EQ(evs[1].event, events::kSchedule);
  EXPECT_EQ(p.size(), 2u);
}

TEST(Profiler, EventsForFiltersByEntity) {
  Profiler p;
  p.record(1.0, "a", "x");
  p.record(2.0, "b", "y");
  p.record(3.0, "a", "z");
  const auto evs = p.events_for("a");
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].event, "x");
  EXPECT_EQ(evs[1].event, "z");
}

TEST(Profiler, TimeOfFirstOccurrence) {
  Profiler p;
  p.record(5.0, "a", "x");
  p.record(9.0, "a", "x");
  EXPECT_EQ(p.time_of("a", "x"), 5.0);
  EXPECT_FALSE(p.time_of("a", "missing").has_value());
  EXPECT_FALSE(p.time_of("missing", "x").has_value());
}

TEST(Profiler, PhaseDurationsSingleTask) {
  Profiler p;
  p.record(0.0, "pilot.0", events::kBootstrapStart);
  p.record(3.0, "pilot.0", events::kBootstrapStop);
  p.record(10.0, "task.0", events::kExecSetupStart);
  p.record(12.0, "task.0", events::kExecStart);
  p.record(20.0, "task.0", events::kExecStop);
  const auto d = p.phase_durations();
  EXPECT_DOUBLE_EQ(d.at("bootstrap"), 3.0);
  EXPECT_DOUBLE_EQ(d.at("exec_setup"), 2.0);
  EXPECT_DOUBLE_EQ(d.at("running"), 8.0);
}

TEST(Profiler, PhaseDurationsSumAcrossTasks) {
  Profiler p;
  for (int i = 0; i < 3; ++i) {
    const std::string uid = "task." + std::to_string(i);
    p.record(i * 10.0, uid, events::kExecSetupStart);
    p.record(i * 10.0 + 1.0, uid, events::kExecStart);
    p.record(i * 10.0 + 5.0, uid, events::kExecStop);
  }
  const auto d = p.phase_durations();
  EXPECT_DOUBLE_EQ(d.at("exec_setup"), 3.0);
  EXPECT_DOUBLE_EQ(d.at("running"), 12.0);
}

TEST(Profiler, UnpairedEventsIgnored) {
  Profiler p;
  p.record(0.0, "task.0", events::kExecStop);  // stop without start
  p.record(5.0, "task.1", events::kExecStart);  // start without stop
  const auto d = p.phase_durations();
  EXPECT_DOUBLE_EQ(d.at("running"), 0.0);
}

TEST(Profiler, ClearEmpties) {
  Profiler p;
  p.record(1.0, "a", "x");
  p.clear();
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.events().empty());
}

TEST(Profiler, ThreadSafeRecording) {
  Profiler p;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&p, t] {
      for (int i = 0; i < 500; ++i)
        p.record(i, "entity." + std::to_string(t), "event");
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(p.size(), 2000u);
}

}  // namespace
}  // namespace impress::hpc
