#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace impress::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, FiresEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, EqualTimestampsFireInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleAfterAddsDelay) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(10.0, [&] {
    e.schedule_after(5.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(Engine, PastTimesClampToNow) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(10.0, [&] {
    e.schedule_at(3.0, [&] { fired_at = e.now(); });  // in the past
  });
  e.run();
  EXPECT_EQ(fired_at, 10.0);
}

TEST(Engine, NegativeDelayClampsToZero) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(7.0, [&] {
    e.schedule_after(-2.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 7.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const auto id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.fired_events(), 0u);
}

TEST(Engine, CancelTwiceFails) {
  Engine e;
  const auto id = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelAfterFireFails) {
  Engine e;
  const auto id = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelledEventDoesNotAdvanceClock) {
  Engine e;
  const auto id = e.schedule_at(100.0, [] {});
  e.schedule_at(1.0, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.now(), 1.0);
}

TEST(Engine, StepFiresExactlyOne) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, RunReturnsEventCount) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  EXPECT_EQ(e.run(), 5u);
  EXPECT_EQ(e.fired_events(), 5u);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<double> times;
  for (int i = 1; i <= 10; ++i)
    e.schedule_at(i, [&times, &e] { times.push_back(e.now()); });
  const auto fired = e.run_until(5.0);
  EXPECT_EQ(fired, 5u);
  EXPECT_EQ(e.now(), 5.0);
  EXPECT_EQ(e.pending_events(), 5u);
  // Continue to completion.
  e.run();
  EXPECT_EQ(times.size(), 10u);
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine e;
  e.run_until(42.0);
  EXPECT_EQ(e.now(), 42.0);
}

TEST(Engine, RunUntilInclusiveOfBoundaryEvents) {
  Engine e;
  bool fired = false;
  e.schedule_at(5.0, [&] { fired = true; });
  e.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending_events(), 1u);
  // A fresh run resumes.
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsCanScheduleChains) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_after(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99.0);
}

TEST(Engine, PendingEventsAccounting) {
  Engine e;
  const auto a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending_events(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(e.pending_events(), 0u);
  EXPECT_TRUE(e.empty());
}

// Property: any interleaving of schedules fires in nondecreasing time.
class EngineOrderSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineOrderSweep, MonotoneClock) {
  Engine e;
  unsigned state = GetParam() * 2654435761u + 12345u;
  std::vector<double> fire_times;
  for (int i = 0; i < 200; ++i) {
    state = state * 1664525u + 1013904223u;
    const double t = static_cast<double>(state % 1000) / 10.0;
    e.schedule_at(t, [&fire_times, &e] { fire_times.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(fire_times.size(), 200u);
  for (std::size_t i = 1; i < fire_times.size(); ++i)
    EXPECT_GE(fire_times[i], fire_times[i - 1]);
}

INSTANTIATE_TEST_SUITE_P(Interleavings, EngineOrderSweep,
                         ::testing::Range(1u, 7u));

}  // namespace
}  // namespace impress::sim
