// Scheduler interchangeability: every EventScheduler implementation must
// honor the same (time, seq) determinism contract, so the whole suite is
// parameterized over SchedulerKind and every property holds verbatim for
// heap, map and calendar. Includes the tombstone-compaction regression
// (bounded memory under 1e6 schedule/cancel cycles) and the warp_to
// bool contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_scheduler.hpp"

namespace impress::sim {
namespace {

constexpr SchedulerKind kAllKinds[] = {SchedulerKind::kHeap,
                                       SchedulerKind::kMap,
                                       SchedulerKind::kCalendar};

std::string kind_name(const ::testing::TestParamInfo<SchedulerKind>& info) {
  return std::string(to_string(info.param));
}

// ---------------------------------------------------------------------------
// Scheduler-level properties, exercised directly against make_scheduler().

class SchedulerProperty : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  std::unique_ptr<EventScheduler> sched_ = make_scheduler(GetParam());

  /// Pop the next entry that is not a lazily-removed tombstone. Eager
  /// schedulers never leave tombstones, so this is a plain pop for them.
  SchedEvent pop_live(std::vector<EventId>& dead) {
    for (;;) {
      const SchedEvent ev = sched_->pop();
      const auto it = std::find(dead.begin(), dead.end(), ev.id);
      if (it == dead.end()) return ev;
      dead.erase(it);
    }
  }
};

TEST_P(SchedulerProperty, ReportsKind) {
  EXPECT_EQ(sched_->kind(), GetParam());
  EXPECT_EQ(sched_->name(), to_string(GetParam()));
}

TEST_P(SchedulerProperty, PopsInTimeThenSeqOrder) {
  // Deliberately adversarial times: out of order, duplicates, long gaps
  // and sub-width clusters (stresses calendar bucket mapping + resize).
  const double times[] = {5.0, 1.0, 5.0, 0.0,  3.25, 1.0,   1e6,
                          1.0, 0.5, 3.25, 1e-9, 0.0,  1e6,   7.5,
                          2.0, 2.0, 2.0,  42.0, 0.25, 1e6 + 1e-6};
  std::uint64_t seq = 0;
  for (double t : times) sched_->insert(SchedEvent{t, seq, seq + 1}), ++seq;

  SchedEvent prev{-1.0, 0, 0};
  for (std::size_t i = 0; i < std::size(times); ++i) {
    ASSERT_FALSE(sched_->empty());
    const SchedEvent ev = sched_->pop();
    if (i > 0) EXPECT_TRUE(prev.before(ev)) << "at pop " << i;
    prev = ev;
  }
  EXPECT_TRUE(sched_->empty());
}

TEST_P(SchedulerProperty, EqualTimestampsPopInInsertionOrder) {
  for (std::uint64_t s = 0; s < 100; ++s)
    sched_->insert(SchedEvent{1.5, s, s + 1});
  for (std::uint64_t s = 0; s < 100; ++s) {
    const SchedEvent ev = sched_->pop();
    EXPECT_EQ(ev.seq, s);
    EXPECT_EQ(ev.id, s + 1);
  }
}

TEST_P(SchedulerProperty, PopBatchTakesExactlyTheEarliestTimestamp) {
  std::uint64_t seq = 0;
  for (double t : {2.0, 1.0, 1.0, 3.0, 1.0, 2.0})
    sched_->insert(SchedEvent{t, seq, seq + 1}), ++seq;

  std::vector<SchedEvent> batch;
  sched_->pop_batch(batch);
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& ev : batch) EXPECT_EQ(ev.time, 1.0);
  // Insertion (seq) order within the batch.
  EXPECT_EQ(batch[0].seq, 1u);
  EXPECT_EQ(batch[1].seq, 2u);
  EXPECT_EQ(batch[2].seq, 4u);
  EXPECT_EQ(sched_->size(), 3u);

  batch.clear();
  sched_->pop_batch(batch);
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& ev : batch) EXPECT_EQ(ev.time, 2.0);
  EXPECT_EQ(batch[0].seq, 0u);
  EXPECT_EQ(batch[1].seq, 5u);

  batch.clear();
  sched_->pop_batch(batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].time, 3.0);
  EXPECT_TRUE(sched_->empty());
}

TEST_P(SchedulerProperty, RandomInsertPopRemoveMatchesReferenceModel) {
  std::mt19937_64 rng(0xC0FFEEu);
  std::vector<SchedEvent> reference;  // live events, kept sorted on demand
  std::vector<EventId> dead;          // lazily-removed tombstone ids
  std::uint64_t seq = 0;
  EventId next_id = 1;

  const auto ref_sorted = [&] {
    std::sort(reference.begin(), reference.end(),
              [](const SchedEvent& a, const SchedEvent& b) {
                return a.before(b);
              });
  };

  for (int op = 0; op < 20000; ++op) {
    const auto roll = rng() % 10;
    if (roll < 5 || reference.empty()) {
      // Coarse time grid => plenty of equal-timestamp collisions.
      const double t = static_cast<double>(rng() % 64) * 0.25;
      const SchedEvent ev{t, seq++, next_id++};
      sched_->insert(ev);
      reference.push_back(ev);
    } else if (roll < 7) {
      const std::size_t pick = rng() % reference.size();
      const SchedEvent victim = reference[pick];
      reference.erase(reference.begin() +
                      static_cast<std::ptrdiff_t>(pick));
      if (!sched_->remove(victim)) dead.push_back(victim.id);
    } else {
      ref_sorted();
      const SchedEvent got = pop_live(dead);
      EXPECT_EQ(got.time, reference.front().time);
      EXPECT_EQ(got.seq, reference.front().seq);
      EXPECT_EQ(got.id, reference.front().id);
      reference.erase(reference.begin());
    }
    EXPECT_EQ(sched_->size(), reference.size() + dead.size());
  }

  // Drain: what remains must come out exactly in reference order.
  ref_sorted();
  for (const auto& expected : reference) {
    const SchedEvent got = pop_live(dead);
    EXPECT_EQ(got.seq, expected.seq);
    EXPECT_EQ(got.id, expected.id);
  }
}

TEST_P(SchedulerProperty, CompactDropsOnlyDeadEntries) {
  for (std::uint64_t s = 0; s < 200; ++s)
    sched_->insert(SchedEvent{static_cast<double>(s % 7), s, s + 1});
  // Keep odd ids only.
  const std::size_t before = sched_->size();
  sched_->compact([](EventId id) { return id % 2 == 1; });
  // Lazy schedulers drop the evens; eager ones had nothing dead, so
  // compact() must not lose anything either way.
  EXPECT_LE(sched_->size(), before);
  std::size_t odd = 0;
  while (!sched_->empty()) {
    const SchedEvent ev = sched_->pop();
    if (ev.id % 2 == 1) ++odd;
  }
  EXPECT_EQ(odd, 100u);
}

TEST_P(SchedulerProperty, ClearEmptiesAndStaysUsable) {
  for (std::uint64_t s = 0; s < 50; ++s)
    sched_->insert(SchedEvent{static_cast<double>(s), s, s + 1});
  sched_->clear();
  EXPECT_TRUE(sched_->empty());
  EXPECT_EQ(sched_->size(), 0u);
  sched_->insert(SchedEvent{3.0, 100, 101});
  sched_->insert(SchedEvent{1.0, 101, 102});
  EXPECT_EQ(sched_->pop().id, 102u);
  EXPECT_EQ(sched_->pop().id, 101u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SchedulerProperty,
                         ::testing::ValuesIn(kAllKinds), kind_name);

// ---------------------------------------------------------------------------
// Engine-level contract, parameterized over the backing scheduler.

class EngineWithScheduler : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  Engine make() { return Engine(EngineConfig{.scheduler = GetParam()}); }
};

TEST_P(EngineWithScheduler, ReportsConfiguredKind) {
  Engine e = make();
  EXPECT_EQ(e.scheduler_kind(), GetParam());
}

TEST_P(EngineWithScheduler, EqualTimestampFifoOrdering) {
  Engine e = make();
  std::vector<int> fired;
  for (int i = 0; i < 32; ++i)
    e.schedule_at(10.0, [i, &fired] { fired.push_back(i); });
  // Interleave an earlier and a later event around the tie pile-up.
  e.schedule_at(5.0, [&fired] { fired.push_back(-1); });
  e.schedule_at(20.0, [&fired] { fired.push_back(-2); });
  e.run();
  ASSERT_EQ(fired.size(), 34u);
  EXPECT_EQ(fired.front(), -1);
  EXPECT_EQ(fired.back(), -2);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i) + 1], i);
}

TEST_P(EngineWithScheduler, CancelDuringRunSkipsSameBatchAndFutureEvents) {
  Engine e = make();
  std::vector<std::string> fired;
  // Three events share t=1.0; the first cancels the third (same batch)
  // and a future event at t=2.0.
  EventId same_batch = 0;
  EventId future = 0;
  e.schedule_at(1.0, [&] {
    fired.push_back("a");
    EXPECT_TRUE(e.cancel(same_batch));
    EXPECT_TRUE(e.cancel(future));
  });
  e.schedule_at(1.0, [&] { fired.push_back("b"); });
  same_batch = e.schedule_at(1.0, [&] { fired.push_back("CANCELLED"); });
  future = e.schedule_at(2.0, [&] { fired.push_back("CANCELLED"); });
  e.schedule_at(3.0, [&] { fired.push_back("c"); });
  e.run();
  EXPECT_EQ(fired, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST_P(EngineWithScheduler, CancelReturnsFalseOnceFiredOrCancelled) {
  Engine e = make();
  const EventId a = e.schedule_at(1.0, [] {});
  const EventId b = e.schedule_at(2.0, [] {});
  EXPECT_TRUE(e.cancel(b));
  EXPECT_FALSE(e.cancel(b));  // double cancel
  e.run();
  EXPECT_FALSE(e.cancel(a));  // already fired
}

TEST_P(EngineWithScheduler, StaleHandleNeverCancelsARecycledSlot) {
  Engine e = make();
  const EventId old_id = e.schedule_at(1.0, [] {});
  ASSERT_TRUE(e.cancel(old_id));
  // The pool slot is recycled for the next event; the stale handle's
  // generation no longer matches, so it must not cancel the newcomer.
  bool fired = false;
  const EventId new_id = e.schedule_at(1.0, [&fired] { fired = true; });
  EXPECT_FALSE(e.cancel(old_id));
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(e.cancel(new_id));
}

// The tombstone-leak regression (satellite fix): 1e6 schedule/cancel
// cycles around one long-lived event must not grow the queue — lazy
// schedulers compact, eager ones remove in place.
TEST_P(EngineWithScheduler, CancelChurnBoundedMemory) {
  Engine e = make();
  bool fired = false;
  e.schedule_at(1e9, [&fired] { fired = true; });
  std::size_t high_water = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    const EventId id =
        e.schedule_at(static_cast<double>(i % 1000), [] { FAIL(); });
    ASSERT_TRUE(e.cancel(id));
    high_water = std::max(high_water, e.scheduler_entries());
  }
  EXPECT_EQ(e.pending_events(), 1u);
  // Compaction triggers at entries > 2x live (live == 1 here) once past
  // the 64-entry floor, so the queue never exceeds a small constant.
  EXPECT_LE(high_water, 256u);
  EXPECT_LE(e.scheduler_entries(), 256u);
  EXPECT_EQ(e.run(), 1u);
  EXPECT_TRUE(fired);
}

TEST_P(EngineWithScheduler, WarpToRefusesLiveEventsAndBackwardClock) {
  Engine e = make();
  const EventId pending = e.schedule_at(5.0, [] {});
  EXPECT_FALSE(e.warp_to(100.0));  // live event pending
  EXPECT_EQ(e.now(), 0.0);
  ASSERT_TRUE(e.cancel(pending));
  ASSERT_TRUE(e.warp_to(100.0));
  EXPECT_EQ(e.now(), 100.0);
  EXPECT_FALSE(e.warp_to(50.0));  // backwards
  EXPECT_EQ(e.now(), 100.0);
  EXPECT_TRUE(e.warp_to(100.0));  // warp-in-place is a legal no-op
}

TEST_P(EngineWithScheduler, WarpToClearsLeftoverTombstones) {
  Engine e = make();
  for (int i = 0; i < 100; ++i) {
    const EventId id = e.schedule_at(static_cast<double>(i), [] {});
    ASSERT_TRUE(e.cancel(id));
  }
  // Only tombstones (if any) remain; the warp must succeed and leave a
  // pristine queue behind.
  ASSERT_TRUE(e.warp_to(1000.0));
  EXPECT_EQ(e.scheduler_entries(), 0u);
  bool fired = false;
  e.schedule_after(1.0, [&fired, &e] {
    fired = true;
    EXPECT_EQ(e.now(), 1001.0);
  });
  e.run();
  EXPECT_TRUE(fired);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EngineWithScheduler,
                         ::testing::ValuesIn(kAllKinds), kind_name);

// ---------------------------------------------------------------------------
// Cross-scheduler equivalence: one seeded, cancel-heavy, self-scheduling
// workload must produce the identical firing sequence under every kind.

struct FiringRecord {
  double time;
  int tag;
  bool operator==(const FiringRecord& o) const {
    return time == o.time && tag == o.tag;
  }
};

std::vector<FiringRecord> run_seeded_workload(SchedulerKind kind,
                                              std::uint64_t seed) {
  Engine e{EngineConfig{.scheduler = kind}};
  std::mt19937_64 rng(seed);
  std::vector<FiringRecord> log;
  std::vector<EventId> cancellable;
  int next_tag = 0;

  // Each firing may schedule follow-ups (coarse delays => timestamp
  // collisions) and may cancel a previously scheduled event — the same
  // decisions replay on every scheduler because the rng only advances
  // inside callbacks, whose order is the contract under test.
  std::function<void(int)> fire = [&](int tag) {
    log.push_back({e.now(), tag});
    const auto children = rng() % 3;
    for (std::uint64_t c = 0; c < children; ++c) {
      const double delay = static_cast<double>(rng() % 8) * 0.5;
      const int child_tag = next_tag++;
      cancellable.push_back(
          e.schedule_after(delay, [&fire, child_tag] { fire(child_tag); }));
    }
    if (!cancellable.empty() && rng() % 4 == 0) {
      const std::size_t pick = rng() % cancellable.size();
      e.cancel(cancellable[pick]);  // may already have fired: fine
      cancellable.erase(cancellable.begin() +
                        static_cast<std::ptrdiff_t>(pick));
    }
  };

  for (int i = 0; i < 40; ++i) {
    const int tag = next_tag++;
    e.schedule_at(static_cast<double>(i % 5), [&fire, tag] { fire(tag); });
  }
  e.run_until(50.0);  // self-scheduling workload: cap the horizon
  return log;
}

TEST(SchedulerInterchange, SeededWorkloadFiresIdenticallyUnderAllKinds) {
  for (const std::uint64_t seed : {1u, 42u, 1234u}) {
    const auto heap = run_seeded_workload(SchedulerKind::kHeap, seed);
    const auto map = run_seeded_workload(SchedulerKind::kMap, seed);
    const auto calendar = run_seeded_workload(SchedulerKind::kCalendar, seed);
    ASSERT_GT(heap.size(), 40u) << "seed " << seed;
    EXPECT_EQ(heap, map) << "seed " << seed;
    EXPECT_EQ(heap, calendar) << "seed " << seed;
  }
}

}  // namespace
}  // namespace impress::sim
