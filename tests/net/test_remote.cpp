// Remote task adapter tests: RemoteTaskSpec/RemoteTaskOutcome JSON
// round-trips, rehydration into a runnable TaskDescription, and
// run_remote_task determinism across fresh sessions.

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "runtime/remote_task.hpp"

namespace impress::rp {
namespace {

PilotDescription small_pilot() {
  PilotDescription pd;
  pd.nodes = {hpc::NodeSpec{.name = "n", .cores = 4, .gpus = 1, .mem_gb = 32.0}};
  pd.policy = SchedulerPolicy::kBackfill;
  return pd;
}

RemoteTaskSpec sample_spec() {
  RemoteTaskSpec spec;
  spec.name = "fold-check";
  spec.resources = {.cores = 2, .gpus = 1, .mem_gb = 8.0};
  spec.phases.push_back(TaskPhase{.name = "md",
                                  .duration_s = 30.0,
                                  .cores = 2,
                                  .gpus = 0,
                                  .cpu_intensity = 1.0,
                                  .gpu_intensity = 0.0});
  spec.phases.push_back(TaskPhase{.name = "score",
                                  .duration_s = 10.0,
                                  .cores = 1,
                                  .gpus = 1,
                                  .cpu_intensity = 0.5,
                                  .gpu_intensity = 1.0});
  spec.priority = 3;
  spec.retry.max_attempts = 2;
  spec.metadata["campaign"] = "IM-RP";
  return spec;
}

TEST(RemoteTask, SpecJsonRoundTrips) {
  const RemoteTaskSpec spec = sample_spec();
  EXPECT_EQ(remote_task_spec_from_json(to_json(spec)), spec);
}

TEST(RemoteTask, SpecJsonRoundTripsThroughDump) {
  const RemoteTaskSpec spec = sample_spec();
  const std::string wire = to_json(spec).dump();
  EXPECT_EQ(remote_task_spec_from_json(common::Json::parse(wire)), spec);
}

TEST(RemoteTask, EmptySpecRoundTrips) {
  const RemoteTaskSpec spec;
  EXPECT_EQ(remote_task_spec_from_json(to_json(spec)), spec);
}

TEST(RemoteTask, SpecCapturesDescription) {
  TaskDescription td = sample_spec().to_description();
  EXPECT_EQ(td.name, "fold-check");
  EXPECT_FALSE(td.work);  // closures never cross the wire
  const RemoteTaskSpec recaptured = remote_task_spec(td);
  EXPECT_EQ(recaptured, sample_spec());
}

TEST(RemoteTask, OutcomeJsonRoundTrips) {
  RemoteTaskOutcome o;
  o.name = "fold-check";
  o.uid = "task.0003";
  o.state = "DONE";
  o.error = "";
  o.attempts = 2;
  o.duration_s = 40.5;
  EXPECT_EQ(remote_task_outcome_from_json(to_json(o)), o);
  EXPECT_TRUE(o.ok());
  o.state = "FAILED";
  o.error = "sim boom";
  EXPECT_EQ(remote_task_outcome_from_json(to_json(o)), o);
  EXPECT_FALSE(o.ok());
}

TEST(RemoteTask, RunsToCompletionInSimSession) {
  Session session{SessionConfig{}};
  session.submit_pilot(small_pilot());
  const RemoteTaskOutcome o = run_remote_task(session, sample_spec());
  EXPECT_TRUE(o.ok()) << o.state << ": " << o.error;
  EXPECT_EQ(o.name, "fold-check");
  EXPECT_DOUBLE_EQ(o.duration_s, 40.0);  // 30 s md + 10 s score
}

TEST(RemoteTask, DeterministicAcrossFreshSessions) {
  const auto run_once = [] {
    Session session{SessionConfig{}};
    session.submit_pilot(small_pilot());
    return run_remote_task(session, sample_spec());
  };
  const RemoteTaskOutcome a = run_once();
  const RemoteTaskOutcome b = run_once();
  EXPECT_EQ(a, b);  // same seed + same spec => bit-identical outcome
}

}  // namespace
}  // namespace impress::rp
