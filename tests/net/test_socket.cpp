// SocketLink tests over an AF_UNIX socketpair: round trips, large-frame
// partial-write/partial-read reassembly, orderly peer shutdown, and the
// poison-on-malformed-bytes teardown contract.

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "net/socket.hpp"

namespace impress::net {
namespace {

TEST(Socket, RoundTripsAllTypes) {
  auto [a, b] = make_socket_pair();
  HelloMsg hello{.worker_id = 1, .wire_version = kWireVersion, .slots = 2,
                 .build_tag = "t"};
  HeartbeatMsg hb;
  hb.worker_id = 1;
  hb.tick = 9;
  hb.active_shard = 4;
  hb.busy = 1;
  ASSERT_TRUE(a->send(hello));
  ASSERT_TRUE(a->send(hb));

  ASSERT_TRUE(b->wait_readable(1000));
  std::vector<Message> got;
  while (auto m = b->poll()) got.push_back(std::move(*m));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(std::get<HelloMsg>(got[0]), hello);
  EXPECT_EQ(std::get<HeartbeatMsg>(got[1]), hb);
}

TEST(Socket, LargeFrameSurvivesPartialWritesAndReads) {
  auto [a, b] = make_socket_pair();
  CheckpointShardMsg big;
  big.shard_id = 0;
  big.epoch = 1;
  big.ordinal = 3;
  // Much larger than any socket buffer: forces EAGAIN on the writer and
  // many 4096-byte reads on the receiver.
  big.checkpoint_json.assign(4 * 1024 * 1024, 'j');
  ASSERT_TRUE(a->send(big));

  std::optional<Message> got;
  for (int spin = 0; spin < 100000 && !got; ++spin) {
    // Writer flushes its backlog opportunistically on poll() too.
    (void)a->poll();
    got = b->poll();
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::get<CheckpointShardMsg>(*got), big);
}

TEST(Socket, PeerCloseObservedAsClosedLink) {
  auto [a, b] = make_socket_pair();
  a->close();
  EXPECT_TRUE(a->closed());
  // b sees EOF on its next poll and closes itself.
  for (int spin = 0; spin < 100 && !b->closed(); ++spin) (void)b->poll();
  EXPECT_TRUE(b->closed());
  EXPECT_FALSE(b->send(HeartbeatMsg{}));
}

TEST(Socket, MalformedBytesPoisonAndCloseLink) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketLink victim(fds[0]);
  // Raw garbage straight onto the peer fd — not a valid frame header.
  const std::uint8_t junk[16] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                 0xFF, 0xFF, 1,    2,    3,    4,
                                 5,    6,    7,    8};
  ASSERT_EQ(::write(fds[1], junk, sizeof(junk)),
            static_cast<ssize_t>(sizeof(junk)));
  EXPECT_THROW((void)victim.poll(), WireError);
  EXPECT_TRUE(victim.closed());
  ::close(fds[1]);
}

TEST(Socket, WaitReadableTimesOutWhenIdle) {
  auto [a, b] = make_socket_pair();
  EXPECT_FALSE(b->wait_readable(10));
  a->send(HeartbeatMsg{});
  EXPECT_TRUE(b->wait_readable(1000));
}

TEST(Socket, KindIsSocket) {
  auto [a, b] = make_socket_pair();
  EXPECT_EQ(a->kind(), "socket");
}

}  // namespace
}  // namespace impress::net
