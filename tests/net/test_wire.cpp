// Wire protocol unit tests: frame layout, per-type encode/decode
// round-trips, primitive bounds checking, and FrameAssembler chunking.
// The adversarial/mutation side lives in test_wire_fuzz.cpp.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace impress::net {
namespace {

HelloMsg sample_hello() {
  return {.worker_id = 7,
          .wire_version = kWireVersion,
          .slots = 3,
          .build_tag = "impress-net/1"};
}

AssignShardMsg sample_assign() {
  AssignShardMsg m;
  m.shard_id = 2;
  m.epoch = 5;
  m.seed = 0xDEADBEEFCAFEF00DULL;
  m.campaign_name = "IM-RP";
  m.target_names = {"NHERF3", "DET-A", "DET-B"};
  m.checkpoint_ordinal = 9;
  m.checkpoint_json = "{\"ordinal\":9}";
  return m;
}

TEST(Wire, FrameHeaderLayout) {
  const std::vector<std::uint8_t> frame = encode_frame(sample_hello());
  ASSERT_GE(frame.size(), kHeaderSize);
  EXPECT_EQ(frame[0], kMagic0);
  EXPECT_EQ(frame[1], kMagic1);
  EXPECT_EQ(frame[2], kWireVersion);
  EXPECT_EQ(frame[3], static_cast<std::uint8_t>(MsgType::kHello));
  const std::uint32_t len = static_cast<std::uint32_t>(frame[4]) |
                            (static_cast<std::uint32_t>(frame[5]) << 8) |
                            (static_cast<std::uint32_t>(frame[6]) << 16) |
                            (static_cast<std::uint32_t>(frame[7]) << 24);
  EXPECT_EQ(len, frame.size() - kHeaderSize);
}

TEST(Wire, HelloRoundTrip) {
  const HelloMsg m = sample_hello();
  EXPECT_EQ(std::get<HelloMsg>(decode_frame(encode_frame(m))), m);
}

TEST(Wire, AssignShardRoundTrip) {
  const AssignShardMsg m = sample_assign();
  EXPECT_EQ(std::get<AssignShardMsg>(decode_frame(encode_frame(m))), m);
}

TEST(Wire, TaskSubmitRoundTrip) {
  TaskSubmitMsg m;
  m.shard_id = 1;
  m.epoch = 2;
  m.task_seq = 42;
  m.kind = TaskSubmitMsg::Kind::kRemoteTask;
  m.payload = std::string("spec\0with\x01nul", 13);
  EXPECT_EQ(std::get<TaskSubmitMsg>(decode_frame(encode_frame(m))), m);
}

TEST(Wire, TaskResultRoundTrip) {
  TaskResultMsg m;
  m.shard_id = 3;
  m.epoch = 1;
  m.task_seq = 77;
  m.status = TaskResultMsg::Status::kError;
  m.payload = "boom";
  EXPECT_EQ(std::get<TaskResultMsg>(decode_frame(encode_frame(m))), m);
}

TEST(Wire, HeartbeatRoundTrip) {
  HeartbeatMsg m;
  m.worker_id = 9;
  m.tick = 123456789ULL;
  m.active_shard = kNoShard;
  m.busy = 1;
  EXPECT_EQ(std::get<HeartbeatMsg>(decode_frame(encode_frame(m))), m);
}

TEST(Wire, CheckpointShardRoundTrip) {
  CheckpointShardMsg m;
  m.shard_id = 0;
  m.epoch = 4;
  m.ordinal = 17;
  m.checkpoint_json = std::string(100000, 'x');  // large payload path
  EXPECT_EQ(std::get<CheckpointShardMsg>(decode_frame(encode_frame(m))), m);
}

TEST(Wire, WorkerDeadRoundTrip) {
  WorkerDeadMsg m;
  m.worker_id = 2;
  m.shard_id = 1;
  m.epoch = 3;
  m.reason = "heartbeat timeout";
  EXPECT_EQ(std::get<WorkerDeadMsg>(decode_frame(encode_frame(m))), m);
}

TEST(Wire, EmptyStringsAndListsRoundTrip) {
  AssignShardMsg m;  // all strings empty, list empty
  EXPECT_EQ(std::get<AssignShardMsg>(decode_frame(encode_frame(m))), m);
}

TEST(Wire, TypeOfMatchesVariant) {
  EXPECT_EQ(type_of(Message{sample_hello()}), MsgType::kHello);
  EXPECT_EQ(type_of(Message{sample_assign()}), MsgType::kAssignShard);
  EXPECT_EQ(type_of(Message{TaskSubmitMsg{}}), MsgType::kTaskSubmit);
  EXPECT_EQ(type_of(Message{TaskResultMsg{}}), MsgType::kTaskResult);
  EXPECT_EQ(type_of(Message{HeartbeatMsg{}}), MsgType::kHeartbeat);
  EXPECT_EQ(type_of(Message{CheckpointShardMsg{}}), MsgType::kCheckpointShard);
  EXPECT_EQ(type_of(Message{WorkerDeadMsg{}}), MsgType::kWorkerDead);
}

TEST(Wire, TypeIndexIsDense) {
  EXPECT_EQ(type_index(MsgType::kHello), 0u);
  EXPECT_EQ(type_index(MsgType::kWorkerDead), kMsgTypeCount - 1);
  for (std::uint8_t raw = 1; raw <= kMsgTypeCount; ++raw) {
    EXPECT_TRUE(is_valid_type(raw));
  }
  EXPECT_FALSE(is_valid_type(0));
  EXPECT_FALSE(is_valid_type(kMsgTypeCount + 1));
}

TEST(Wire, ReaderRejectsOverRead) {
  WireWriter w;
  w.u32(5);
  const std::vector<std::uint8_t> buf = w.bytes();
  WireReader r(buf.data(), buf.size());
  EXPECT_EQ(r.u32(), 5u);
  EXPECT_THROW((void)r.u8(), WireError);
}

TEST(Wire, ReaderRejectsTrailingBytes) {
  WireWriter w;
  w.u8(1);
  w.u8(2);
  const std::vector<std::uint8_t> buf = w.bytes();
  WireReader r(buf.data(), buf.size());
  EXPECT_EQ(r.u8(), 1u);
  EXPECT_THROW(r.finish(), WireError);
}

TEST(Wire, StringLengthLieRejected) {
  WireWriter w;
  w.u32(1000);  // declares 1000 bytes...
  w.u8('x');    // ...provides 1
  const std::vector<std::uint8_t> buf = w.bytes();
  WireReader r(buf.data(), buf.size());
  EXPECT_THROW((void)r.str(), WireError);
}

TEST(Wire, F64BitExact) {
  WireWriter w;
  w.f64(0.1);
  w.f64(-0.0);
  w.f64(1e308);
  const std::vector<std::uint8_t> buf = w.bytes();
  WireReader r(buf.data(), buf.size());
  EXPECT_EQ(r.f64(), 0.1);
  const double nz = r.f64();
  EXPECT_EQ(nz, 0.0);
  EXPECT_TRUE(std::signbit(nz));
  EXPECT_EQ(r.f64(), 1e308);
  r.finish();
}

TEST(Wire, AssemblerReassemblesByteAtATime) {
  std::vector<std::uint8_t> stream = encode_frame(sample_assign());
  const std::vector<std::uint8_t> second = encode_frame(sample_hello());
  stream.insert(stream.end(), second.begin(), second.end());

  FrameAssembler assembler;
  std::vector<Message> out;
  for (const std::uint8_t b : stream) {
    assembler.feed(&b, 1);
    while (auto m = assembler.next()) {
      out.push_back(std::move(*m));
    }
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(std::get<AssignShardMsg>(out[0]), sample_assign());
  EXPECT_EQ(std::get<HelloMsg>(out[1]), sample_hello());
  EXPECT_EQ(assembler.buffered(), 0u);
  EXPECT_FALSE(assembler.poisoned());
}

TEST(Wire, AssemblerPoisonsOnBadMagic) {
  FrameAssembler assembler;
  const std::uint8_t junk[kHeaderSize] = {0xFF, 0xFF, 0, 0, 0, 0, 0, 0};
  EXPECT_THROW(
      {
        assembler.feed(junk, sizeof(junk));
        (void)assembler.next();
      },
      WireError);
  EXPECT_TRUE(assembler.poisoned());
}

}  // namespace
}  // namespace impress::net
